//! Cross-crate integration tests: the paper's headline claims, asserted
//! end-to-end on aggregate over suite traces (small scales for CI speed).
//!
//! The suite is generated once (in parallel) and shared across tests, and
//! the heavy sweeps are sharded into separate `#[test]` functions so the
//! test harness runs them concurrently. The heaviest sweeps are
//! debug-ignored: they run under `--release` (or `-- --ignored`), where
//! they cost seconds instead of minutes.

use pipeline::{simulate, PipelineConfig, SuiteReport};
use simkit::{Predictor, UpdateScenario};
use std::sync::{Arc, OnceLock};
use tage::TageSystem;
use workloads::suite::{by_name, generate_parallel, Scale, HARD_TRACES};
use workloads::Trace;

/// The Tiny 40-trace suite, generated once per test binary and shared.
fn tiny_suite() -> Arc<Vec<Trace>> {
    static SUITE: OnceLock<Arc<Vec<Trace>>> = OnceLock::new();
    SUITE.get_or_init(|| Arc::new(generate_parallel(Scale::Tiny, None, None))).clone()
}

fn run_all<P: Predictor>(make: impl Fn() -> P, traces: &[Trace], s: UpdateScenario) -> SuiteReport {
    let cfg = PipelineConfig::default();
    SuiteReport::new(traces.iter().map(|t| simulate(&mut make(), t, s, &cfg)).collect())
}

#[test]
fn tage_beats_gshare_and_gehl_on_suite() {
    let traces = tiny_suite();
    let tage = run_all(TageSystem::reference_tage, &traces, UpdateScenario::RereadAtRetire);
    let gshare = run_all(baselines::Gshare::cbp_512k, &traces, UpdateScenario::RereadAtRetire);
    let gehl = run_all(baselines::Gehl::cbp_520k, &traces, UpdateScenario::RereadAtRetire);
    assert!(
        tage.mppki() < gehl.mppki() && gehl.mppki() < gshare.mppki(),
        "paper ordering TAGE < GEHL < gshare violated: {:.0} / {:.0} / {:.0}",
        tage.mppki(),
        gehl.mppki(),
        gshare.mppki()
    );
}

/// §4.1.2: [I] <= [A] <= [C] <= [B] in total mispredictions (per-trace
/// inversions are allowed; the aggregate ordering is the paper's claim).
/// One shard per predictor family so the sweeps run concurrently.
fn assert_scenario_ordering(name: &str, run: impl Fn(UpdateScenario) -> u64) {
    let i = run(UpdateScenario::Immediate);
    let a = run(UpdateScenario::RereadAtRetire);
    let b = run(UpdateScenario::FetchOnly);
    let c = run(UpdateScenario::RereadOnMispredict);
    assert!(i <= a + a / 100, "{name}: [I] {i} > [A] {a}");
    assert!(a <= c + c / 50, "{name}: [A] {a} > [C] {c}");
    assert!(c <= b + b / 100, "{name}: [C] {c} > [B] {b}");
}

#[test]
fn scenario_ordering_holds_for_gshare() {
    let traces = tiny_suite();
    assert_scenario_ordering("gshare", |s| {
        run_all(baselines::Gshare::cbp_512k, &traces, s).total_mispredicts()
    });
}

#[test]
#[cfg_attr(debug_assertions, ignore = "4 GEHL suite sweeps; run under --release or --ignored")]
fn scenario_ordering_holds_for_gehl() {
    let traces = tiny_suite();
    assert_scenario_ordering("gehl", |s| {
        run_all(baselines::Gehl::cbp_520k, &traces, s).total_mispredicts()
    });
}

#[test]
fn scenario_ordering_holds_for_tage() {
    let traces = tiny_suite();
    assert_scenario_ordering("tage", |s| {
        run_all(TageSystem::reference_tage, &traces, s).total_mispredicts()
    });
}

#[test]
#[cfg_attr(debug_assertions, ignore = "6 suite sweeps; run under --release or --ignored")]
fn tage_tolerates_fetch_only_better_than_others() {
    // §4.2: TAGE's relative loss under [B] is smaller than gshare's and
    // GEHL's — the paper's case for single-ported TAGE tables.
    let traces = tiny_suite();
    let rel_loss = |i: u64, b: u64| b as f64 / i as f64;
    let g_i = run_all(baselines::Gshare::cbp_512k, &traces, UpdateScenario::Immediate);
    let g_b = run_all(baselines::Gshare::cbp_512k, &traces, UpdateScenario::FetchOnly);
    let e_i = run_all(baselines::Gehl::cbp_520k, &traces, UpdateScenario::Immediate);
    let e_b = run_all(baselines::Gehl::cbp_520k, &traces, UpdateScenario::FetchOnly);
    let t_i = run_all(TageSystem::reference_tage, &traces, UpdateScenario::Immediate);
    let t_b = run_all(TageSystem::reference_tage, &traces, UpdateScenario::FetchOnly);
    let tage_loss = rel_loss(t_i.total_mispredicts(), t_b.total_mispredicts());
    let gshare_loss = rel_loss(g_i.total_mispredicts(), g_b.total_mispredicts());
    let gehl_loss = rel_loss(e_i.total_mispredicts(), e_b.total_mispredicts());
    // At Tiny scale cold-start noise compresses the gaps; the strict
    // ordering TAGE < gshare < GEHL is asserted at Default scale by the
    // harness (E03). Here: TAGE must beat GEHL outright and not lose to
    // gshare by more than measurement noise.
    assert!(
        tage_loss < gehl_loss && tage_loss < gshare_loss + 0.02,
        "TAGE [B]-loss {tage_loss:.3} out of band (gshare {gshare_loss:.3}, gehl {gehl_loss:.3})"
    );
}

#[test]
fn isl_tage_improves_on_tage() {
    // §5 stack: ISL-TAGE ≤ TAGE (suite MPPKI).
    let traces = tiny_suite();
    let tage = run_all(TageSystem::reference_tage, &traces, UpdateScenario::RereadAtRetire);
    let isl = run_all(TageSystem::isl_tage, &traces, UpdateScenario::RereadAtRetire);
    assert!(isl.mppki() < tage.mppki(), "ISL {:.0} vs TAGE {:.0}", isl.mppki(), tage.mppki());
}

#[test]
fn tage_lsc_improves_on_isl_tage() {
    // §6 stack: TAGE-LSC ≤ ISL-TAGE (suite MPPKI).
    let traces = tiny_suite();
    let isl = run_all(TageSystem::isl_tage, &traces, UpdateScenario::RereadAtRetire);
    let lsc = run_all(TageSystem::tage_lsc, &traces, UpdateScenario::RereadAtRetire);
    assert!(lsc.mppki() < isl.mppki(), "LSC {:.0} vs ISL {:.0}", lsc.mppki(), isl.mppki());
}

#[test]
fn hard_traces_dominate_mispredictions() {
    // §2.2: the 7 hard traces carry the majority of suite mispredictions.
    let traces = tiny_suite();
    let r = run_all(TageSystem::reference_tage, &traces, UpdateScenario::RereadAtRetire);
    let share = r.mispredict_share(&HARD_TRACES);
    // ~52 % at Default scale; Tiny-scale cold-start dilutes it somewhat.
    assert!(share > 0.3, "hard-trace share too small: {share:.2}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "2-Mbit TAGE sweeps; run under --release or --ignored")]
fn figure9_scaling_improves_tage() {
    // Fig. 9: a 16x larger TAGE predicts better.
    let traces = tiny_suite();
    // Capacity effects need repetition; at Tiny scale only the widest
    // budget gap (128 Kbit vs 2 Mbit) is reliably visible. The full sweep
    // runs at Default scale in the harness (E11).
    let small = run_all(|| TageSystem::scaled_tage(-2), &traces, UpdateScenario::RereadAtRetire);
    let big = run_all(|| TageSystem::scaled_tage(2), &traces, UpdateScenario::RereadAtRetire);
    assert!(
        big.total_mispredicts() < small.total_mispredicts(),
        "scaling TAGE 16x should help: {} vs {}",
        big.total_mispredicts(),
        small.total_mispredicts()
    );
}

#[test]
fn figure9_lsc_beats_same_size_tage() {
    // Fig. 9: TAGE-LSC stays ahead of the same-size plain TAGE.
    let traces = tiny_suite();
    let small = run_all(|| TageSystem::scaled_tage(-2), &traces, UpdateScenario::RereadAtRetire);
    let lsc = run_all(|| TageSystem::scaled_tage_lsc(-2), &traces, UpdateScenario::RereadAtRetire);
    assert!(lsc.mppki() < small.mppki());
}

#[test]
fn interleaving_costs_little_and_counts_conflicts() {
    let t = by_name("CLIENT01", Scale::Tiny).unwrap().generate();
    let cfg = PipelineConfig::default();
    let base = simulate(
        &mut tage::Tage::reference_64kb(),
        &t,
        UpdateScenario::RereadOnMispredict,
        &cfg,
    );
    let mut inter_p = tage::Tage::reference_64kb().with_interleaving();
    let inter = simulate(&mut inter_p, &t, UpdateScenario::RereadOnMispredict, &cfg);
    // On an easy trace the interleaving loss must be small.
    assert!(
        (inter.mispredicts as f64) < base.mispredicts as f64 * 2.0 + 50.0,
        "interleaving loss out of band: {} vs {}",
        inter.mispredicts,
        base.mispredicts
    );
    let conflicts = inter_p.conflict_stats().expect("interleaved");
    assert_eq!(conflicts.dropped, 0, "updates must not be dropped at predictor rates");
}

#[test]
fn mppki_exceeds_mpki_scaled_by_min_penalty() {
    // The penalty model must charge at least the refill penalty.
    let t = by_name("SERVER02", Scale::Tiny).unwrap().generate();
    let cfg = PipelineConfig::default();
    let r = simulate(&mut TageSystem::reference_tage(), &t, UpdateScenario::RereadAtRetire, &cfg);
    assert!(r.mppki() >= r.mpki() * cfg.core.refill_penalty as f64);
}

#[test]
fn access_counts_match_scenario_c_structure() {
    // §4.2: under [C], retire reads == mispredictions; accesses/branch is
    // 1 + (mispredict rate) + (effective writes rate).
    let t = by_name("WS01", Scale::Tiny).unwrap().generate();
    let cfg = PipelineConfig::default();
    let r = simulate(
        &mut TageSystem::reference_tage(),
        &t,
        UpdateScenario::RereadOnMispredict,
        &cfg,
    );
    assert_eq!(r.stats.retire_reads, r.mispredicts);
    let expected = 1.0
        + r.mispredicts as f64 / r.conditionals as f64
        + r.stats.effective_writes as f64 / r.conditionals as f64;
    assert!((r.accesses_per_branch() - expected).abs() < 1e-9);
}

#[test]
fn full_lifecycle_is_deterministic_across_runs() {
    let t = by_name("MM07", Scale::Tiny).unwrap().generate();
    let cfg = PipelineConfig::default();
    let run = || {
        simulate(&mut TageSystem::tage_lsc(), &t, UpdateScenario::RereadOnMispredict, &cfg)
            .mispredicts
    };
    assert_eq!(run(), run());
}

#[test]
fn streamed_simulation_is_bit_identical_end_to_end() {
    // The tentpole invariant, asserted at the workspace level: simulating
    // a lazily streamed program equals simulating its materialized trace,
    // report for report, for the full TAGE-LSC system.
    let spec = by_name("CLIENT02", Scale::Tiny).unwrap();
    let cfg = PipelineConfig::default();
    let materialized = simulate(
        &mut TageSystem::tage_lsc(),
        &spec.generate(),
        UpdateScenario::RereadAtRetire,
        &cfg,
    );
    let streamed = pipeline::simulate_source(
        &mut TageSystem::tage_lsc(),
        &mut spec.stream(),
        UpdateScenario::RereadAtRetire,
        &cfg,
    );
    assert_eq!(streamed, materialized);
}

#[test]
fn storage_budgets_match_paper() {
    // §3.4 and §6.1 budget arithmetic.
    assert_eq!(tage::TageConfig::reference_64kb().storage_bits(), 65_408 * 8);
    assert!(TageSystem::tage_lsc().storage_bits() <= 512 * 1024);
    let isl = TageSystem::isl_tage();
    assert!(isl.storage_bits() - tage::TageConfig::reference_64kb().storage_bits() < 40 * 1024);
}
