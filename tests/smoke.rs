//! Smoke tests guarding the runnable surface: the quickstart flow the
//! README/docs advertise and the harness experiment entry point, both at
//! `Scale::Tiny` so `cargo test` keeps them from silently rotting. CI
//! additionally runs the actual `examples/*.rs` binaries and `tage_exp` in
//! release mode (see .github/workflows/ci.yml).

use pipeline::{simulate, PipelineConfig};
use simkit::{Predictor, UpdateScenario};
use tage::TageSystem;
use workloads::suite::{by_name, Scale};

/// In-process mirror of `examples/quickstart.rs`, scaled down to Tiny.
#[test]
fn quickstart_flow_runs_and_ranks_sanely() {
    let trace = by_name("CLIENT03", Scale::Tiny).expect("known trace").generate();
    assert!(trace.conditional_count() > 0);

    let cfg = PipelineConfig::default();
    let mut mpki = Vec::new();
    for mut p in [TageSystem::reference_tage(), TageSystem::isl_tage(), TageSystem::tage_lsc()] {
        assert!(p.storage_bits() > 0);
        let report = simulate(&mut p, &trace, UpdateScenario::RereadAtRetire, &cfg);
        assert_eq!(report.conditionals, trace.conditional_count());
        assert!(report.mpki().is_finite() && report.mpki() >= 0.0);
        mpki.push(report.mpki());
    }
    // CLIENT03 carries the local-history patterns §6 targets: the LSC
    // system must not lose to plain TAGE on it.
    assert!(
        mpki[2] <= mpki[0] * 1.05,
        "TAGE-LSC ({:.2}) should not trail TAGE ({:.2}) on CLIENT03",
        mpki[2],
        mpki[0]
    );
}

/// The harness experiment runner stays invocable end to end on a cheap
/// experiment id (the same entry `tage_exp` dispatches through).
#[test]
fn harness_experiment_entry_point_runs() {
    let ctx = harness::ExpContext::new(Scale::Tiny);
    assert!(
        harness::experiments::ALL_EXPERIMENTS.contains(&"fig3"),
        "experiment index lost its fig3 entry"
    );
    harness::experiments::run("fig3", &ctx);
}
