//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;
use simkit::counter::{SignedCounter, UnsignedCounter};
use simkit::history::{FoldedHistory, GlobalHistory, LocalHistories};
use simkit::{BranchInfo, Predictor, UpdateScenario};
use workloads::event::{Trace, TraceEvent};

proptest! {
    #[test]
    fn signed_counter_never_leaves_range(bits in 1u8..=8, steps in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SignedCounter::new(bits);
        for s in steps {
            c.update(s);
            prop_assert!(c.get() >= c.min() && c.get() <= c.max());
            prop_assert_eq!(c.is_taken(), c.get() >= 0);
        }
    }

    #[test]
    fn unsigned_counter_never_leaves_range(bits in 1u8..=8, steps in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = UnsignedCounter::new(bits);
        for s in steps {
            c.update(s);
            prop_assert!(c.get() <= c.max());
        }
    }

    #[test]
    fn counter_monotone_in_taken_count(bits in 2u8..=6, n in 0usize..40) {
        // More taken updates from the same start never yield a smaller value.
        let run = |takens: usize, total: usize| {
            let mut c = SignedCounter::new(bits);
            for i in 0..total {
                c.update(i < takens);
            }
            c.get()
        };
        let total = 40;
        prop_assert!(run(n, total) <= run((n + 1).min(total), total) + 2);
    }

    #[test]
    fn folded_history_matches_naive_recompute(
        lengths in proptest::collection::vec(1usize..300, 1..4),
        width in 5u32..14,
        bits in proptest::collection::vec(any::<bool>(), 1..600)
    ) {
        let mut gh = GlobalHistory::new();
        let mut folds: Vec<FoldedHistory> =
            lengths.iter().map(|&l| FoldedHistory::new(l, width)).collect();
        for b in bits {
            gh.push(b);
            for f in &mut folds {
                f.update(&gh);
                prop_assert_eq!(f.value(), f.recompute(&gh));
            }
        }
    }

    #[test]
    fn local_histories_only_keep_width_bits(width in 1u32..40, updates in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..200)) {
        let mut lh = LocalHistories::new(32, width);
        for (pc, taken) in updates {
            lh.update(pc, taken);
            prop_assert!(lh.history(pc) <= simkit::bits::mask(width));
        }
    }

    #[test]
    fn interleaved_index_is_a_bijection_per_bank(size_bits in 2u32..16, bank in 0u8..4) {
        let n = 1usize << size_bits;
        let mut seen = vec![false; n];
        let inner = n / 4;
        for idx in 0..inner {
            let m = memarray::interleaved_index(idx, bank, size_bits);
            prop_assert!(m < n);
            prop_assert!(!seen[m], "collision at {m}");
            seen[m] = true;
        }
    }

    #[test]
    fn bank_selector_never_repeats_within_three(pcs in proptest::collection::vec(any::<u64>(), 3..300)) {
        let mut sel = memarray::BankSelector::new();
        let mut last: Vec<u8> = Vec::new();
        for pc in pcs {
            let b = sel.bank(pc);
            for &p in last.iter().rev().take(2) {
                prop_assert_ne!(b, p);
            }
            last.push(b);
        }
    }

    #[test]
    fn trace_codec_round_trips(seed in any::<u64>(), n in 1usize..200) {
        let spec = workloads::suite::by_name("INT05", workloads::suite::Scale::Tiny).unwrap();
        let mut trace = spec.generate();
        trace.events.truncate(n);
        let _ = seed;
        let mut buf = Vec::new();
        workloads::io::write_trace(&mut buf, &trace).unwrap();
        let back = workloads::io::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn trace_cache_round_trips_on_disk(n in 1usize..400) {
        // write_trace/read_trace through the on-disk cache layer: store
        // then load must reproduce the trace bit-for-bit, keyed by name.
        use workloads::suite::Scale;
        let dir = std::env::temp_dir()
            .join(format!("tage-props-cache-{}", std::process::id()));
        let cache = workloads::TraceCache::new(&dir).unwrap();
        let spec = workloads::suite::by_name("MM02", Scale::Tiny).unwrap();
        let mut trace = spec.generate();
        trace.events.truncate(n);
        cache.store(&trace, Scale::Tiny, spec.fingerprint()).unwrap();
        let back = cache.load("MM02", Scale::Tiny, spec.fingerprint()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn program_stream_prefix_matches_generate(budget in 1usize..900) {
        // Streaming any budget yields exactly the materialized events.
        let spec = workloads::suite::by_name("WS07", workloads::suite::Scale::Tiny).unwrap();
        let program_stream = spec.stream();
        let full = spec.generate();
        let streamed: Vec<workloads::TraceEvent> =
            program_stream.take(budget).collect();
        prop_assert_eq!(&streamed[..], &full.events[..streamed.len()]);
    }

    #[test]
    fn tage_prediction_lifecycle_never_panics(
        pcs in proptest::collection::vec(1u64..1 << 20, 1..400),
        outcomes in proptest::collection::vec(any::<bool>(), 400)
    ) {
        let mut p = tage::TageSystem::tage_lsc();
        for (i, pc) in pcs.iter().enumerate() {
            let b = BranchInfo::conditional(pc << 2);
            let outcome = outcomes[i % outcomes.len()];
            let (pred, mut f) = p.predict(&b);
            p.fetch_commit(&b, outcome, &mut f);
            p.execute(&b, outcome, &mut f);
            p.retire(&b, outcome, pred, f, UpdateScenario::RereadOnMispredict);
        }
        // Access accounting invariants.
        let s = p.stats();
        prop_assert_eq!(s.predict_reads, pcs.len() as u64);
        prop_assert!(s.retire_reads <= s.predict_reads);
    }

    #[test]
    fn scenario_b_counters_move_at_most_one_step(
        pc in 1u64..1 << 16,
        k in 2usize..8
    ) {
        // k retires from the SAME snapshot must be idempotent (one step).
        let mut p = baselines::Gshare::new(12);
        let b = BranchInfo::conditional(pc << 2);
        let (pred, f) = p.predict(&b);
        for _ in 0..k {
            p.retire(&b, true, pred, f, UpdateScenario::FetchOnly);
        }
        let (_, f2) = p.predict(&b);
        // Counter started at 1 (weakly NT), one stale step to 2.
        let _ = f2;
        let mut q = baselines::Gshare::new(12);
        let (qpred, qf) = q.predict(&b);
        q.retire(&b, true, qpred, qf, UpdateScenario::FetchOnly);
        let (p1, _) = p.predict(&b);
        let (q1, _) = q.predict(&b);
        prop_assert_eq!(p1, q1, "k stale retires must equal 1 stale retire");
    }

    #[test]
    fn suite_traces_have_declared_budgets(idx in 0usize..40) {
        let specs = workloads::suite::suite(workloads::suite::Scale::Tiny);
        let spec = &specs[idx];
        let t = spec.generate();
        prop_assert_eq!(t.conditional_count() as usize, spec.budget());
    }
}

#[test]
fn trace_events_have_sane_fields() {
    // Deterministic sweep (not proptest: generation is already seeded).
    let t: Trace = workloads::suite::by_name("SERVER01", workloads::suite::Scale::Tiny)
        .unwrap()
        .generate();
    for e in &t.events {
        let _: &TraceEvent = e;
        assert!(e.pc > 0);
        assert!(e.uops_before < 64);
        if !e.kind.is_conditional() {
            assert!(e.taken, "unconditional events are always taken");
        }
    }
}
