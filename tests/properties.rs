//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;
use simkit::counter::{SignedCounter, UnsignedCounter};
use simkit::history::{FoldedHistory, GlobalHistory, LocalHistories};
use simkit::{BranchInfo, Predictor, UpdateScenario};
use tage::{BaseChoice, ChooserChoice, ProviderSpec, SpecError, StageSpec, SystemSpec, TageBase};
use workloads::event::{Trace, TraceEvent};

/// Builds an arbitrary-but-valid [`SystemSpec`] from sampled raw values.
#[allow(clippy::too_many_arguments)]
fn arb_spec(
    base_sel: u8,
    tables: usize,
    hist: bool,
    h_l1: usize,
    h_span: usize,
    scale: i32,
    slot_sel: u8,
    chooser_sel: u8,
    stage_mask: u8,
    reverse_chain: bool,
    ium_pow: u32,
    lsc_2lht: bool,
    lsc_scale: i32,
    loop_pow: u32,
    loop_ways: usize,
    ilv: bool,
    reread: bool,
    label_sel: u8,
) -> SystemSpec {
    let base = match base_sel {
        0 => TageBase::Reference,
        1 => TageBase::LscCore,
        _ => TageBase::Balanced { tables, l1: h_l1, lmax: h_l1 + h_span },
    };
    let provider = ProviderSpec {
        base,
        history: hist.then_some((h_l1, h_l1 + h_span)),
        scale,
        base_slot: match slot_sel {
            0 => BaseChoice::Bimodal,
            1 => BaseChoice::TwoBit,
            _ => BaseChoice::Gshare,
        },
        chooser: match chooser_sel {
            0 => ChooserChoice::AltOnWeak,
            1 => ChooserChoice::AlwaysProvider,
            _ => ChooserChoice::Confidence,
        },
    };
    let mut stages = Vec::new();
    if stage_mask & 1 != 0 {
        stages.push(StageSpec::Ium { capacity: 1 << ium_pow });
    }
    if stage_mask & 2 != 0 {
        stages.push(StageSpec::Gsc);
    }
    if stage_mask & 4 != 0 {
        stages.push(StageSpec::Lsc { double_lht: lsc_2lht, scale: lsc_scale });
    }
    if stage_mask & 8 != 0 {
        stages.push(StageSpec::Loop { entries: loop_ways << loop_pow, ways: loop_ways });
    }
    if reverse_chain {
        // Chain order is free — novel orders must serialize too.
        stages.reverse();
    }
    let label = match label_sel {
        0 => None,
        1 => Some("X".to_string()),
        _ => Some("TAGE-LSC+like.v2".to_string()),
    };
    SystemSpec { provider, stages, interleaved: ilv, lsc_always_reread: reread, label }
}

proptest! {
    #[test]
    fn system_spec_round_trips_through_canonical_form(
        base_sel in 0u8..3,
        tables in 2usize..17,
        hist in any::<bool>(),
        h_l1 in 1usize..10,
        h_span in 1usize..2000,
        scale in -3i32..4,
        slot_sel in 0u8..3,
        chooser_sel in 0u8..3,
        stage_mask in 0u8..16,
        reverse_chain in any::<bool>(),
        ium_pow in 4u32..10,
        lsc_2lht in any::<bool>(),
        lsc_scale in -2i32..3,
        loop_pow in 2u32..8,
        loop_ways in 1usize..5,
        ilv in any::<bool>(),
        reread in any::<bool>(),
        label_sel in 0u8..3,
    ) {
        let spec = arb_spec(
            base_sel, tables, hist, h_l1, h_span, scale, slot_sel, chooser_sel,
            stage_mask, reverse_chain, ium_pow, lsc_2lht, lsc_scale, loop_pow,
            loop_ways, ilv, reread, label_sel,
        );
        prop_assert!(spec.validate().is_ok(), "generated spec must be valid: {spec:?}");
        // Serialized form round-trips structurally.
        let canonical = spec.to_string();
        let reparsed: SystemSpec = canonical.parse().unwrap();
        prop_assert_eq!(&spec, &reparsed, "'{}' did not round-trip", canonical);
        // Canonicalization is idempotent.
        prop_assert_eq!(canonical.clone(), reparsed.to_string());
        // And the built stack's per-component budget sums to the whole.
        let stack = spec.build().unwrap();
        let total: u64 = stack.budget().iter().map(|(_, b)| b).sum();
        prop_assert_eq!(total, stack.storage_bits());
        prop_assert_eq!(stack.stages().len(), spec.stages.len());
    }

    #[test]
    fn stack_assembly_rejects_ill_formed_chains(
        kind in 0u8..4,
        extra in 0u8..4,
        dup_at in 0usize..5,
    ) {
        let token = ["ium", "sc", "lsc", "loop"][kind as usize];
        // A stage in the provider position ("chooser before any provider").
        let err = format!("{token}+tage").parse::<SystemSpec>().unwrap_err();
        prop_assert!(
            matches!(&err, SpecError::StackMustStartWithProvider { found } if found == token),
            "got {err:?}"
        );
        // A duplicated stage kind, at any chain position.
        let stage = |k: u8| match k {
            0 => StageSpec::ium(),
            1 => StageSpec::Gsc,
            2 => StageSpec::lsc(),
            _ => StageSpec::loop_pred(),
        };
        let mut spec = SystemSpec::reference();
        spec.stages = vec![stage(kind), stage(extra)];
        spec.stages.insert(dup_at.min(spec.stages.len()), stage(kind));
        let err = spec.build().unwrap_err();
        prop_assert!(matches!(err, SpecError::DuplicateStage { .. }), "got {err:?}");
        // A second provider anywhere in the chain.
        let err = format!("tage+{token}+tage").parse::<SystemSpec>().unwrap_err();
        prop_assert_eq!(err, SpecError::DuplicateProvider);
    }

    #[test]
    fn provider_params_reject_ill_formed_combos(
        key_sel in 0u8..2,
        val_sel in 0u8..6,
        dup in any::<bool>(),
    ) {
        // Every (key, wrong-domain-or-bogus value) combination is a typed
        // error: base= only accepts base tokens, chooser= only chooser
        // tokens, and no key may repeat.
        let key = ["base", "chooser"][key_sel as usize];
        let wrong = match (key, val_sel) {
            // Values from the *other* production's domain.
            ("base", 0..=2) => ["altweak", "always", "conf"][val_sel as usize],
            ("chooser", 0..=2) => ["bimodal", "2bc", "gshare"][val_sel as usize],
            // Bogus and empty values.
            (_, 3) => "bogus",
            (_, 4) => "",
            // A stage token leaking into the provider group.
            _ => "ium",
        };
        let s = format!("tage({key}={wrong})");
        let err = s.parse::<SystemSpec>().unwrap_err();
        prop_assert!(
            matches!(&err, SpecError::BadProviderParam { .. }),
            "'{}' gave {:?}", s, err
        );
        if dup {
            let good = if key == "base" { "bimodal" } else { "altweak" };
            let s = format!("tage({key}={good},{key}={good})");
            let err = s.parse::<SystemSpec>().unwrap_err();
            prop_assert!(matches!(&err, SpecError::BadProviderParam { .. }), "got {err:?}");
        }
    }

    #[test]
    fn decomposed_default_provider_is_bit_identical_to_canonical(
        stage_mask in 0u8..16,
        reverse_chain in any::<bool>(),
        scale in -2i32..1,
        pcs in proptest::collection::vec(1u64..1 << 14, 50..300),
        outcomes in proptest::collection::vec(any::<bool>(), 300),
    ) {
        // A random spec with the provider-internal defaults written out
        // explicitly must canonicalize onto — and predict bit-for-bit
        // like — the undecorated spec: the decomposed provider path *is*
        // the fused path when the default sub-stages are selected.
        let mut spec = arb_spec(
            0, 4, false, 3, 100, scale, 0, 0, stage_mask, reverse_chain,
            6, false, 0, 4, 2, false, false, 0,
        );
        spec.provider.base_slot = BaseChoice::Bimodal;
        spec.provider.chooser = ChooserChoice::AltOnWeak;
        let canonical = spec.to_string();
        prop_assert!(!canonical.contains('('), "defaults must canonicalize away: {canonical}");
        let explicit: SystemSpec = canonical
            .replacen("tage", "tage(base=bimodal,chooser=altweak)", 1)
            .parse()
            .unwrap();
        prop_assert_eq!(&spec, &explicit);
        let mut a = spec.build().unwrap();
        let mut b = explicit.build().unwrap();
        for (i, pc) in pcs.iter().enumerate() {
            let br = BranchInfo::conditional(pc << 2);
            let outcome = outcomes[i % outcomes.len()];
            let (pa, mut fa) = a.predict(&br);
            let (pb, mut fb) = b.predict(&br);
            prop_assert_eq!(pa, pb, "prediction diverged at branch {}", i);
            a.fetch_commit(&br, outcome, &mut fa);
            b.fetch_commit(&br, outcome, &mut fb);
            a.execute(&br, outcome, &mut fa);
            b.execute(&br, outcome, &mut fb);
            a.retire(&br, outcome, pa, fa, UpdateScenario::RereadOnMispredict);
            b.retire(&br, outcome, pb, fb, UpdateScenario::RereadOnMispredict);
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn signed_counter_never_leaves_range(bits in 1u8..=8, steps in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SignedCounter::new(bits);
        for s in steps {
            c.update(s);
            prop_assert!(c.get() >= c.min() && c.get() <= c.max());
            prop_assert_eq!(c.is_taken(), c.get() >= 0);
        }
    }

    #[test]
    fn unsigned_counter_never_leaves_range(bits in 1u8..=8, steps in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = UnsignedCounter::new(bits);
        for s in steps {
            c.update(s);
            prop_assert!(c.get() <= c.max());
        }
    }

    #[test]
    fn counter_monotone_in_taken_count(bits in 2u8..=6, n in 0usize..40) {
        // More taken updates from the same start never yield a smaller value.
        let run = |takens: usize, total: usize| {
            let mut c = SignedCounter::new(bits);
            for i in 0..total {
                c.update(i < takens);
            }
            c.get()
        };
        let total = 40;
        prop_assert!(run(n, total) <= run((n + 1).min(total), total) + 2);
    }

    #[test]
    fn folded_history_matches_naive_recompute(
        lengths in proptest::collection::vec(1usize..300, 1..4),
        width in 5u32..14,
        bits in proptest::collection::vec(any::<bool>(), 1..600)
    ) {
        let mut gh = GlobalHistory::new();
        let mut folds: Vec<FoldedHistory> =
            lengths.iter().map(|&l| FoldedHistory::new(l, width)).collect();
        for b in bits {
            gh.push(b);
            for f in &mut folds {
                f.update(&gh);
                prop_assert_eq!(f.value(), f.recompute(&gh));
            }
        }
    }

    #[test]
    fn local_histories_only_keep_width_bits(width in 1u32..40, updates in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..200)) {
        let mut lh = LocalHistories::new(32, width);
        for (pc, taken) in updates {
            lh.update(pc, taken);
            prop_assert!(lh.history(pc) <= simkit::bits::mask(width));
        }
    }

    #[test]
    fn interleaved_index_is_a_bijection_per_bank(size_bits in 2u32..16, bank in 0u8..4) {
        let n = 1usize << size_bits;
        let mut seen = vec![false; n];
        let inner = n / 4;
        for idx in 0..inner {
            let m = memarray::interleaved_index(idx, bank, size_bits);
            prop_assert!(m < n);
            prop_assert!(!seen[m], "collision at {m}");
            seen[m] = true;
        }
    }

    #[test]
    fn bank_selector_never_repeats_within_three(pcs in proptest::collection::vec(any::<u64>(), 3..300)) {
        let mut sel = memarray::BankSelector::new();
        let mut last: Vec<u8> = Vec::new();
        for pc in pcs {
            let b = sel.bank(pc);
            for &p in last.iter().rev().take(2) {
                prop_assert_ne!(b, p);
            }
            last.push(b);
        }
    }

    #[test]
    fn trace_codec_round_trips(seed in any::<u64>(), n in 1usize..200) {
        let spec = workloads::suite::by_name("INT05", workloads::suite::Scale::Tiny).unwrap();
        let mut trace = spec.generate();
        trace.events.truncate(n);
        let _ = seed;
        let mut buf = Vec::new();
        workloads::io::write_trace(&mut buf, &trace).unwrap();
        let back = workloads::io::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn trace_cache_round_trips_on_disk(n in 1usize..400) {
        // write_trace/read_trace through the on-disk cache layer: store
        // then load must reproduce the trace bit-for-bit, keyed by name.
        use workloads::suite::Scale;
        let dir = std::env::temp_dir()
            .join(format!("tage-props-cache-{}", std::process::id()));
        let cache = workloads::TraceCache::new(&dir).unwrap();
        let spec = workloads::suite::by_name("MM02", Scale::Tiny).unwrap();
        let mut trace = spec.generate();
        trace.events.truncate(n);
        cache.store(&trace, Scale::Tiny, spec.fingerprint()).unwrap();
        let back = cache.load("MM02", Scale::Tiny, spec.fingerprint()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn program_stream_prefix_matches_generate(budget in 1usize..900) {
        // Streaming any budget yields exactly the materialized events.
        let spec = workloads::suite::by_name("WS07", workloads::suite::Scale::Tiny).unwrap();
        let program_stream = spec.stream();
        let full = spec.generate();
        let streamed: Vec<workloads::TraceEvent> =
            program_stream.take(budget).collect();
        prop_assert_eq!(&streamed[..], &full.events[..streamed.len()]);
    }

    #[test]
    fn tage_prediction_lifecycle_never_panics(
        pcs in proptest::collection::vec(1u64..1 << 20, 1..400),
        outcomes in proptest::collection::vec(any::<bool>(), 400)
    ) {
        let mut p = tage::TageSystem::tage_lsc();
        for (i, pc) in pcs.iter().enumerate() {
            let b = BranchInfo::conditional(pc << 2);
            let outcome = outcomes[i % outcomes.len()];
            let (pred, mut f) = p.predict(&b);
            p.fetch_commit(&b, outcome, &mut f);
            p.execute(&b, outcome, &mut f);
            p.retire(&b, outcome, pred, f, UpdateScenario::RereadOnMispredict);
        }
        // Access accounting invariants.
        let s = p.stats();
        prop_assert_eq!(s.predict_reads, pcs.len() as u64);
        prop_assert!(s.retire_reads <= s.predict_reads);
    }

    #[test]
    fn scenario_b_counters_move_at_most_one_step(
        pc in 1u64..1 << 16,
        k in 2usize..8
    ) {
        // k retires from the SAME snapshot must be idempotent (one step).
        let mut p = baselines::Gshare::new(12);
        let b = BranchInfo::conditional(pc << 2);
        let (pred, f) = p.predict(&b);
        for _ in 0..k {
            p.retire(&b, true, pred, f, UpdateScenario::FetchOnly);
        }
        let (_, f2) = p.predict(&b);
        // Counter started at 1 (weakly NT), one stale step to 2.
        let _ = f2;
        let mut q = baselines::Gshare::new(12);
        let (qpred, qf) = q.predict(&b);
        q.retire(&b, true, qpred, qf, UpdateScenario::FetchOnly);
        let (p1, _) = p.predict(&b);
        let (q1, _) = q.predict(&b);
        prop_assert_eq!(p1, q1, "k stale retires must equal 1 stale retire");
    }

    #[test]
    fn suite_traces_have_declared_budgets(idx in 0usize..40) {
        let specs = workloads::suite::suite(workloads::suite::Scale::Tiny);
        let spec = &specs[idx];
        let t = spec.generate();
        prop_assert_eq!(t.conditional_count() as usize, spec.budget());
    }
}

#[test]
fn trace_events_have_sane_fields() {
    // Deterministic sweep (not proptest: generation is already seeded).
    let t: Trace = workloads::suite::by_name("SERVER01", workloads::suite::Scale::Tiny)
        .unwrap()
        .generate();
    for e in &t.events {
        let _: &TraceEvent = e;
        assert!(e.pc > 0);
        assert!(e.uops_before < 64);
        if !e.kind.is_conditional() {
            assert!(e.taken, "unconditional events are always taken");
        }
    }
}
