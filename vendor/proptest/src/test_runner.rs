//! Deterministic RNG backing the stand-in runner.

/// SplitMix64 stream seeded from an FNV-1a hash of the test name, so every
/// property test replays the identical case sequence on every run.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from `name` (typically `stringify!(test_fn)`).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "empty sampling range");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % bound
    }
}
