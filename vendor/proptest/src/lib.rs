//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! The build container has no network access to crates.io, so this crate
//! reimplements the subset of the proptest surface the workspace tests use:
//!
//! * the `proptest! { #[test] fn name(arg in strategy, ...) { .. } }` macro,
//! * `any::<T>()` for the primitive types, integer-range strategies
//!   (`1u8..=8`, `0usize..200`, ...), tuple strategies, and
//!   `proptest::collection::vec(strategy, len_or_range)`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs [`NUM_CASES`] cases drawn from a SplitMix64 stream seeded
//! from the test's name, so failures are bit-reproducible across runs and
//! machines. Swap the path dependency for crates.io `proptest = "1"` when
//! registry access is available — the test sources need no change.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Cases drawn per property (real proptest defaults to 256; this runner has
/// no shrinking so it keeps runs short instead).
pub const NUM_CASES: usize = 64;

/// Expands each `fn name(arg in strategy, ...) { body }` item into a normal
/// `#[test]` that samples every strategy [`NUM_CASES`] times from a
/// name-seeded deterministic RNG and runs the body on each case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::NUM_CASES {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` without shrinking reduces to a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` without shrinking reduces to a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` without shrinking reduces to a plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
