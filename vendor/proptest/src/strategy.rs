//! The `Strategy` trait and the primitive strategies the workspace uses.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A source of random values of one type. The stand-in keeps only the
/// sampling half of proptest's `Strategy` — there is no value tree and no
/// shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The unconstrained strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary_and_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Wrapping arithmetic keeps the span math correct for
                // signed ranges (negative starts) too.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span =
                    (*self.end() as u128).wrapping_sub(*self.start() as u128).wrapping_add(1);
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_arbitrary_and_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}
