//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Anything usable as the length argument of [`vec`]: a fixed `usize` or a
/// (half-open / inclusive) `usize` range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S, L> {
    elem: S,
    len: L,
}

/// `Vec` strategy: each case draws a length from `len`, then that many
/// elements from `elem`.
pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { elem, len }
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}
