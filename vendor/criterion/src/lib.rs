//! Offline stand-in for [`criterion`](https://bheisler.github.io/criterion.rs/book/).
//!
//! The build container has no network access to crates.io, so this crate
//! reimplements the subset of the criterion surface the `bench` crate uses:
//! `Criterion`, `benchmark_group`, `Bencher::iter`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical sampling it times a small fixed number of iterations and
//! prints `ns/iter` (plus elements/s when a throughput is set). Under
//! `cargo test` (cargo passes `--test` to `harness = false` bench targets)
//! every benchmark body runs exactly once as a smoke test, matching real
//! criterion's test-mode behaviour. Swap the path dependency for crates.io
//! `criterion = "0.5"` when registry access is available.

use std::time::{Duration, Instant};

/// Measurement-loop driver passed to `bench_function` closures.
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, storing iteration count and total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        std::hint::black_box(f()); // warm-up
        let n: u64 = 3;
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }
}

/// Units for per-iteration throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes harness = false bench targets with `--test` under
        // `cargo test` and `--bench` under `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.test_mode, id, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for criterion compatibility; the stand-in's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; the stand-in warms up with one run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; the stand-in's iteration count is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion.test_mode, &full, self.throughput, f);
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, id: &str, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { test_mode, iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok (bench smoke)");
        return;
    }
    let iters = b.iters.max(1);
    let per_iter = b.elapsed.as_nanos() / u128::from(iters);
    match tp {
        Some(Throughput::Elements(n)) if per_iter > 0 => {
            let rate = n as f64 * 1e9 / per_iter as f64;
            println!("{id:<40} {per_iter:>12} ns/iter  {rate:>12.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0 => {
            let rate = n as f64 * 1e9 / per_iter as f64;
            println!("{id:<40} {per_iter:>12} ns/iter  {rate:>12.0} B/s");
        }
        _ => println!("{id:<40} {per_iter:>12} ns/iter"),
    }
    append_json_record(id, per_iter, tp);
}

/// When `BENCH_JSON=<path>` is set, every measurement is also appended to
/// `<path>` as one JSON object per line (`{"id", "ns_per_iter",
/// "throughput_per_s"?}`): machine-readable output for CI artifacts that
/// track the perf trajectory over time. Real criterion writes its own
/// `target/criterion` JSON; this is the stand-in's minimal equivalent.
fn append_json_record(id: &str, per_iter: u128, tp: Option<Throughput>) {
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    let rate = match tp {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if per_iter > 0 => {
            format!(",\"throughput_per_s\":{:.0}", n as f64 * 1e9 / per_iter as f64)
        }
        _ => String::new(),
    };
    let line = format!("{{\"id\":\"{id}\",\"ns_per_iter\":{per_iter}{rate}}}\n");
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
}

/// Declares a function running each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
