//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! `vendor/serde` blanket-implements its marker traits, so the derives have
//! nothing to emit — they exist so `#[derive(Serialize, Deserialize)]`
//! attributes throughout the workspace parse exactly as they would against
//! real serde.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
