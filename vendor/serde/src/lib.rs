//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors an API-compatible *subset*: the `Serialize` / `Deserialize` trait
//! names and the matching no-op derive macros. Nothing in this repository
//! serializes through serde (traces use the custom codec in `workloads::io`);
//! the derives only mark types as serializable for downstream consumers.
//! Swap this path dependency for the real crates.io `serde = "1"` when the
//! build environment gains registry access — no source change is needed.

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented: with the
/// no-op derive every type is trivially serializable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`. The lifetime parameter
/// is kept so `T: Deserialize<'static>`-style bounds written against real
/// serde still compile.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
