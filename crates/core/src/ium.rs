//! The Immediate Update Mimicker (§5.1).
//!
//! On a real processor the predictor tables are only updated at retire, so
//! a hot entry can supply several stale predictions in a row. The IUM
//! tracks, for every in-flight branch, *which predictor entry* provided its
//! prediction. When a new prediction comes from the same (component, entry)
//! as an **already executed but not yet retired** branch, the IUM answers
//! with that branch's actual outcome instead of the stale TAGE prediction —
//! mimicking an immediately updated table.
//!
//! Implemented as the paper describes: a small fully-associative structure
//! with one entry per in-flight branch, managed as a circular buffer (the
//! same repair discipline as the global history: mispredictions reinitialize
//! the head, which trace-driven simulation models implicitly).

/// One in-flight record: P/E state, component and entry (Figure 4).
#[derive(Clone, Copy, Debug, Default)]
struct IumEntry {
    comp: u8,
    index: u32,
    executed: bool,
    outcome: bool,
    live: bool,
}

/// The Immediate Update Mimicker.
#[derive(Clone, Debug)]
pub struct Ium {
    ring: Vec<IumEntry>,
    head_seq: u64,
    tail_seq: u64,
    overrides: u64,
}

impl Ium {
    /// An IUM with capacity for `capacity` in-flight branches.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two(), "IUM capacity must be a power of two");
        Self { ring: vec![IumEntry::default(); capacity], head_seq: 0, tail_seq: 0, overrides: 0 }
    }

    #[inline]
    fn slot(&self, seq: u64) -> usize {
        (seq as usize) & (self.ring.len() - 1)
    }

    /// Searches the in-flight window, youngest first, for an **executed**
    /// branch whose prediction came from the same (component, index).
    /// Returns that branch's outcome — the corrected prediction.
    pub fn lookup(&mut self, comp: u8, index: u32) -> Option<bool> {
        let mut seq = self.head_seq;
        while seq > self.tail_seq {
            seq -= 1;
            let e = &self.ring[self.slot(seq)];
            if e.live && e.executed && e.comp == comp && e.index == index {
                self.overrides += 1;
                return Some(e.outcome);
            }
        }
        None
    }

    /// Collects the outcomes of every **executed, not yet retired**
    /// occurrence of entry (component, index), oldest first. These are
    /// the updates an immediately updated table would already have
    /// absorbed — the caller replays them onto the stale counter value to
    /// *mimic* the immediate update (§5.1).
    pub fn executed_outcomes(&self, comp: u8, index: u32) -> ([bool; 64], usize) {
        let mut out = [false; 64];
        let mut n = 0;
        let mut seq = self.tail_seq;
        while seq < self.head_seq && n < 64 {
            let e = &self.ring[self.slot(seq)];
            if e.live && e.executed && e.comp == comp && e.index == index {
                out[n] = e.outcome;
                n += 1;
            }
            seq += 1;
        }
        (out, n)
    }

    /// Notes that a mimicked prediction differed from the stale one.
    pub fn note_override(&mut self) {
        self.overrides += 1;
    }

    /// Records a fetched branch's provider entry. Returns the sequence
    /// handle used by [`Ium::mark_executed`].
    pub fn push(&mut self, comp: u8, index: u32) -> u64 {
        if self.head_seq - self.tail_seq >= self.ring.len() as u64 {
            // The window outran the buffer: retire the oldest record.
            self.retire_oldest();
        }
        let seq = self.head_seq;
        let slot = self.slot(seq);
        self.ring[slot] = IumEntry { comp, index, executed: false, outcome: false, live: true };
        self.head_seq += 1;
        seq
    }

    /// Marks an in-flight branch executed with its resolved outcome.
    pub fn mark_executed(&mut self, seq: u64, outcome: bool) {
        if seq >= self.tail_seq && seq < self.head_seq {
            let slot = self.slot(seq);
            if self.ring[slot].live {
                self.ring[slot].executed = true;
                self.ring[slot].outcome = outcome;
            }
        }
    }

    /// Retires the oldest in-flight branch (records leave the window in
    /// program order).
    pub fn retire_oldest(&mut self) {
        if self.tail_seq < self.head_seq {
            let slot = self.slot(self.tail_seq);
            self.ring[slot].live = false;
            self.tail_seq += 1;
        }
    }

    /// Number of predictions the IUM has overridden so far.
    pub fn override_count(&self) -> u64 {
        self.overrides
    }

    /// Live in-flight records.
    pub fn len(&self) -> usize {
        (self.head_seq - self.tail_seq) as usize
    }

    /// True when no branch is in flight.
    pub fn is_empty(&self) -> bool {
        self.head_seq == self.tail_seq
    }

    /// Storage estimate in bits: component (4) + index (24) + P/E (1) +
    /// outcome (1) per in-flight entry.
    pub fn storage_bits(&self) -> u64 {
        self.ring.len() as u64 * 30
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executed_entry_overrides() {
        let mut ium = Ium::new(8);
        let seq = ium.push(3, 0x55);
        assert_eq!(ium.lookup(3, 0x55), None, "not executed yet");
        ium.mark_executed(seq, true);
        assert_eq!(ium.lookup(3, 0x55), Some(true));
        assert_eq!(ium.override_count(), 1);
    }

    #[test]
    fn youngest_match_wins() {
        let mut ium = Ium::new(8);
        let a = ium.push(1, 9);
        let b = ium.push(1, 9);
        ium.mark_executed(a, false);
        ium.mark_executed(b, true);
        assert_eq!(ium.lookup(1, 9), Some(true), "youngest executed occurrence wins");
    }

    #[test]
    fn retired_entries_stop_matching() {
        let mut ium = Ium::new(8);
        let seq = ium.push(2, 7);
        ium.mark_executed(seq, true);
        ium.retire_oldest();
        assert_eq!(ium.lookup(2, 7), None);
        assert!(ium.is_empty());
    }

    #[test]
    fn different_entries_do_not_match() {
        let mut ium = Ium::new(8);
        let seq = ium.push(2, 7);
        ium.mark_executed(seq, true);
        assert_eq!(ium.lookup(2, 8), None);
        assert_eq!(ium.lookup(3, 7), None);
    }

    #[test]
    fn overflow_retires_oldest() {
        let mut ium = Ium::new(4);
        let seqs: Vec<u64> = (0..6).map(|i| ium.push(0, i)).collect();
        assert_eq!(ium.len(), 4);
        // The two oldest were force-retired.
        ium.mark_executed(seqs[0], true);
        assert_eq!(ium.lookup(0, 0), None);
    }

    #[test]
    fn storage_is_small() {
        assert!(Ium::new(64).storage_bits() < 4096);
    }
}
