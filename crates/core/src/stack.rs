//! The prediction stack: TAGE plus an *ordered chain* of side-predictor
//! stages (§5–§6), assembled at runtime.
//!
//! The paper's predictors are compositions: ISL-TAGE is TAGE with the
//! IUM, the loop predictor and the global Statistical Corrector bolted on
//! one at a time (§5); TAGE-LSC swaps the last two for the local
//! corrector (§6). [`PredictorStack`] models exactly that: one [`Tage`]
//! provider — itself a composition of base/tagged-bank/chooser
//! sub-stages (see [`crate::provider::ProviderStack`]) — followed by a
//! chain of [`SideStage`]s evaluated **in order** at prediction time:
//!
//! ```text
//! Tage ──pred──▶ [IUM] ──▶ [SC] ──▶ [LSC] ──▶ [loop] ──▶ final
//!                filter     revert    revert     override
//! ```
//!
//! Each stage receives the chained prediction of everything before it and
//! may pass it through, revert it (the correctors), or override it (the
//! loop predictor, on saturated confidence). The canonical paper order is
//! IUM → SC → LSC → loop — the loop override sits on top of the
//! correctors, as in Figures 6–7 — but the chain executes whatever order
//! a [`SystemSpec`](crate::spec::SystemSpec) declares, so compositions
//! the paper never measured (a corrector judging the loop output, say)
//! are one spec string away.
//!
//! Stage semantics that survive reordering:
//!
//! * the IUM filters the *provider* prediction (it replays in-flight
//!   outcomes onto the provider entry's stale counter), so the chain's
//!   "main prediction" — the loop predictor's allocation baseline — is
//!   the value after the IUM stage (after the provider when no IUM is
//!   present);
//! * each corrector judges the prediction entering *its* stage;
//! * the loop predictor's usefulness credit compares against the
//!   prediction entering *its* stage.
//!
//! For the canonical order this reproduces the monolithic pre-stack
//! `TageSystem` bit for bit (pinned by the golden-table tests in the
//! harness crate).

use crate::config::TageConfig;
use crate::corrector::{CorrectorFlight, Gsc, Lsc};
use crate::ium::Ium;
use crate::loop_pred::{LoopLookup, LoopPredictor};
use crate::tage::{Tage, TageFlight};
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;

/// Default in-flight capacity for the IUM (matches the pipeline window).
pub const DEFAULT_IUM_CAPACITY: usize = 64;

/// Maximum side stages in a stack (one of each [`StageKind`]).
pub const MAX_STAGES: usize = 4;

/// The side-stage kinds, in canonical chain order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// Immediate Update Mimicker (§5.1) — filters the provider prediction.
    Ium,
    /// Global Statistical Corrector (§5.3) — reverts unlikely predictions.
    Gsc,
    /// Local Statistical Corrector (§6) — same, with per-branch history.
    Lsc,
    /// Loop predictor (§5.2) — overrides on saturated confidence.
    Loop,
}

impl StageKind {
    /// The spec-grammar token (also the budget-table row name).
    pub fn token(self) -> &'static str {
        match self {
            StageKind::Ium => "ium",
            StageKind::Gsc => "sc",
            StageKind::Lsc => "lsc",
            StageKind::Loop => "loop",
        }
    }
}

/// One instantiated side-predictor stage.
#[derive(Clone, Debug)]
pub enum SideStage {
    /// See [`StageKind::Ium`].
    Ium(Ium),
    /// See [`StageKind::Gsc`].
    Gsc(Gsc),
    /// See [`StageKind::Lsc`].
    Lsc(Lsc),
    /// See [`StageKind::Loop`].
    Loop(LoopPredictor),
}

impl SideStage {
    /// This stage's kind.
    pub fn kind(&self) -> StageKind {
        match self {
            SideStage::Ium(_) => StageKind::Ium,
            SideStage::Gsc(_) => StageKind::Gsc,
            SideStage::Lsc(_) => StageKind::Lsc,
            SideStage::Loop(_) => StageKind::Loop,
        }
    }

    /// Storage of this stage in bits.
    pub fn storage_bits(&self) -> u64 {
        match self {
            SideStage::Ium(i) => i.storage_bits(),
            SideStage::Gsc(g) => g.storage_bits(),
            SideStage::Lsc(l) => l.storage_bits(),
            SideStage::Loop(lp) => lp.storage_bits(),
        }
    }
}

/// Per-stage in-flight snapshot, recorded in chain order.
#[derive(Clone, Copy, Debug, Default)]
pub enum StageFlight {
    /// Slot beyond the stack's stage count.
    #[default]
    None,
    /// IUM: the in-flight sequence handle and the override, if any.
    Ium {
        /// Sequence handle from [`Ium::push`] (filled at fetch-commit).
        seq: u64,
        /// The mimicked direction, when it overrode the chained prediction.
        overrode: Option<bool>,
    },
    /// Global corrector read.
    Gsc(CorrectorFlight),
    /// Local corrector read.
    Lsc(CorrectorFlight),
    /// Loop predictor lookup.
    Loop {
        /// Lookup result (a hit, confident or not), if any.
        hit: Option<LoopLookup>,
        /// Whether the loop prediction was used (confident hit).
        used: bool,
        /// The chained prediction entering the loop stage.
        pre_pred: bool,
    },
}

/// In-flight snapshot for [`PredictorStack`]: the provider read plus one
/// slot per side stage.
#[derive(Clone, Copy, Debug)]
pub struct StackFlight {
    /// The TAGE provider snapshot.
    pub tage: TageFlight,
    /// Per-stage snapshots, indexed like the stack's stage chain.
    stages: [StageFlight; MAX_STAGES],
    /// The "main" prediction: after the provider and the IUM stage — the
    /// loop predictor's allocation baseline.
    pub main_pred: bool,
    /// The final prediction of the whole stack.
    pub final_pred: bool,
}

impl StackFlight {
    /// The IUM's corrected prediction, when it overrode the chain.
    pub fn ium_override(&self) -> Option<bool> {
        self.stages.iter().find_map(|s| match s {
            StageFlight::Ium { overrode, .. } => *overrode,
            _ => None,
        })
    }

    /// Whether the loop predictor's prediction was used.
    pub fn loop_used(&self) -> bool {
        self.stages
            .iter()
            .any(|s| matches!(s, StageFlight::Loop { used: true, .. }))
    }
}

/// A TAGE provider composed with an ordered chain of side stages.
///
/// Assemble one from a [`SystemSpec`](crate::spec::SystemSpec) (the
/// declarative route), from the [named presets](Self::isl_tage), or from
/// the [`with_ium`](Self::with_ium)-style builders (which insert at the
/// canonical chain position).
#[derive(Clone, Debug)]
pub struct PredictorStack {
    tage: Tage,
    stages: Vec<SideStage>,
    /// §7.2 knob: when set, the LSC tables are always updated from a
    /// retire-time re-read even if the TAGE components run scenario
    /// \[B\]/\[C\] ("optimization applied only to the TAGE components").
    lsc_always_reread: bool,
    side_stats: AccessStats,
    label: String,
}

impl PredictorStack {
    /// A bare TAGE stack (no side stages).
    pub fn new(cfg: TageConfig) -> Self {
        Self {
            tage: Tage::new(cfg),
            stages: Vec::new(),
            lsc_always_reread: false,
            side_stats: AccessStats::default(),
            label: "TAGE".to_string(),
        }
    }

    /// Assembles a stack from an already-validated chain. The stages run
    /// in the given order; callers wanting the paper's semantics list
    /// them in canonical order (IUM, SC, LSC, loop).
    pub(crate) fn from_parts(tage: Tage, stages: Vec<SideStage>) -> Self {
        debug_assert!(stages.len() <= MAX_STAGES);
        let mut stack = Self {
            tage,
            stages,
            lsc_always_reread: false,
            side_stats: AccessStats::default(),
            label: String::new(),
        };
        stack.relabel();
        stack
    }

    /// Switches every component (TAGE tables and any LSC tables) to
    /// 4-way bank-interleaved single-ported arrays (§4.3, §7.1).
    pub fn interleaved(mut self) -> Self {
        self.tage.enable_interleaving();
        for stage in &mut self.stages {
            if let SideStage::Lsc(lsc) = stage {
                lsc.enable_interleaving();
            }
        }
        self
    }

    /// §7.2: keep re-reading the *local* corrector at retire while the
    /// TAGE components skip the retire read on correct predictions.
    pub fn lsc_always_reread(mut self) -> Self {
        self.lsc_always_reread = true;
        self
    }

    /// Inserts (or replaces) a stage at its canonical chain position.
    fn insert_canonical(&mut self, stage: SideStage) {
        let kind = stage.kind();
        if let Some(slot) = self.stages.iter_mut().find(|s| s.kind() == kind) {
            *slot = stage;
        } else {
            let at = self.stages.iter().position(|s| s.kind() > kind).unwrap_or(self.stages.len());
            self.stages.insert(at, stage);
        }
        self.relabel();
    }

    /// Adds an Immediate Update Mimicker (§5.1) at the canonical position.
    pub fn with_ium(mut self, capacity: usize) -> Self {
        self.insert_canonical(SideStage::Ium(Ium::new(capacity)));
        self
    }

    /// Adds a loop predictor (§5.2) at the canonical position.
    pub fn with_loop(mut self, lp: LoopPredictor) -> Self {
        self.insert_canonical(SideStage::Loop(lp));
        self
    }

    /// Adds a global-history statistical corrector (§5.3) at the
    /// canonical position.
    pub fn with_gsc(mut self, gsc: Gsc) -> Self {
        self.insert_canonical(SideStage::Gsc(gsc));
        self
    }

    /// Adds a local-history statistical corrector (§6) at the canonical
    /// position.
    pub fn with_lsc(mut self, lsc: Lsc) -> Self {
        self.insert_canonical(SideStage::Lsc(lsc));
        self
    }

    fn relabel(&mut self) {
        // Non-default provider sub-stages decorate the label with their
        // spec production (empty for the paper's provider).
        let mut label = format!("TAGE{}", self.tage.provider().decoration());
        for kind in [StageKind::Ium, StageKind::Loop, StageKind::Gsc, StageKind::Lsc] {
            if self.stage(kind).is_some() {
                label.push_str(match kind {
                    StageKind::Ium => "+IUM",
                    StageKind::Loop => "+LOOP",
                    StageKind::Gsc => "+SC",
                    StageKind::Lsc => "+LSC",
                });
            }
        }
        self.label = label;
    }

    /// Overrides the display label (used by the named presets).
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    fn stage(&self, kind: StageKind) -> Option<&SideStage> {
        self.stages.iter().find(|s| s.kind() == kind)
    }

    /// The inner TAGE provider (diagnostics).
    pub fn tage(&self) -> &Tage {
        &self.tage
    }

    /// The side-stage chain, in evaluation order.
    pub fn stages(&self) -> &[SideStage] {
        &self.stages
    }

    /// Per-component storage budget, in chain order: the three provider
    /// sub-stage rows (`tage.base`, `tage.tagged`, `tage.chooser` — see
    /// [`crate::provider::ProviderStack::budget`]) followed by one row
    /// per side stage. Sums to [`Predictor::storage_bits`].
    pub fn budget(&self) -> Vec<(&'static str, u64)> {
        let mut rows = self.tage.provider().budget().to_vec();
        rows.extend(self.stages.iter().map(|s| (s.kind().token(), s.storage_bits())));
        rows
    }

    /// Debug view of the loop predictor entry for `pc` (diagnostics).
    pub fn loop_debug(&self, pc: u64) -> Option<(u16, u16, u16, u8, u8)> {
        self.stages.iter().find_map(|s| match s {
            SideStage::Loop(lp) => lp.debug_entry(pc),
            _ => None,
        })
    }

    /// IUM override count so far, if an IUM is attached.
    pub fn ium_overrides(&self) -> Option<u64> {
        self.stage(StageKind::Ium).map(|s| match s {
            SideStage::Ium(i) => i.override_count(),
            // INVARIANT: stage(kind) returns the stage of that kind.
            _ => unreachable!(),
        })
    }

    /// Revert counts of the attached correctors (global, local).
    pub fn revert_counts(&self) -> (Option<u64>, Option<u64>) {
        let get = |kind| {
            self.stage(kind).map(|s| match s {
                SideStage::Gsc(g) => g.revert_count(),
                SideStage::Lsc(l) => l.revert_count(),
                // INVARIANT: only queried with corrector kinds.
                _ => unreachable!(),
            })
        };
        (get(StageKind::Gsc), get(StageKind::Lsc))
    }
}

impl Predictor for PredictorStack {
    type Flight = StackFlight;

    fn name(&self) -> String {
        format!("{}-{}Kbit", self.label, (self.storage_bits() + 512) / 1024)
    }

    fn storage_bits(&self) -> u64 {
        self.tage.storage_bits() + self.stages.iter().map(SideStage::storage_bits).sum::<u64>()
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, StackFlight) {
        let (tage_pred, tf) = self.tage.predict(b);
        let ctr_bits = self.tage.config().ctr_bits;
        let centered = tf.provider_centered();
        let mut pred = tage_pred;
        let mut main_pred = tage_pred;
        let mut flights = [StageFlight::None; MAX_STAGES];

        for (i, stage) in self.stages.iter_mut().enumerate() {
            flights[i] = match stage {
                // IUM: mimic the immediate update. Replay the outcomes of
                // every executed-but-not-retired occurrence of the provider
                // entry onto the stale counter value; if the mimicked
                // counter predicts differently, use the mimicked direction
                // (§5.1).
                SideStage::Ium(ium) => {
                    let (comp, idx) = tf.provider_entry();
                    let (outcomes, n) = ium.executed_outcomes(comp, idx);
                    let mut overrode = None;
                    if n > 0 {
                        let mimicked = match tf.provider {
                            Some(p) => {
                                let mut c = simkit::SignedCounter::with_value(
                                    ctr_bits,
                                    tf.ctrs[p as usize],
                                );
                                for &o in &outcomes[..n] {
                                    c.update(o);
                                }
                                c.is_taken()
                            }
                            None => {
                                // Bimodal provider: replay onto the 2-bit state.
                                let mut c = (tf.base.pred as i16) * 2 + tf.base.hyst as i16;
                                for &o in &outcomes[..n] {
                                    c = if o { (c + 1).min(3) } else { (c - 1).max(0) };
                                }
                                c >= 2
                            }
                        };
                        if mimicked != pred {
                            ium.note_override();
                            overrode = Some(mimicked);
                            pred = mimicked;
                        }
                    }
                    main_pred = pred;
                    StageFlight::Ium { seq: 0, overrode }
                }
                SideStage::Gsc(g) => {
                    let f = g.predict(b.pc, pred, centered);
                    if f.revert {
                        pred = f.sc_pred;
                    }
                    StageFlight::Gsc(f)
                }
                SideStage::Lsc(l) => {
                    let f = l.predict(b.pc, pred, centered);
                    if f.revert {
                        pred = f.sc_pred;
                    }
                    StageFlight::Lsc(f)
                }
                SideStage::Loop(lp) => {
                    let hit = lp.lookup(b.pc);
                    let pre_pred = pred;
                    let mut used = false;
                    if let Some(lh) = hit {
                        if lh.confident {
                            pred = lh.pred;
                            used = true;
                        }
                    }
                    StageFlight::Loop { hit, used, pre_pred }
                }
            };
        }

        let flight = StackFlight { tage: tf, stages: flights, main_pred, final_pred: pred };
        (pred, flight)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, flight: &mut StackFlight) {
        self.tage.fetch_commit(b, outcome, &mut flight.tage);
        for (i, stage) in self.stages.iter_mut().enumerate() {
            match stage {
                SideStage::Ium(ium) => {
                    let (comp, idx) = flight.tage.provider_entry();
                    if let StageFlight::Ium { seq, .. } = &mut flight.stages[i] {
                        *seq = ium.push(comp, idx);
                    }
                }
                SideStage::Gsc(g) => g.on_branch(outcome),
                SideStage::Lsc(l) => l.spec_update(b.pc, outcome),
                SideStage::Loop(lp) => lp.spec_update(b.pc, outcome),
            }
        }
    }

    fn execute(&mut self, _b: &BranchInfo, outcome: bool, flight: &mut StackFlight) {
        for (i, stage) in self.stages.iter_mut().enumerate() {
            if let SideStage::Ium(ium) = stage {
                if let StageFlight::Ium { seq, .. } = flight.stages[i] {
                    ium.mark_executed(seq, outcome);
                }
            }
        }
    }

    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: StackFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        let reread = scenario.reread_at_retire(mispredicted);

        for (i, stage) in self.stages.iter_mut().enumerate() {
            match (stage, &flight.stages[i]) {
                (SideStage::Ium(ium), StageFlight::Ium { .. }) => ium.retire_oldest(),
                (SideStage::Gsc(g), StageFlight::Gsc(gf)) => {
                    g.update(gf, outcome, reread, &mut self.side_stats);
                }
                (SideStage::Lsc(l), StageFlight::Lsc(lf)) => {
                    l.update(lf, outcome, reread || self.lsc_always_reread, &mut self.side_stats);
                }
                (SideStage::Loop(lp), StageFlight::Loop { used, pre_pred, .. }) => {
                    // Allocate for branches the main (TAGE+IUM) prediction
                    // missed; age credit when the loop prediction fixed a
                    // miss (§5.2).
                    let allocate = flight.main_pred != outcome;
                    let useful =
                        *used && flight.final_pred == outcome && *pre_pred != outcome;
                    lp.retire_update(b.pc, outcome, allocate, useful);
                }
                // INVARIANT: predict built one flight entry per stage in
                // declaration order; retire walks the same chain.
                _ => unreachable!("stage/flight chain mismatch"),
            }
        }
        self.tage.retire(b, outcome, predicted, flight.tage, scenario);
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        self.tage.note_uncond(b);
    }

    fn stats(&self) -> AccessStats {
        let mut s = self.tage.stats();
        s.merge(&self.side_stats);
        s
    }

    fn reset_stats(&mut self) {
        self.tage.reset_stats();
        self.side_stats = AccessStats::default();
    }
}
