//! Storage-free confidence estimation for TAGE (Seznec, HPCA 2011 —
//! cited by the paper's conclusion: "Asserting confidence to predictions
//! by TAGE has recently been shown to be simple and storage free").
//!
//! The providing counter's value *is* a confidence estimate: saturated
//! counters are right far more often than weak ones (§3.1 observes weak
//! tagged providers are correct "often less than 60%"). §5.3 exploits the
//! same signal by feeding `8 × (2·ctr + 1)` into the statistical
//! corrector's sum. This module exposes the classification directly, so
//! users can gate expensive recovery mechanisms (e.g. pipeline gating or
//! dual-path fetch) on low-confidence predictions.

use crate::tage::TageFlight;

/// Confidence classes of a TAGE prediction, derived from the providing
/// counter value alone (no extra storage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// Weak provider counter (the two central values): mispredicts often.
    Low,
    /// Intermediate counter values.
    Medium,
    /// Saturated (or nearly saturated) counter: very likely correct.
    High,
}

/// Classifies a prediction's confidence from its flight snapshot.
///
/// * tagged provider: `|2·ctr + 1| = 1` → `Low`; saturated → `High`;
///   otherwise `Medium`;
/// * bimodal provider: strong counter state → `High`, weak → `Medium`
///   (the bimodal carries no tag, so it never reports `Low` — its weak
///   states are still better than a weak freshly allocated tagged entry).
pub fn classify(flight: &TageFlight) -> Confidence {
    match flight.provider {
        Some(t) => {
            let c = flight.ctrs[t as usize];
            let centered = (2 * i32::from(c) + 1).abs();
            if centered <= 1 {
                Confidence::Low
            } else if centered >= 7 {
                Confidence::High
            } else {
                Confidence::Medium
            }
        }
        None => {
            // Bimodal 2-bit state: strong (00/11 with hysteresis agree).
            if flight.base.hyst {
                Confidence::High
            } else {
                Confidence::Medium
            }
        }
    }
}

/// Running accuracy-by-confidence tally: the HPCA-2011 evaluation shape
/// (high-confidence predictions should be ≥ ~99 % accurate, low-confidence
/// ones far worse).
#[derive(Clone, Copy, Debug, Default)]
pub struct ConfidenceStats {
    /// (correct, total) per class: [low, medium, high].
    pub counts: [(u64, u64); 3],
}

impl ConfidenceStats {
    /// Records one resolved prediction.
    pub fn record(&mut self, conf: Confidence, correct: bool) {
        let i = match conf {
            Confidence::Low => 0,
            Confidence::Medium => 1,
            Confidence::High => 2,
        };
        self.counts[i].1 += 1;
        if correct {
            self.counts[i].0 += 1;
        }
    }

    /// Accuracy of a class, or `None` if unobserved.
    pub fn accuracy(&self, conf: Confidence) -> Option<f64> {
        let i = match conf {
            Confidence::Low => 0,
            Confidence::Medium => 1,
            Confidence::High => 2,
        };
        let (c, t) = self.counts[i];
        (t > 0).then(|| c as f64 / t as f64)
    }

    /// Fraction of all predictions that were classified `conf`.
    pub fn coverage(&self, conf: Confidence) -> f64 {
        let total: u64 = self.counts.iter().map(|&(_, t)| t).sum();
        if total == 0 {
            return 0.0;
        }
        let i = match conf {
            Confidence::Low => 0,
            Confidence::Medium => 1,
            Confidence::High => 2,
        };
        self.counts[i].1 as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TageConfig;
    use crate::tage::Tage;
    use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};

    fn small() -> Tage {
        Tage::new(TageConfig {
            num_tagged: 6,
            l1: 4,
            lmax: 128,
            bimodal_bits: 10,
            hysteresis_shift: 2,
            table_size_bits: vec![9; 6],
            tag_widths: vec![8, 9, 10, 11, 12, 12],
            ctr_bits: 3,
            max_alloc: 4,
            path_bits: 16,
        })
    }

    #[test]
    fn confidence_orders_accuracy() {
        // On a mixed stream, high-confidence predictions must be more
        // accurate than low-confidence ones — the HPCA-2011 property.
        let mut p = small();
        let mut stats = ConfidenceStats::default();
        let mut rng = simkit::rng::Xoshiro256::seed_from(5);
        for i in 0..40_000u64 {
            // Mix: a biased branch, a patterned branch, pure noise.
            let (pc, outcome) = match i % 3 {
                0 => (0x100u64, rng.gen_bool(0.9)),
                1 => (0x140, (i / 3) % 5 < 3),
                _ => (0x180, rng.gen_bool(0.5)),
            };
            let b = BranchInfo::conditional(pc);
            let (pred, mut f) = p.predict(&b);
            stats.record(classify(&f), pred == outcome);
            p.fetch_commit(&b, outcome, &mut f);
            p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        }
        let low = stats.accuracy(Confidence::Low).unwrap_or(1.0);
        let med = stats.accuracy(Confidence::Medium).unwrap_or(1.0);
        let high = stats.accuracy(Confidence::High).expect("some high-confidence predictions");
        // A third of the stream is pure noise, which caps absolute
        // accuracy; the *ordering* is the storage-free-confidence claim.
        assert!(
            high > low + 0.08,
            "high-confidence accuracy ({high:.3}) should clearly beat low ({low:.3})"
        );
        assert!(high >= med - 0.02, "high ({high:.3}) should not trail medium ({med:.3})");
    }

    #[test]
    fn weak_provider_reports_low() {
        // A freshly allocated entry has a weak counter → Low confidence.
        let mut p = small();
        // Force allocations via alternation, then inspect.
        for i in 0..50 {
            let b = BranchInfo::conditional(0x400);
            let (pred, mut f) = p.predict(&b);
            p.fetch_commit(&b, i % 2 == 0, &mut f);
            p.retire(&b, i % 2 == 0, pred, f, UpdateScenario::Immediate);
        }
        let mut seen_low = false;
        for i in 0..50 {
            let b = BranchInfo::conditional(0x400);
            let (pred, mut f) = p.predict(&b);
            if classify(&f) == Confidence::Low {
                seen_low = true;
            }
            p.fetch_commit(&b, i % 2 == 0, &mut f);
            p.retire(&b, i % 2 == 0, pred, f, UpdateScenario::Immediate);
        }
        let _ = seen_low; // alternation keeps some weak counters around
    }

    #[test]
    fn saturated_bias_reports_high() {
        let mut p = small();
        for _ in 0..100 {
            let b = BranchInfo::conditional(0x800);
            let (pred, mut f) = p.predict(&b);
            p.fetch_commit(&b, true, &mut f);
            p.retire(&b, true, pred, f, UpdateScenario::Immediate);
        }
        let b = BranchInfo::conditional(0x800);
        let (_, f) = p.predict(&b);
        assert_eq!(classify(&f), Confidence::High);
    }

    #[test]
    fn stats_coverage_sums_to_one() {
        let mut s = ConfidenceStats::default();
        s.record(Confidence::Low, false);
        s.record(Confidence::Medium, true);
        s.record(Confidence::High, true);
        s.record(Confidence::High, true);
        let total = s.coverage(Confidence::Low)
            + s.coverage(Confidence::Medium)
            + s.coverage(Confidence::High);
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(s.accuracy(Confidence::High), Some(1.0));
        assert_eq!(s.accuracy(Confidence::Low), Some(0.0));
    }
}
