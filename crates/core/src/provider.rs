//! [`ProviderStack`] — the TAGE provider as a composition of three
//! separately constructible, separately budgeted sub-stages.
//!
//! The fused `Tage` of the pre-decomposition predictor hard-wired three
//! distinct mechanisms together: the default prediction (a bimodal
//! table), the tagged GE-history bank with its allocation policy, and
//! the provider/alternate chooser (`USE_ALT_ON_NA`). Modeling them as
//! slots opens the §3-level ablations to the spec grammar —
//! `tage(base=gshare)`, `tage(chooser=always)` — the same way
//! `PredictorStack` opened the side-stage ablations:
//!
//! ```text
//!            ┌────────────── ProviderStack ───────────────┐
//! PC, hist ─▶│ BaseSlot ──┐                               │
//!            │ (default   ├─▶ Chooser ──▶ provider pred ──│─▶ side-stage chain
//!            │  pred)     │   (arbitrates provider/alt)   │
//!            │ TaggedBank ┘                               │
//!            │ (GE tables + allocation policy)            │
//!            └─────────────────────────────────────────────┘
//! ```
//!
//! The default composition (`bimodal` base, `altweak` chooser) is
//! bit-identical to the fused predictor — pinned by the golden-table
//! suite. `Tage` remains the [`simkit::Predictor`] driving the stages
//! (it owns the shared speculative state: global/path history, the
//! interleaving selector, access stats); `ProviderStack` owns the three
//! sub-stages and their budget split.

use crate::base::{BaseChoice, BaseSlot};
use crate::chooser::{ChooserChoice, ChooserSlot};
use crate::config::TageConfig;
use crate::tagged::TaggedBank;
use simkit::chooser::Chooser;

/// The three provider sub-stages, separately constructed and budgeted.
#[derive(Clone, Debug)]
pub struct ProviderStack {
    base: BaseSlot,
    bank: TaggedBank,
    chooser: ChooserSlot,
}

impl ProviderStack {
    /// Assembles a provider from explicitly constructed sub-stages.
    pub fn new(base: BaseSlot, bank: TaggedBank, chooser: ChooserSlot) -> Self {
        Self { base, bank, chooser }
    }

    /// The paper's provider for `cfg`: shared-hysteresis bimodal base,
    /// `USE_ALT_ON_NA` chooser.
    pub fn from_config(cfg: &TageConfig) -> Self {
        Self::with_choices(cfg, BaseChoice::default(), ChooserChoice::default())
    }

    /// A provider with spec-selected base and chooser policies over the
    /// same tagged bank.
    pub fn with_choices(cfg: &TageConfig, base: BaseChoice, chooser: ChooserChoice) -> Self {
        Self::new(base.build(cfg), TaggedBank::new(cfg), chooser.build())
    }

    /// The base-predictor sub-stage.
    pub fn base(&self) -> &BaseSlot {
        &self.base
    }

    /// Mutable base sub-stage (the predictor lifecycle writes through).
    pub(crate) fn base_mut(&mut self) -> &mut BaseSlot {
        &mut self.base
    }

    /// The tagged-bank sub-stage.
    pub fn bank(&self) -> &TaggedBank {
        &self.bank
    }

    /// Mutable bank sub-stage.
    pub(crate) fn bank_mut(&mut self) -> &mut TaggedBank {
        &mut self.bank
    }

    /// The chooser sub-stage.
    pub fn chooser(&self) -> &ChooserSlot {
        &self.chooser
    }

    /// Mutable chooser sub-stage.
    pub(crate) fn chooser_mut(&mut self) -> &mut ChooserSlot {
        &mut self.chooser
    }

    /// Per-sub-stage storage budget. Sums to
    /// [`ProviderStack::storage_bits`]; the chooser row reports table
    /// storage only (see `crate::chooser` — the 4-bit `USE_ALT_ON_NA`
    /// counter is control state, excluded like the allocation tick).
    pub fn budget(&self) -> [(&'static str, u64); 3] {
        [
            ("tage.base", self.base.storage_bits()),
            ("tage.tagged", self.bank.storage_bits()),
            ("tage.chooser", Chooser::storage_bits(&self.chooser)),
        ]
    }

    /// Total provider storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.budget().iter().map(|(_, b)| b).sum()
    }

    /// The spec-grammar decoration for non-default sub-stages: the
    /// canonical `(base=...,chooser=...)` production, or `""` for the
    /// paper's provider. Report labels and `Predictor::name` append this,
    /// so default-path output is byte-identical to the fused predictor's.
    pub fn decoration(&self) -> String {
        let mut params = Vec::new();
        if self.base.choice() != BaseChoice::default() {
            params.push(format!("base={}", self.base.choice().token()));
        }
        if self.chooser.choice() != ChooserChoice::default() {
            params.push(format!("chooser={}", self.chooser.choice().token()));
        }
        if params.is_empty() {
            String::new()
        } else {
            format!("({})", params.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_provider_budget_matches_the_fused_accounting() {
        let cfg = TageConfig::reference_64kb();
        let p = ProviderStack::from_config(&cfg);
        // The sub-stage split reproduces the paper's §3.4 arithmetic:
        // 40,960 bimodal bits + 482,304 tagged bits = 65,408 bytes.
        let budget = p.budget();
        assert_eq!(budget[0], ("tage.base", 40_960));
        assert_eq!(budget[1], ("tage.tagged", 482_304));
        assert_eq!(budget[2], ("tage.chooser", 0));
        assert_eq!(p.storage_bits(), cfg.storage_bits());
        assert_eq!(p.decoration(), "");
    }

    #[test]
    fn non_default_slots_decorate_and_rebudget() {
        let cfg = TageConfig::reference_64kb();
        let p = ProviderStack::with_choices(&cfg, BaseChoice::Gshare, ChooserChoice::Confidence);
        assert_eq!(p.decoration(), "(base=gshare,chooser=conf)");
        // The gshare base has private hysteresis: 2 bits per entry.
        assert_eq!(p.budget()[0].1, 2 << cfg.bimodal_bits);
        let chooser_only =
            ProviderStack::with_choices(&cfg, BaseChoice::default(), ChooserChoice::AlwaysProvider);
        assert_eq!(chooser_only.decoration(), "(chooser=always)");
        assert_eq!(chooser_only.storage_bits(), cfg.storage_bits());
        // The per-PC chooser table is the one policy with real storage:
        // its bits land on the chooser row and in the stack total.
        let table =
            ProviderStack::with_choices(&cfg, BaseChoice::default(), ChooserChoice::Table);
        assert_eq!(table.decoration(), "(chooser=table)");
        assert_eq!(table.budget()[2], ("tage.chooser", crate::chooser::PerPcTable::STORAGE_BITS));
        assert_eq!(table.storage_bits(), cfg.storage_bits() + crate::chooser::PerPcTable::STORAGE_BITS);
    }

    #[test]
    fn sub_stages_are_separately_constructible() {
        let cfg = TageConfig::reference_64kb();
        let p = ProviderStack::new(
            BaseChoice::TwoBit.build(&cfg),
            TaggedBank::new(&cfg),
            ChooserChoice::AltOnWeak.build(),
        );
        assert_eq!(p.base().choice(), BaseChoice::TwoBit);
        assert_eq!(p.bank().len(), cfg.num_tagged);
        assert_eq!(p.chooser().choice(), ChooserChoice::AltOnWeak);
        assert_eq!(p.decoration(), "(base=2bc)");
    }
}
