//! Named predictor presets (§5–§7) over the [`PredictorStack`].
//!
//! Historically this module held a monolithic `TageSystem` struct with
//! one `Option` field per side predictor; the composition logic now lives
//! in [`crate::stack`] as an ordered stage chain and the *what* lives in
//! [`crate::spec`] as declarative [`SystemSpec`] strings. What remains
//! here is the paper's naming: `TageSystem` is an alias for the stack,
//! and each named predictor — ISL-TAGE, TAGE-LSC, L-TAGE, the Figure 9
//! scaled families — is a preset spec resolved through
//! [`SystemSpec::preset`]. The presets are bit-identical to the old
//! hand-wired compositions (pinned by the golden-table tests in the
//! harness crate).

use crate::spec::SystemSpec;
pub use crate::stack::DEFAULT_IUM_CAPACITY;
use crate::stack::PredictorStack;

/// The composite predictor type: a TAGE provider plus an ordered chain
/// of side stages. (Alias kept from the pre-stack API.)
pub type TageSystem = PredictorStack;

/// In-flight snapshot of a [`TageSystem`]. (Alias kept from the
/// pre-stack API.)
pub type SystemFlight = crate::stack::StackFlight;

fn preset(name: &str) -> PredictorStack {
    // INVARIANT: only called with names out of the PRESETS table below
    // (every row of which parses and builds, asserted by spec tests).
    SystemSpec::preset(name)
        .unwrap_or_else(|| panic!("unknown preset '{name}'")) // INVARIANT: see above
        .build()
        .expect("presets build") // INVARIANT: see above
}

impl PredictorStack {
    /// The §3.4 reference 64 KB TAGE, no side predictors.
    pub fn reference_tage() -> Self {
        preset("tage")
    }

    /// Reference TAGE + IUM (§5.1).
    pub fn tage_ium() -> Self {
        preset("tage-ium")
    }

    /// The L-TAGE predictor (TAGE + loop predictor — the CBP-2 winner the
    /// paper uses as its §2.2 base predictor).
    pub fn l_tage() -> Self {
        preset("l-tage")
    }

    /// The ISL-TAGE predictor (§5): TAGE + IUM + loop predictor + global
    /// statistical corrector.
    pub fn isl_tage() -> Self {
        preset("isl-tage")
    }

    /// The TAGE-LSC predictor (§6.1): the reference TAGE with T7 halved,
    /// plus IUM and the local statistical corrector — 512 Kbit total.
    pub fn tage_lsc() -> Self {
        preset("tage-lsc")
    }

    /// The full §6.1 stack: TAGE + IUM + loop + SC + LSC (the 555 MPPKI
    /// configuration of the paper).
    pub fn full_stack() -> Self {
        preset("full-stack")
    }

    /// The §7 cost-effective 512 Kbit TAGE-LSC: 4-way interleaved
    /// single-ported tables with the local components doubled (§7.1).
    pub fn tage_lsc_cost_effective() -> Self {
        preset("tage-lsc-ce")
    }

    /// A scaled plain TAGE for the Figure 9 sweep (`delta` in powers of
    /// two relative to the 512 Kbit reference).
    pub fn scaled_tage(delta: i32) -> Self {
        // INVARIANT: scaling a valid preset's geometry keeps it valid
        // (asserted across the Figure 9 delta range in spec tests).
        SystemSpec::scaled_tage(delta).build().expect("scaled preset builds")
    }

    /// A scaled TAGE-LSC for the Figure 9 sweep.
    pub fn scaled_tage_lsc(delta: i32) -> Self {
        // INVARIANT: same as scaled_tage — covered by the Fig. 9 tests.
        SystemSpec::scaled_tage_lsc(delta).build().expect("scaled preset builds")
    }
}

impl SystemSpec {
    /// The Figure 9 scaled plain-TAGE spec (`scaled_tage(0)` *is* the
    /// reference spec, so the delta-0 sweep point shares its memo label
    /// and cached suite).
    pub fn scaled_tage(delta: i32) -> Self {
        let mut spec = SystemSpec::preset("tage").expect("preset"); // INVARIANT: literal PRESETS row
        spec.provider.scale = delta;
        spec
    }

    /// The Figure 9 scaled TAGE-LSC spec (TAGE core and LSC scale
    /// together, as in §7.1).
    pub fn scaled_tage_lsc(delta: i32) -> Self {
        let mut spec = SystemSpec::preset("tage-lsc").expect("preset"); // INVARIANT: literal PRESETS row
        spec.provider.scale = delta;
        for stage in &mut spec.stages {
            if let crate::spec::StageSpec::Lsc { scale, .. } = stage {
                *scale = delta;
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TageConfig;
    use crate::corrector::{Gsc, Lsc};
    use crate::loop_pred::LoopPredictor;
    use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};

    /// Functional drive: predict → fetch_commit → execute → retire.
    fn drive<P: Predictor>(p: &mut P, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.execute(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    /// Drive with a delayed pipeline: execute after `exec_lag` further
    /// branches, retire after `retire_lag`.
    fn drive_delayed<P: Predictor>(
        p: &mut P,
        stream: &[(u64, bool)],
        exec_lag: usize,
        retire_lag: usize,
        scenario: UpdateScenario,
    ) -> u64 {
        let mut inflight: std::collections::VecDeque<(BranchInfo, bool, bool, P::Flight, usize)> =
            std::collections::VecDeque::new();
        let mut mispredicts = 0;
        for (i, &(pc, outcome)) in stream.iter().enumerate() {
            let b = BranchInfo::conditional(pc);
            let (pred, mut f) = p.predict(&b);
            if pred != outcome {
                mispredicts += 1;
            }
            p.fetch_commit(&b, outcome, &mut f);
            inflight.push_back((b, outcome, pred, f, i));
            // Execute stage.
            let exec_ready: Vec<usize> = inflight
                .iter()
                .enumerate()
                .filter(|(_, (_, _, _, _, at))| i >= at + exec_lag)
                .map(|(k, _)| k)
                .collect();
            for k in exec_ready {
                let (b, outcome, _, f, _) = &mut inflight[k];
                let (b, outcome) = (*b, *outcome);
                p.execute(&b, outcome, f);
            }
            while let Some((_, _, _, _, at)) = inflight.front() {
                if i >= at + retire_lag {
                    let (b, outcome, pred, f, _) = inflight.pop_front().unwrap();
                    p.retire(&b, outcome, pred, f, scenario);
                } else {
                    break;
                }
            }
        }
        for (b, outcome, pred, f, _) in inflight {
            p.retire(&b, outcome, pred, f, scenario);
        }
        mispredicts
    }

    fn small_cfg() -> TageConfig {
        TageConfig {
            num_tagged: 6,
            l1: 4,
            lmax: 128,
            bimodal_bits: 10,
            hysteresis_shift: 2,
            table_size_bits: vec![9; 6],
            tag_widths: vec![8, 9, 10, 11, 12, 12],
            ctr_bits: 3,
            max_alloc: 4,
            path_bits: 16,
        }
    }

    #[test]
    fn presets_have_expected_budgets() {
        // ISL-TAGE: reference TAGE + small side predictors.
        let isl = TageSystem::isl_tage();
        let tage_bits = 65_408 * 8;
        assert!(isl.storage_bits() > tage_bits);
        assert!(isl.storage_bits() < tage_bits + 40 * 1024);
        // TAGE-LSC fits the 512 Kbit budget (§6.1).
        let lsc = TageSystem::tage_lsc();
        assert!(
            lsc.storage_bits() <= 512 * 1024,
            "TAGE-LSC budget exceeded: {}",
            lsc.storage_bits()
        );
        assert!(lsc.storage_bits() > 500 * 1024);
    }

    #[test]
    fn preset_names() {
        assert!(TageSystem::isl_tage().name().starts_with("ISL-TAGE"));
        assert!(TageSystem::tage_lsc().name().starts_with("TAGE-LSC"));
        assert!(TageSystem::reference_tage().name().starts_with("TAGE"));
        assert!(TageSystem::l_tage().name().starts_with("L-TAGE"));
    }

    #[test]
    fn builder_order_is_canonicalized() {
        // The compat builders insert at the canonical chain position
        // regardless of call order, reproducing the pre-stack semantics
        // (loop override on top, correctors after the IUM).
        let a = TageSystem::new(small_cfg())
            .with_ium(64)
            .with_loop(LoopPredictor::cbp_64())
            .with_gsc(Gsc::cbp_24kbit());
        let b = TageSystem::new(small_cfg())
            .with_gsc(Gsc::cbp_24kbit())
            .with_loop(LoopPredictor::cbp_64())
            .with_ium(64);
        let kinds: Vec<_> = a.stages().iter().map(|s| s.kind()).collect();
        assert_eq!(kinds, b.stages().iter().map(|s| s.kind()).collect::<Vec<_>>());
        assert_eq!(a.name(), b.name());
        use crate::stack::StageKind;
        assert_eq!(kinds, vec![StageKind::Ium, StageKind::Gsc, StageKind::Loop]);
    }

    #[test]
    fn l_tage_is_tage_plus_loop() {
        let l = TageSystem::l_tage();
        let t = TageSystem::reference_tage();
        // Loop predictor adds 64 × 47 bits on top of the reference TAGE.
        assert_eq!(l.storage_bits() - t.storage_bits(), 64 * 47);
    }

    #[test]
    fn ium_overrides_from_executed_inflight_branch() {
        // Deterministic §5.1 scenario: a branch predicted by the bimodal
        // base executes (outcome ≠ prediction) but has not retired. A new
        // occurrence served by the same entry must be corrected by the IUM.
        // PC chosen so no table computes a zero tag (which would falsely
        // hit an empty tagged entry and move the provider off the bimodal).
        let b = BranchInfo::conditional(0x434);
        let mut with_ium = TageSystem::new(small_cfg()).with_ium(64);
        let (pred1, mut f1) = with_ium.predict(&b);
        with_ium.fetch_commit(&b, !pred1, &mut f1);
        with_ium.execute(&b, !pred1, &mut f1);
        // Same PC again, before retirement: provider is the same bimodal
        // entry; prediction must flip to the executed outcome.
        let (pred2, f2) = with_ium.predict(&b);
        assert_eq!(pred2, !pred1, "IUM must override with the executed outcome");
        assert_eq!(f2.ium_override(), Some(!pred1));
        assert_eq!(with_ium.ium_overrides().unwrap(), 1);

        // Control: without the IUM the stale prediction persists.
        let mut plain = TageSystem::new(small_cfg());
        let (p1, mut g1) = plain.predict(&b);
        plain.fetch_commit(&b, !p1, &mut g1);
        plain.execute(&b, !p1, &mut g1);
        let (p2, _) = plain.predict(&b);
        assert_eq!(p2, p1, "without IUM the stale table value is used");
    }

    #[test]
    fn ium_helps_on_phase_changes_in_tight_loops() {
        // A branch whose direction flips every 40 occurrences, with deep
        // in-flight windows under scenario [B]: the IUM recovers part of
        // the transition mispredictions.
        let stream: Vec<(u64, bool)> =
            (0..20_000).map(|i| (0x400u64, (i / 40) % 2 == 0)).collect();
        let mut plain = TageSystem::new(small_cfg());
        let base = drive_delayed(&mut plain, &stream, 2, 24, UpdateScenario::FetchOnly);
        let mut with_ium = TageSystem::new(small_cfg()).with_ium(64);
        let ium = drive_delayed(&mut with_ium, &stream, 2, 24, UpdateScenario::FetchOnly);
        assert!(
            ium <= base,
            "IUM should not hurt delayed-update mispredictions: {ium} vs {base}"
        );
        assert!(with_ium.ium_overrides().unwrap() > 0, "IUM never engaged");
    }

    #[test]
    fn loop_predictor_fixes_noisy_constant_loops() {
        // Constant-trip loop with a noisy body: TAGE cannot count through
        // the noise, the loop predictor can.
        let mut rng = simkit::rng::Xoshiro256::seed_from(3);
        let mut stream = Vec::new();
        for _ in 0..400 {
            for i in 1..=17 {
                stream.push((0x900u64 + (rng.gen_range(4) << 4), rng.gen_bool(0.5)));
                stream.push((0x800u64, i != 17));
            }
        }
        let count_loop_misses = |p: &mut TageSystem| {
            let mut wrong = 0;
            for (k, &(pc, out)) in stream.iter().enumerate() {
                let got = drive(p, pc, out);
                if pc == 0x800 && got != out && k > stream.len() / 2 {
                    wrong += 1;
                }
            }
            wrong
        };
        let mut plain = TageSystem::new(small_cfg());
        let base = count_loop_misses(&mut plain);
        let mut with_loop =
            TageSystem::new(small_cfg()).with_loop(LoopPredictor::cbp_64());
        let looped = count_loop_misses(&mut with_loop);
        assert!(
            looped * 2 < base.max(1),
            "loop predictor should fix constant loops: {looped} vs {base}"
        );
    }

    #[test]
    fn gsc_improves_statistically_biased_branches() {
        let mut rng = simkit::rng::Xoshiro256::seed_from(4);
        let stream: Vec<(u64, bool)> = (0..40_000)
            .map(|i| {
                let pc = 0x1000 + ((i % 7) << 4) as u64;
                (pc, rng.gen_bool(0.75))
            })
            .collect();
        let run = |p: &mut TageSystem| {
            let mut wrong = 0;
            for &(pc, out) in &stream {
                if drive(p, pc, out) != out {
                    wrong += 1;
                }
            }
            wrong
        };
        let mut plain = TageSystem::new(small_cfg());
        let base = run(&mut plain);
        let mut with_sc = TageSystem::new(small_cfg()).with_gsc(Gsc::cbp_24kbit());
        let sc = run(&mut with_sc);
        assert!(
            sc as f64 <= base as f64 * 1.02,
            "SC should not hurt biased branches: {sc} vs {base}"
        );
        assert!(with_sc.revert_counts().0.unwrap() > 0, "SC never reverted");
    }

    #[test]
    fn lsc_captures_local_patterns_in_noise() {
        // Period-23 pattern interleaved with random branches: hostile to
        // global history, easy for local history.
        let mut rng = simkit::rng::Xoshiro256::seed_from(5);
        let pattern: Vec<bool> = (0..23).map(|_| rng.gen_bool(0.5)).collect();
        let mut stream = Vec::new();
        for i in 0..15_000 {
            stream.push((0x2004u64, rng.gen_bool(0.5)));
            stream.push((0x2008u64, rng.gen_bool(0.5)));
            stream.push((0x200Cu64, pattern[i % 23]));
        }
        let run = |p: &mut TageSystem| {
            let mut wrong = 0;
            for (k, &(pc, out)) in stream.iter().enumerate() {
                let got = drive(p, pc, out);
                if pc == 0x200C && got != out && k > stream.len() / 2 {
                    wrong += 1;
                }
            }
            wrong
        };
        let mut plain = TageSystem::new(small_cfg());
        let base = run(&mut plain);
        let mut with_lsc = TageSystem::new(small_cfg()).with_lsc(Lsc::cbp_30kbit());
        let lsc = run(&mut with_lsc);
        assert!(
            (lsc as f64) < base as f64 * 0.6,
            "LSC should capture the local pattern: {lsc} vs {base}"
        );
    }

    #[test]
    fn full_stack_storage_is_sum_of_parts() {
        let full = TageSystem::full_stack();
        let plain = TageSystem::reference_tage();
        assert!(full.storage_bits() > plain.storage_bits());
        let delta = full.storage_bits() - plain.storage_bits();
        // IUM + loop + GSC + LSC ≈ 2 + 3 + 24 + 31 Kbit.
        assert!(delta < 80 * 1024, "side predictor budget too large: {delta}");
        // The per-component budget breakdown sums to the whole; the
        // provider contributes its three sub-stage rows.
        let budget = full.budget();
        assert_eq!(budget.iter().map(|(_, b)| b).sum::<u64>(), full.storage_bits());
        assert_eq!(budget[0].0, "tage.base");
        assert_eq!(budget[1].0, "tage.tagged");
        assert_eq!(budget[2].0, "tage.chooser");
        assert_eq!(budget.len(), 7);
    }

    #[test]
    fn scaled_presets_track_delta() {
        let small = TageSystem::scaled_tage(-2);
        let big = TageSystem::scaled_tage(2);
        assert!(big.storage_bits() > small.storage_bits() * 8);
        let l_small = TageSystem::scaled_tage_lsc(-2);
        let l_big = TageSystem::scaled_tage_lsc(2);
        assert!(l_big.storage_bits() > l_small.storage_bits() * 8);
    }

    #[test]
    fn stats_include_side_predictor_writes() {
        let mut p = TageSystem::tage_lsc();
        let mut rng = simkit::rng::Xoshiro256::seed_from(6);
        for _ in 0..2000 {
            drive(&mut p, 0x3000, rng.gen_bool(0.7));
        }
        let s = p.stats();
        assert!(s.predict_reads == 2000);
        assert!(s.raw_writes() > 0);
    }
}
