//! Composite predictors: TAGE plus its side predictors (§5–§6).
//!
//! [`TageSystem`] assembles the main TAGE predictor with any combination
//! of the paper's side predictors:
//!
//! * the **IUM** (§5.1), correcting predictions served by entries with
//!   executed-but-not-retired in-flight occurrences;
//! * the **loop predictor** (§5.2), overriding on high-confidence
//!   constant-trip loops;
//! * the **global Statistical Corrector** (§5.3), reverting statistically
//!   unlikely predictions;
//! * the **local Statistical Corrector** (§6), doing the same with
//!   per-branch local history.
//!
//! Predictions chain exactly as in Figures 6–7: TAGE → IUM → SC → LSC,
//! with the loop predictor override on top. Presets reproduce the paper's
//! named predictors: `ISL-TAGE` (= TAGE + IUM + loop + SC) and `TAGE-LSC`
//! (= TAGE with T7 halved + IUM + LSC).

use crate::config::TageConfig;
use crate::corrector::{CorrectorFlight, Gsc, Lsc};
use crate::ium::Ium;
use crate::loop_pred::{LoopLookup, LoopPredictor};
use crate::tage::{Tage, TageFlight};
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;

/// Default in-flight capacity for the IUM (matches the pipeline window).
pub const DEFAULT_IUM_CAPACITY: usize = 64;

/// A TAGE predictor composed with optional side predictors.
#[derive(Clone, Debug)]
pub struct TageSystem {
    tage: Tage,
    ium: Option<Ium>,
    loop_pred: Option<LoopPredictor>,
    gsc: Option<Gsc>,
    lsc: Option<Lsc>,
    /// §7.2 knob: when set, the LSC tables are always updated from a
    /// retire-time re-read even if the TAGE components run scenario
    /// \[B\]/\[C\] ("optimization applied only to the TAGE components").
    lsc_always_reread: bool,
    side_stats: AccessStats,
    label: String,
}

/// In-flight snapshot for [`TageSystem`].
#[derive(Clone, Copy, Debug)]
pub struct SystemFlight {
    /// The TAGE snapshot.
    pub tage: TageFlight,
    ium_seq: u64,
    /// The IUM's corrected prediction, when it overrode TAGE.
    pub ium_override: Option<bool>,
    /// Prediction after the IUM stage (the "TAGE + IUM" output).
    pub base_pred: bool,
    /// Global corrector snapshot.
    pub gsc: Option<CorrectorFlight>,
    /// Local corrector snapshot.
    pub lsc: Option<CorrectorFlight>,
    /// Prediction entering the loop-predictor stage.
    pub pre_loop_pred: bool,
    /// Loop predictor lookup result.
    pub loop_hit: Option<LoopLookup>,
    /// Whether the loop predictor's prediction was used.
    pub loop_used: bool,
    /// The final prediction of the whole system.
    pub final_pred: bool,
}

impl TageSystem {
    /// A bare TAGE system (no side predictors).
    pub fn new(cfg: TageConfig) -> Self {
        Self {
            tage: Tage::new(cfg),
            ium: None,
            loop_pred: None,
            gsc: None,
            lsc: None,
            lsc_always_reread: false,
            side_stats: AccessStats::default(),
            label: "TAGE".to_string(),
        }
    }

    /// Switches every component (TAGE tables and any LSC tables) to
    /// 4-way bank-interleaved single-ported arrays (§4.3, §7.1).
    pub fn interleaved(mut self) -> Self {
        self.tage.enable_interleaving();
        if let Some(lsc) = &mut self.lsc {
            lsc.enable_interleaving();
        }
        self
    }

    /// §7.2: keep re-reading the *local* corrector at retire while the
    /// TAGE components skip the retire read on correct predictions.
    pub fn lsc_always_reread(mut self) -> Self {
        self.lsc_always_reread = true;
        self
    }

    /// The §7 cost-effective 512 Kbit TAGE-LSC: 4-way interleaved
    /// single-ported tables with the local components doubled (§7.1).
    pub fn tage_lsc_cost_effective() -> Self {
        Self::new(TageConfig::tage_lsc_core())
            .with_ium(DEFAULT_IUM_CAPACITY)
            .with_lsc(Lsc::cbp_30kbit_interleaved())
            .labeled("TAGE-LSC-interleaved")
            .interleaved()
    }

    /// Adds an Immediate Update Mimicker (§5.1).
    pub fn with_ium(mut self, capacity: usize) -> Self {
        self.ium = Some(Ium::new(capacity));
        self.relabel();
        self
    }

    /// Adds a loop predictor (§5.2).
    pub fn with_loop(mut self, lp: LoopPredictor) -> Self {
        self.loop_pred = Some(lp);
        self.relabel();
        self
    }

    /// Adds a global-history statistical corrector (§5.3).
    pub fn with_gsc(mut self, gsc: Gsc) -> Self {
        self.gsc = Some(gsc);
        self.relabel();
        self
    }

    /// Adds a local-history statistical corrector (§6).
    pub fn with_lsc(mut self, lsc: Lsc) -> Self {
        self.lsc = Some(lsc);
        self.relabel();
        self
    }

    fn relabel(&mut self) {
        let mut label = "TAGE".to_string();
        if self.ium.is_some() {
            label.push_str("+IUM");
        }
        if self.loop_pred.is_some() {
            label.push_str("+LOOP");
        }
        if self.gsc.is_some() {
            label.push_str("+SC");
        }
        if self.lsc.is_some() {
            label.push_str("+LSC");
        }
        self.label = label;
    }

    /// Overrides the display label (used by the named presets).
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// The §3.4 reference 64 KB TAGE, no side predictors.
    pub fn reference_tage() -> Self {
        Self::new(TageConfig::reference_64kb())
    }

    /// Reference TAGE + IUM.
    pub fn tage_ium() -> Self {
        Self::reference_tage().with_ium(DEFAULT_IUM_CAPACITY)
    }

    /// The L-TAGE predictor (TAGE + loop predictor — the CBP-2 winner the
    /// paper uses as its §2.2 base predictor).
    pub fn l_tage() -> Self {
        Self::reference_tage().with_loop(LoopPredictor::cbp_64()).labeled("L-TAGE")
    }

    /// The ISL-TAGE predictor (§5): TAGE + IUM + loop predictor + global
    /// statistical corrector.
    pub fn isl_tage() -> Self {
        Self::reference_tage()
            .with_ium(DEFAULT_IUM_CAPACITY)
            .with_loop(LoopPredictor::cbp_64())
            .with_gsc(Gsc::cbp_24kbit())
            .labeled("ISL-TAGE")
    }

    /// The TAGE-LSC predictor (§6.1): the reference TAGE with T7 halved,
    /// plus IUM and the local statistical corrector — 512 Kbit total.
    pub fn tage_lsc() -> Self {
        Self::new(TageConfig::tage_lsc_core())
            .with_ium(DEFAULT_IUM_CAPACITY)
            .with_lsc(Lsc::cbp_30kbit())
            .labeled("TAGE-LSC")
    }

    /// The full §6.1 stack: TAGE + IUM + loop + SC + LSC (the 555 MPPKI
    /// configuration of the paper).
    pub fn full_stack() -> Self {
        Self::reference_tage()
            .with_ium(DEFAULT_IUM_CAPACITY)
            .with_loop(LoopPredictor::cbp_64())
            .with_gsc(Gsc::cbp_24kbit())
            .with_lsc(Lsc::cbp_30kbit())
            .labeled("TAGE+IUM+LOOP+SC+LSC")
    }

    /// A scaled plain TAGE for the Figure 9 sweep (`delta` in powers of
    /// two relative to the 512 Kbit reference).
    pub fn scaled_tage(delta: i32) -> Self {
        Self::new(TageConfig::reference_64kb().scaled(delta))
    }

    /// A scaled TAGE-LSC for the Figure 9 sweep.
    pub fn scaled_tage_lsc(delta: i32) -> Self {
        Self::new(TageConfig::tage_lsc_core().scaled(delta))
            .with_ium(DEFAULT_IUM_CAPACITY)
            .with_lsc(Lsc::cbp_30kbit().scaled(delta))
            .labeled("TAGE-LSC")
    }

    /// The inner TAGE predictor (diagnostics).
    pub fn tage(&self) -> &Tage {
        &self.tage
    }

    /// Debug view of the loop predictor entry for `pc` (diagnostics).
    pub fn loop_debug(&self, pc: u64) -> Option<(u16, u16, u16, u8, u8)> {
        self.loop_pred.as_ref().and_then(|lp| lp.debug_entry(pc))
    }

    /// IUM override count so far, if an IUM is attached.
    pub fn ium_overrides(&self) -> Option<u64> {
        self.ium.as_ref().map(Ium::override_count)
    }

    /// Revert counts of the attached correctors (global, local).
    pub fn revert_counts(&self) -> (Option<u64>, Option<u64>) {
        (self.gsc.as_ref().map(Gsc::revert_count), self.lsc.as_ref().map(Lsc::revert_count))
    }
}

impl Predictor for TageSystem {
    type Flight = SystemFlight;

    fn name(&self) -> String {
        format!("{}-{}Kbit", self.label, (self.storage_bits() + 512) / 1024)
    }

    fn storage_bits(&self) -> u64 {
        self.tage.storage_bits()
            + self.ium.as_ref().map_or(0, Ium::storage_bits)
            + self.loop_pred.as_ref().map_or(0, LoopPredictor::storage_bits)
            + self.gsc.as_ref().map_or(0, Gsc::storage_bits)
            + self.lsc.as_ref().map_or(0, Lsc::storage_bits)
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, SystemFlight) {
        let (tage_pred, tf) = self.tage.predict(b);
        let mut pred = tage_pred;

        // 1. IUM: mimic the immediate update. Replay the outcomes of every
        // executed-but-not-retired occurrence of the provider entry onto
        // the stale counter value; if the mimicked counter predicts
        // differently, use the mimicked direction (§5.1).
        let mut ium_override = None;
        if let Some(ium) = &mut self.ium {
            let (comp, idx) = tf.provider_entry();
            let (outcomes, n) = ium.executed_outcomes(comp, idx);
            if n > 0 {
                let mimicked = match tf.provider {
                    Some(p) => {
                        let mut c = simkit::SignedCounter::with_value(
                            self.tage.config().ctr_bits,
                            tf.ctrs[p as usize],
                        );
                        for &o in &outcomes[..n] {
                            c.update(o);
                        }
                        c.is_taken()
                    }
                    None => {
                        // Bimodal provider: replay onto the 2-bit state.
                        let mut c = (tf.base.pred as i16) * 2 + tf.base.hyst as i16;
                        for &o in &outcomes[..n] {
                            c = if o { (c + 1).min(3) } else { (c - 1).max(0) };
                        }
                        c >= 2
                    }
                };
                if mimicked != pred {
                    ium.note_override();
                    ium_override = Some(mimicked);
                    pred = mimicked;
                }
            }
        }
        let base_pred = pred;
        let centered = tf.provider_centered();

        // 2. Global statistical corrector.
        let gsc_f = self.gsc.as_mut().map(|g| g.predict(b.pc, base_pred, centered));
        if let Some(f) = &gsc_f {
            if f.revert {
                pred = f.sc_pred;
            }
        }

        // 3. Local statistical corrector (judges the chained prediction).
        let lsc_f = self.lsc.as_mut().map(|l| l.predict(b.pc, pred, centered));
        if let Some(f) = &lsc_f {
            if f.revert {
                pred = f.sc_pred;
            }
        }
        let pre_loop_pred = pred;

        // 4. Loop predictor override on saturated confidence.
        let loop_hit = self.loop_pred.as_ref().and_then(|lp| lp.lookup(b.pc));
        let mut loop_used = false;
        if let Some(lh) = loop_hit {
            if lh.confident {
                pred = lh.pred;
                loop_used = true;
            }
        }

        let flight = SystemFlight {
            tage: tf,
            ium_seq: 0,
            ium_override,
            base_pred,
            gsc: gsc_f,
            lsc: lsc_f,
            pre_loop_pred,
            loop_hit,
            loop_used,
            final_pred: pred,
        };
        (pred, flight)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, flight: &mut SystemFlight) {
        self.tage.fetch_commit(b, outcome, &mut flight.tage);
        if let Some(ium) = &mut self.ium {
            let (comp, idx) = flight.tage.provider_entry();
            flight.ium_seq = ium.push(comp, idx);
        }
        if let Some(g) = &mut self.gsc {
            g.on_branch(outcome);
        }
        if let Some(l) = &mut self.lsc {
            l.spec_update(b.pc, outcome);
        }
        if let Some(lp) = &mut self.loop_pred {
            lp.spec_update(b.pc, outcome);
        }
    }

    fn execute(&mut self, _b: &BranchInfo, outcome: bool, flight: &mut SystemFlight) {
        if let Some(ium) = &mut self.ium {
            ium.mark_executed(flight.ium_seq, outcome);
        }
    }

    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: SystemFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        let reread = scenario.reread_at_retire(mispredicted);

        if let Some(lp) = &mut self.loop_pred {
            // Allocate for branches the main (TAGE+IUM) prediction missed;
            // age credit when the loop prediction fixed a miss (§5.2).
            let allocate = flight.base_pred != outcome;
            let useful = flight.loop_used
                && flight.final_pred == outcome
                && flight.pre_loop_pred != outcome;
            lp.retire_update(b.pc, outcome, allocate, useful);
        }
        if let (Some(g), Some(gf)) = (&mut self.gsc, &flight.gsc) {
            g.update(gf, outcome, reread, &mut self.side_stats);
        }
        if let (Some(l), Some(lf)) = (&mut self.lsc, &flight.lsc) {
            l.update(lf, outcome, reread || self.lsc_always_reread, &mut self.side_stats);
        }
        if let Some(ium) = &mut self.ium {
            ium.retire_oldest();
        }
        self.tage.retire(b, outcome, predicted, flight.tage, scenario);
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        self.tage.note_uncond(b);
    }

    fn stats(&self) -> AccessStats {
        let mut s = self.tage.stats();
        s.merge(&self.side_stats);
        s
    }

    fn reset_stats(&mut self) {
        self.tage.reset_stats();
        self.side_stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Functional drive: predict → fetch_commit → execute → retire.
    fn drive<P: Predictor>(p: &mut P, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.execute(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    /// Drive with a delayed pipeline: execute after `exec_lag` further
    /// branches, retire after `retire_lag`.
    fn drive_delayed<P: Predictor>(
        p: &mut P,
        stream: &[(u64, bool)],
        exec_lag: usize,
        retire_lag: usize,
        scenario: UpdateScenario,
    ) -> u64 {
        let mut inflight: std::collections::VecDeque<(BranchInfo, bool, bool, P::Flight, usize)> =
            std::collections::VecDeque::new();
        let mut mispredicts = 0;
        for (i, &(pc, outcome)) in stream.iter().enumerate() {
            let b = BranchInfo::conditional(pc);
            let (pred, mut f) = p.predict(&b);
            if pred != outcome {
                mispredicts += 1;
            }
            p.fetch_commit(&b, outcome, &mut f);
            inflight.push_back((b, outcome, pred, f, i));
            // Execute stage.
            let exec_ready: Vec<usize> = inflight
                .iter()
                .enumerate()
                .filter(|(_, (_, _, _, _, at))| i >= at + exec_lag)
                .map(|(k, _)| k)
                .collect();
            for k in exec_ready {
                let (b, outcome, _, f, _) = &mut inflight[k];
                let (b, outcome) = (*b, *outcome);
                p.execute(&b, outcome, f);
            }
            while let Some((_, _, _, _, at)) = inflight.front() {
                if i >= at + retire_lag {
                    let (b, outcome, pred, f, _) = inflight.pop_front().unwrap();
                    p.retire(&b, outcome, pred, f, scenario);
                } else {
                    break;
                }
            }
        }
        for (b, outcome, pred, f, _) in inflight {
            p.retire(&b, outcome, pred, f, scenario);
        }
        mispredicts
    }

    fn small_cfg() -> TageConfig {
        TageConfig {
            num_tagged: 6,
            l1: 4,
            lmax: 128,
            bimodal_bits: 10,
            hysteresis_shift: 2,
            table_size_bits: vec![9; 6],
            tag_widths: vec![8, 9, 10, 11, 12, 12],
            ctr_bits: 3,
            max_alloc: 4,
            path_bits: 16,
        }
    }

    #[test]
    fn presets_have_expected_budgets() {
        // ISL-TAGE: reference TAGE + small side predictors.
        let isl = TageSystem::isl_tage();
        let tage_bits = 65_408 * 8;
        assert!(isl.storage_bits() > tage_bits);
        assert!(isl.storage_bits() < tage_bits + 40 * 1024);
        // TAGE-LSC fits the 512 Kbit budget (§6.1).
        let lsc = TageSystem::tage_lsc();
        assert!(
            lsc.storage_bits() <= 512 * 1024,
            "TAGE-LSC budget exceeded: {}",
            lsc.storage_bits()
        );
        assert!(lsc.storage_bits() > 500 * 1024);
    }

    #[test]
    fn preset_names() {
        assert!(TageSystem::isl_tage().name().starts_with("ISL-TAGE"));
        assert!(TageSystem::tage_lsc().name().starts_with("TAGE-LSC"));
        assert!(TageSystem::reference_tage().name().starts_with("TAGE"));
        assert!(TageSystem::l_tage().name().starts_with("L-TAGE"));
    }

    #[test]
    fn l_tage_is_tage_plus_loop() {
        let l = TageSystem::l_tage();
        let t = TageSystem::reference_tage();
        // Loop predictor adds 64 × 47 bits on top of the reference TAGE.
        assert_eq!(l.storage_bits() - t.storage_bits(), 64 * 47);
    }

    #[test]
    fn ium_overrides_from_executed_inflight_branch() {
        // Deterministic §5.1 scenario: a branch predicted by the bimodal
        // base executes (outcome ≠ prediction) but has not retired. A new
        // occurrence served by the same entry must be corrected by the IUM.
        // PC chosen so no table computes a zero tag (which would falsely
        // hit an empty tagged entry and move the provider off the bimodal).
        let b = BranchInfo::conditional(0x434);
        let mut with_ium = TageSystem::new(small_cfg()).with_ium(64);
        let (pred1, mut f1) = with_ium.predict(&b);
        with_ium.fetch_commit(&b, !pred1, &mut f1);
        with_ium.execute(&b, !pred1, &mut f1);
        // Same PC again, before retirement: provider is the same bimodal
        // entry; prediction must flip to the executed outcome.
        let (pred2, f2) = with_ium.predict(&b);
        assert_eq!(pred2, !pred1, "IUM must override with the executed outcome");
        assert_eq!(f2.ium_override, Some(!pred1));
        assert_eq!(with_ium.ium_overrides().unwrap(), 1);

        // Control: without the IUM the stale prediction persists.
        let mut plain = TageSystem::new(small_cfg());
        let (p1, mut g1) = plain.predict(&b);
        plain.fetch_commit(&b, !p1, &mut g1);
        plain.execute(&b, !p1, &mut g1);
        let (p2, _) = plain.predict(&b);
        assert_eq!(p2, p1, "without IUM the stale table value is used");
    }

    #[test]
    fn ium_helps_on_phase_changes_in_tight_loops() {
        // A branch whose direction flips every 40 occurrences, with deep
        // in-flight windows under scenario [B]: the IUM recovers part of
        // the transition mispredictions.
        let stream: Vec<(u64, bool)> =
            (0..20_000).map(|i| (0x400u64, (i / 40) % 2 == 0)).collect();
        let mut plain = TageSystem::new(small_cfg());
        let base = drive_delayed(&mut plain, &stream, 2, 24, UpdateScenario::FetchOnly);
        let mut with_ium = TageSystem::new(small_cfg()).with_ium(64);
        let ium = drive_delayed(&mut with_ium, &stream, 2, 24, UpdateScenario::FetchOnly);
        assert!(
            ium <= base,
            "IUM should not hurt delayed-update mispredictions: {ium} vs {base}"
        );
        assert!(with_ium.ium_overrides().unwrap() > 0, "IUM never engaged");
    }

    #[test]
    fn loop_predictor_fixes_noisy_constant_loops() {
        // Constant-trip loop with a noisy body: TAGE cannot count through
        // the noise, the loop predictor can.
        let mut rng = simkit::rng::Xoshiro256::seed_from(3);
        let mut stream = Vec::new();
        for _ in 0..400 {
            for i in 1..=17 {
                stream.push((0x900u64 + (rng.gen_range(4) << 4), rng.gen_bool(0.5)));
                stream.push((0x800u64, i != 17));
            }
        }
        let count_loop_misses = |p: &mut TageSystem| {
            let mut wrong = 0;
            for (k, &(pc, out)) in stream.iter().enumerate() {
                let got = drive(p, pc, out);
                if pc == 0x800 && got != out && k > stream.len() / 2 {
                    wrong += 1;
                }
            }
            wrong
        };
        let mut plain = TageSystem::new(small_cfg());
        let base = count_loop_misses(&mut plain);
        let mut with_loop =
            TageSystem::new(small_cfg()).with_loop(LoopPredictor::cbp_64());
        let looped = count_loop_misses(&mut with_loop);
        assert!(
            looped * 2 < base.max(1),
            "loop predictor should fix constant loops: {looped} vs {base}"
        );
    }

    #[test]
    fn gsc_improves_statistically_biased_branches() {
        let mut rng = simkit::rng::Xoshiro256::seed_from(4);
        let stream: Vec<(u64, bool)> = (0..40_000)
            .map(|i| {
                let pc = 0x1000 + ((i % 7) << 4) as u64;
                (pc, rng.gen_bool(0.75))
            })
            .collect();
        let run = |p: &mut TageSystem| {
            let mut wrong = 0;
            for &(pc, out) in &stream {
                if drive(p, pc, out) != out {
                    wrong += 1;
                }
            }
            wrong
        };
        let mut plain = TageSystem::new(small_cfg());
        let base = run(&mut plain);
        let mut with_sc = TageSystem::new(small_cfg()).with_gsc(Gsc::cbp_24kbit());
        let sc = run(&mut with_sc);
        assert!(
            sc as f64 <= base as f64 * 1.02,
            "SC should not hurt biased branches: {sc} vs {base}"
        );
        assert!(with_sc.revert_counts().0.unwrap() > 0, "SC never reverted");
    }

    #[test]
    fn lsc_captures_local_patterns_in_noise() {
        // Period-23 pattern interleaved with random branches: hostile to
        // global history, easy for local history.
        let mut rng = simkit::rng::Xoshiro256::seed_from(5);
        let pattern: Vec<bool> = (0..23).map(|_| rng.gen_bool(0.5)).collect();
        let mut stream = Vec::new();
        for i in 0..15_000 {
            stream.push((0x2004u64, rng.gen_bool(0.5)));
            stream.push((0x2008u64, rng.gen_bool(0.5)));
            stream.push((0x200Cu64, pattern[i % 23]));
        }
        let run = |p: &mut TageSystem| {
            let mut wrong = 0;
            for (k, &(pc, out)) in stream.iter().enumerate() {
                let got = drive(p, pc, out);
                if pc == 0x200C && got != out && k > stream.len() / 2 {
                    wrong += 1;
                }
            }
            wrong
        };
        let mut plain = TageSystem::new(small_cfg());
        let base = run(&mut plain);
        let mut with_lsc = TageSystem::new(small_cfg()).with_lsc(Lsc::cbp_30kbit());
        let lsc = run(&mut with_lsc);
        assert!(
            (lsc as f64) < base as f64 * 0.6,
            "LSC should capture the local pattern: {lsc} vs {base}"
        );
    }

    #[test]
    fn full_stack_storage_is_sum_of_parts() {
        let full = TageSystem::full_stack();
        let plain = TageSystem::reference_tage();
        assert!(full.storage_bits() > plain.storage_bits());
        let delta = full.storage_bits() - plain.storage_bits();
        // IUM + loop + GSC + LSC ≈ 2 + 3 + 24 + 31 Kbit.
        assert!(delta < 80 * 1024, "side predictor budget too large: {delta}");
    }

    #[test]
    fn scaled_presets_track_delta() {
        let small = TageSystem::scaled_tage(-2);
        let big = TageSystem::scaled_tage(2);
        assert!(big.storage_bits() > small.storage_bits() * 8);
        let l_small = TageSystem::scaled_tage_lsc(-2);
        let l_big = TageSystem::scaled_tage_lsc(2);
        assert!(l_big.storage_bits() > l_small.storage_bits() * 8);
    }

    #[test]
    fn stats_include_side_predictor_writes() {
        let mut p = TageSystem::tage_lsc();
        let mut rng = simkit::rng::Xoshiro256::seed_from(6);
        for _ in 0..2000 {
            drive(&mut p, 0x3000, rng.gen_bool(0.7));
        }
        let s = p.stats();
        assert!(s.predict_reads == 2000);
        assert!(s.raw_writes() > 0);
    }
}
