//! # tage — the TAGE conditional branch predictor family
//!
//! A from-scratch implementation of the predictors of *"A New Case for the
//! TAGE Branch Predictor"* (André Seznec, MICRO 2011):
//!
//! * [`Tage`] — the TAGE predictor (§3), itself a composition: a
//!   [`provider::ProviderStack`] of three separately constructible,
//!   separately budgeted sub-stages — a [`base::BaseSlot`] (the bimodal
//!   default prediction, or an ablation base), the [`tagged::TaggedBank`]
//!   (geometric-history tagged components with their u-bit allocation
//!   policy), and a [`chooser::ChooserSlot`] policy (`USE_ALT_ON_NA` by
//!   default) implementing [`simkit::Chooser`];
//! * [`ium::Ium`] — the Immediate Update Mimicker (§5.1);
//! * [`loop_pred::LoopPredictor`] — the loop predictor + speculative
//!   iteration management (§5.2);
//! * [`corrector::Gsc`] / [`corrector::Lsc`] — the global and local
//!   Statistical Correctors (§5.3, §6);
//! * [`stack::PredictorStack`] — the composition machinery: one TAGE
//!   provider plus an *ordered chain* of side stages, evaluated in
//!   declaration order;
//! * [`spec::SystemSpec`] — the declarative, serializable form of a
//!   stack (one-line spec strings with a canonical grammar, typed
//!   [`spec::SpecError`] validation, and the paper's named presets as a
//!   [`spec::PRESETS`] data table);
//! * [`TageSystem`] — alias of the stack, with the paper's named presets:
//!   [`TageSystem::isl_tage`], [`TageSystem::tage_lsc`],
//!   [`TageSystem::full_stack`], and the scaled Figure-9 families.
//!
//! All predictors implement [`simkit::Predictor`] (and therefore the
//! object-safe [`simkit::BranchPredictor`]), including the §4
//! delayed-update scenarios `[I]/[A]/[B]/[C]` and access accounting with
//! silent-update elimination.
//!
//! # Example
//!
//! Composing a stack declaratively and driving it:
//!
//! ```
//! use simkit::{BranchInfo, Predictor, UpdateScenario};
//! use tage::SystemSpec;
//!
//! let spec: SystemSpec = "tage:lsc+ium+lsc/as=TAGE-LSC".parse().unwrap();
//! let mut p = spec.build().unwrap();
//! let b = BranchInfo::conditional(0x40_0000);
//! let (pred, mut flight) = p.predict(&b);
//! let outcome = true;
//! p.fetch_commit(&b, outcome, &mut flight);
//! p.execute(&b, outcome, &mut flight);
//! p.retire(&b, outcome, pred, flight, UpdateScenario::RereadAtRetire);
//! assert!(p.storage_bits() <= 512 * 1024);
//! ```

// This crate hosts the workspace's single audited `unsafe` (the prefetch
// hint in `tagged.rs`), so it denies rather than forbids: the use site
// carries a scoped `#[allow(unsafe_code)]` with its SAFETY audit, and
// `tage_lint`'s unsafe-policy pass holds the crate to exactly that shape.
#![deny(unsafe_code)]

pub mod base;
pub mod chooser;
pub mod confidence;
pub mod config;
pub mod corrector;
pub mod ium;
pub mod loop_pred;
pub mod provider;
pub mod spec;
pub mod stack;
pub mod system;
pub mod tage;
pub mod tagged;

pub use base::{BaseChoice, BaseSlot};
pub use chooser::{ChooserChoice, ChooserSlot};
pub use confidence::{classify, Confidence, ConfidenceStats};
pub use config::{TageConfig, MAX_TAGGED};
pub use corrector::{Gsc, Lsc};
pub use ium::Ium;
pub use loop_pred::LoopPredictor;
pub use provider::ProviderStack;
pub use spec::{ProviderSpec, SpecError, StageSpec, SystemSpec, TageBase, PRESETS};
pub use stack::{PredictorStack, SideStage, StackFlight, StageKind};
pub use system::{SystemFlight, TageSystem};
pub use tage::{Tage, TageFlight};
pub use tagged::TaggedBank;
