//! The TAGE predictor (§3), driven as a decomposed [`ProviderStack`].
//!
//! A base predictor backed by M partially tagged components indexed with
//! geometrically increasing global history lengths. The *provider* is
//! the hitting component with the longest history; the *alternate
//! prediction* is what would have been predicted on a provider miss.
//! Entries are allocated only on mispredictions, on up to four
//! non-consecutive tables above the provider, guarded by single useful
//! bits with a global reset driven by an 8-bit allocation monitor.
//!
//! [`Tage`] is the [`Predictor`] lifecycle wrapper: it owns the shared
//! speculative state (global and path history, the bank-interleaving
//! selector, access stats) and drives the three provider sub-stages —
//! [`BaseSlot`](crate::base::BaseSlot),
//! [`TaggedBank`](crate::tagged::TaggedBank) and the
//! [`Chooser`](simkit::Chooser) policy — that a [`ProviderStack`]
//! composes. The default composition (bimodal base, `USE_ALT_ON_NA`
//! chooser) is bit-identical to the pre-decomposition fused predictor
//! (pinned by the golden-table suite).

use crate::base::{BaseChoice, BaseRead};
use crate::chooser::ChooserChoice;
use crate::config::{TageConfig, MAX_TAGGED};
use crate::provider::ProviderStack;
use memarray::{interleaved_index, BankSelector, ConflictModel};
use simkit::chooser::{Chooser, ChooserView};
use simkit::history::{GlobalHistory, PathHistory};
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;

/// Bank-interleaving state (§4.3): selector + per-bank conflict queues.
#[derive(Clone, Debug, Default)]
pub struct Interleave {
    selector: BankSelector,
    /// Conflict/delay statistics.
    pub conflicts: ConflictModel,
}

/// The TAGE predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    provider: ProviderStack,
    ghist: GlobalHistory,
    path: PathHistory,
    interleave: Option<Interleave>,
    stats: AccessStats,
}

/// Everything TAGE reads at prediction time; carried with the in-flight
/// branch (§4's scenarios \[B\]/\[C\] compute the retire-time update from
/// these values instead of re-reading the tables).
#[derive(Clone, Copy, Debug)]
pub struct TageFlight {
    /// Base predictor read.
    pub base: BaseRead,
    /// Per-table index used.
    pub indices: [u32; MAX_TAGGED],
    /// Per-table tag computed.
    pub tags: [u16; MAX_TAGGED],
    /// Per-table counter value read.
    pub ctrs: [i16; MAX_TAGGED],
    /// Per-table useful bit read.
    pub us: [bool; MAX_TAGGED],
    /// Bitmask of tag hits.
    pub hits: u16,
    /// Provider component (tagged table number, 0-based), if any.
    pub provider: Option<u8>,
    /// Alternate provider (tagged table), `None` = the base predictor.
    pub alt: Option<u8>,
    /// Provider component's prediction.
    pub provider_pred: bool,
    /// Alternate prediction.
    pub alt_pred: bool,
    /// Final TAGE prediction (after the chooser).
    pub tage_pred: bool,
    /// Whether the provider counter was weak.
    pub weak: bool,
}

impl TageFlight {
    /// Identity of the entry that provided the prediction, as
    /// (component, index); component 0 is the base predictor. This is
    /// what the IUM records (§5.1).
    pub fn provider_entry(&self) -> (u8, u32) {
        match self.provider {
            Some(t) => (t + 1, self.indices[t as usize]),
            None => (0, self.base.index as u32),
        }
    }

    /// The centered counter value of the providing component, scaled as
    /// the statistical corrector consumes it (§5.3: "eight times the
    /// (centered) output of the hitting bank").
    pub fn provider_centered(&self) -> i32 {
        match self.provider {
            Some(t) => tagged_centered(self.ctrs[t as usize]),
            None => base_centered(self.base),
        }
    }
}

/// A tagged counter value on the centered scale (§5.3): `2c + 1`.
#[inline]
fn tagged_centered(ctr: i16) -> i32 {
    2 * i32::from(ctr) + 1
}

/// The base predictor's 2-bit state mapped onto the 3-bit centered scale.
#[inline]
fn base_centered(base: BaseRead) -> i32 {
    let c = (base.pred as i32) * 2 + base.hyst as i32;
    [-7, -1, 1, 7][c as usize]
}

/// Values the retire-time update works from: either the flight snapshot
/// (scenario \[B\], correct-prediction \[C\]) or a fresh re-read.
struct UpdateView {
    base: BaseRead,
    ctrs: [i16; MAX_TAGGED],
    us: [bool; MAX_TAGGED],
    provider: Option<u8>,
    alt: Option<u8>,
    provider_pred: bool,
    alt_pred: bool,
    weak: bool,
}

impl UpdateView {
    /// The chooser's digest of this view: provider/alternate candidates
    /// with their centered-counter strengths. `pc` is the branch address
    /// (per-PC policies index by it).
    fn chooser_view(&self, pc: u64) -> ChooserView {
        let strength = |t: Option<u8>| match t {
            Some(t) => tagged_centered(self.ctrs[t as usize]).abs(),
            None => base_centered(self.base).abs(),
        };
        ChooserView {
            pc,
            has_provider: self.provider.is_some(),
            provider_pred: self.provider_pred,
            alt_pred: self.alt_pred,
            provider_weak: self.weak,
            provider_strength: strength(self.provider),
            alt_strength: strength(self.alt),
        }
    }
}

impl Tage {
    /// Builds the paper's TAGE predictor from a configuration (bimodal
    /// base, `USE_ALT_ON_NA` chooser).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TageConfig::validate`].
    pub fn new(cfg: TageConfig) -> Self {
        Self::with_choices(cfg, BaseChoice::default(), ChooserChoice::default())
    }

    /// Builds a TAGE predictor with spec-selected base-predictor and
    /// chooser policies (the §3-level provider ablations).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TageConfig::validate`].
    pub fn with_choices(cfg: TageConfig, base: BaseChoice, chooser: ChooserChoice) -> Self {
        cfg.validate();
        let provider = ProviderStack::with_choices(&cfg, base, chooser);
        Self::from_parts(cfg, provider)
    }

    /// Wraps an explicitly assembled [`ProviderStack`]. The provider's
    /// bank must have been built from `cfg` (the config supplies the
    /// shared path-history width and the component count).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TageConfig::validate`] or the
    /// bank's table count disagrees with it.
    pub fn from_parts(cfg: TageConfig, provider: ProviderStack) -> Self {
        cfg.validate();
        assert_eq!(
            provider.bank().len(),
            cfg.num_tagged,
            "provider bank disagrees with the configuration"
        );
        Self {
            provider,
            ghist: GlobalHistory::new(),
            path: PathHistory::new(cfg.path_bits),
            interleave: None,
            cfg,
            stats: AccessStats::default(),
        }
    }

    /// Switches the predictor tables to 4-way bank-interleaved
    /// single-ported arrays (§4.3). The same (PC, history) pair may now
    /// map to up to four distinct entries depending on the banks used by
    /// the two previous predictions.
    pub fn with_interleaving(mut self) -> Self {
        self.enable_interleaving();
        self
    }

    /// In-place variant of [`Tage::with_interleaving`].
    pub fn enable_interleaving(&mut self) {
        self.interleave = Some(Interleave::default());
    }

    /// Whether bank interleaving is enabled.
    pub fn is_interleaved(&self) -> bool {
        self.interleave.is_some()
    }

    /// Bank conflict statistics, if interleaved.
    pub fn conflict_stats(&self) -> Option<&ConflictModel> {
        self.interleave.as_ref().map(|i| &i.conflicts)
    }

    /// The §3.4 reference 64 KB predictor.
    pub fn reference_64kb() -> Self {
        Self::new(TageConfig::reference_64kb())
    }

    /// Configuration in use.
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    /// The decomposed provider (sub-stage access, per-stage budget).
    pub fn provider(&self) -> &ProviderStack {
        &self.provider
    }

    /// Fraction of useful bits currently set, per table (diagnostics).
    pub fn useful_fractions(&self) -> Vec<f64> {
        self.provider.bank().useful_fractions()
    }

    /// Current `USE_ALT_ON_NA` value (0 when a stateless chooser policy
    /// is installed).
    pub fn use_alt_on_na(&self) -> i16 {
        self.provider.chooser().alt_on_weak_bias().unwrap_or(0)
    }

    /// Derives provider/alternate fields from per-table hit data.
    fn resolve(
        base: BaseRead,
        ctrs: &[i16; MAX_TAGGED],
        us: &[bool; MAX_TAGGED],
        hits: u16,
        num_tagged: usize,
    ) -> UpdateView {
        let mut provider = None;
        let mut alt = None;
        for t in (0..num_tagged).rev() {
            if hits & (1 << t) != 0 {
                if provider.is_none() {
                    provider = Some(t as u8);
                } else {
                    alt = Some(t as u8);
                    break;
                }
            }
        }
        let alt_pred = match alt {
            Some(t) => ctrs[t as usize] >= 0,
            None => base.pred,
        };
        let (provider_pred, weak) = match provider {
            Some(t) => {
                let c = ctrs[t as usize];
                (c >= 0, c == 0 || c == -1)
            }
            None => (base.pred, false),
        };
        UpdateView {
            base,
            ctrs: *ctrs,
            us: *us,
            provider,
            alt,
            provider_pred,
            alt_pred,
            weak,
        }
    }

    /// Builds an [`UpdateView`] by re-reading the tables at the flight's
    /// indices (retire-time re-read, scenarios \[I\]/\[A\] and
    /// mispredicted \[C\]).
    fn reread_view(&self, flight: &TageFlight) -> UpdateView {
        let base = self.provider.base().read_index(flight.base.index);
        let mut ctrs = [0i16; MAX_TAGGED];
        let mut us = [false; MAX_TAGGED];
        self.provider.bank().prefetch_all(&flight.indices);
        let hits =
            self.provider.bank().read_flight(&flight.indices, &flight.tags, &mut ctrs, &mut us);
        Self::resolve(base, &ctrs, &us, hits, self.cfg.num_tagged)
    }

    fn snapshot_view(&self, flight: &TageFlight) -> UpdateView {
        UpdateView {
            base: flight.base,
            ctrs: flight.ctrs,
            us: flight.us,
            provider: flight.provider,
            alt: flight.alt,
            provider_pred: flight.provider_pred,
            alt_pred: flight.alt_pred,
            weak: flight.weak,
        }
    }
}

impl Predictor for Tage {
    type Flight = TageFlight;

    fn name(&self) -> String {
        format!(
            "tage-{}c-{}Kbit{}",
            self.cfg.num_tagged + 1,
            (self.storage_bits() + 512) / 1024,
            self.provider.decoration()
        )
    }

    fn storage_bits(&self) -> u64 {
        self.provider.storage_bits()
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, TageFlight) {
        self.stats.predict_reads += 1;
        let bank = self.interleave.as_mut().map(|il| {
            let bk = il.selector.bank(b.pc);
            il.conflicts.tick(bk);
            bk
        });
        let base = match bank {
            Some(bk) => {
                let idx = interleaved_index(
                    self.provider.base().index(b.pc),
                    bk,
                    self.provider.base().size_bits(),
                );
                self.provider.base().read_index(idx)
            }
            None => self.provider.base().read(b.pc),
        };
        let mut flight = TageFlight {
            base,
            indices: [0; MAX_TAGGED],
            tags: [0; MAX_TAGGED],
            ctrs: [0; MAX_TAGGED],
            us: [false; MAX_TAGGED],
            hits: 0,
            provider: None,
            alt: None,
            provider_pred: base.pred,
            alt_pred: base.pred,
            tage_pred: base.pred,
            weak: false,
        };
        // Compute every component's index and tag (pure hashing) while
        // prefetching the entries, then read — so the per-component reads
        // overlap their cache misses instead of serializing.
        self.provider.bank().compute_keys(
            b.pc,
            &self.path,
            bank,
            &mut flight.indices,
            &mut flight.tags,
        );
        flight.hits = self.provider.bank().read_flight(
            &flight.indices,
            &flight.tags,
            &mut flight.ctrs,
            &mut flight.us,
        );
        let view =
            Self::resolve(base, &flight.ctrs, &flight.us, flight.hits, self.cfg.num_tagged);
        flight.provider = view.provider;
        flight.alt = view.alt;
        flight.provider_pred = view.provider_pred;
        flight.alt_pred = view.alt_pred;
        flight.weak = view.weak;
        flight.tage_pred = self.provider.chooser().choose(&view.chooser_view(b.pc));
        (flight.tage_pred, flight)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, _flight: &mut TageFlight) {
        self.ghist.push(outcome);
        self.provider.bank_mut().update_history(&self.ghist);
        self.provider.base_mut().update_history(&self.ghist);
        self.path.push(b.pc);
    }

    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: TageFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        if scenario.counts_retire_read(mispredicted) {
            self.stats.retire_reads += 1;
        }
        let view = if scenario.reread_at_retire(mispredicted) {
            self.reread_view(&flight)
        } else {
            self.snapshot_view(&flight)
        };

        match view.provider {
            Some(p) => {
                let p = p as usize;
                let idx = flight.indices[p] as usize;
                // Provider entry update: counter always moves toward the
                // outcome (§3.2); the useful bit is set when the provider
                // was correct and the alternate was not.
                let set_u = view.provider_pred != view.alt_pred && view.provider_pred == outcome;
                self.provider.bank_mut().train_provider(
                    p,
                    idx,
                    view.ctrs[p],
                    outcome,
                    set_u,
                    &mut self.stats,
                );
                // Train the base when it was the effective alternate of a
                // weak provider (keeps the default prediction fresh).
                if view.weak && view.alt.is_none() {
                    self.provider.base_mut().update(view.base, outcome, &mut self.stats);
                }
            }
            None => {
                self.provider.base_mut().update(view.base, outcome, &mut self.stats);
            }
        }
        // The chooser learns from every retire-time view (the policies
        // gate themselves; `USE_ALT_ON_NA` trains only on discriminating
        // weak-provider cases, §3.1).
        self.provider.chooser_mut().update(&view.chooser_view(b.pc), outcome);

        // Allocation on TAGE mispredictions (§3.2.1). The trigger is the
        // *fetch-time* TAGE prediction: that is what steered the pipeline.
        if flight.tage_pred != outcome {
            let first = match view.provider {
                Some(p) => p as usize + 1,
                None => 0,
            };
            self.provider.bank_mut().allocate(
                &flight.indices,
                &flight.tags,
                &view.us,
                first,
                outcome,
                &mut self.stats,
            );
        }
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        if let Some(il) = &mut self.interleave {
            il.selector.note_uncond();
        }
        self.path.push(b.pc);
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TageConfig;

    fn small_cfg() -> TageConfig {
        TageConfig {
            num_tagged: 6,
            l1: 4,
            lmax: 128,
            bimodal_bits: 10,
            hysteresis_shift: 2,
            table_size_bits: vec![9; 6],
            tag_widths: vec![8, 9, 10, 11, 12, 12],
            ctr_bits: 3,
            max_alloc: 4,
            path_bits: 16,
        }
    }

    fn small() -> Tage {
        Tage::new(small_cfg())
    }

    fn drive(p: &mut Tage, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    #[test]
    fn learns_bias() {
        let mut p = small();
        let mut wrong = 0;
        for i in 0..500 {
            if !drive(&mut p, 0x400, true) && i > 20 {
                wrong += 1;
            }
        }
        assert!(wrong < 5, "wrong={wrong}");
    }

    #[test]
    fn learns_alternation_beyond_bimodal() {
        let mut p = small();
        let mut wrong = 0;
        for i in 0..2000 {
            let out = i % 2 == 0;
            if drive(&mut p, 0x400, out) != out && i > 500 {
                wrong += 1;
            }
        }
        assert!(wrong < 20, "TAGE should learn alternation, wrong={wrong}");
    }

    #[test]
    fn learns_medium_period_pattern() {
        // Period-20 pattern, quiet context: needs tagged tables with
        // history ≥ 20 — beyond bimodal, easy for TAGE.
        let mut rng = simkit::rng::Xoshiro256::seed_from(11);
        let pattern: Vec<bool> = (0..20).map(|_| rng.gen_bool(0.5)).collect();
        let mut p = small();
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..8000 {
            let out = pattern[i % 20];
            if drive(&mut p, 0x800, out) != out && i > 4000 {
                wrong += 1;
            }
            if i > 4000 {
                total += 1;
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.05, "pattern misprediction rate {rate}");
    }

    #[test]
    fn allocation_promotes_to_longer_tables() {
        let mut p = small();
        // Alternation forces mispredictions on the bimodal, triggering
        // allocation into tagged tables.
        for i in 0..200 {
            drive(&mut p, 0x400, i % 2 == 0);
        }
        let b = BranchInfo::conditional(0x400);
        let (_, f) = p.predict(&b);
        assert!(f.provider.is_some(), "tagged provider expected after training");
    }

    #[test]
    fn storage_matches_config() {
        let p = Tage::reference_64kb();
        assert_eq!(p.storage_bits(), 65_408 * 8);
        assert!(p.name().contains("13c"));
        // The decomposed provider budget rows sum to the same total.
        let budget = p.provider().budget();
        assert_eq!(budget.iter().map(|(_, b)| b).sum::<u64>(), p.storage_bits());
    }

    #[test]
    fn silent_updates_dominate_on_predictable_stream() {
        let mut p = small();
        for i in 0..5000 {
            drive(&mut p, 0x600, i % 4 != 3); // pattern 1110
        }
        let s = p.stats();
        assert!(
            s.silent_fraction() > 0.5,
            "most updates should be silent on a learned stream: {:?}",
            s
        );
    }

    #[test]
    fn scenario_b_counter_advances_once_per_snapshot() {
        let mut p = small();
        // Train a tagged provider first.
        for i in 0..400 {
            drive(&mut p, 0x400, i % 2 == 0);
        }
        let b = BranchInfo::conditional(0x400);
        let (pred, f) = p.predict(&b);
        let prov = f.provider.expect("provider");
        let before = f.ctrs[prov as usize];
        // Two retires from the same snapshot (two in-flight occurrences).
        p.retire(&b, true, pred, f, UpdateScenario::FetchOnly);
        p.retire(&b, true, pred, f, UpdateScenario::FetchOnly);
        let (_, f2) = p.predict(&b);
        if f2.provider == Some(prov) && f2.indices[prov as usize] == f.indices[prov as usize] {
            let after = f2.ctrs[prov as usize];
            assert!(
                after - before <= 1,
                "counter advanced {} under stale snapshots",
                after - before
            );
        }
    }

    #[test]
    fn u_bits_eventually_reset_under_pressure() {
        let mut p = small();
        let mut rng = simkit::rng::Xoshiro256::seed_from(12);
        // Random outcomes over many PCs: constant allocation pressure.
        for _ in 0..60_000 {
            let pc = 0x1000 + (rng.gen_range(512) << 4);
            drive(&mut p, pc, rng.gen_bool(0.5));
        }
        // After heavy churn the useful fractions must be sane (< 1.0,
        // i.e. resets happened and the predictor did not lock up).
        for f in p.useful_fractions() {
            assert!(f < 0.9, "useful bits saturated: {f}");
        }
    }

    #[test]
    fn provider_entry_identity() {
        let mut p = small();
        for i in 0..400 {
            drive(&mut p, 0x400, i % 2 == 0);
        }
        let b = BranchInfo::conditional(0x400);
        let (_, f) = p.predict(&b);
        let (comp, idx) = f.provider_entry();
        if let Some(t) = f.provider {
            assert_eq!(comp, t + 1);
            assert_eq!(idx, f.indices[t as usize]);
        } else {
            assert_eq!(comp, 0);
        }
    }

    #[test]
    fn provider_centered_is_odd_and_signed() {
        let mut p = small();
        for _ in 0..50 {
            drive(&mut p, 0x700, true);
        }
        let b = BranchInfo::conditional(0x700);
        let (pred, f) = p.predict(&b);
        let c = f.provider_centered();
        assert_eq!(c >= 0, pred);
        assert_eq!(c.rem_euclid(2), 1, "centered value must be odd: {c}");
    }

    #[test]
    fn chooser_policies_still_learn_the_stream() {
        // Every chooser policy must leave the core learning machinery
        // intact: a biased branch trains to near-perfect prediction.
        for chooser in
            [ChooserChoice::AltOnWeak, ChooserChoice::AlwaysProvider, ChooserChoice::Confidence]
        {
            let mut p = Tage::with_choices(small_cfg(), BaseChoice::default(), chooser);
            let mut wrong = 0;
            for i in 0..2000 {
                let out = i % 2 == 0;
                if drive(&mut p, 0x400, out) != out && i > 500 {
                    wrong += 1;
                }
            }
            assert!(wrong < 40, "{chooser:?}: wrong={wrong}");
        }
    }

    #[test]
    fn base_ablations_still_learn_the_stream() {
        for base in [BaseChoice::Bimodal, BaseChoice::TwoBit, BaseChoice::Gshare] {
            let mut p = Tage::with_choices(small_cfg(), base, ChooserChoice::default());
            let mut wrong = 0;
            for i in 0..500 {
                if !drive(&mut p, 0x400, true) && i > 50 {
                    wrong += 1;
                }
            }
            assert!(wrong < 10, "{base:?}: wrong={wrong}");
        }
    }

    #[test]
    fn decomposed_names_decorate_only_non_defaults() {
        assert_eq!(Tage::reference_64kb().name(), "tage-13c-511Kbit");
        let ablated = Tage::with_choices(
            TageConfig::reference_64kb(),
            BaseChoice::Gshare,
            ChooserChoice::AlwaysProvider,
        );
        // gshare base: 2 bits × 32K entries = 65,536 base bits
        // (+ 482,304 tagged = 547,840 total → 535 Kbit rounded).
        assert_eq!(ablated.name(), "tage-13c-535Kbit(base=gshare,chooser=always)");
    }

    #[test]
    fn always_provider_never_consults_the_alternate() {
        // With the always-provider chooser, a weak provider's prediction
        // must be used verbatim — flight.tage_pred == provider_pred.
        let mut p = Tage::with_choices(
            small_cfg(),
            BaseChoice::default(),
            ChooserChoice::AlwaysProvider,
        );
        let mut rng = simkit::rng::Xoshiro256::seed_from(13);
        for _ in 0..3000 {
            let pc = 0x400 + (rng.gen_range(64) << 2);
            let b = BranchInfo::conditional(pc);
            let (pred, mut f) = p.predict(&b);
            assert_eq!(pred, f.provider_pred);
            let out = rng.gen_bool(0.5);
            p.fetch_commit(&b, out, &mut f);
            p.retire(&b, out, pred, f, UpdateScenario::Immediate);
        }
        assert_eq!(p.use_alt_on_na(), 0, "stateless chooser reports no bias");
    }
}
