//! The TAGE predictor (§3).
//!
//! A bimodal base predictor backed by M partially tagged components
//! indexed with geometrically increasing global history lengths. The
//! *provider* is the hitting component with the longest history; the
//! *alternate prediction* is what would have been predicted on a provider
//! miss. Entries are allocated only on mispredictions, on up to four
//! non-consecutive tables above the provider, guarded by single useful
//! bits with a global reset driven by an 8-bit allocation monitor.

use crate::base::{BaseBimodal, BaseRead};
use crate::config::{TageConfig, MAX_TAGGED};
use crate::tagged::{TaggedEntry, TaggedTable};
use simkit::counter::SignedCounter;
use simkit::history::{GlobalHistory, PathHistory};
use memarray::{interleaved_index, BankSelector, ConflictModel};
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;

/// Bank-interleaving state (§4.3): selector + per-bank conflict queues.
#[derive(Clone, Debug, Default)]
pub struct Interleave {
    selector: BankSelector,
    /// Conflict/delay statistics.
    pub conflicts: ConflictModel,
}

/// The TAGE predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    base: BaseBimodal,
    tables: Vec<TaggedTable>,
    ghist: GlobalHistory,
    path: PathHistory,
    use_alt_on_na: SignedCounter,
    tick: u16,
    tick_max: u16,
    lfsr: u64,
    interleave: Option<Interleave>,
    stats: AccessStats,
}

/// Everything TAGE reads at prediction time; carried with the in-flight
/// branch (§4's scenarios \[B\]/\[C\] compute the retire-time update from
/// these values instead of re-reading the tables).
#[derive(Clone, Copy, Debug)]
pub struct TageFlight {
    /// Base predictor read.
    pub base: BaseRead,
    /// Per-table index used.
    pub indices: [u32; MAX_TAGGED],
    /// Per-table tag computed.
    pub tags: [u16; MAX_TAGGED],
    /// Per-table counter value read.
    pub ctrs: [i16; MAX_TAGGED],
    /// Per-table useful bit read.
    pub us: [bool; MAX_TAGGED],
    /// Bitmask of tag hits.
    pub hits: u16,
    /// Provider component (tagged table number, 0-based), if any.
    pub provider: Option<u8>,
    /// Alternate provider (tagged table), `None` = bimodal.
    pub alt: Option<u8>,
    /// Provider component's prediction.
    pub provider_pred: bool,
    /// Alternate prediction.
    pub alt_pred: bool,
    /// Final TAGE prediction (after `USE_ALT_ON_NA`).
    pub tage_pred: bool,
    /// Whether the provider counter was weak.
    pub weak: bool,
}

impl TageFlight {
    /// Identity of the entry that provided the prediction, as
    /// (component, index); component 0 is the bimodal base. This is what
    /// the IUM records (§5.1).
    pub fn provider_entry(&self) -> (u8, u32) {
        match self.provider {
            Some(t) => (t + 1, self.indices[t as usize]),
            None => (0, self.base.index as u32),
        }
    }

    /// The centered counter value of the providing component, scaled as
    /// the statistical corrector consumes it (§5.3: "eight times the
    /// (centered) output of the hitting bank").
    pub fn provider_centered(&self) -> i32 {
        match self.provider {
            Some(t) => {
                let c = self.ctrs[t as usize];
                2 * i32::from(c) + 1
            }
            None => {
                // Map the bimodal 2-bit state onto the 3-bit centered scale.
                let c = (self.base.pred as i32) * 2 + self.base.hyst as i32;
                [-7, -1, 1, 7][c as usize]
            }
        }
    }
}

/// Values the retire-time update works from: either the flight snapshot
/// (scenario \[B\], correct-prediction \[C\]) or a fresh re-read.
struct UpdateView {
    base: BaseRead,
    ctrs: [i16; MAX_TAGGED],
    us: [bool; MAX_TAGGED],
    provider: Option<u8>,
    alt: Option<u8>,
    provider_pred: bool,
    alt_pred: bool,
    weak: bool,
}

impl Tage {
    /// Builds a TAGE predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TageConfig::validate`].
    pub fn new(cfg: TageConfig) -> Self {
        cfg.validate();
        let lengths = cfg.history_lengths();
        let tables = (0..cfg.num_tagged)
            .map(|i| {
                TaggedTable::new(
                    i + 1,
                    cfg.table_size_bits[i],
                    cfg.tag_widths[i],
                    lengths[i],
                    cfg.ctr_bits,
                )
            })
            .collect();
        Self {
            base: BaseBimodal::new(cfg.bimodal_bits, cfg.hysteresis_shift),
            tables,
            ghist: GlobalHistory::new(),
            path: PathHistory::new(cfg.path_bits),
            use_alt_on_na: SignedCounter::new(4),
            tick: 0,
            tick_max: 255,
            lfsr: 0x1234_5678_9ABC_DEF1,
            interleave: None,
            cfg,
            stats: AccessStats::default(),
        }
    }

    /// Switches the predictor tables to 4-way bank-interleaved
    /// single-ported arrays (§4.3). The same (PC, history) pair may now
    /// map to up to four distinct entries depending on the banks used by
    /// the two previous predictions.
    pub fn with_interleaving(mut self) -> Self {
        self.enable_interleaving();
        self
    }

    /// In-place variant of [`Tage::with_interleaving`].
    pub fn enable_interleaving(&mut self) {
        self.interleave = Some(Interleave::default());
    }

    /// Whether bank interleaving is enabled.
    pub fn is_interleaved(&self) -> bool {
        self.interleave.is_some()
    }

    /// Bank conflict statistics, if interleaved.
    pub fn conflict_stats(&self) -> Option<&ConflictModel> {
        self.interleave.as_ref().map(|i| &i.conflicts)
    }

    /// The §3.4 reference 64 KB predictor.
    pub fn reference_64kb() -> Self {
        Self::new(TageConfig::reference_64kb())
    }

    /// Configuration in use.
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    /// Fraction of useful bits currently set, per table (diagnostics).
    pub fn useful_fractions(&self) -> Vec<f64> {
        self.tables.iter().map(|t| t.useful_fraction()).collect()
    }

    /// Current `USE_ALT_ON_NA` value.
    pub fn use_alt_on_na(&self) -> i16 {
        self.use_alt_on_na.get()
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        self.lfsr ^= self.lfsr << 13;
        self.lfsr ^= self.lfsr >> 7;
        self.lfsr ^= self.lfsr << 17;
        self.lfsr
    }

    /// Derives provider/alternate fields from per-table hit data.
    fn resolve(
        base: BaseRead,
        ctrs: &[i16; MAX_TAGGED],
        us: &[bool; MAX_TAGGED],
        hits: u16,
        num_tagged: usize,
    ) -> UpdateView {
        let mut provider = None;
        let mut alt = None;
        for t in (0..num_tagged).rev() {
            if hits & (1 << t) != 0 {
                if provider.is_none() {
                    provider = Some(t as u8);
                } else {
                    alt = Some(t as u8);
                    break;
                }
            }
        }
        let alt_pred = match alt {
            Some(t) => ctrs[t as usize] >= 0,
            None => base.pred,
        };
        let (provider_pred, weak) = match provider {
            Some(t) => {
                let c = ctrs[t as usize];
                (c >= 0, c == 0 || c == -1)
            }
            None => (base.pred, false),
        };
        let _ = hits;
        UpdateView {
            base,
            ctrs: *ctrs,
            us: *us,
            provider,
            alt,
            provider_pred,
            alt_pred,
            weak,
        }
    }

    /// Builds an [`UpdateView`] by re-reading the tables at the flight's
    /// indices (retire-time re-read, scenarios \[I\]/\[A\] and
    /// mispredicted \[C\]).
    fn reread_view(&self, flight: &TageFlight) -> UpdateView {
        let base = self.base.read_index(flight.base.index);
        let mut ctrs = [0i16; MAX_TAGGED];
        let mut us = [false; MAX_TAGGED];
        let mut hits = 0u16;
        for t in 0..self.cfg.num_tagged {
            self.tables[t].prefetch(flight.indices[t] as usize);
        }
        for t in 0..self.cfg.num_tagged {
            let e = self.tables[t].entry(flight.indices[t] as usize);
            ctrs[t] = e.ctr.get();
            us[t] = e.u;
            if e.tag == flight.tags[t] {
                hits |= 1 << t;
            }
        }
        Self::resolve(base, &ctrs, &us, hits, self.cfg.num_tagged)
    }

    fn snapshot_view(&self, flight: &TageFlight) -> UpdateView {
        UpdateView {
            base: flight.base,
            ctrs: flight.ctrs,
            us: flight.us,
            provider: flight.provider,
            alt: flight.alt,
            provider_pred: flight.provider_pred,
            alt_pred: flight.alt_pred,
            weak: flight.weak,
        }
    }

    /// Allocates new entries on mispredictions (§3.2.1) and maintains the
    /// u-bit reset monitor (§3.2.2).
    fn allocate(&mut self, flight: &TageFlight, view: &UpdateView, outcome: bool) {
        let m = self.cfg.num_tagged;
        let first = match view.provider {
            Some(p) => p as usize + 1,
            None => 0,
        };
        if first >= m {
            return;
        }
        // Randomized start (avoids ping-pong between competing branches).
        let mut k = first;
        if m - first > 1 && self.next_rand() & 1 == 0 {
            k += 1;
        }
        let mut allocated = 0;
        while k < m && allocated < self.cfg.max_alloc {
            if !view.us[k] {
                let entry = TaggedEntry {
                    ctr: SignedCounter::with_value(self.cfg.ctr_bits, if outcome { 0 } else { -1 }),
                    tag: flight.tags[k],
                    u: false,
                };
                let idx = flight.indices[k] as usize;
                let changed = self.tables[k].write(idx, entry);
                self.stats.record_write(changed);
                // Success: decrement the failure monitor.
                self.tick = self.tick.saturating_sub(1);
                allocated += 1;
                k += 2; // non-consecutive tables
            } else {
                // Failure: increment; on saturation reset all u bits.
                self.tick += 1;
                if self.tick >= self.tick_max {
                    for t in &mut self.tables {
                        t.reset_useful();
                    }
                    self.tick = 0;
                }
                k += 1;
            }
        }
    }
}

impl Predictor for Tage {
    type Flight = TageFlight;

    fn name(&self) -> String {
        format!(
            "tage-{}c-{}Kbit",
            self.cfg.num_tagged + 1,
            (self.storage_bits() + 512) / 1024
        )
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, TageFlight) {
        self.stats.predict_reads += 1;
        let bank = self.interleave.as_mut().map(|il| {
            let bk = il.selector.bank(b.pc);
            il.conflicts.tick(bk);
            bk
        });
        let base = match bank {
            Some(bk) => {
                let idx = interleaved_index(self.base.index(b.pc), bk, self.cfg.bimodal_bits);
                self.base.read_index(idx)
            }
            None => self.base.read(b.pc),
        };
        let mut flight = TageFlight {
            base,
            indices: [0; MAX_TAGGED],
            tags: [0; MAX_TAGGED],
            ctrs: [0; MAX_TAGGED],
            us: [false; MAX_TAGGED],
            hits: 0,
            provider: None,
            alt: None,
            provider_pred: base.pred,
            alt_pred: base.pred,
            tage_pred: base.pred,
            weak: false,
        };
        // First compute every component's index and tag (pure hashing)
        // while prefetching the entries, so the per-component reads below
        // overlap their cache misses instead of serializing them.
        for t in 0..self.cfg.num_tagged {
            let mut idx = self.tables[t].index(b.pc, &self.path);
            if let Some(bk) = bank {
                idx = interleaved_index(idx, bk, self.cfg.table_size_bits[t]);
            }
            flight.indices[t] = idx as u32;
            flight.tags[t] = self.tables[t].tag(b.pc);
            self.tables[t].prefetch(idx);
        }
        for t in 0..self.cfg.num_tagged {
            let e = self.tables[t].entry(flight.indices[t] as usize);
            flight.ctrs[t] = e.ctr.get();
            flight.us[t] = e.u;
            if e.tag == flight.tags[t] {
                flight.hits |= 1 << t;
            }
        }
        let view =
            Self::resolve(base, &flight.ctrs, &flight.us, flight.hits, self.cfg.num_tagged);
        flight.provider = view.provider;
        flight.alt = view.alt;
        flight.provider_pred = view.provider_pred;
        flight.alt_pred = view.alt_pred;
        flight.weak = view.weak;
        flight.tage_pred = if view.provider.is_some() && view.weak && self.use_alt_on_na.get() >= 0
        {
            view.alt_pred
        } else {
            view.provider_pred
        };
        (flight.tage_pred, flight)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, _flight: &mut TageFlight) {
        self.ghist.push(outcome);
        for t in &mut self.tables {
            t.update_history(&self.ghist);
        }
        self.path.push(b.pc);
    }

    fn retire(
        &mut self,
        _b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: TageFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        if scenario.counts_retire_read(mispredicted) {
            self.stats.retire_reads += 1;
        }
        let view = if scenario.reread_at_retire(mispredicted) {
            self.reread_view(&flight)
        } else {
            self.snapshot_view(&flight)
        };

        match view.provider {
            Some(p) => {
                let p = p as usize;
                let idx = flight.indices[p] as usize;
                // Provider entry update: counter always moves toward the
                // outcome (§3.2); the useful bit is set when the provider
                // was correct and the alternate was not. Counter and u bit
                // live in the same entry — one write.
                let mut e = self.tables[p].entry(idx);
                let mut c = SignedCounter::with_value(self.cfg.ctr_bits, view.ctrs[p]);
                c.update(outcome);
                e.ctr = c;
                if view.provider_pred != view.alt_pred && view.provider_pred == outcome {
                    e.u = true;
                }
                let changed = self.tables[p].write(idx, e);
                self.stats.record_write(changed);
                // USE_ALT_ON_NA learns whether weak providers beat their
                // alternates (§3.1).
                if view.weak && view.provider_pred != view.alt_pred {
                    self.use_alt_on_na.update(view.alt_pred == outcome);
                }
                // Train the base when it was the effective alternate of a
                // weak provider (keeps the default prediction fresh).
                if view.weak && view.alt.is_none() {
                    self.base.update(view.base, outcome, &mut self.stats);
                }
            }
            None => {
                self.base.update(view.base, outcome, &mut self.stats);
            }
        }

        // Allocation on TAGE mispredictions (§3.2.1). The trigger is the
        // *fetch-time* TAGE prediction: that is what steered the pipeline.
        if flight.tage_pred != outcome {
            self.allocate(&flight, &view, outcome);
        }
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        if let Some(il) = &mut self.interleave {
            il.selector.note_uncond();
        }
        self.path.push(b.pc);
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TageConfig;

    fn small() -> Tage {
        let cfg = TageConfig {
            num_tagged: 6,
            l1: 4,
            lmax: 128,
            bimodal_bits: 10,
            hysteresis_shift: 2,
            table_size_bits: vec![9; 6],
            tag_widths: vec![8, 9, 10, 11, 12, 12],
            ctr_bits: 3,
            max_alloc: 4,
            path_bits: 16,
        };
        Tage::new(cfg)
    }

    fn drive(p: &mut Tage, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    #[test]
    fn learns_bias() {
        let mut p = small();
        let mut wrong = 0;
        for i in 0..500 {
            if !drive(&mut p, 0x400, true) && i > 20 {
                wrong += 1;
            }
        }
        assert!(wrong < 5, "wrong={wrong}");
    }

    #[test]
    fn learns_alternation_beyond_bimodal() {
        let mut p = small();
        let mut wrong = 0;
        for i in 0..2000 {
            let out = i % 2 == 0;
            if drive(&mut p, 0x400, out) != out && i > 500 {
                wrong += 1;
            }
        }
        assert!(wrong < 20, "TAGE should learn alternation, wrong={wrong}");
    }

    #[test]
    fn learns_medium_period_pattern() {
        // Period-20 pattern, quiet context: needs tagged tables with
        // history ≥ 20 — beyond bimodal, easy for TAGE.
        let mut rng = simkit::rng::Xoshiro256::seed_from(11);
        let pattern: Vec<bool> = (0..20).map(|_| rng.gen_bool(0.5)).collect();
        let mut p = small();
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..8000 {
            let out = pattern[i % 20];
            if drive(&mut p, 0x800, out) != out && i > 4000 {
                wrong += 1;
            }
            if i > 4000 {
                total += 1;
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.05, "pattern misprediction rate {rate}");
    }

    #[test]
    fn allocation_promotes_to_longer_tables() {
        let mut p = small();
        // Alternation forces mispredictions on the bimodal, triggering
        // allocation into tagged tables.
        for i in 0..200 {
            drive(&mut p, 0x400, i % 2 == 0);
        }
        let b = BranchInfo::conditional(0x400);
        let (_, f) = p.predict(&b);
        assert!(f.provider.is_some(), "tagged provider expected after training");
    }

    #[test]
    fn storage_matches_config() {
        let p = Tage::reference_64kb();
        assert_eq!(p.storage_bits(), 65_408 * 8);
        assert!(p.name().contains("13c"));
    }

    #[test]
    fn silent_updates_dominate_on_predictable_stream() {
        let mut p = small();
        for i in 0..5000 {
            drive(&mut p, 0x600, i % 4 != 3); // pattern 1110
        }
        let s = p.stats();
        assert!(
            s.silent_fraction() > 0.5,
            "most updates should be silent on a learned stream: {:?}",
            s
        );
    }

    #[test]
    fn scenario_b_counter_advances_once_per_snapshot() {
        let mut p = small();
        // Train a tagged provider first.
        for i in 0..400 {
            drive(&mut p, 0x400, i % 2 == 0);
        }
        let b = BranchInfo::conditional(0x400);
        let (pred, f) = p.predict(&b);
        let prov = f.provider.expect("provider");
        let before = f.ctrs[prov as usize];
        // Two retires from the same snapshot (two in-flight occurrences).
        p.retire(&b, true, pred, f, UpdateScenario::FetchOnly);
        p.retire(&b, true, pred, f, UpdateScenario::FetchOnly);
        let (_, f2) = p.predict(&b);
        if f2.provider == Some(prov) && f2.indices[prov as usize] == f.indices[prov as usize] {
            let after = f2.ctrs[prov as usize];
            assert!(
                after - before <= 1,
                "counter advanced {} under stale snapshots",
                after - before
            );
        }
    }

    #[test]
    fn u_bits_eventually_reset_under_pressure() {
        let mut p = small();
        let mut rng = simkit::rng::Xoshiro256::seed_from(12);
        // Random outcomes over many PCs: constant allocation pressure.
        for _ in 0..60_000 {
            let pc = 0x1000 + (rng.gen_range(512) << 4);
            drive(&mut p, pc, rng.gen_bool(0.5));
        }
        // After heavy churn the useful fractions must be sane (< 1.0,
        // i.e. resets happened and the predictor did not lock up).
        for f in p.useful_fractions() {
            assert!(f < 0.9, "useful bits saturated: {f}");
        }
    }

    #[test]
    fn provider_entry_identity() {
        let mut p = small();
        for i in 0..400 {
            drive(&mut p, 0x400, i % 2 == 0);
        }
        let b = BranchInfo::conditional(0x400);
        let (_, f) = p.predict(&b);
        let (comp, idx) = f.provider_entry();
        if let Some(t) = f.provider {
            assert_eq!(comp, t + 1);
            assert_eq!(idx, f.indices[t as usize]);
        } else {
            assert_eq!(comp, 0);
        }
    }

    #[test]
    fn provider_centered_is_odd_and_signed() {
        let mut p = small();
        for _ in 0..50 {
            drive(&mut p, 0x700, true);
        }
        let b = BranchInfo::conditional(0x700);
        let (pred, f) = p.predict(&b);
        let c = f.provider_centered();
        assert_eq!(c >= 0, pred);
        assert_eq!(c.rem_euclid(2), 1, "centered value must be odd: {c}");
    }
}
