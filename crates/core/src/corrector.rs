//! The Statistical Corrector predictor (§5.3) and its local-history
//! variant, LSC (§6).
//!
//! TAGE is excellent on strongly history-correlated branches but performs
//! *worse than a wide PC-indexed counter* on branches that are merely
//! statistically biased. The Statistical Corrector watches (address,
//! history, TAGE prediction) tuples through a small GEHL-like adder tree
//! and **reverts** the TAGE prediction when it disagrees with sufficient
//! magnitude (a dynamic threshold adapted so reverting stays beneficial,
//! like the agree predictor crossed with GEHL's adaptive training).
//!
//! [`CorrectorTables`] is the shared adder-tree core; [`Gsc`] indexes it
//! with global history (the ISL-TAGE corrector: 4 tables × 1K × 6-bit,
//! history lengths 0/6/10/17), [`Lsc`] with per-branch local history (the
//! TAGE-LSC corrector: 5 tables × 1K × 6-bit, local lengths 0/4/10/17/31,
//! plus a 32-entry local history table, §6.1).

use simkit::bits::mask;
use simkit::counter::SignedCounter;
use simkit::history::{FoldedHistory, GlobalHistory, LocalHistories};
use simkit::stats::AccessStats;
use simkit::threshold::AdaptiveThreshold;

/// Maximum corrector table count (fixed-size snapshots).
pub const MAX_SC_TABLES: usize = 8;

/// In-flight snapshot of one corrector read.
#[derive(Clone, Copy, Debug)]
pub struct CorrectorFlight {
    /// Per-table entry indices.
    pub indices: [u16; MAX_SC_TABLES],
    /// Per-table counter values read at fetch.
    pub ctrs: [i16; MAX_SC_TABLES],
    /// Adder-tree sum (incl. the 8× centered TAGE counter term).
    pub sum: i32,
    /// The corrector's own prediction (sign of `sum`).
    pub sc_pred: bool,
    /// The incoming (TAGE-side) prediction the corrector judged.
    pub tage_pred: bool,
    /// Whether the corrector reverts the prediction.
    pub revert: bool,
}

/// The shared adder-tree core of both statistical correctors.
#[derive(Clone, Debug)]
pub struct CorrectorTables {
    tables: Vec<Vec<SignedCounter>>,
    index_bits: u32,
    ctr_bits: u8,
    revert_th: AdaptiveThreshold,
    update_th: AdaptiveThreshold,
    reverts: u64,
}

impl CorrectorTables {
    /// `num_tables` tables of `2^index_bits` counters of `ctr_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_tables` is 0 or exceeds [`MAX_SC_TABLES`].
    pub fn new(num_tables: usize, index_bits: u32, ctr_bits: u8) -> Self {
        assert!((1..=MAX_SC_TABLES).contains(&num_tables));
        Self {
            tables: vec![vec![SignedCounter::new(ctr_bits); 1 << index_bits]; num_tables],
            index_bits,
            ctr_bits,
            // Reverting needs clear margin; training fires more freely.
            revert_th: AdaptiveThreshold::new(12, 4, 255),
            update_th: AdaptiveThreshold::new(18, 4, 255),
            reverts: 0,
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Index mask.
    #[inline]
    pub fn index_mask(&self) -> u64 {
        mask(self.index_bits)
    }

    /// Reads the tables at the given indices and makes the revert
    /// decision for the incoming prediction.
    pub fn read(
        &mut self,
        indices: &[u16; MAX_SC_TABLES],
        tage_pred: bool,
        tage_centered: i32,
    ) -> CorrectorFlight {
        let mut f = CorrectorFlight {
            indices: *indices,
            ctrs: [0; MAX_SC_TABLES],
            sum: 8 * tage_centered,
            sc_pred: tage_pred,
            tage_pred,
            revert: false,
        };
        for (t, table) in self.tables.iter().enumerate() {
            let c = table[indices[t] as usize];
            f.ctrs[t] = c.get();
            f.sum += c.centered();
        }
        f.sc_pred = f.sum >= 0;
        f.revert = f.sc_pred != tage_pred && f.sum.abs() > self.revert_th.value();
        if f.revert {
            self.reverts += 1;
        }
        f
    }

    /// Retire-time update: adapts both thresholds and trains the tables
    /// GEHL-style (update on corrector error or low confidence), from the
    /// snapshot values or fresh ones per the §4 scenario.
    pub fn update(
        &mut self,
        flight: &CorrectorFlight,
        outcome: bool,
        reread: bool,
        stats: &mut AccessStats,
    ) {
        // Revert-threshold adaptation (§5.3: "adjusted at run-time in
        // order to ensure that the use of the SC predictor is beneficial"):
        // only disagreement events are informative.
        if flight.sc_pred != flight.tage_pred {
            self.revert_th.on_event(flight.sc_pred != outcome, flight.sc_pred == outcome);
        }
        let low_conf = flight.sum.abs() <= self.update_th.value();
        let sc_wrong = flight.sc_pred != outcome;
        self.update_th.on_event(sc_wrong, low_conf);
        if !(sc_wrong || low_conf) {
            return;
        }
        for t in 0..self.tables.len() {
            let idx = flight.indices[t] as usize;
            let mut c = if reread {
                self.tables[t][idx]
            } else {
                SignedCounter::with_value(self.ctr_bits, flight.ctrs[t])
            };
            c.update(outcome);
            let changed = self.tables[t][idx] != c;
            if stats.record_write(changed) {
                self.tables[t][idx] = c;
            }
        }
    }

    /// Times the corrector reverted a prediction so far.
    pub fn revert_count(&self) -> u64 {
        self.reverts
    }

    /// Current revert threshold (diagnostics).
    pub fn revert_threshold(&self) -> i32 {
        self.revert_th.value()
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.tables.len() as u64 * (1u64 << self.index_bits) * u64::from(self.ctr_bits)
    }
}

/// The global-history Statistical Corrector of ISL-TAGE (§5.3).
#[derive(Clone, Debug)]
pub struct Gsc {
    core: CorrectorTables,
    lengths: Vec<usize>,
    ghist: GlobalHistory,
    folded: Vec<FoldedHistory>,
}

impl Gsc {
    /// A GSC with the given table index width and history lengths.
    pub fn new(index_bits: u32, lengths: &[usize]) -> Self {
        let folded = lengths
            .iter()
            .map(|&l| FoldedHistory::new(l.max(1), index_bits.saturating_sub(1).max(1)))
            .collect();
        Self {
            core: CorrectorTables::new(lengths.len(), index_bits, 6),
            lengths: lengths.to_vec(),
            ghist: GlobalHistory::new(),
            folded,
        }
    }

    /// The paper's 24 Kbit configuration: 4 tables × 1K × 6-bit, history
    /// lengths (0, 6, 10, 17) — the same shortest lengths as TAGE.
    pub fn cbp_24kbit() -> Self {
        Self::new(10, &[0, 6, 10, 17])
    }

    /// Scales table sizes by `2^log2_delta` (Figure 9 sweeps).
    pub fn scaled(&self, log2_delta: i32) -> Self {
        let bits = (10 + log2_delta).clamp(6, 20) as u32;
        Self::new(bits, &self.lengths)
    }

    /// Fetch-time read + revert decision.
    pub fn predict(&mut self, pc: u64, tage_pred: bool, tage_centered: i32) -> CorrectorFlight {
        let mut indices = [0u16; MAX_SC_TABLES];
        let m = self.core.index_mask();
        for (t, &l) in self.lengths.iter().enumerate() {
            let h = if l == 0 { 0 } else { self.folded[t].value() };
            let base = (pc >> 2) ^ (pc >> 9) ^ (h << 2) ^ (h >> 3);
            indices[t] = (((base << 1) | tage_pred as u64) & m) as u16;
        }
        self.core.read(&indices, tage_pred, tage_centered)
    }

    /// Speculative history insertion (call once per conditional branch).
    pub fn on_branch(&mut self, outcome: bool) {
        self.ghist.push(outcome);
        for f in &mut self.folded {
            f.update(&self.ghist);
        }
    }

    /// Retire-time update (see [`CorrectorTables::update`]).
    pub fn update(
        &mut self,
        flight: &CorrectorFlight,
        outcome: bool,
        reread: bool,
        stats: &mut AccessStats,
    ) {
        self.core.update(flight, outcome, reread, stats);
    }

    /// Times the corrector reverted a prediction.
    pub fn revert_count(&self) -> u64 {
        self.core.revert_count()
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.core.storage_bits()
    }
}

/// The local-history Statistical Corrector of TAGE-LSC (§6).
#[derive(Clone, Debug)]
pub struct Lsc {
    core: CorrectorTables,
    lengths: Vec<u32>,
    lhist: LocalHistories,
    interleave: Option<memarray::BankSelector>,
    index_bits: u32,
}

impl Lsc {
    /// An LSC with the given table index width, local history lengths and
    /// local history table entries.
    pub fn new(index_bits: u32, lengths: &[u32], lht_entries: usize) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(1).max(1);
        Self {
            core: CorrectorTables::new(lengths.len(), index_bits, 6),
            lengths: lengths.to_vec(),
            lhist: LocalHistories::new(lht_entries, max_len),
            interleave: None,
            index_bits,
        }
    }

    /// Switches the corrector tables to 4-way bank-interleaved arrays.
    /// Per §7.1, the local components suffer more from interleaving (more
    /// entries to train per branch); callers typically double the local
    /// history table when enabling this (see
    /// [`Lsc::cbp_30kbit_interleaved`]).
    pub fn with_interleaving(mut self) -> Self {
        self.enable_interleaving();
        self
    }

    /// In-place variant of [`Lsc::with_interleaving`].
    pub fn enable_interleaving(&mut self) {
        self.interleave = Some(memarray::BankSelector::new());
    }

    /// The §7.1 cost-effective configuration: interleaved tables with a
    /// doubled (64-entry) local history table to restore accuracy.
    pub fn cbp_30kbit_interleaved() -> Self {
        Self::new(10, &[0, 4, 10, 17, 31], 64).with_interleaving()
    }

    /// The paper's ~31 Kbit configuration (§6.1): 5 tables × 1K × 6-bit
    /// with local history lengths (0, 4, 10, 17, 31) and a 32-entry
    /// direct-mapped local history table.
    pub fn cbp_30kbit() -> Self {
        Self::new(10, &[0, 4, 10, 17, 31], 32)
    }

    /// Scales table and local-history-table sizes by `2^log2_delta`
    /// (Figure 9 sweeps; §7.1 doubles the local components for
    /// bank-interleaving).
    pub fn scaled(&self, log2_delta: i32) -> Self {
        let bits = (10 + log2_delta).clamp(6, 20) as u32;
        let lht = if log2_delta >= 0 {
            self.lhist.entries() << log2_delta
        } else {
            (self.lhist.entries() >> (-log2_delta)).max(16)
        };
        Self::new(bits, &self.lengths, lht)
    }

    /// Fetch-time read + revert decision, using the speculative local
    /// history of `pc`.
    pub fn predict(&mut self, pc: u64, tage_pred: bool, tage_centered: i32) -> CorrectorFlight {
        let mut indices = [0u16; MAX_SC_TABLES];
        let m = self.core.index_mask();
        let lh = self.lhist.history(pc);
        let bank = self.interleave.as_mut().map(|sel| sel.bank(pc));
        for (t, &l) in self.lengths.iter().enumerate() {
            let h = if l == 0 { 0 } else { lh & mask(l) };
            let mixed = h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            let base = (pc >> 2) ^ (pc >> 8) ^ mixed;
            let mut idx = (((base << 1) | tage_pred as u64) & m) as usize;
            if let Some(bk) = bank {
                idx = memarray::interleaved_index(idx, bk, self.index_bits);
            }
            indices[t] = idx as u16;
        }
        self.core.read(&indices, tage_pred, tage_centered)
    }

    /// Speculative local history insertion (call once per conditional
    /// branch, fetch order). Exact on the correct path because in-flight
    /// local histories are repaired on mispredictions (§6.1's Speculative
    /// Local History Manager).
    pub fn spec_update(&mut self, pc: u64, outcome: bool) {
        self.lhist.update(pc, outcome);
    }

    /// Retire-time update (see [`CorrectorTables::update`]).
    pub fn update(
        &mut self,
        flight: &CorrectorFlight,
        outcome: bool,
        reread: bool,
        stats: &mut AccessStats,
    ) {
        self.core.update(flight, outcome, reread, stats);
    }

    /// Times the corrector reverted a prediction.
    pub fn revert_count(&self) -> u64 {
        self.core.revert_count()
    }

    /// Storage in bits (tables + local history table; the speculative
    /// manager is one entry per in-flight branch, counted like the IUM).
    pub fn storage_bits(&self) -> u64 {
        self.core.storage_bits() + self.lhist.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsc_storage_matches_paper() {
        // 4 × 1K × 6 bits = 24 Kbit.
        assert_eq!(Gsc::cbp_24kbit().storage_bits(), 24 * 1024);
    }

    #[test]
    fn lsc_storage_matches_paper() {
        // 5 × 1K × 6 = 30 Kbit tables + 32 × 31 local history bits.
        assert_eq!(Lsc::cbp_30kbit().storage_bits(), 30 * 1024 + 32 * 31);
    }

    #[test]
    fn corrector_learns_statistical_bias() {
        // A branch with 0.8 taken bias that TAGE keeps predicting
        // not-taken: the corrector must learn to revert most of the time.
        let mut gsc = Gsc::cbp_24kbit();
        let mut stats = AccessStats::default();
        let mut rng = simkit::rng::Xoshiro256::seed_from(7);
        let mut reverts_late = 0;
        let mut total_late = 0;
        for i in 0..20_000 {
            let outcome = rng.gen_bool(0.8);
            // TAGE (wrongly) predicts not-taken with a weak counter.
            let f = gsc.predict(0x400, false, -1);
            gsc.on_branch(outcome);
            gsc.update(&f, outcome, true, &mut stats);
            if i > 10_000 {
                total_late += 1;
                if f.revert {
                    reverts_late += 1;
                }
            }
        }
        let rate = reverts_late as f64 / total_late as f64;
        assert!(rate > 0.5, "corrector should revert a biased branch, rate={rate}");
    }

    #[test]
    fn corrector_agrees_with_good_predictions() {
        // When TAGE is right with strong counters, reverts must be rare.
        let mut gsc = Gsc::cbp_24kbit();
        let mut stats = AccessStats::default();
        let mut rng = simkit::rng::Xoshiro256::seed_from(8);
        let mut reverts = 0;
        for _ in 0..10_000 {
            let outcome = rng.gen_bool(0.97);
            let f = gsc.predict(0x500, true, 7);
            gsc.on_branch(outcome);
            gsc.update(&f, outcome, true, &mut stats);
            if f.revert {
                reverts += 1;
            }
        }
        assert!(reverts < 500, "spurious reverts: {reverts}");
    }

    #[test]
    fn lsc_learns_local_pattern() {
        // Period-5 local pattern under a *wrong* incoming prediction: the
        // LSC should learn to fix the mispredicted phases.
        let pattern = [true, true, false, true, false];
        let mut lsc = Lsc::cbp_30kbit();
        let mut stats = AccessStats::default();
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..30_000 {
            let outcome = pattern[i % 5];
            // Incoming prediction: always taken with medium confidence.
            let f = lsc.predict(0x600, true, 3);
            let final_pred = if f.revert { f.sc_pred } else { true };
            lsc.spec_update(0x600, outcome);
            lsc.update(&f, outcome, true, &mut stats);
            if i > 15_000 {
                total += 1;
                if final_pred != outcome {
                    wrong += 1;
                }
            }
        }
        let rate = wrong as f64 / total as f64;
        // The pattern is 60% taken; blind "taken" would be 40% wrong.
        assert!(rate < 0.15, "LSC should correct the pattern, rate={rate}");
    }

    #[test]
    fn scenario_snapshot_vs_reread() {
        let mut gsc = Gsc::cbp_24kbit();
        let mut stats = AccessStats::default();
        // Two updates from the same stale snapshot only advance once.
        let f1 = gsc.predict(0x700, true, 1);
        gsc.update(&f1, true, false, &mut stats);
        gsc.update(&f1, true, false, &mut stats);
        let f2 = gsc.predict(0x700, true, 1);
        for t in 0..4 {
            assert!(f2.ctrs[t] - f1.ctrs[t] <= 1, "stale snapshot advanced twice");
        }
    }

    #[test]
    fn scaling_changes_storage() {
        let g = Gsc::cbp_24kbit();
        assert_eq!(g.scaled(2).storage_bits(), g.storage_bits() * 4);
        let l = Lsc::cbp_30kbit();
        assert!(l.scaled(1).storage_bits() > l.storage_bits());
        assert!(l.scaled(-1).storage_bits() < l.storage_bits());
    }
}
