//! Tagged predictor components (tables T1..TM) and the [`TaggedBank`]
//! sub-stage that groups them.
//!
//! Each entry holds a 3-bit prediction counter `ctr` (sign = prediction),
//! a partial tag and a useful bit `u` (Figure 2 of the paper). Tables are
//! indexed with a hash of the PC, a folded global history of the table's
//! geometric length, and folded path history; tags use two differently
//! folded histories so index- and tag-aliasing are decorrelated.
//!
//! [`TaggedBank`] owns the table group *and its allocation/update
//! policy*: the randomized non-consecutive allocation of §3.2.1, the
//! 8-bit tick monitor driving the global u-bit reset of §3.2.2, and the
//! provider-entry training write. It is one of the three separately
//! constructible provider sub-stages (see `crate::provider`).

use crate::config::{TageConfig, MAX_TAGGED};
use memarray::interleaved_index;
use simkit::bits::mask;
use simkit::counter::SignedCounter;
use simkit::history::{FoldedHistory, GlobalHistory, PathHistory};
use simkit::stats::AccessStats;

/// One entry of a tagged component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaggedEntry {
    /// Prediction counter; sign provides the prediction.
    pub ctr: SignedCounter,
    /// Partial tag.
    pub tag: u16,
    /// Useful bit (replacement guard, §3.2.2).
    pub u: bool,
}

/// The in-memory representation of one entry: the counter *value* only
/// (its width is a per-table constant), packed to 4 bytes so the large
/// quasi-randomly indexed tables waste as little cache as possible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PackedEntry {
    ctr: i8,
    tag: u16,
    u: bool,
}

/// A tagged component table.
#[derive(Clone, Debug)]
pub struct TaggedTable {
    entries: Vec<PackedEntry>,
    size_bits: u32,
    tag_width: u8,
    ctr_bits: u8,
    hist_len: usize,
    table_num: usize,
    folded_idx: FoldedHistory,
    folded_tag0: FoldedHistory,
    folded_tag1: FoldedHistory,
}

impl TaggedTable {
    /// Creates table `table_num` (1-based) with `2^size_bits` entries,
    /// `tag_width`-bit tags and history length `hist_len`.
    pub fn new(table_num: usize, size_bits: u32, tag_width: u8, hist_len: usize, ctr_bits: u8) -> Self {
        assert!(hist_len >= 1, "tagged table history length must be positive");
        // The packed counter is an i8; every configured width fits.
        assert!(ctr_bits <= 8, "tagged counter width {ctr_bits} exceeds the packed entry");
        let empty = PackedEntry { ctr: SignedCounter::new(ctr_bits).get() as i8, tag: 0, u: false };
        Self {
            entries: vec![empty; 1 << size_bits],
            size_bits,
            tag_width,
            ctr_bits,
            hist_len,
            table_num,
            folded_idx: FoldedHistory::new(hist_len, size_bits),
            folded_tag0: FoldedHistory::new(hist_len, u32::from(tag_width)),
            folded_tag1: FoldedHistory::new(hist_len, u32::from(tag_width).saturating_sub(1).max(1)),
        }
    }

    /// Advances the folded histories after a [`GlobalHistory::push`].
    /// All three folds share this table's history length, so the two
    /// history bits they consume are read once.
    #[inline]
    pub fn update_history(&mut self, gh: &GlobalHistory) {
        let in_bit = gh.bit(0);
        let out_bit = gh.bit(self.hist_len);
        self.folded_idx.update_split(in_bit, out_bit);
        self.folded_tag0.update_split(in_bit, out_bit);
        self.folded_tag1.update_split(in_bit, out_bit);
    }

    /// Table index for this (PC, history, path).
    #[inline]
    pub fn index(&self, pc: u64, path: &PathHistory) -> usize {
        let pc = pc >> 2;
        let pmix = (path.value() & mask(16.min(self.hist_len as u32)))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            >> (64 - self.size_bits);
        let h = self.folded_idx.value();
        ((pc ^ (pc >> (self.size_bits as u64 - (self.table_num as u64 & 3))) ^ h ^ pmix) as usize)
            & ((1 << self.size_bits) - 1)
    }

    /// Partial tag for this (PC, history).
    #[inline]
    pub fn tag(&self, pc: u64) -> u16 {
        let pc = pc >> 2;
        ((pc ^ self.folded_tag0.value() ^ (self.folded_tag1.value() << 1)) & mask(u32::from(self.tag_width)))
            as u16
    }

    /// Reads an entry.
    #[inline]
    pub fn entry(&self, index: usize) -> TaggedEntry {
        let e = self.entries[index];
        TaggedEntry {
            ctr: SignedCounter::with_value(self.ctr_bits, i16::from(e.ctr)),
            tag: e.tag,
            u: e.u,
        }
    }

    /// Hints the cache hierarchy that `index` is about to be read. The
    /// tagged tables are large and indexed quasi-randomly, so a predict or
    /// retire re-read issues one likely-missing load per component;
    /// prefetching all components up front lets those misses overlap
    /// instead of serializing. Purely a performance hint — never changes
    /// results.
    // SAFETY: the one sanctioned unsafe in the workspace — see the audit
    // on the block below. Scoped allow under the crate-level
    // `#![deny(unsafe_code)]`; any new unsafe elsewhere fails the build.
    #[allow(unsafe_code)]
    #[inline]
    pub fn prefetch(&self, index: usize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the pointer is in-bounds (`index` is masked to the table
        // size by every caller and checked here) and prefetch has no
        // memory effects.
        if index < self.entries.len() {
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                    self.entries.as_ptr().add(index).cast::<i8>(),
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = index;
    }

    /// Writes an entry, returning whether the stored value changed.
    ///
    /// Counter widths are uniform within a table, so comparing packed
    /// values is exactly the old whole-entry comparison.
    #[inline]
    pub fn write(&mut self, index: usize, entry: TaggedEntry) -> bool {
        let packed = PackedEntry { ctr: entry.ctr.get() as i8, tag: entry.tag, u: entry.u };
        let changed = self.entries[index] != packed;
        self.entries[index] = packed;
        changed
    }

    /// Clears every useful bit (the §3.2.2 global reset).
    pub fn reset_useful(&mut self) {
        for e in &mut self.entries {
            e.u = false;
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Geometric history length of this table.
    pub fn hist_len(&self) -> usize {
        self.hist_len
    }

    /// log2 of the entry count (the bank-interleaving index width).
    pub fn size_bits(&self) -> u32 {
        self.size_bits
    }

    /// Tag width in bits.
    pub fn tag_width(&self) -> u8 {
        self.tag_width
    }

    /// Storage in bits (ctr + u + tag per entry).
    pub fn storage_bits(&self, ctr_bits: u8) -> u64 {
        self.entries.len() as u64 * (u64::from(ctr_bits) + 1 + u64::from(self.tag_width))
    }

    /// Fraction of entries with the useful bit set (diagnostics).
    pub fn useful_fraction(&self) -> f64 {
        self.entries.iter().filter(|e| e.u).count() as f64 / self.entries.len() as f64
    }
}

/// The tagged-table sub-stage: tables T1..TM plus their allocation and
/// update policy (§3.2). Owns the per-bank control state the fused
/// predictor used to carry — the 8-bit allocation tick, its saturation
/// threshold, and the LFSR that randomizes allocation starts.
#[derive(Clone, Debug)]
pub struct TaggedBank {
    tables: Vec<TaggedTable>,
    tick: u16,
    tick_max: u16,
    lfsr: u64,
    max_alloc: usize,
    ctr_bits: u8,
}

impl TaggedBank {
    /// Builds the bank a configuration describes.
    pub fn new(cfg: &TageConfig) -> Self {
        let lengths = cfg.history_lengths();
        let tables = (0..cfg.num_tagged)
            .map(|i| {
                TaggedTable::new(
                    i + 1,
                    cfg.table_size_bits[i],
                    cfg.tag_widths[i],
                    lengths[i],
                    cfg.ctr_bits,
                )
            })
            .collect();
        Self {
            tables,
            tick: 0,
            tick_max: 255,
            lfsr: 0x1234_5678_9ABC_DEF1,
            max_alloc: cfg.max_alloc,
            ctr_bits: cfg.ctr_bits,
        }
    }

    /// Number of tagged tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the bank has no tables (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The tables, in component order.
    pub fn tables(&self) -> &[TaggedTable] {
        &self.tables
    }

    /// Prediction counter width.
    pub fn ctr_bits(&self) -> u8 {
        self.ctr_bits
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        self.lfsr ^= self.lfsr << 13;
        self.lfsr ^= self.lfsr >> 7;
        self.lfsr ^= self.lfsr << 17;
        self.lfsr
    }

    /// Fetch-time key computation: per-table index (bank-interleaved when
    /// `ibank` is set) and tag, prefetching each entry so the reads in
    /// [`TaggedBank::read_flight`] overlap their cache misses.
    #[inline]
    pub fn compute_keys(
        &self,
        pc: u64,
        path: &PathHistory,
        ibank: Option<u8>,
        indices: &mut [u32; MAX_TAGGED],
        tags: &mut [u16; MAX_TAGGED],
    ) {
        for (t, table) in self.tables.iter().enumerate() {
            let mut idx = table.index(pc, path);
            if let Some(bk) = ibank {
                idx = interleaved_index(idx, bk, table.size_bits());
            }
            indices[t] = idx as u32;
            tags[t] = table.tag(pc);
            table.prefetch(idx);
        }
    }

    /// Prefetches every table's entry at the carried indices (the
    /// retire-time re-read path).
    #[inline]
    pub fn prefetch_all(&self, indices: &[u32; MAX_TAGGED]) {
        for (t, table) in self.tables.iter().enumerate() {
            table.prefetch(indices[t] as usize);
        }
    }

    /// Reads every table at the carried indices, filling counter values
    /// and useful bits; returns the tag-hit mask.
    #[inline]
    pub fn read_flight(
        &self,
        indices: &[u32; MAX_TAGGED],
        tags: &[u16; MAX_TAGGED],
        ctrs: &mut [i16; MAX_TAGGED],
        us: &mut [bool; MAX_TAGGED],
    ) -> u16 {
        let mut hits = 0u16;
        for (t, table) in self.tables.iter().enumerate() {
            let e = table.entry(indices[t] as usize);
            ctrs[t] = e.ctr.get();
            us[t] = e.u;
            if e.tag == tags[t] {
                hits |= 1 << t;
            }
        }
        hits
    }

    /// Trains the provider entry at retire (§3.2): the counter moves
    /// toward the outcome from the carried (possibly stale) value
    /// `ctr_val`; the useful bit is set when `set_u`. Counter and u bit
    /// live in the same entry — one write.
    pub fn train_provider(
        &mut self,
        table: usize,
        index: usize,
        ctr_val: i16,
        outcome: bool,
        set_u: bool,
        stats: &mut AccessStats,
    ) {
        let mut e = self.tables[table].entry(index);
        let mut c = SignedCounter::with_value(self.ctr_bits, ctr_val);
        c.update(outcome);
        e.ctr = c;
        if set_u {
            e.u = true;
        }
        let changed = self.tables[table].write(index, e);
        stats.record_write(changed);
    }

    /// Allocates new entries on mispredictions (§3.2.1) and maintains the
    /// u-bit reset monitor (§3.2.2). `first` is the first table eligible
    /// for allocation (one past the provider).
    pub fn allocate(
        &mut self,
        indices: &[u32; MAX_TAGGED],
        tags: &[u16; MAX_TAGGED],
        us: &[bool; MAX_TAGGED],
        first: usize,
        outcome: bool,
        stats: &mut AccessStats,
    ) {
        let m = self.tables.len();
        if first >= m {
            return;
        }
        // Randomized start (avoids ping-pong between competing branches).
        let mut k = first;
        if m - first > 1 && self.next_rand() & 1 == 0 {
            k += 1;
        }
        let mut allocated = 0;
        while k < m && allocated < self.max_alloc {
            if !us[k] {
                let entry = TaggedEntry {
                    ctr: SignedCounter::with_value(self.ctr_bits, if outcome { 0 } else { -1 }),
                    tag: tags[k],
                    u: false,
                };
                let idx = indices[k] as usize;
                let changed = self.tables[k].write(idx, entry);
                stats.record_write(changed);
                // Success: decrement the failure monitor.
                self.tick = self.tick.saturating_sub(1);
                allocated += 1;
                k += 2; // non-consecutive tables
            } else {
                // Failure: increment; on saturation reset all u bits.
                self.tick += 1;
                if self.tick >= self.tick_max {
                    for t in &mut self.tables {
                        t.reset_useful();
                    }
                    self.tick = 0;
                }
                k += 1;
            }
        }
    }

    /// Advances every table's folded histories after a
    /// [`GlobalHistory::push`].
    #[inline]
    pub fn update_history(&mut self, gh: &GlobalHistory) {
        for t in &mut self.tables {
            t.update_history(gh);
        }
    }

    /// Total bank storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.tables.iter().map(|t| t.storage_bits(self.ctr_bits)).sum()
    }

    /// Fraction of useful bits currently set, per table (diagnostics).
    pub fn useful_fractions(&self) -> Vec<f64> {
        self.tables.iter().map(TaggedTable::useful_fraction).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TaggedTable {
        TaggedTable::new(3, 10, 9, 17, 3)
    }

    #[test]
    fn index_and_tag_in_range() {
        let mut gh = GlobalHistory::new();
        let mut path = PathHistory::new(16);
        let mut t = table();
        let mut rng = simkit::rng::Xoshiro256::seed_from(1);
        for _ in 0..1000 {
            gh.push(rng.gen_bool(0.5));
            t.update_history(&gh);
            path.push(rng.next_u64());
            let pc = rng.next_u64();
            assert!(t.index(pc, &path) < t.len());
            assert!(t.tag(pc) < (1 << 9));
        }
    }

    #[test]
    fn different_histories_different_indices() {
        let mut gh = GlobalHistory::new();
        let path = PathHistory::new(16);
        let mut t = table();
        let pc = 0x40_0040;
        let mut indices = std::collections::HashSet::new();
        let mut rng = simkit::rng::Xoshiro256::seed_from(2);
        for _ in 0..64 {
            gh.push(rng.gen_bool(0.5));
            t.update_history(&gh);
            indices.insert(t.index(pc, &path));
        }
        assert!(indices.len() > 30, "indices poorly spread: {}", indices.len());
    }

    #[test]
    fn index_spread_is_roughly_uniform() {
        let mut gh = GlobalHistory::new();
        let mut path = PathHistory::new(16);
        let mut t = table();
        let mut counts = vec![0u32; t.len()];
        let mut rng = simkit::rng::Xoshiro256::seed_from(3);
        for _ in 0..40_000 {
            gh.push(rng.gen_bool(0.5));
            t.update_history(&gh);
            path.push(rng.next_u64());
            counts[t.index(rng.next_u64() << 2, &path)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 160 && min > 5, "spread min={min} max={max}");
    }

    #[test]
    fn write_detects_silent() {
        let mut t = table();
        let e = t.entry(5);
        assert!(!t.write(5, e), "identical write should be silent");
        let mut e2 = e;
        e2.tag = 0x1F;
        assert!(t.write(5, e2));
    }

    #[test]
    fn reset_useful_clears_all() {
        let mut t = table();
        for i in 0..t.len() {
            let mut e = t.entry(i);
            e.u = true;
            t.write(i, e);
        }
        assert!((t.useful_fraction() - 1.0).abs() < 1e-9);
        t.reset_useful();
        assert_eq!(t.useful_fraction(), 0.0);
    }

    #[test]
    fn storage_accounting() {
        let t = table();
        assert_eq!(t.storage_bits(3), 1024 * (3 + 1 + 9));
    }
}
