//! Tagged predictor components (tables T1..TM).
//!
//! Each entry holds a 3-bit prediction counter `ctr` (sign = prediction),
//! a partial tag and a useful bit `u` (Figure 2 of the paper). Tables are
//! indexed with a hash of the PC, a folded global history of the table's
//! geometric length, and folded path history; tags use two differently
//! folded histories so index- and tag-aliasing are decorrelated.

use simkit::bits::mask;
use simkit::counter::SignedCounter;
use simkit::history::{FoldedHistory, GlobalHistory, PathHistory};

/// One entry of a tagged component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaggedEntry {
    /// Prediction counter; sign provides the prediction.
    pub ctr: SignedCounter,
    /// Partial tag.
    pub tag: u16,
    /// Useful bit (replacement guard, §3.2.2).
    pub u: bool,
}

/// The in-memory representation of one entry: the counter *value* only
/// (its width is a per-table constant), packed to 4 bytes so the large
/// quasi-randomly indexed tables waste as little cache as possible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PackedEntry {
    ctr: i8,
    tag: u16,
    u: bool,
}

/// A tagged component table.
#[derive(Clone, Debug)]
pub struct TaggedTable {
    entries: Vec<PackedEntry>,
    size_bits: u32,
    tag_width: u8,
    ctr_bits: u8,
    hist_len: usize,
    table_num: usize,
    folded_idx: FoldedHistory,
    folded_tag0: FoldedHistory,
    folded_tag1: FoldedHistory,
}

impl TaggedTable {
    /// Creates table `table_num` (1-based) with `2^size_bits` entries,
    /// `tag_width`-bit tags and history length `hist_len`.
    pub fn new(table_num: usize, size_bits: u32, tag_width: u8, hist_len: usize, ctr_bits: u8) -> Self {
        assert!(hist_len >= 1, "tagged table history length must be positive");
        // The packed counter is an i8; every configured width fits.
        assert!(ctr_bits <= 8, "tagged counter width {ctr_bits} exceeds the packed entry");
        let empty = PackedEntry { ctr: SignedCounter::new(ctr_bits).get() as i8, tag: 0, u: false };
        Self {
            entries: vec![empty; 1 << size_bits],
            size_bits,
            tag_width,
            ctr_bits,
            hist_len,
            table_num,
            folded_idx: FoldedHistory::new(hist_len, size_bits),
            folded_tag0: FoldedHistory::new(hist_len, u32::from(tag_width)),
            folded_tag1: FoldedHistory::new(hist_len, u32::from(tag_width).saturating_sub(1).max(1)),
        }
    }

    /// Advances the folded histories after a [`GlobalHistory::push`].
    /// All three folds share this table's history length, so the two
    /// history bits they consume are read once.
    #[inline]
    pub fn update_history(&mut self, gh: &GlobalHistory) {
        let in_bit = gh.bit(0);
        let out_bit = gh.bit(self.hist_len);
        self.folded_idx.update_split(in_bit, out_bit);
        self.folded_tag0.update_split(in_bit, out_bit);
        self.folded_tag1.update_split(in_bit, out_bit);
    }

    /// Table index for this (PC, history, path).
    #[inline]
    pub fn index(&self, pc: u64, path: &PathHistory) -> usize {
        let pc = pc >> 2;
        let pmix = (path.value() & mask(16.min(self.hist_len as u32)))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            >> (64 - self.size_bits);
        let h = self.folded_idx.value();
        ((pc ^ (pc >> (self.size_bits as u64 - (self.table_num as u64 & 3))) ^ h ^ pmix) as usize)
            & ((1 << self.size_bits) - 1)
    }

    /// Partial tag for this (PC, history).
    #[inline]
    pub fn tag(&self, pc: u64) -> u16 {
        let pc = pc >> 2;
        ((pc ^ self.folded_tag0.value() ^ (self.folded_tag1.value() << 1)) & mask(u32::from(self.tag_width)))
            as u16
    }

    /// Reads an entry.
    #[inline]
    pub fn entry(&self, index: usize) -> TaggedEntry {
        let e = self.entries[index];
        TaggedEntry {
            ctr: SignedCounter::with_value(self.ctr_bits, i16::from(e.ctr)),
            tag: e.tag,
            u: e.u,
        }
    }

    /// Hints the cache hierarchy that `index` is about to be read. The
    /// tagged tables are large and indexed quasi-randomly, so a predict or
    /// retire re-read issues one likely-missing load per component;
    /// prefetching all components up front lets those misses overlap
    /// instead of serializing. Purely a performance hint — never changes
    /// results.
    #[inline]
    pub fn prefetch(&self, index: usize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the pointer is in-bounds (`index` is masked to the table
        // size by every caller and checked here) and prefetch has no
        // memory effects.
        if index < self.entries.len() {
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                    self.entries.as_ptr().add(index).cast::<i8>(),
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = index;
    }

    /// Writes an entry, returning whether the stored value changed.
    ///
    /// Counter widths are uniform within a table, so comparing packed
    /// values is exactly the old whole-entry comparison.
    #[inline]
    pub fn write(&mut self, index: usize, entry: TaggedEntry) -> bool {
        let packed = PackedEntry { ctr: entry.ctr.get() as i8, tag: entry.tag, u: entry.u };
        let changed = self.entries[index] != packed;
        self.entries[index] = packed;
        changed
    }

    /// Clears every useful bit (the §3.2.2 global reset).
    pub fn reset_useful(&mut self) {
        for e in &mut self.entries {
            e.u = false;
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Geometric history length of this table.
    pub fn hist_len(&self) -> usize {
        self.hist_len
    }

    /// Tag width in bits.
    pub fn tag_width(&self) -> u8 {
        self.tag_width
    }

    /// Storage in bits (ctr + u + tag per entry).
    pub fn storage_bits(&self, ctr_bits: u8) -> u64 {
        self.entries.len() as u64 * (u64::from(ctr_bits) + 1 + u64::from(self.tag_width))
    }

    /// Fraction of entries with the useful bit set (diagnostics).
    pub fn useful_fraction(&self) -> f64 {
        self.entries.iter().filter(|e| e.u).count() as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TaggedTable {
        TaggedTable::new(3, 10, 9, 17, 3)
    }

    #[test]
    fn index_and_tag_in_range() {
        let mut gh = GlobalHistory::new();
        let mut path = PathHistory::new(16);
        let mut t = table();
        let mut rng = simkit::rng::Xoshiro256::seed_from(1);
        for _ in 0..1000 {
            gh.push(rng.gen_bool(0.5));
            t.update_history(&gh);
            path.push(rng.next_u64());
            let pc = rng.next_u64();
            assert!(t.index(pc, &path) < t.len());
            assert!(t.tag(pc) < (1 << 9));
        }
    }

    #[test]
    fn different_histories_different_indices() {
        let mut gh = GlobalHistory::new();
        let path = PathHistory::new(16);
        let mut t = table();
        let pc = 0x40_0040;
        let mut indices = std::collections::HashSet::new();
        let mut rng = simkit::rng::Xoshiro256::seed_from(2);
        for _ in 0..64 {
            gh.push(rng.gen_bool(0.5));
            t.update_history(&gh);
            indices.insert(t.index(pc, &path));
        }
        assert!(indices.len() > 30, "indices poorly spread: {}", indices.len());
    }

    #[test]
    fn index_spread_is_roughly_uniform() {
        let mut gh = GlobalHistory::new();
        let mut path = PathHistory::new(16);
        let mut t = table();
        let mut counts = vec![0u32; t.len()];
        let mut rng = simkit::rng::Xoshiro256::seed_from(3);
        for _ in 0..40_000 {
            gh.push(rng.gen_bool(0.5));
            t.update_history(&gh);
            path.push(rng.next_u64());
            counts[t.index(rng.next_u64() << 2, &path)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 160 && min > 5, "spread min={min} max={max}");
    }

    #[test]
    fn write_detects_silent() {
        let mut t = table();
        let e = t.entry(5);
        assert!(!t.write(5, e), "identical write should be silent");
        let mut e2 = e;
        e2.tag = 0x1F;
        assert!(t.write(5, e2));
    }

    #[test]
    fn reset_useful_clears_all() {
        let mut t = table();
        for i in 0..t.len() {
            let mut e = t.entry(i);
            e.u = true;
            t.write(i, e);
        }
        assert!((t.useful_fraction() - 1.0).abs() < 1e-9);
        t.reset_useful();
        assert_eq!(t.useful_fraction(), 0.0);
    }

    #[test]
    fn storage_accounting() {
        let t = table();
        assert_eq!(t.storage_bits(3), 1024 * (3 + 1 + 9));
    }
}
