//! Chooser policies: the provider/alternate arbitration sub-stage.
//!
//! TAGE's final direction is a *policy* over two candidates — the
//! longest-hitting component's prediction and the alternate (§3.1). The
//! paper's policy is `USE_ALT_ON_NA`: a single 4-bit counter learning
//! whether weak ("possibly newly allocated") provider entries should
//! defer to their alternates. This module implements that policy behind
//! the [`simkit::Chooser`] contract, plus two ablation alternates
//! selectable from the spec grammar (`tage(chooser=...)`):
//!
//! | token     | policy |
//! |-----------|--------|
//! | `altweak` | §3.1 `USE_ALT_ON_NA` (default; bit-identical to the fused predictor) |
//! | `always`  | always trust the provider (the no-chooser baseline)    |
//! | `conf`    | confidence-weighted: trust whichever source counter is stronger |
//! | `table`   | per-PC 2-bit counter table — `USE_ALT_ON_NA` selected by branch address (ISL-TAGE keeps several such counters) |
//!
//! Choosers report **table** storage only: the paper's 4-bit
//! `USE_ALT_ON_NA` counter is control state (like the allocation tick
//! counter and the LFSR), excluded from §3.4's 65,408-byte figure — so
//! the three scalar policies budget at 0 bits. `table` is the exception:
//! its per-PC counter array is real indexed storage and budgets like any
//! other table ([`PerPcTable::STORAGE_BITS`]).

use simkit::chooser::{Chooser, ChooserView};
use simkit::counter::SignedCounter;

/// The §3.1 `USE_ALT_ON_NA` policy: defer to the alternate when the
/// provider counter is weak and the counter says alternates have been
/// winning.
#[derive(Clone, Debug)]
pub struct AltOnWeak {
    use_alt_on_na: SignedCounter,
}

impl AltOnWeak {
    /// The paper's 4-bit counter, starting at 0 (trust the alternate).
    pub fn new() -> Self {
        Self { use_alt_on_na: SignedCounter::new(4) }
    }

    /// Current counter value (diagnostics).
    pub fn bias(&self) -> i16 {
        self.use_alt_on_na.get()
    }
}

impl Default for AltOnWeak {
    fn default() -> Self {
        Self::new()
    }
}

impl Chooser for AltOnWeak {
    fn token(&self) -> &'static str {
        "altweak"
    }

    fn choose(&self, v: &ChooserView) -> bool {
        if v.has_provider && v.provider_weak && self.use_alt_on_na.get() >= 0 {
            v.alt_pred
        } else {
            v.provider_pred
        }
    }

    fn update(&mut self, v: &ChooserView, outcome: bool) {
        // Learn only from discriminating weak-provider cases (§3.1).
        if v.has_provider && v.provider_weak && v.provider_pred != v.alt_pred {
            self.use_alt_on_na.update(v.alt_pred == outcome);
        }
    }
}

/// The no-chooser baseline: the provider's prediction, unconditionally.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysProvider;

impl Chooser for AlwaysProvider {
    fn token(&self) -> &'static str {
        "always"
    }

    fn choose(&self, v: &ChooserView) -> bool {
        v.provider_pred
    }
}

/// Confidence-weighted arbitration: trust whichever candidate's source
/// counter sits further from its weak point. Stateless — a pure function
/// of the two centered-counter magnitudes.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConfidenceWeighted;

impl Chooser for ConfidenceWeighted {
    fn token(&self) -> &'static str {
        "conf"
    }

    fn choose(&self, v: &ChooserView) -> bool {
        if v.has_provider && v.alt_strength > v.provider_strength {
            v.alt_pred
        } else {
            v.provider_pred
        }
    }
}

/// Per-PC arbitration: a table of 2-bit `USE_ALT_ON_NA` counters
/// selected by branch address. The paper's single counter assumes one
/// global weak-provider policy fits every branch; ISL-TAGE observes it
/// does not and keeps several counters selected by PC. Same semantics as
/// [`AltOnWeak`] otherwise: the counter only arbitrates weak providers
/// and only trains on discriminating cases.
#[derive(Clone, Debug)]
pub struct PerPcTable {
    counters: Vec<SignedCounter>,
}

impl PerPcTable {
    /// Table entries (power of two; the index is a folded PC hash).
    pub const ENTRIES: usize = 1024;

    /// Counter width in bits ("2bc": a 2-bit saturating counter).
    pub const COUNTER_BITS: u8 = 2;

    /// Chooser-owned table storage: `ENTRIES` × 2-bit counters.
    pub const STORAGE_BITS: u64 = (Self::ENTRIES as u64) * (Self::COUNTER_BITS as u64);

    /// A fresh table, every counter at 0 (trust the alternate, like the
    /// paper's counter start).
    pub fn new() -> Self {
        Self { counters: vec![SignedCounter::new(Self::COUNTER_BITS); Self::ENTRIES] }
    }

    /// Folded-PC table index. Branch addresses share low-bit alignment,
    /// so fold a higher slice in before masking.
    fn index(pc: u64) -> usize {
        (((pc >> 2) ^ (pc >> 12)) as usize) & (Self::ENTRIES - 1)
    }

    /// This PC's counter value (diagnostics).
    pub fn bias(&self, pc: u64) -> i16 {
        self.counters[Self::index(pc)].get()
    }
}

impl Default for PerPcTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Chooser for PerPcTable {
    fn token(&self) -> &'static str {
        "table"
    }

    fn storage_bits(&self) -> u64 {
        Self::STORAGE_BITS
    }

    fn choose(&self, v: &ChooserView) -> bool {
        if v.has_provider && v.provider_weak && self.counters[Self::index(v.pc)].get() >= 0 {
            v.alt_pred
        } else {
            v.provider_pred
        }
    }

    fn update(&mut self, v: &ChooserView, outcome: bool) {
        if v.has_provider && v.provider_weak && v.provider_pred != v.alt_pred {
            self.counters[Self::index(v.pc)].update(v.alt_pred == outcome);
        }
    }
}

/// Which chooser policy fills the slot — the spec-grammar form
/// (`tage(chooser=...)`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ChooserChoice {
    /// [`AltOnWeak`], the paper's policy — the default.
    #[default]
    AltOnWeak,
    /// [`AlwaysProvider`].
    AlwaysProvider,
    /// [`ConfidenceWeighted`].
    Confidence,
    /// [`PerPcTable`].
    Table,
}

impl ChooserChoice {
    /// The spec-grammar token.
    pub fn token(self) -> &'static str {
        match self {
            ChooserChoice::AltOnWeak => "altweak",
            ChooserChoice::AlwaysProvider => "always",
            ChooserChoice::Confidence => "conf",
            ChooserChoice::Table => "table",
        }
    }

    /// Parses a spec-grammar token.
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "altweak" => Some(ChooserChoice::AltOnWeak),
            "always" => Some(ChooserChoice::AlwaysProvider),
            "conf" => Some(ChooserChoice::Confidence),
            "table" => Some(ChooserChoice::Table),
            _ => None,
        }
    }

    /// Builds the slot this choice describes.
    pub fn build(self) -> ChooserSlot {
        match self {
            ChooserChoice::AltOnWeak => ChooserSlot::AltOnWeak(AltOnWeak::new()),
            ChooserChoice::AlwaysProvider => ChooserSlot::Always(AlwaysProvider),
            ChooserChoice::Confidence => ChooserSlot::Confidence(ConfidenceWeighted),
            ChooserChoice::Table => ChooserSlot::Table(PerPcTable::new()),
        }
    }
}

/// The instantiated chooser sub-stage: the spec-constructible policy set
/// behind one clonable type (every variant implements [`Chooser`]; the
/// slot delegates, so it is itself a [`Chooser`]).
#[derive(Clone, Debug)]
pub enum ChooserSlot {
    /// See [`AltOnWeak`].
    AltOnWeak(AltOnWeak),
    /// See [`AlwaysProvider`].
    Always(AlwaysProvider),
    /// See [`ConfidenceWeighted`].
    Confidence(ConfidenceWeighted),
    /// See [`PerPcTable`].
    Table(PerPcTable),
}

impl ChooserSlot {
    /// Which choice built this slot.
    pub fn choice(&self) -> ChooserChoice {
        match self {
            ChooserSlot::AltOnWeak(_) => ChooserChoice::AltOnWeak,
            ChooserSlot::Always(_) => ChooserChoice::AlwaysProvider,
            ChooserSlot::Confidence(_) => ChooserChoice::Confidence,
            ChooserSlot::Table(_) => ChooserChoice::Table,
        }
    }

    /// The `USE_ALT_ON_NA` counter value, when this is the paper's
    /// policy (diagnostics).
    pub fn alt_on_weak_bias(&self) -> Option<i16> {
        match self {
            ChooserSlot::AltOnWeak(c) => Some(c.bias()),
            _ => None,
        }
    }

    /// The installed policy as a trait object — one delegation point for
    /// every current and future [`Chooser`] method.
    fn as_dyn(&self) -> &dyn Chooser {
        match self {
            ChooserSlot::AltOnWeak(c) => c,
            ChooserSlot::Always(c) => c,
            ChooserSlot::Confidence(c) => c,
            ChooserSlot::Table(c) => c,
        }
    }

    /// Mutable twin of [`ChooserSlot::as_dyn`].
    fn as_dyn_mut(&mut self) -> &mut dyn Chooser {
        match self {
            ChooserSlot::AltOnWeak(c) => c,
            ChooserSlot::Always(c) => c,
            ChooserSlot::Confidence(c) => c,
            ChooserSlot::Table(c) => c,
        }
    }
}

impl Chooser for ChooserSlot {
    fn token(&self) -> &'static str {
        self.as_dyn().token()
    }

    fn storage_bits(&self) -> u64 {
        self.as_dyn().storage_bits()
    }

    fn choose(&self, v: &ChooserView) -> bool {
        self.as_dyn().choose(v)
    }

    fn update(&mut self, v: &ChooserView, outcome: bool) {
        self.as_dyn_mut().update(v, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(provider_pred: bool, alt_pred: bool, weak: bool) -> ChooserView {
        view_at(0x40, provider_pred, alt_pred, weak)
    }

    fn view_at(pc: u64, provider_pred: bool, alt_pred: bool, weak: bool) -> ChooserView {
        ChooserView {
            pc,
            has_provider: true,
            provider_pred,
            alt_pred,
            provider_weak: weak,
            provider_strength: if weak { 1 } else { 7 },
            alt_strength: 3,
        }
    }

    #[test]
    fn alt_on_weak_matches_fused_semantics() {
        let mut c = AltOnWeak::new();
        // Counter starts at 0 (>= 0): weak providers defer to the alternate.
        assert!(!c.choose(&view(true, false, true)));
        assert!(c.choose(&view(true, false, false)));
        // Provider keeps beating the alternate on weak discriminating
        // cases: the counter goes negative and the provider wins.
        for _ in 0..5 {
            c.update(&view(true, false, true), true);
        }
        assert!(c.bias() < 0);
        assert!(c.choose(&view(true, false, true)));
        // Non-discriminating and strong cases never train the counter.
        let bias = c.bias();
        c.update(&view(true, true, true), true);
        c.update(&view(true, false, false), false);
        assert_eq!(c.bias(), bias);
    }

    #[test]
    fn always_provider_ignores_everything_else() {
        let c = AlwaysProvider;
        assert!(c.choose(&view(true, false, true)));
        assert!(!c.choose(&view(false, true, true)));
    }

    #[test]
    fn confidence_weighted_follows_the_stronger_counter() {
        let c = ConfidenceWeighted;
        // Weak provider (strength 1) vs alternate strength 3: alternate.
        assert!(!c.choose(&view(true, false, true)));
        // Strong provider (strength 7) wins.
        assert!(c.choose(&view(true, false, false)));
        // Without a provider both candidates agree anyway.
        let mut v = view(true, true, false);
        v.has_provider = false;
        assert!(c.choose(&v));
    }

    #[test]
    fn per_pc_table_learns_independent_policies_per_branch() {
        let mut c = PerPcTable::new();
        let (hot, cold) = (0x1000u64, 0x2004u64);
        assert_ne!(PerPcTable::index(hot), PerPcTable::index(cold), "test PCs must not alias");
        // Fresh counters start at 0 (>= 0): weak providers defer to the
        // alternate, exactly like the paper's global counter.
        assert!(!c.choose(&view_at(hot, true, false, true)));
        // The hot branch's provider keeps winning its weak cases: only
        // that PC's policy flips.
        for _ in 0..4 {
            c.update(&view_at(hot, true, false, true), true);
        }
        assert!(c.bias(hot) < 0);
        assert!(c.choose(&view_at(hot, true, false, true)), "hot PC trusts its provider");
        assert!(!c.choose(&view_at(cold, true, false, true)), "cold PC still defers");
        // Strong providers and non-discriminating cases never train.
        let bias = c.bias(hot);
        c.update(&view_at(hot, true, false, false), false);
        c.update(&view_at(hot, true, true, true), false);
        assert_eq!(c.bias(hot), bias);
        // A 2-bit counter saturates instead of wrapping.
        for _ in 0..40 {
            c.update(&view_at(hot, true, false, true), false);
        }
        assert_eq!(c.bias(hot), 1);
    }

    #[test]
    fn slot_round_trips_choice_and_budgets_tables_only() {
        for choice in
            [ChooserChoice::AltOnWeak, ChooserChoice::AlwaysProvider, ChooserChoice::Confidence]
        {
            assert_eq!(ChooserChoice::from_token(choice.token()), Some(choice));
            let slot = choice.build();
            assert_eq!(slot.choice(), choice);
            // Control state only — see the module docs.
            assert_eq!(Chooser::storage_bits(&slot), 0);
        }
        // The per-PC table is real indexed storage and budgets as such.
        assert_eq!(ChooserChoice::from_token("table"), Some(ChooserChoice::Table));
        let slot = ChooserChoice::Table.build();
        assert_eq!(slot.choice(), ChooserChoice::Table);
        assert_eq!(Chooser::storage_bits(&slot), PerPcTable::STORAGE_BITS);
        assert_eq!(PerPcTable::STORAGE_BITS, 2048);
        assert_eq!(ChooserChoice::from_token("sometimes"), None);
        assert_eq!(ChooserChoice::default().build().alt_on_weak_bias(), Some(0));
        assert_eq!(ChooserChoice::AlwaysProvider.build().alt_on_weak_bias(), None);
    }
}
