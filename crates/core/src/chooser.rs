//! Chooser policies: the provider/alternate arbitration sub-stage.
//!
//! TAGE's final direction is a *policy* over two candidates — the
//! longest-hitting component's prediction and the alternate (§3.1). The
//! paper's policy is `USE_ALT_ON_NA`: a single 4-bit counter learning
//! whether weak ("possibly newly allocated") provider entries should
//! defer to their alternates. This module implements that policy behind
//! the [`simkit::Chooser`] contract, plus two ablation alternates
//! selectable from the spec grammar (`tage(chooser=...)`):
//!
//! | token     | policy |
//! |-----------|--------|
//! | `altweak` | §3.1 `USE_ALT_ON_NA` (default; bit-identical to the fused predictor) |
//! | `always`  | always trust the provider (the no-chooser baseline)    |
//! | `conf`    | confidence-weighted: trust whichever source counter is stronger |
//!
//! Choosers report **table** storage only: the paper's 4-bit
//! `USE_ALT_ON_NA` counter is control state (like the allocation tick
//! counter and the LFSR), excluded from §3.4's 65,408-byte figure — so
//! all three policies budget at 0 bits.

use simkit::chooser::{Chooser, ChooserView};
use simkit::counter::SignedCounter;

/// The §3.1 `USE_ALT_ON_NA` policy: defer to the alternate when the
/// provider counter is weak and the counter says alternates have been
/// winning.
#[derive(Clone, Debug)]
pub struct AltOnWeak {
    use_alt_on_na: SignedCounter,
}

impl AltOnWeak {
    /// The paper's 4-bit counter, starting at 0 (trust the alternate).
    pub fn new() -> Self {
        Self { use_alt_on_na: SignedCounter::new(4) }
    }

    /// Current counter value (diagnostics).
    pub fn bias(&self) -> i16 {
        self.use_alt_on_na.get()
    }
}

impl Default for AltOnWeak {
    fn default() -> Self {
        Self::new()
    }
}

impl Chooser for AltOnWeak {
    fn token(&self) -> &'static str {
        "altweak"
    }

    fn choose(&self, v: &ChooserView) -> bool {
        if v.has_provider && v.provider_weak && self.use_alt_on_na.get() >= 0 {
            v.alt_pred
        } else {
            v.provider_pred
        }
    }

    fn update(&mut self, v: &ChooserView, outcome: bool) {
        // Learn only from discriminating weak-provider cases (§3.1).
        if v.has_provider && v.provider_weak && v.provider_pred != v.alt_pred {
            self.use_alt_on_na.update(v.alt_pred == outcome);
        }
    }
}

/// The no-chooser baseline: the provider's prediction, unconditionally.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysProvider;

impl Chooser for AlwaysProvider {
    fn token(&self) -> &'static str {
        "always"
    }

    fn choose(&self, v: &ChooserView) -> bool {
        v.provider_pred
    }
}

/// Confidence-weighted arbitration: trust whichever candidate's source
/// counter sits further from its weak point. Stateless — a pure function
/// of the two centered-counter magnitudes.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConfidenceWeighted;

impl Chooser for ConfidenceWeighted {
    fn token(&self) -> &'static str {
        "conf"
    }

    fn choose(&self, v: &ChooserView) -> bool {
        if v.has_provider && v.alt_strength > v.provider_strength {
            v.alt_pred
        } else {
            v.provider_pred
        }
    }
}

/// Which chooser policy fills the slot — the spec-grammar form
/// (`tage(chooser=...)`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ChooserChoice {
    /// [`AltOnWeak`], the paper's policy — the default.
    #[default]
    AltOnWeak,
    /// [`AlwaysProvider`].
    AlwaysProvider,
    /// [`ConfidenceWeighted`].
    Confidence,
}

impl ChooserChoice {
    /// The spec-grammar token.
    pub fn token(self) -> &'static str {
        match self {
            ChooserChoice::AltOnWeak => "altweak",
            ChooserChoice::AlwaysProvider => "always",
            ChooserChoice::Confidence => "conf",
        }
    }

    /// Parses a spec-grammar token.
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "altweak" => Some(ChooserChoice::AltOnWeak),
            "always" => Some(ChooserChoice::AlwaysProvider),
            "conf" => Some(ChooserChoice::Confidence),
            _ => None,
        }
    }

    /// Builds the slot this choice describes.
    pub fn build(self) -> ChooserSlot {
        match self {
            ChooserChoice::AltOnWeak => ChooserSlot::AltOnWeak(AltOnWeak::new()),
            ChooserChoice::AlwaysProvider => ChooserSlot::Always(AlwaysProvider),
            ChooserChoice::Confidence => ChooserSlot::Confidence(ConfidenceWeighted),
        }
    }
}

/// The instantiated chooser sub-stage: the spec-constructible policy set
/// behind one clonable type (every variant implements [`Chooser`]; the
/// slot delegates, so it is itself a [`Chooser`]).
#[derive(Clone, Debug)]
pub enum ChooserSlot {
    /// See [`AltOnWeak`].
    AltOnWeak(AltOnWeak),
    /// See [`AlwaysProvider`].
    Always(AlwaysProvider),
    /// See [`ConfidenceWeighted`].
    Confidence(ConfidenceWeighted),
}

impl ChooserSlot {
    /// Which choice built this slot.
    pub fn choice(&self) -> ChooserChoice {
        match self {
            ChooserSlot::AltOnWeak(_) => ChooserChoice::AltOnWeak,
            ChooserSlot::Always(_) => ChooserChoice::AlwaysProvider,
            ChooserSlot::Confidence(_) => ChooserChoice::Confidence,
        }
    }

    /// The `USE_ALT_ON_NA` counter value, when this is the paper's
    /// policy (diagnostics).
    pub fn alt_on_weak_bias(&self) -> Option<i16> {
        match self {
            ChooserSlot::AltOnWeak(c) => Some(c.bias()),
            _ => None,
        }
    }

    /// The installed policy as a trait object — one delegation point for
    /// every current and future [`Chooser`] method.
    fn as_dyn(&self) -> &dyn Chooser {
        match self {
            ChooserSlot::AltOnWeak(c) => c,
            ChooserSlot::Always(c) => c,
            ChooserSlot::Confidence(c) => c,
        }
    }

    /// Mutable twin of [`ChooserSlot::as_dyn`].
    fn as_dyn_mut(&mut self) -> &mut dyn Chooser {
        match self {
            ChooserSlot::AltOnWeak(c) => c,
            ChooserSlot::Always(c) => c,
            ChooserSlot::Confidence(c) => c,
        }
    }
}

impl Chooser for ChooserSlot {
    fn token(&self) -> &'static str {
        self.as_dyn().token()
    }

    fn storage_bits(&self) -> u64 {
        self.as_dyn().storage_bits()
    }

    fn choose(&self, v: &ChooserView) -> bool {
        self.as_dyn().choose(v)
    }

    fn update(&mut self, v: &ChooserView, outcome: bool) {
        self.as_dyn_mut().update(v, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(provider_pred: bool, alt_pred: bool, weak: bool) -> ChooserView {
        ChooserView {
            has_provider: true,
            provider_pred,
            alt_pred,
            provider_weak: weak,
            provider_strength: if weak { 1 } else { 7 },
            alt_strength: 3,
        }
    }

    #[test]
    fn alt_on_weak_matches_fused_semantics() {
        let mut c = AltOnWeak::new();
        // Counter starts at 0 (>= 0): weak providers defer to the alternate.
        assert!(!c.choose(&view(true, false, true)));
        assert!(c.choose(&view(true, false, false)));
        // Provider keeps beating the alternate on weak discriminating
        // cases: the counter goes negative and the provider wins.
        for _ in 0..5 {
            c.update(&view(true, false, true), true);
        }
        assert!(c.bias() < 0);
        assert!(c.choose(&view(true, false, true)));
        // Non-discriminating and strong cases never train the counter.
        let bias = c.bias();
        c.update(&view(true, true, true), true);
        c.update(&view(true, false, false), false);
        assert_eq!(c.bias(), bias);
    }

    #[test]
    fn always_provider_ignores_everything_else() {
        let c = AlwaysProvider;
        assert!(c.choose(&view(true, false, true)));
        assert!(!c.choose(&view(false, true, true)));
    }

    #[test]
    fn confidence_weighted_follows_the_stronger_counter() {
        let c = ConfidenceWeighted;
        // Weak provider (strength 1) vs alternate strength 3: alternate.
        assert!(!c.choose(&view(true, false, true)));
        // Strong provider (strength 7) wins.
        assert!(c.choose(&view(true, false, false)));
        // Without a provider both candidates agree anyway.
        let mut v = view(true, true, false);
        v.has_provider = false;
        assert!(c.choose(&v));
    }

    #[test]
    fn slot_round_trips_choice_and_budgets_zero() {
        for choice in
            [ChooserChoice::AltOnWeak, ChooserChoice::AlwaysProvider, ChooserChoice::Confidence]
        {
            assert_eq!(ChooserChoice::from_token(choice.token()), Some(choice));
            let slot = choice.build();
            assert_eq!(slot.choice(), choice);
            // Control state only — see the module docs.
            assert_eq!(Chooser::storage_bits(&slot), 0);
        }
        assert_eq!(ChooserChoice::from_token("sometimes"), None);
        assert_eq!(ChooserChoice::default().build().alt_on_weak_bias(), Some(0));
        assert_eq!(ChooserChoice::AlwaysProvider.build().alt_on_weak_bias(), None);
    }
}
