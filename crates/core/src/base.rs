//! The bimodal base predictor (component T0) with EV8-style shared
//! hysteresis: 4 prediction bits share one hysteresis bit (§3.4: "32K
//! prediction bits + 8K hysteresis bits").

use simkit::stats::AccessStats;

/// Bimodal table with shared hysteresis.
#[derive(Clone, Debug)]
pub struct BaseBimodal {
    pred: Vec<bool>,
    hyst: Vec<bool>,
    shift: u32,
}

/// Values read from the base predictor at fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaseRead {
    /// Prediction-array index.
    pub index: usize,
    /// Prediction bit.
    pub pred: bool,
    /// Shared hysteresis bit.
    pub hyst: bool,
}

impl BaseBimodal {
    /// `2^pred_bits` prediction bits, `2^(pred_bits - shift)` hysteresis
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `shift > pred_bits`.
    pub fn new(pred_bits: u32, shift: u32) -> Self {
        assert!(shift <= pred_bits, "hysteresis shift exceeds table bits");
        Self {
            pred: vec![false; 1 << pred_bits],
            hyst: vec![true; 1 << (pred_bits - shift)], // weak state
            shift,
        }
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.pred.len() as u64 + self.hyst.len() as u64
    }

    /// Index for `pc`.
    #[inline]
    pub fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.pred.len() - 1)
    }

    /// Reads prediction and hysteresis for `pc`.
    #[inline]
    pub fn read(&self, pc: u64) -> BaseRead {
        self.read_index(self.index(pc))
    }

    /// Reads using a known prediction-array index (retire-time re-read:
    /// the pipeline carries the index, not the PC hash).
    #[inline]
    pub fn read_index(&self, index: usize) -> BaseRead {
        BaseRead { index, pred: self.pred[index], hyst: self.hyst[index >> self.shift] }
    }

    /// Updates from a (possibly stale) read value toward `outcome`,
    /// writing through to the arrays and accounting effective writes.
    ///
    /// The (pred, hyst) pair is a 2-bit counter: strong-NT (00), weak-NT
    /// (01), weak-T (11), strong-T (10) — i.e. value = pred*2 + (pred ?
    /// !hyst : hyst)... encoded here simply as counter c = pred*2 + hyst.
    pub fn update(&mut self, read: BaseRead, outcome: bool, stats: &mut AccessStats) {
        let c = (read.pred as u8) * 2 + read.hyst as u8;
        let new_c = if outcome { (c + 1).min(3) } else { c.saturating_sub(1) };
        let new_pred = new_c >= 2;
        let new_hyst = (new_c & 1) == 1;
        let hindex = read.index >> self.shift;
        // The prediction and hysteresis bits are written together: count
        // one (entry) write when either bit changes.
        let changed = self.pred[read.index] != new_pred || self.hyst[hindex] != new_hyst;
        if stats.record_write(changed) {
            self.pred[read.index] = new_pred;
            self.hyst[hindex] = new_hyst;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_reference_shape() {
        let b = BaseBimodal::new(15, 2);
        assert_eq!(b.storage_bits(), 32 * 1024 + 8 * 1024);
    }

    #[test]
    fn trains_to_strong_taken() {
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        for _ in 0..4 {
            let r = b.read(0x40);
            b.update(r, true, &mut stats);
        }
        let r = b.read(0x40);
        assert!(r.pred);
        // Strong taken: c = 3? c = pred*2+hyst: strongest is 3 (pred=1,hyst=1).
        assert!(r.hyst);
    }

    #[test]
    fn trains_to_strong_not_taken() {
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        for _ in 0..4 {
            let r = b.read(0x40);
            b.update(r, false, &mut stats);
        }
        let r = b.read(0x40);
        assert!(!r.pred);
        assert!(!r.hyst);
    }

    #[test]
    fn hysteresis_is_shared_between_neighbours() {
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        // PCs 0x40>>2=0x10 and 0x44>>2=0x11 share hysteresis index 0x10>>2=4.
        for _ in 0..4 {
            let r = b.read(0x40);
            b.update(r, false, &mut stats);
        }
        let before = b.read(0x44).hyst;
        // Driving the neighbour taken flips the shared hysteresis bit.
        for _ in 0..4 {
            let r = b.read(0x44);
            b.update(r, true, &mut stats);
        }
        let after = b.read(0x40).hyst; // shared bit seen from the first PC
        assert!(!before && after, "hysteresis bit should be shared");
    }

    #[test]
    fn silent_writes_are_counted() {
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        for _ in 0..10 {
            let r = b.read(0x80);
            b.update(r, true, &mut stats);
        }
        // After saturation (2 effective updates from weak-NT to strong-T
        // plus hysteresis moves), the remaining updates are silent.
        assert!(stats.silent_writes_avoided >= 6, "{stats:?}");
        assert!(stats.effective_writes <= 4, "{stats:?}");
    }

    #[test]
    fn stale_update_is_idempotent() {
        // Two updates from the same stale read write the same value — the
        // Figure 3 mechanism at the bit level.
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        let r = b.read(0xC0);
        b.update(r, true, &mut stats);
        let v1 = (b.read(0xC0).pred, b.read(0xC0).hyst);
        b.update(r, true, &mut stats);
        let v2 = (b.read(0xC0).pred, b.read(0xC0).hyst);
        assert_eq!(v1, v2);
    }
}
