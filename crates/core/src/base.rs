//! The base-predictor slot (component T0) under the tagged bank.
//!
//! The reference configuration is the paper's bimodal table with
//! EV8-style shared hysteresis: 4 prediction bits share one hysteresis
//! bit (§3.4: "32K prediction bits + 8K hysteresis bits"). The slot is
//! open, though: [`BaseSlot`] hosts any base predictor whose per-entry
//! state is the 2-bit `(pred, hyst)` pair — today the shared-hysteresis
//! bimodal, a private-hysteresis 2-bit-counter table, and a
//! gshare-indexed table — selected from the spec grammar
//! (`tage(base=...)`) for the §3-level base-predictor ablations.

use crate::config::TageConfig;
use simkit::history::{FoldedHistory, GlobalHistory};
use simkit::stats::AccessStats;

/// Bimodal table with shared hysteresis.
#[derive(Clone, Debug)]
pub struct BaseBimodal {
    pred: Vec<bool>,
    hyst: Vec<bool>,
    shift: u32,
}

/// Values read from the base predictor at fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaseRead {
    /// Prediction-array index.
    pub index: usize,
    /// Prediction bit.
    pub pred: bool,
    /// Shared hysteresis bit.
    pub hyst: bool,
}

impl BaseBimodal {
    /// `2^pred_bits` prediction bits, `2^(pred_bits - shift)` hysteresis
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `shift > pred_bits`.
    pub fn new(pred_bits: u32, shift: u32) -> Self {
        assert!(shift <= pred_bits, "hysteresis shift exceeds table bits");
        Self {
            pred: vec![false; 1 << pred_bits],
            hyst: vec![true; 1 << (pred_bits - shift)], // weak state
            shift,
        }
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.pred.len() as u64 + self.hyst.len() as u64
    }

    /// Index for `pc`.
    #[inline]
    pub fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.pred.len() - 1)
    }

    /// Reads prediction and hysteresis for `pc`.
    #[inline]
    pub fn read(&self, pc: u64) -> BaseRead {
        self.read_index(self.index(pc))
    }

    /// Reads using a known prediction-array index (retire-time re-read:
    /// the pipeline carries the index, not the PC hash).
    #[inline]
    pub fn read_index(&self, index: usize) -> BaseRead {
        BaseRead { index, pred: self.pred[index], hyst: self.hyst[index >> self.shift] }
    }

    /// Updates from a (possibly stale) read value toward `outcome`,
    /// writing through to the arrays and accounting effective writes.
    ///
    /// The (pred, hyst) pair is a 2-bit counter: strong-NT (00), weak-NT
    /// (01), weak-T (11), strong-T (10) — i.e. value = pred*2 + (pred ?
    /// !hyst : hyst)... encoded here simply as counter c = pred*2 + hyst.
    pub fn update(&mut self, read: BaseRead, outcome: bool, stats: &mut AccessStats) {
        let c = (read.pred as u8) * 2 + read.hyst as u8;
        let new_c = if outcome { (c + 1).min(3) } else { c.saturating_sub(1) };
        let new_pred = new_c >= 2;
        let new_hyst = (new_c & 1) == 1;
        let hindex = read.index >> self.shift;
        // The prediction and hysteresis bits are written together: count
        // one (entry) write when either bit changes.
        let changed = self.pred[read.index] != new_pred || self.hyst[hindex] != new_hyst;
        if stats.record_write(changed) {
            self.pred[read.index] = new_pred;
            self.hyst[hindex] = new_hyst;
        }
    }
}

/// A gshare-indexed base table: per-entry 2-bit state addressed by
/// `PC ⊕ folded-global-history` — the classic McFarling hash, sized like
/// the bimodal it replaces. An ablation base for studying how much the
/// tagged bank relies on a history-free default prediction.
#[derive(Clone, Debug)]
pub struct BaseGshare {
    table: BaseBimodal,
    folded: FoldedHistory,
}

impl BaseGshare {
    /// `2^bits` entries with private hysteresis, hashed with a
    /// `bits`-long folded global history.
    pub fn new(bits: u32) -> Self {
        Self { table: BaseBimodal::new(bits, 0), folded: FoldedHistory::new(bits as usize, bits) }
    }

    /// Index for `pc` under the current history.
    #[inline]
    pub fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.folded.value()) as usize) & (self.table.pred.len() - 1)
    }

    /// Advances the folded history after a [`GlobalHistory::push`].
    #[inline]
    pub fn update_history(&mut self, gh: &GlobalHistory) {
        self.folded.update(gh);
    }
}

/// Which base predictor fills the slot — the spec-grammar form
/// (`tage(base=...)`), resolved against a [`TageConfig`] by
/// [`BaseChoice::build`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BaseChoice {
    /// The paper's shared-hysteresis bimodal (§3.4) — the default.
    #[default]
    Bimodal,
    /// Per-entry 2-bit counters (private hysteresis) at the same entry
    /// count: isolates the cost of hysteresis sharing.
    TwoBit,
    /// The gshare-indexed base (see [`BaseGshare`]).
    Gshare,
}

impl BaseChoice {
    /// The spec-grammar token.
    pub fn token(self) -> &'static str {
        match self {
            BaseChoice::Bimodal => "bimodal",
            BaseChoice::TwoBit => "2bc",
            BaseChoice::Gshare => "gshare",
        }
    }

    /// Parses a spec-grammar token.
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "bimodal" => Some(BaseChoice::Bimodal),
            "2bc" => Some(BaseChoice::TwoBit),
            "gshare" => Some(BaseChoice::Gshare),
            _ => None,
        }
    }

    /// Builds the slot this choice describes, sized from `cfg` (all bases
    /// share the config's `bimodal_bits` entry count, so the Figure 9
    /// `:x` scale applies uniformly).
    pub fn build(self, cfg: &TageConfig) -> BaseSlot {
        match self {
            BaseChoice::Bimodal => {
                BaseSlot::Bimodal(BaseBimodal::new(cfg.bimodal_bits, cfg.hysteresis_shift))
            }
            BaseChoice::TwoBit => BaseSlot::TwoBit(BaseBimodal::new(cfg.bimodal_bits, 0)),
            BaseChoice::Gshare => BaseSlot::Gshare(BaseGshare::new(cfg.bimodal_bits)),
        }
    }
}

/// The instantiated base-predictor sub-stage. Every variant exposes the
/// same contract: a fetch-time read producing a [`BaseRead`] (a 2-bit
/// `(pred, hyst)` state plus the index the pipeline carries to retire),
/// an index-addressed re-read, and an update from a possibly stale read.
#[derive(Clone, Debug)]
pub enum BaseSlot {
    /// See [`BaseChoice::Bimodal`].
    Bimodal(BaseBimodal),
    /// See [`BaseChoice::TwoBit`].
    TwoBit(BaseBimodal),
    /// See [`BaseChoice::Gshare`].
    Gshare(BaseGshare),
}

impl BaseSlot {
    /// Which choice built this slot.
    pub fn choice(&self) -> BaseChoice {
        match self {
            BaseSlot::Bimodal(_) => BaseChoice::Bimodal,
            BaseSlot::TwoBit(_) => BaseChoice::TwoBit,
            BaseSlot::Gshare(_) => BaseChoice::Gshare,
        }
    }

    fn table(&self) -> &BaseBimodal {
        match self {
            BaseSlot::Bimodal(b) | BaseSlot::TwoBit(b) => b,
            BaseSlot::Gshare(g) => &g.table,
        }
    }

    /// Prediction-array index for `pc` (gshare folds history in).
    #[inline]
    pub fn index(&self, pc: u64) -> usize {
        match self {
            BaseSlot::Bimodal(b) | BaseSlot::TwoBit(b) => b.index(pc),
            BaseSlot::Gshare(g) => g.index(pc),
        }
    }

    /// Fetch-time read for `pc`.
    #[inline]
    pub fn read(&self, pc: u64) -> BaseRead {
        self.read_index(self.index(pc))
    }

    /// Re-read by carried index (retire-time path).
    #[inline]
    pub fn read_index(&self, index: usize) -> BaseRead {
        self.table().read_index(index)
    }

    /// Update from a (possibly stale) read toward `outcome`.
    pub fn update(&mut self, read: BaseRead, outcome: bool, stats: &mut AccessStats) {
        match self {
            BaseSlot::Bimodal(b) | BaseSlot::TwoBit(b) => b.update(read, outcome, stats),
            BaseSlot::Gshare(g) => g.table.update(read, outcome, stats),
        }
    }

    /// Advances any internal history after a [`GlobalHistory::push`]
    /// (no-op for the history-free bases).
    #[inline]
    pub fn update_history(&mut self, gh: &GlobalHistory) {
        if let BaseSlot::Gshare(g) = self {
            g.update_history(gh);
        }
    }

    /// log2 of the prediction-array entry count (the bank-interleaving
    /// index width).
    pub fn size_bits(&self) -> u32 {
        (usize::BITS - 1) - self.table().pred.len().leading_zeros()
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.table().storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_reference_shape() {
        let b = BaseBimodal::new(15, 2);
        assert_eq!(b.storage_bits(), 32 * 1024 + 8 * 1024);
    }

    #[test]
    fn trains_to_strong_taken() {
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        for _ in 0..4 {
            let r = b.read(0x40);
            b.update(r, true, &mut stats);
        }
        let r = b.read(0x40);
        assert!(r.pred);
        // Strong taken: c = 3? c = pred*2+hyst: strongest is 3 (pred=1,hyst=1).
        assert!(r.hyst);
    }

    #[test]
    fn trains_to_strong_not_taken() {
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        for _ in 0..4 {
            let r = b.read(0x40);
            b.update(r, false, &mut stats);
        }
        let r = b.read(0x40);
        assert!(!r.pred);
        assert!(!r.hyst);
    }

    #[test]
    fn hysteresis_is_shared_between_neighbours() {
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        // PCs 0x40>>2=0x10 and 0x44>>2=0x11 share hysteresis index 0x10>>2=4.
        for _ in 0..4 {
            let r = b.read(0x40);
            b.update(r, false, &mut stats);
        }
        let before = b.read(0x44).hyst;
        // Driving the neighbour taken flips the shared hysteresis bit.
        for _ in 0..4 {
            let r = b.read(0x44);
            b.update(r, true, &mut stats);
        }
        let after = b.read(0x40).hyst; // shared bit seen from the first PC
        assert!(!before && after, "hysteresis bit should be shared");
    }

    #[test]
    fn silent_writes_are_counted() {
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        for _ in 0..10 {
            let r = b.read(0x80);
            b.update(r, true, &mut stats);
        }
        // After saturation (2 effective updates from weak-NT to strong-T
        // plus hysteresis moves), the remaining updates are silent.
        assert!(stats.silent_writes_avoided >= 6, "{stats:?}");
        assert!(stats.effective_writes <= 4, "{stats:?}");
    }

    #[test]
    fn base_slot_default_is_bit_identical_to_raw_bimodal() {
        let cfg = TageConfig::reference_64kb();
        let mut slot = BaseChoice::default().build(&cfg);
        let mut raw = BaseBimodal::new(cfg.bimodal_bits, cfg.hysteresis_shift);
        let mut s1 = AccessStats::default();
        let mut s2 = AccessStats::default();
        let mut rng = simkit::rng::Xoshiro256::seed_from(7);
        for _ in 0..2000 {
            let pc = 0x400 + (rng.gen_range(256) << 2);
            let outcome = rng.gen_bool(0.6);
            let a = slot.read(pc);
            let b = raw.read(pc);
            assert_eq!(a, b);
            slot.update(a, outcome, &mut s1);
            raw.update(b, outcome, &mut s2);
        }
        assert_eq!(s1, s2);
        assert_eq!(slot.storage_bits(), raw.storage_bits());
        assert_eq!(slot.size_bits(), cfg.bimodal_bits);
    }

    #[test]
    fn base_choices_round_trip_tokens_and_budget() {
        let cfg = TageConfig::reference_64kb();
        for choice in [BaseChoice::Bimodal, BaseChoice::TwoBit, BaseChoice::Gshare] {
            assert_eq!(BaseChoice::from_token(choice.token()), Some(choice));
            let slot = choice.build(&cfg);
            assert_eq!(slot.choice(), choice);
            assert_eq!(slot.size_bits(), cfg.bimodal_bits);
            assert!(slot.storage_bits() > 0);
        }
        assert_eq!(BaseChoice::from_token("bogus"), None);
        // Private hysteresis doubles the hysteresis array; gshare matches 2bc.
        let bimodal = BaseChoice::Bimodal.build(&cfg).storage_bits();
        let two_bit = BaseChoice::TwoBit.build(&cfg).storage_bits();
        let gshare = BaseChoice::Gshare.build(&cfg).storage_bits();
        assert!(two_bit > bimodal);
        assert_eq!(two_bit, gshare);
        assert_eq!(two_bit, 2 << cfg.bimodal_bits);
    }

    #[test]
    fn gshare_base_spreads_one_pc_across_histories() {
        let mut g = BaseGshare::new(10);
        let mut gh = GlobalHistory::new();
        let mut rng = simkit::rng::Xoshiro256::seed_from(8);
        let mut indices = std::collections::HashSet::new();
        for _ in 0..64 {
            gh.push(rng.gen_bool(0.5));
            g.update_history(&gh);
            indices.insert(g.index(0x40_0040));
        }
        assert!(indices.len() > 20, "poor history spread: {}", indices.len());
        // History-free bases map one PC to one index, always.
        let b = BaseSlot::TwoBit(BaseBimodal::new(10, 0));
        assert_eq!(b.index(0x40_0040), b.index(0x40_0040));
    }

    #[test]
    fn stale_update_is_idempotent() {
        // Two updates from the same stale read write the same value — the
        // Figure 3 mechanism at the bit level.
        let mut b = BaseBimodal::new(10, 2);
        let mut stats = AccessStats::default();
        let r = b.read(0xC0);
        b.update(r, true, &mut stats);
        let v1 = (b.read(0xC0).pred, b.read(0xC0).hyst);
        b.update(r, true, &mut stats);
        let v2 = (b.read(0xC0).pred, b.read(0xC0).hyst);
        assert_eq!(v1, v2);
    }
}
