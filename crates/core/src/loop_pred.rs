//! The loop predictor with speculative iteration management (§5.2).
//!
//! Identifies branches that behave as loops with a constant number of
//! iterations and, once the same trip count has been observed with high
//! confidence (7 identical complete executions), predicts the loop exit
//! exactly — something TAGE cannot do when the control flow *inside* the
//! loop body is irregular (the noise makes every iteration's global
//! history unique).
//!
//! Geometry per the paper: 64 entries, 4-way skewed associative; each
//! entry holds a 10-bit past iteration count, a 10-bit retire iteration
//! count, a 10-bit partial tag, a 3-bit confidence counter, a 3-bit age
//! counter and a direction bit (37 bits). Speculative iteration counts
//! (the SLIM of Figure 5) are modeled exactly: trace-driven simulation
//! repairs in-flight state on mispredictions instantly, so the per-entry
//! speculative counter below is precisely what a SLIM with one entry per
//! in-flight branch would produce.

use simkit::bits::fold_xor;

const CONF_MAX: u8 = 7;
const AGE_MAX: u8 = 7;
const ITER_MAX: u16 = 1023;

/// One loop predictor entry.
#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u16,
    /// Iterations (looping-direction outcomes) per round, learned.
    past_iter: u16,
    /// Retire-side iteration counter for the current round.
    retire_iter: u16,
    /// Speculative (fetch-side) iteration counter — the SLIM state.
    spec_iter: u16,
    conf: u8,
    age: u8,
    /// The looping direction (the outcome of all non-exit occurrences).
    dir: bool,
    valid: bool,
}

/// Fetch-time loop prediction.
#[derive(Clone, Copy, Debug)]
pub struct LoopLookup {
    /// Index of the hitting entry.
    pub entry: u16,
    /// The predicted direction.
    pub pred: bool,
    /// True when confidence is saturated — only then may the prediction
    /// override the main predictor.
    pub confident: bool,
}

/// The loop predictor.
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    sets: usize,
    ways: usize,
    lfsr: u64,
}

const SKEW: [u64; 4] = [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F, 0x1656_67B1_9E37_79F9, 0x27D4_EB2F_1656_67C5];

impl LoopPredictor {
    /// A loop predictor with `entries` total entries and `ways` skewed
    /// ways (the paper's configuration is 64 entries, 4 ways).
    ///
    /// # Panics
    ///
    /// Panics if `ways` does not divide `entries`, is 0, exceeds 4, or if
    /// the resulting set count is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!((1..=4).contains(&ways) && entries.is_multiple_of(ways));
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "loop predictor sets must be a power of two");
        Self { entries: vec![LoopEntry::default(); entries], sets, ways, lfsr: 0xACE1_2468_ACE1_2468 }
    }

    /// The paper's 64-entry, 4-way configuration.
    pub fn cbp_64() -> Self {
        Self::new(64, 4)
    }

    #[inline]
    fn slot(&self, way: usize, pc: u64) -> usize {
        let h = ((pc >> 2).wrapping_mul(SKEW[way])) >> 40;
        way * self.sets + (h as usize & (self.sets - 1))
    }

    #[inline]
    fn tag(pc: u64) -> u16 {
        fold_xor(pc >> 2, 10) as u16
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let tag = Self::tag(pc);
        (0..self.ways).map(|w| self.slot(w, pc)).find(|&s| {
            let e = &self.entries[s];
            e.valid && e.tag == tag
        })
    }

    /// Fetch-time lookup: returns the loop prediction if the branch hits.
    pub fn lookup(&self, pc: u64) -> Option<LoopLookup> {
        let s = self.find(pc)?;
        let e = &self.entries[s];
        if e.past_iter == 0 {
            return None;
        }
        // The next occurrence is the exit when the speculative iteration
        // count has reached the learned trip count.
        let pred = if e.spec_iter >= e.past_iter { !e.dir } else { e.dir };
        Some(LoopLookup { entry: s as u16, pred, confident: e.conf >= CONF_MAX })
    }

    /// Fetch-time speculative iteration update (the SLIM step): advance
    /// the speculative counter with the resolved outcome.
    pub fn spec_update(&mut self, pc: u64, outcome: bool) {
        if let Some(s) = self.find(pc) {
            let e = &mut self.entries[s];
            if outcome == e.dir {
                e.spec_iter = (e.spec_iter + 1).min(ITER_MAX);
            } else {
                e.spec_iter = 0;
            }
        }
    }

    /// Retire-time update.
    ///
    /// * `allocate` — the main predictor mispredicted this branch, so the
    ///   loop predictor may allocate an entry for it;
    /// * `useful` — the loop prediction was used, was correct, and the
    ///   main predictor would have been wrong (age credit, §5.2).
    pub fn retire_update(&mut self, pc: u64, outcome: bool, allocate: bool, useful: bool) {
        let tag = Self::tag(pc);
        if let Some(s) = self.find(pc) {
            let e = &mut self.entries[s];
            if useful && e.age < AGE_MAX {
                e.age += 1;
            }
            if outcome == e.dir {
                e.retire_iter += 1;
                if e.retire_iter >= ITER_MAX {
                    // Not a countable loop.
                    e.valid = false;
                    e.age = 0;
                }
            } else if e.past_iter == 0 && e.retire_iter == 0 {
                // Two consecutive non-dir outcomes right after allocation:
                // the entry was allocated on a *mid-loop* misprediction, so
                // the assumed looping direction is wrong. Relearn it.
                e.dir = outcome;
                e.retire_iter = 1;
            } else {
                // Loop exit observed.
                if e.past_iter == e.retire_iter && e.past_iter != 0 {
                    if e.conf < CONF_MAX {
                        e.conf += 1;
                    }
                } else {
                    if e.conf > 0 {
                        // Established loop turned irregular (§5.2: "Age is
                        // reset to zero whenever the branch is determined
                        // as not being a regular loop").
                        e.age = 0;
                    } else if e.past_iter != 0 && e.age > 0 {
                        // Repeatedly inconsistent trip counts: this is not
                        // a regular loop — age it toward replacement so it
                        // does not pressure its neighbours forever.
                        e.age -= 1;
                    }
                    e.conf = 0;
                    e.past_iter = e.retire_iter;
                }
                e.retire_iter = 0;
            }
            return;
        }
        if !allocate {
            return;
        }
        // Throttle allocation: only one mispredicted occurrence in four
        // attempts an allocation (L-TAGE-style), keeping noisy branches
        // from churning the small table.
        self.lfsr ^= self.lfsr << 13;
        self.lfsr ^= self.lfsr >> 7;
        self.lfsr ^= self.lfsr << 17;
        if self.lfsr & 3 != 0 {
            return;
        }
        // Allocate: pick an age-0 way, otherwise age every candidate.
        let slots: Vec<usize> = (0..self.ways).map(|w| self.slot(w, pc)).collect();
        if let Some(&victim) = slots.iter().find(|&&s| !self.entries[s].valid || self.entries[s].age == 0)
        {
            self.entries[victim] = LoopEntry {
                tag,
                past_iter: 0,
                retire_iter: 0,
                spec_iter: 0,
                conf: 0,
                age: AGE_MAX,
                // The mispredicted occurrence is (usually) the exit, so the
                // looping direction is the opposite of this outcome.
                dir: !outcome,
                valid: true,
            };
        } else {
            for s in slots {
                let e = &mut self.entries[s];
                if e.age > 0 {
                    e.age -= 1;
                }
            }
        }
    }

    /// Storage in bits: the paper's 37 bits per entry plus the 10-bit
    /// speculative iteration counter standing in for the SLIM.
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 47
    }

    /// Debug view of the entry for `pc`:
    /// (past_iter, retire_iter, spec_iter, conf, age). Diagnostics only.
    pub fn debug_entry(&self, pc: u64) -> Option<(u16, u16, u16, u8, u8)> {
        self.find(pc).map(|s| {
            let e = &self.entries[s];
            (e.past_iter, e.retire_iter, e.spec_iter, e.conf, e.age)
        })
    }

    /// Number of valid, confident entries (diagnostics).
    pub fn confident_count(&self) -> usize {
        self.entries.iter().filter(|e| e.valid && e.conf >= CONF_MAX).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a constant-trip loop through the predictor and returns
    /// (correct, total) exit predictions after warm-up.
    fn run_loop(trip: u16, rounds: usize) -> (usize, usize) {
        let mut lp = LoopPredictor::cbp_64();
        let pc = 0x4000;
        let mut correct = 0;
        let mut total = 0;
        for round in 0..rounds {
            for i in 1..=trip {
                let outcome = i != trip; // taken = keep looping
                let look = lp.lookup(pc);
                if round >= 9 {
                    // After warm-up the predictor must be confident…
                    let l = look.expect("entry should exist");
                    assert!(l.confident, "round {round}: not confident");
                    total += 1;
                    if l.pred == outcome {
                        correct += 1;
                    }
                }
                lp.spec_update(pc, outcome);
                // Mispredict signal: the main predictor mispredicts the
                // exit, so allocation happens on the round-0 exit.
                lp.retire_update(pc, outcome, round == 0 && !outcome, false);
            }
        }
        (correct, total)
    }

    #[test]
    fn perfectly_predicts_constant_loop() {
        let (correct, total) = run_loop(21, 20);
        assert_eq!(correct, total, "constant-trip loop must be exact");
        assert!(total > 0);
    }

    #[test]
    fn short_loops_also_work() {
        let (correct, total) = run_loop(4, 30);
        assert_eq!(correct, total);
    }

    #[test]
    fn irregular_loop_never_confident() {
        let mut lp = LoopPredictor::cbp_64();
        let pc = 0x5000;
        let mut rng = simkit::rng::Xoshiro256::seed_from(5);
        for round in 0..60 {
            let trip = 3 + rng.gen_range(10) as u16;
            for i in 1..=trip {
                let outcome = i != trip;
                if let Some(l) = lp.lookup(pc) {
                    assert!(
                        !(l.confident && round > 20),
                        "irregular loop must not reach confidence"
                    );
                }
                lp.spec_update(pc, outcome);
                lp.retire_update(pc, outcome, round == 0 && !outcome, false);
            }
        }
    }

    #[test]
    fn confidence_requires_seven_rounds() {
        let mut lp = LoopPredictor::cbp_64();
        let pc = 0x6000;
        let trip = 10u16;
        let mut first_confident_round = None;
        for round in 0..12 {
            for i in 1..=trip {
                let outcome = i != trip;
                if let Some(l) = lp.lookup(pc) {
                    if l.confident && first_confident_round.is_none() {
                        first_confident_round = Some(round);
                    }
                }
                lp.spec_update(pc, outcome);
                lp.retire_update(pc, outcome, round == 0 && !outcome, false);
            }
        }
        let r = first_confident_round.expect("should become confident");
        assert!(r >= 7, "confident too early: round {r}");
    }

    #[test]
    fn allocation_needs_mispredict_signal() {
        let mut lp = LoopPredictor::cbp_64();
        lp.retire_update(0x7000, true, false, false);
        assert!(lp.lookup(0x7000).is_none());
        lp.retire_update(0x7000, true, true, false);
        // Entry allocated (no prediction yet: past_iter == 0).
        assert!(lp.lookup(0x7000).is_none());
        assert_eq!(lp.confident_count(), 0);
    }

    #[test]
    fn aging_protects_useful_entries() {
        let mut lp = LoopPredictor::new(4, 4); // 1 set, 4 ways: high pressure
        // Allocate 4 loops; 0x100 will receive periodic usefulness credit.
        for pc in [0x100u64, 0x200, 0x300, 0x400] {
            lp.retire_update(pc, false, true, false);
        }
        // Nine allocation attempts from distinct PCs, with an age credit
        // for 0x100 every third attempt: the un-credited entries reach
        // age 0 first and get replaced, the useful one survives.
        for i in 0..9u64 {
            if i % 3 == 0 {
                lp.retire_update(0x100, true, false, true);
            }
            lp.retire_update(0x1000 + i * 0x100, false, true, false);
        }
        assert!(lp.find(0x100).is_some(), "useful entry evicted too eagerly");
        assert!(
            lp.find(0x200).is_none() || lp.find(0x300).is_none(),
            "pressure should have replaced an unused entry"
        );
    }

    #[test]
    fn storage_is_tiny() {
        assert_eq!(LoopPredictor::cbp_64().storage_bits(), 64 * 47);
    }
}
