//! TAGE configuration and storage accounting.
//!
//! The reference predictor of §3.4 (64 KB CBP-3 budget):
//!
//! * 13 components: a bimodal base (32K prediction bits + 8K hysteresis
//!   bits) and 12 tagged tables;
//! * geometric history lengths (6, 2000):
//!   6, 10, 17, 29, 50, 84, 143, 242, 410, 696, 1179, 2000;
//! * table sizes: T1 2K; T2–T7 4K; T8–T9 2K; T10–T12 1K entries;
//! * tag widths `min(5+i, 15)` — the paper's prose says "max (6+i, 15)",
//!   which as written would be constantly 15; `min(5+i, 15)` is the unique
//!   assignment that reproduces the paper's own total of **65,408 bytes**
//!   (= 40,960 bimodal + 482,304 tagged bits);
//! * 3-bit prediction counters, 1 useful bit, up to 4 allocations on
//!   non-consecutive tables, one 4-bit `USE_ALT_ON_NA` counter, one 8-bit
//!   allocation-monitoring counter for global u-bit resets.

/// Maximum number of tagged tables supported (fixed-size flight arrays).
pub const MAX_TAGGED: usize = 16;

/// Complete static configuration of a TAGE predictor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TageConfig {
    /// Number of tagged components (the predictor has `num_tagged + 1`
    /// components including the bimodal base).
    pub num_tagged: usize,
    /// Shortest tagged history length (6 in the reference).
    pub l1: usize,
    /// Longest tagged history length (2000 in the reference).
    pub lmax: usize,
    /// log2 of bimodal prediction entries (15 = 32K in the reference).
    pub bimodal_bits: u32,
    /// Hysteresis sharing shift: `2` means 4 prediction bits share one
    /// hysteresis bit (32K pred + 8K hyst in the reference).
    pub hysteresis_shift: u32,
    /// log2 entries of each tagged table, `T1..`.
    pub table_size_bits: Vec<u32>,
    /// Partial tag width of each tagged table.
    pub tag_widths: Vec<u8>,
    /// Prediction counter width (3 in the reference).
    pub ctr_bits: u8,
    /// Maximum entries allocated per misprediction (§3.2.1; up to 4).
    pub max_alloc: usize,
    /// Path history width used in index hashing.
    pub path_bits: u32,
}

impl TageConfig {
    /// The §3.4 reference predictor: 13 components, 65,408 bytes.
    pub fn reference_64kb() -> Self {
        let table_size_bits = vec![11, 12, 12, 12, 12, 12, 12, 11, 11, 10, 10, 10];
        let tag_widths = (1..=12).map(|i| (5 + i).min(15) as u8).collect();
        Self {
            num_tagged: 12,
            l1: 6,
            lmax: 2000,
            bimodal_bits: 15,
            hysteresis_shift: 2,
            table_size_bits,
            tag_widths,
            ctr_bits: 3,
            max_alloc: 4,
            path_bits: 16,
        }
    }

    /// The TAGE core of the 512 Kbit TAGE-LSC (§6.1): the reference
    /// predictor with table T7 reduced to 2K entries to make room for the
    /// LSC components.
    pub fn tage_lsc_core() -> Self {
        let mut cfg = Self::reference_64kb();
        cfg.table_size_bits[6] = 11; // T7: 4K → 2K entries
        cfg
    }

    /// A balanced configuration with `num_tagged` tables and (l1, lmax)
    /// geometric histories, sized so total tagged entries roughly match the
    /// reference predictor (for the §6.2 table-count ablation).
    pub fn balanced(num_tagged: usize, l1: usize, lmax: usize) -> Self {
        assert!((2..=MAX_TAGGED).contains(&num_tagged), "tagged table count out of range");
        let reference_entries: u64 = Self::reference_64kb()
            .table_size_bits
            .iter()
            .map(|&b| 1u64 << b)
            .sum();
        let per_table = (reference_entries / num_tagged as u64).max(64);
        // Round down to a power of two so the budget never exceeds ~2x.
        let size_bits = (63 - per_table.leading_zeros()).max(6);
        Self {
            num_tagged,
            l1,
            lmax,
            bimodal_bits: 15,
            hysteresis_shift: 2,
            table_size_bits: vec![size_bits; num_tagged],
            tag_widths: (1..=num_tagged)
                .map(|i| (5 + (i * 12).div_ceil(num_tagged)).min(15) as u8)
                .collect(),
            ctr_bits: 3,
            max_alloc: 4,
            path_bits: 16,
        }
    }

    /// Scales every table (bimodal and tagged) by `2^log2_delta` entries,
    /// clamping tagged tables at 64 entries — the Figure 9 size sweep.
    pub fn scaled(&self, log2_delta: i32) -> Self {
        let mut cfg = self.clone();
        let adj = |bits: u32| -> u32 { (bits as i64 + i64::from(log2_delta)).clamp(6, 24) as u32 };
        cfg.bimodal_bits = adj(self.bimodal_bits);
        for b in &mut cfg.table_size_bits {
            *b = adj(*b);
        }
        cfg
    }

    /// Replaces the geometric history bounds (the §6.2 history ablation).
    pub fn with_history(mut self, l1: usize, lmax: usize) -> Self {
        self.l1 = l1;
        self.lmax = lmax;
        self
    }

    /// The geometric history length of tagged table `i` (0-based).
    pub fn history_lengths(&self) -> Vec<usize> {
        baseline_series(self.num_tagged, self.l1, self.lmax)
    }

    /// Total predictor storage in bits.
    pub fn storage_bits(&self) -> u64 {
        let bimodal = (1u64 << self.bimodal_bits)
            + (1u64 << (self.bimodal_bits - self.hysteresis_shift));
        let tagged: u64 = self
            .table_size_bits
            .iter()
            .zip(&self.tag_widths)
            .map(|(&sz, &tag)| (1u64 << sz) * (u64::from(self.ctr_bits) + 1 + u64::from(tag)))
            .sum();
        bimodal + tagged
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the table lists disagree with `num_tagged`, the counter
    /// width is out of range, or the history series is degenerate.
    pub fn validate(&self) {
        assert!((1..=MAX_TAGGED).contains(&self.num_tagged));
        assert_eq!(self.table_size_bits.len(), self.num_tagged, "table size list length");
        assert_eq!(self.tag_widths.len(), self.num_tagged, "tag width list length");
        assert!((2..=8).contains(&self.ctr_bits), "counter width");
        assert!(self.l1 >= 1 && self.lmax > self.l1, "history bounds");
        assert!(self.bimodal_bits >= self.hysteresis_shift);
        assert!((1..=8).contains(&self.max_alloc), "allocation count");
        for &t in &self.tag_widths {
            assert!((4..=16).contains(&t), "tag width {t} out of range");
        }
    }
}

impl Default for TageConfig {
    fn default() -> Self {
        Self::reference_64kb()
    }
}

/// Geometric series helper (duplicated from `baselines` to keep the core
/// crate dependency-free of the baselines crate).
fn baseline_series(count: usize, l1: usize, lmax: usize) -> Vec<usize> {
    assert!(count >= 2 && l1 >= 1 && lmax > l1);
    let alpha = (lmax as f64 / l1 as f64).powf(1.0 / (count as f64 - 1.0));
    (0..count).map(|i| ((l1 as f64 * alpha.powi(i as i32) + 0.5).floor() as usize).max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_paper_byte_total() {
        let cfg = TageConfig::reference_64kb();
        cfg.validate();
        // §3.4: "a total of 65,408 bytes of storage".
        assert_eq!(cfg.storage_bits(), 65_408 * 8);
    }

    #[test]
    fn reference_history_series_matches_paper() {
        let cfg = TageConfig::reference_64kb();
        assert_eq!(
            cfg.history_lengths(),
            vec![6, 10, 17, 29, 50, 84, 143, 242, 410, 696, 1179, 2000]
        );
    }

    #[test]
    fn reference_tag_widths() {
        let cfg = TageConfig::reference_64kb();
        assert_eq!(cfg.tag_widths, vec![6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 15, 15]);
    }

    #[test]
    fn lsc_core_saves_t7_bits() {
        let r = TageConfig::reference_64kb();
        let c = TageConfig::tage_lsc_core();
        // T7 entry = 3 + 1 + 12 = 16 bits; halving 4K → 2K saves 32K bits
        // (the paper rounds this to "34K storage bits").
        assert_eq!(r.storage_bits() - c.storage_bits(), 2048 * 16);
    }

    #[test]
    fn scaling_moves_budget_by_powers_of_two() {
        let cfg = TageConfig::reference_64kb();
        let up = cfg.scaled(1);
        assert_eq!(up.storage_bits(), cfg.storage_bits() * 2);
        let down = cfg.scaled(-2);
        // 1K tables clamp nowhere at -2 (min 64 entries = 6 bits; 10-2=8 ok).
        assert_eq!(down.storage_bits(), cfg.storage_bits() / 4);
    }

    #[test]
    fn scaling_clamps_at_64_entries() {
        let cfg = TageConfig::reference_64kb().scaled(-5);
        assert!(cfg.table_size_bits.iter().all(|&b| b >= 6));
    }

    #[test]
    fn balanced_configs_validate() {
        for (n, l1, lmax) in [(8, 6, 1000), (5, 6, 500), (12, 3, 300), (12, 4, 1000), (12, 8, 5000)] {
            let cfg = TageConfig::balanced(n, l1, lmax);
            cfg.validate();
            assert_eq!(cfg.history_lengths().len(), n);
            assert_eq!(*cfg.history_lengths().last().unwrap(), lmax);
        }
    }

    #[test]
    fn balanced_budget_in_reference_class() {
        // The ablation configs should stay within ~2x of the reference
        // budget so §6.2 comparisons are fair.
        let r = TageConfig::reference_64kb().storage_bits() as f64;
        for n in [5, 8, 12] {
            let b = TageConfig::balanced(n, 6, 1000).storage_bits() as f64;
            assert!((0.5..2.0).contains(&(b / r)), "budget ratio {}", b / r);
        }
    }

    #[test]
    #[should_panic]
    fn validate_rejects_mismatched_lists() {
        let mut cfg = TageConfig::reference_64kb();
        cfg.table_size_bits.pop();
        cfg.validate();
    }
}
