//! `SystemSpec` — declarative, serializable predictor-stack composition.
//!
//! A [`SystemSpec`] is the *data* form of a [`PredictorStack`]: which
//! TAGE provider, which side stages in which chain order, which
//! stack-wide switches. Every named predictor of the paper is one spec
//! (see [`PRESETS`]), every §7 ablation row is one spec, and any
//! composition the paper never measured — loop without SC at 32 KB, a
//! corrector judging the loop output — is one spec away.
//!
//! # Grammar
//!
//! The serialized form is a compact one-line string:
//!
//! ```text
//! spec     := provider ( "+" stage )* ( "/" flag )*
//! provider := "tage" [ "(" param ( "," param )* ")" ]
//!                    [ ":lsc" | ":b" N "," L1 "," LMAX ]
//!                    [ ":h" L1 "," LMAX ] [ ":x" DELTA ]
//! param    := "base=" ( "bimodal" | "2bc" | "gshare" )
//!           | "chooser=" ( "altweak" | "always" | "conf" | "table" )
//! stage    := "ium" [ ":" CAPACITY ]
//!           | "sc"
//!           | "lsc" [ ":2lht" ] [ ":x" DELTA ]
//!           | "loop" [ ":" ENTRIES "," WAYS ]
//! flag     := "ilv" | "lsc-reread" | "as=" LABEL
//! ```
//!
//! * `tage` — the §3.4 reference 64 KB provider; `:lsc` swaps in the
//!   §6.1 TAGE-LSC core (T7 halved); `:bN,L1,LMAX` the §6.2 balanced
//!   N-table configuration; `:h` overrides the geometric history bounds;
//!   `:x` scales every table by `2^DELTA` (the Figure 9 sweep axis).
//! * the parenthesized provider-internal productions select the
//!   [`BaseChoice`] under the tagged bank and the [`ChooserChoice`]
//!   policy (§3.1's `USE_ALT_ON_NA` by default) — the §3-level provider
//!   ablations. Defaults (`base=bimodal`, `chooser=altweak`) are omitted
//!   from the canonical form, so `tage(base=bimodal,chooser=altweak)`
//!   canonicalizes to `tage` and shares its cached suite.
//! * stages run **in the order written** (the paper's canonical order is
//!   `ium+sc+lsc+loop`); `lsc:2lht` doubles the local history table
//!   (§7.1 pairs it with interleaving).
//! * `ilv` switches all tables to 4-way bank-interleaved single-ported
//!   arrays (§4.3/§7.1); `lsc-reread` is the §7.2 LSC-always-rereads
//!   knob; `as=` overrides the report label.
//!
//! Examples: `tage`, `tage+ium+sc+loop/as=ISL-TAGE`,
//! `tage:lsc:x-1+ium+lsc:x-1/as=TAGE-LSC`, `tage:x-1+ium+loop`.
//!
//! [`Display`](std::fmt::Display) emits the canonical form (defaults
//! omitted, `x0` dropped), [`FromStr`] parses it, and the two round-trip
//! (property-tested in the workspace test suite). The canonical string
//! doubles as the suite-scheduler memo label: two experiments share a
//! cached suite exactly when their specs canonicalize identically.
//!
//! Ill-formed chains are rejected with a typed [`SpecError`] — a stage
//! before any provider, a second provider, a duplicated stage, a
//! non-power-of-two IUM capacity — at parse *and* at build, so
//! hand-constructed specs get the same checks as parsed ones.

use crate::base::BaseChoice;
use crate::chooser::ChooserChoice;
use crate::config::{TageConfig, MAX_TAGGED};
use crate::corrector::{Gsc, Lsc};
use crate::ium::Ium;
use crate::loop_pred::LoopPredictor;
use crate::stack::{PredictorStack, SideStage, StageKind, DEFAULT_IUM_CAPACITY};
use crate::tage::Tage;
use std::fmt;
use std::str::FromStr;

/// The TAGE provider core a spec starts from.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TageBase {
    /// The §3.4 reference 64 KB configuration.
    Reference,
    /// The §6.1 TAGE-LSC core (T7 halved to 2K entries).
    LscCore,
    /// The §6.2 balanced configuration: `tables` tagged tables over a
    /// `(l1, lmax)` geometric series.
    Balanced {
        /// Tagged-table count.
        tables: usize,
        /// Shortest history length.
        l1: usize,
        /// Longest history length.
        lmax: usize,
    },
}

/// The provider (first) element of a spec chain.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProviderSpec {
    /// Which TAGE core.
    pub base: TageBase,
    /// Geometric-history override `(l1, lmax)` (§6.2 history ablation).
    pub history: Option<(usize, usize)>,
    /// Budget scale: every table ×`2^scale` entries (Figure 9).
    pub scale: i32,
    /// The base predictor filling the slot under the tagged bank
    /// (`tage(base=...)`).
    pub base_slot: BaseChoice,
    /// The provider/alternate chooser policy (`tage(chooser=...)`).
    pub chooser: ChooserChoice,
}

impl ProviderSpec {
    /// The reference provider, unscaled.
    pub fn reference() -> Self {
        Self {
            base: TageBase::Reference,
            history: None,
            scale: 0,
            base_slot: BaseChoice::default(),
            chooser: ChooserChoice::default(),
        }
    }

    /// Resolves to a concrete table configuration.
    pub fn to_config(&self) -> Result<TageConfig, SpecError> {
        let mut cfg = match self.base {
            TageBase::Reference => TageConfig::reference_64kb(),
            TageBase::LscCore => TageConfig::tage_lsc_core(),
            TageBase::Balanced { tables, l1, lmax } => {
                if !(2..=MAX_TAGGED).contains(&tables) {
                    return Err(SpecError::BadArg {
                        token: "tage:b".into(),
                        reason: "balanced table count must be in 2..=16",
                    });
                }
                check_history(l1, lmax, "tage:b")?;
                TageConfig::balanced(tables, l1, lmax)
            }
        };
        if let Some((l1, lmax)) = self.history {
            check_history(l1, lmax, "tage:h")?;
            cfg = cfg.with_history(l1, lmax);
        }
        if self.scale != 0 {
            cfg = cfg.scaled(self.scale);
        }
        Ok(cfg)
    }
}

fn check_history(l1: usize, lmax: usize, token: &str) -> Result<(), SpecError> {
    if l1 < 1 || lmax <= l1 {
        return Err(SpecError::BadArg {
            token: token.to_string(),
            reason: "history bounds need 1 <= l1 < lmax",
        });
    }
    Ok(())
}

/// One declarative side stage.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StageSpec {
    /// Immediate Update Mimicker with the given in-flight capacity.
    Ium {
        /// In-flight record capacity (power of two).
        capacity: usize,
    },
    /// The §5.3 global Statistical Corrector (24 Kbit configuration).
    Gsc,
    /// The §6.1 local Statistical Corrector (~31 Kbit configuration).
    Lsc {
        /// Double the local history table (§7.1, pairs with `ilv`).
        double_lht: bool,
        /// Budget scale (Figure 9).
        scale: i32,
    },
    /// The §5.2 loop predictor.
    Loop {
        /// Total entries.
        entries: usize,
        /// Skewed ways.
        ways: usize,
    },
}

impl StageSpec {
    /// An IUM at the default (pipeline-window) capacity.
    pub fn ium() -> Self {
        StageSpec::Ium { capacity: DEFAULT_IUM_CAPACITY }
    }

    /// The default unscaled LSC.
    pub fn lsc() -> Self {
        StageSpec::Lsc { double_lht: false, scale: 0 }
    }

    /// The paper's 64-entry 4-way loop predictor.
    pub fn loop_pred() -> Self {
        StageSpec::Loop { entries: 64, ways: 4 }
    }

    /// This stage's kind.
    pub fn kind(&self) -> StageKind {
        match self {
            StageSpec::Ium { .. } => StageKind::Ium,
            StageSpec::Gsc => StageKind::Gsc,
            StageSpec::Lsc { .. } => StageKind::Lsc,
            StageSpec::Loop { .. } => StageKind::Loop,
        }
    }

    fn validate(&self) -> Result<(), SpecError> {
        match *self {
            StageSpec::Ium { capacity } => {
                if capacity == 0 || !capacity.is_power_of_two() || capacity > 1 << 16 {
                    return Err(SpecError::BadArg {
                        token: "ium".into(),
                        reason: "IUM capacity must be a power of two in 1..=65536",
                    });
                }
            }
            StageSpec::Gsc | StageSpec::Lsc { .. } => {}
            StageSpec::Loop { entries, ways } => {
                if !(1..=4).contains(&ways)
                    || entries == 0
                    || !entries.is_multiple_of(ways)
                    || !(entries / ways).is_power_of_two()
                {
                    return Err(SpecError::BadArg {
                        token: "loop".into(),
                        reason: "loop geometry needs 1..=4 ways dividing entries into a power-of-two set count",
                    });
                }
            }
        }
        Ok(())
    }

    fn build(&self) -> SideStage {
        match *self {
            StageSpec::Ium { capacity } => SideStage::Ium(Ium::new(capacity)),
            StageSpec::Gsc => SideStage::Gsc(Gsc::cbp_24kbit()),
            StageSpec::Lsc { double_lht, scale } => {
                let base =
                    if double_lht { Lsc::cbp_30kbit_interleaved() } else { Lsc::cbp_30kbit() };
                SideStage::Lsc(if scale != 0 { base.scaled(scale) } else { base })
            }
            StageSpec::Loop { entries, ways } => SideStage::Loop(LoopPredictor::new(entries, ways)),
        }
    }
}

/// A complete declarative predictor stack.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SystemSpec {
    /// The provider.
    pub provider: ProviderSpec,
    /// Side stages, in chain (evaluation) order.
    pub stages: Vec<StageSpec>,
    /// 4-way bank-interleave all tables (§4.3, §7.1).
    pub interleaved: bool,
    /// §7.2: the LSC always rereads at retire.
    pub lsc_always_reread: bool,
    /// Report-label override.
    pub label: Option<String>,
}

impl SystemSpec {
    /// A bare reference-TAGE spec.
    pub fn reference() -> Self {
        Self {
            provider: ProviderSpec::reference(),
            stages: Vec::new(),
            interleaved: false,
            lsc_always_reread: false,
            label: None,
        }
    }

    /// Validates the spec without building it.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] in chain order.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.provider.to_config()?;
        for (i, stage) in self.stages.iter().enumerate() {
            stage.validate()?;
            if self.stages[..i].iter().any(|s| s.kind() == stage.kind()) {
                return Err(SpecError::DuplicateStage { kind: stage.kind() });
            }
        }
        if let Some(label) = &self.label {
            if label.is_empty() || label.contains('/') {
                return Err(SpecError::BadArg {
                    token: "as=".into(),
                    reason: "label must be non-empty and must not contain '/'",
                });
            }
        }
        Ok(())
    }

    /// Assembles the stack this spec describes.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SpecError`] for ill-formed specs (duplicate
    /// stages, bad stage geometry, bad provider parameters).
    pub fn build(&self) -> Result<PredictorStack, SpecError> {
        self.validate()?;
        let tage = Tage::with_choices(
            self.provider.to_config()?,
            self.provider.base_slot,
            self.provider.chooser,
        );
        let stages = self.stages.iter().map(StageSpec::build).collect();
        let mut stack = PredictorStack::from_parts(tage, stages);
        if let Some(label) = &self.label {
            stack = stack.labeled(label);
        }
        if self.interleaved {
            stack = stack.interleaved();
        }
        if self.lsc_always_reread {
            stack = stack.lsc_always_reread();
        }
        Ok(stack)
    }

    /// Total storage of the assembled stack, in bits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SystemSpec::build`].
    pub fn storage_bits(&self) -> Result<u64, SpecError> {
        use simkit::Predictor;
        Ok(self.build()?.storage_bits())
    }

    /// Looks up a named paper preset (see [`PRESETS`]).
    pub fn preset(name: &str) -> Option<SystemSpec> {
        PRESETS
            .iter()
            .find(|(n, _)| *n == name)
            // INVARIANT: PRESETS is a static table; every row's parse is
            // asserted by the preset round-trip tests.
            .map(|(_, spec)| spec.parse().expect("preset specs are valid"))
    }
}

/// The paper's named predictors, as `(name, spec)` pairs — the
/// composition table of §5–§7 *as data*. Every preset parses and builds;
/// budgets are audited against the paper's figures by `tage_exp budgets`.
pub const PRESETS: &[(&str, &str)] = &[
    // §3.4: the reference 64 KB TAGE.
    ("tage", "tage"),
    // §5.1: reference TAGE + Immediate Update Mimicker.
    ("tage-ium", "tage+ium"),
    // §2.2: L-TAGE, the CBP-2 winner (TAGE + loop predictor).
    ("l-tage", "tage+loop/as=L-TAGE"),
    // §5: ISL-TAGE = TAGE + IUM + loop + global SC.
    ("isl-tage", "tage+ium+sc+loop/as=ISL-TAGE"),
    // §6.1: TAGE-LSC — T7 halved, IUM, local SC (512 Kbit).
    ("tage-lsc", "tage:lsc+ium+lsc/as=TAGE-LSC"),
    // §6.1: the full five-component stack (555 MPPKI configuration).
    ("full-stack", "tage+ium+sc+lsc+loop"),
    // §7.1: cost-effective TAGE-LSC — interleaved, doubled local history.
    ("tage-lsc-ce", "tage:lsc+ium+lsc:2lht/ilv/as=TAGE-LSC-interleaved"),
];

/// Why a spec failed to parse or build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string was empty.
    Empty,
    /// The chain must begin with a provider (`tage...`), not a side stage.
    StackMustStartWithProvider {
        /// The stage token found in the provider position.
        found: String,
    },
    /// A second provider appeared later in the chain.
    DuplicateProvider,
    /// The same side-stage kind appeared twice.
    DuplicateStage {
        /// The duplicated kind.
        kind: StageKind,
    },
    /// An unrecognized chain token or flag.
    UnknownToken {
        /// The offending token.
        token: String,
    },
    /// A side stage was chained onto a provider that cannot host it (the
    /// IUM, the correctors and the loop predictor all consume the TAGE
    /// provider's flight).
    StageRequiresTage {
        /// The side stage that was attached.
        stage: String,
        /// The provider it was attached to.
        provider: String,
    },
    /// A recognized token with invalid arguments.
    BadArg {
        /// The offending token.
        token: String,
        /// What the argument must satisfy.
        reason: &'static str,
    },
    /// An ill-formed `tage(key=value,...)` provider-internal production:
    /// an unknown key, a value from the wrong domain (e.g.
    /// `base=altweak`), a duplicated key, or a malformed group.
    BadProviderParam {
        /// The offending parameter (or group fragment).
        param: String,
        /// What the production must satisfy.
        reason: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty spec"),
            SpecError::StackMustStartWithProvider { found } => {
                write!(f, "stack must start with a provider (tage...), found stage '{found}'")
            }
            SpecError::DuplicateProvider => write!(f, "spec has more than one provider"),
            SpecError::DuplicateStage { kind } => {
                write!(f, "stage '{}' appears more than once", kind.token())
            }
            SpecError::UnknownToken { token } => write!(f, "unknown spec token '{token}'"),
            SpecError::StageRequiresTage { stage, provider } => {
                write!(f, "stage '{stage}' requires a tage provider, not '{provider}'")
            }
            SpecError::BadArg { token, reason } => write!(f, "bad '{token}' argument: {reason}"),
            SpecError::BadProviderParam { param, reason } => {
                write!(f, "bad provider parameter '{param}': {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl fmt::Display for SystemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tage")?;
        // Provider-internal productions, defaults omitted (fixed
        // base-then-chooser order keeps the form canonical).
        let base_slot = (self.provider.base_slot != BaseChoice::default())
            .then(|| format!("base={}", self.provider.base_slot.token()));
        let chooser = (self.provider.chooser != ChooserChoice::default())
            .then(|| format!("chooser={}", self.provider.chooser.token()));
        let params: Vec<String> = base_slot.into_iter().chain(chooser).collect();
        if !params.is_empty() {
            write!(f, "({})", params.join(","))?;
        }
        match self.provider.base {
            TageBase::Reference => {}
            TageBase::LscCore => write!(f, ":lsc")?,
            TageBase::Balanced { tables, l1, lmax } => write!(f, ":b{tables},{l1},{lmax}")?,
        }
        if let Some((l1, lmax)) = self.provider.history {
            write!(f, ":h{l1},{lmax}")?;
        }
        if self.provider.scale != 0 {
            write!(f, ":x{}", self.provider.scale)?;
        }
        for stage in &self.stages {
            match *stage {
                StageSpec::Ium { capacity } => {
                    if capacity == DEFAULT_IUM_CAPACITY {
                        write!(f, "+ium")?;
                    } else {
                        write!(f, "+ium:{capacity}")?;
                    }
                }
                StageSpec::Gsc => write!(f, "+sc")?,
                StageSpec::Lsc { double_lht, scale } => {
                    write!(f, "+lsc")?;
                    if double_lht {
                        write!(f, ":2lht")?;
                    }
                    if scale != 0 {
                        write!(f, ":x{scale}")?;
                    }
                }
                StageSpec::Loop { entries, ways } => {
                    if (entries, ways) == (64, 4) {
                        write!(f, "+loop")?;
                    } else {
                        write!(f, "+loop:{entries},{ways}")?;
                    }
                }
            }
        }
        if self.interleaved {
            write!(f, "/ilv")?;
        }
        if self.lsc_always_reread {
            write!(f, "/lsc-reread")?;
        }
        if let Some(label) = &self.label {
            write!(f, "/as={label}")?;
        }
        Ok(())
    }
}

impl FromStr for SystemSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Empty);
        }
        let mut parts = s.split('/');
        let chain = parts.next().unwrap_or_default();
        let mut segments = chain.split('+');

        let provider_seg = segments.next().unwrap_or_default();
        if provider_seg.is_empty() {
            return Err(SpecError::Empty);
        }
        let provider = parse_provider(provider_seg)?;

        let mut stages = Vec::new();
        for seg in segments {
            stages.push(parse_stage(seg)?);
        }

        let mut spec = SystemSpec {
            provider,
            stages,
            interleaved: false,
            lsc_always_reread: false,
            label: None,
        };
        for flag in parts {
            match flag {
                "ilv" => spec.interleaved = true,
                "lsc-reread" => spec.lsc_always_reread = true,
                _ if flag.starts_with("as=") => {
                    spec.label = Some(flag["as=".len()..].to_string());
                }
                // WILDCARD: open input domain — unknown user-written
                // flags map to a typed error, not to our own enums.
                _ => return Err(SpecError::UnknownToken { token: format!("/{flag}") }),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// Parses the `(key=value,...)` provider-internal production.
fn parse_provider_params(inner: &str, provider: &mut ProviderSpec) -> Result<(), SpecError> {
    if inner.is_empty() {
        return Err(SpecError::BadProviderParam {
            param: "()".into(),
            reason: "empty parameter list (omit the parentheses for the defaults)",
        });
    }
    let (mut saw_base, mut saw_chooser) = (false, false);
    for kv in inner.split(',') {
        let Some((key, value)) = kv.split_once('=') else {
            return Err(SpecError::BadProviderParam {
                param: kv.to_string(),
                reason: "expected key=value",
            });
        };
        match key {
            "base" => {
                if saw_base {
                    return Err(SpecError::BadProviderParam {
                        param: kv.to_string(),
                        reason: "'base' given more than once",
                    });
                }
                saw_base = true;
                provider.base_slot = BaseChoice::from_token(value).ok_or_else(|| {
                    SpecError::BadProviderParam {
                        param: kv.to_string(),
                        reason: "base must be one of bimodal, 2bc, gshare",
                    }
                })?;
            }
            "chooser" => {
                if saw_chooser {
                    return Err(SpecError::BadProviderParam {
                        param: kv.to_string(),
                        reason: "'chooser' given more than once",
                    });
                }
                saw_chooser = true;
                provider.chooser = ChooserChoice::from_token(value).ok_or_else(|| {
                    SpecError::BadProviderParam {
                        param: kv.to_string(),
                        reason: "chooser must be one of altweak, always, conf, table",
                    }
                })?;
            }
            // WILDCARD: open input domain — unknown provider-param keys
            // become typed errors.
            _ => {
                return Err(SpecError::BadProviderParam {
                    param: kv.to_string(),
                    reason: "unknown key (expected base= or chooser=)",
                })
            }
        }
    }
    Ok(())
}

fn parse_provider(seg: &str) -> Result<ProviderSpec, SpecError> {
    let mut opts = seg.split(':');
    let head = opts.next().unwrap_or_default();
    // Split off a `(key=value,...)` provider-parameter group, if present.
    let (name, params) = match head.find('(') {
        Some(at) => {
            let inner = head[at + 1..].strip_suffix(')').ok_or_else(|| {
                SpecError::BadProviderParam {
                    param: head.to_string(),
                    reason: "provider parameters must be '(key=value,...)'",
                }
            })?;
            (&head[..at], Some(inner))
        }
        None => (head, None),
    };
    if name != "tage" {
        // A stage token in the provider position is the classic
        // ill-formed chain ("chooser before any provider"). `name` is
        // already colon- and paren-split, so exact matching is the right
        // test — anything else is just an unknown token.
        if ["ium", "sc", "lsc", "loop"].contains(&name) {
            return Err(SpecError::StackMustStartWithProvider { found: name.to_string() });
        }
        return Err(SpecError::UnknownToken { token: head.to_string() });
    }
    let mut provider = ProviderSpec::reference();
    if let Some(inner) = params {
        parse_provider_params(inner, &mut provider)?;
    }
    for opt in opts {
        if opt == "lsc" {
            if provider.base != TageBase::Reference {
                return Err(SpecError::BadArg {
                    token: "tage".into(),
                    reason: "only one provider core option is allowed",
                });
            }
            provider.base = TageBase::LscCore;
        } else if let Some(rest) = opt.strip_prefix('b') {
            if provider.base != TageBase::Reference {
                return Err(SpecError::BadArg {
                    token: "tage".into(),
                    reason: "only one provider core option is allowed",
                });
            }
            let (tables, l1, lmax) = parse_triple(rest, "tage:b")?;
            provider.base = TageBase::Balanced { tables, l1, lmax };
        } else if let Some(rest) = opt.strip_prefix('h') {
            let (l1, lmax) = parse_pair(rest, "tage:h")?;
            provider.history = Some((l1, lmax));
        } else if let Some(rest) = opt.strip_prefix('x') {
            provider.scale = rest.parse().map_err(|_| SpecError::BadArg {
                token: "tage:x".into(),
                reason: "scale must be a (signed) integer",
            })?;
        } else {
            return Err(SpecError::UnknownToken { token: format!("tage:{opt}") });
        }
    }
    Ok(provider)
}

fn parse_stage(seg: &str) -> Result<StageSpec, SpecError> {
    let mut opts = seg.split(':');
    let head = opts.next().unwrap_or_default();
    if head.starts_with("tage(") {
        // A parameterized provider in a stage position.
        return Err(SpecError::DuplicateProvider);
    }
    let stage = match head {
        "tage" => return Err(SpecError::DuplicateProvider),
        "ium" => {
            let capacity = match opts.next() {
                None => DEFAULT_IUM_CAPACITY,
                Some(v) => v.parse().map_err(|_| SpecError::BadArg {
                    token: "ium".into(),
                    reason: "capacity must be an unsigned integer",
                })?,
            };
            StageSpec::Ium { capacity }
        }
        "sc" => StageSpec::Gsc,
        "lsc" => {
            let mut double_lht = false;
            let mut scale = 0i32;
            for opt in opts.by_ref() {
                if opt == "2lht" {
                    double_lht = true;
                } else if let Some(rest) = opt.strip_prefix('x') {
                    scale = rest.parse().map_err(|_| SpecError::BadArg {
                        token: "lsc:x".into(),
                        reason: "scale must be a (signed) integer",
                    })?;
                } else {
                    return Err(SpecError::UnknownToken { token: format!("lsc:{opt}") });
                }
            }
            StageSpec::Lsc { double_lht, scale }
        }
        "loop" => {
            let (entries, ways) = match opts.next() {
                None => (64, 4),
                Some(v) => parse_pair(v, "loop")?,
            };
            StageSpec::Loop { entries, ways }
        }
        // WILDCARD: open input domain — unknown stage tokens become
        // typed errors.
        _ => return Err(SpecError::UnknownToken { token: head.to_string() }),
    };
    if let Some(extra) = opts.next() {
        return Err(SpecError::UnknownToken { token: format!("{head}:{extra}") });
    }
    Ok(stage)
}

fn parse_pair(s: &str, token: &'static str) -> Result<(usize, usize), SpecError> {
    let bad = || SpecError::BadArg { token: token.into(), reason: "expected two comma-separated unsigned integers" };
    let (a, b) = s.split_once(',').ok_or_else(bad)?;
    Ok((a.parse().map_err(|_| bad())?, b.parse().map_err(|_| bad())?))
}

fn parse_triple(s: &str, token: &'static str) -> Result<(usize, usize, usize), SpecError> {
    let bad = || SpecError::BadArg { token: token.into(), reason: "expected three comma-separated unsigned integers" };
    let (a, rest) = s.split_once(',').ok_or_else(bad)?;
    let (b, c) = rest.split_once(',').ok_or_else(bad)?;
    Ok((a.parse().map_err(|_| bad())?, b.parse().map_err(|_| bad())?, c.parse().map_err(|_| bad())?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Predictor;

    #[test]
    fn presets_all_parse_and_build() {
        for (name, spec) in PRESETS {
            let parsed: SystemSpec = spec.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
            let stack = parsed.build().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(stack.storage_bits() > 0);
            // Canonical form round-trips.
            let display = parsed.to_string();
            let reparsed: SystemSpec = display.parse().unwrap();
            assert_eq!(parsed, reparsed, "{name}: '{display}' did not round-trip");
        }
    }

    #[test]
    fn canonical_form_drops_defaults() {
        let spec: SystemSpec = "tage:x0+ium:64+loop:64,4".parse().unwrap();
        assert_eq!(spec.to_string(), "tage+ium+loop");
        // The delta-0 scaled spec canonicalizes onto the reference spec,
        // which is what lets the Figure 9 sweep share the reference suite.
        let scaled: SystemSpec = "tage:x0".parse().unwrap();
        let reference: SystemSpec = "tage".parse().unwrap();
        assert_eq!(scaled, reference);
        assert_eq!(scaled.to_string(), "tage");
    }

    #[test]
    fn stage_before_provider_is_typed_error() {
        let err = "ium+tage".parse::<SystemSpec>().unwrap_err();
        assert_eq!(err, SpecError::StackMustStartWithProvider { found: "ium".into() });
        let err = "loop:64,4".parse::<SystemSpec>().unwrap_err();
        assert!(matches!(err, SpecError::StackMustStartWithProvider { .. }));
    }

    #[test]
    fn duplicate_provider_and_stage_are_typed_errors() {
        assert_eq!("tage+tage".parse::<SystemSpec>().unwrap_err(), SpecError::DuplicateProvider);
        assert_eq!(
            "tage+ium+ium".parse::<SystemSpec>().unwrap_err(),
            SpecError::DuplicateStage { kind: StageKind::Ium }
        );
        assert_eq!(
            "tage+sc+lsc+sc".parse::<SystemSpec>().unwrap_err(),
            SpecError::DuplicateStage { kind: StageKind::Gsc }
        );
    }

    #[test]
    fn bad_arguments_are_typed_errors() {
        assert!(matches!(
            "tage+ium:3".parse::<SystemSpec>().unwrap_err(),
            SpecError::BadArg { .. }
        ));
        assert!(matches!(
            "tage+loop:63,4".parse::<SystemSpec>().unwrap_err(),
            SpecError::BadArg { .. }
        ));
        assert!(matches!(
            "tage:h9,3".parse::<SystemSpec>().unwrap_err(),
            SpecError::BadArg { .. }
        ));
        assert!(matches!(
            "tage:b40,6,1000".parse::<SystemSpec>().unwrap_err(),
            SpecError::BadArg { .. }
        ));
        assert!(matches!(
            "bogus".parse::<SystemSpec>().unwrap_err(),
            SpecError::UnknownToken { .. }
        ));
        // A token merely *prefixed* by a stage name is unknown, not a
        // stage-before-provider chain.
        assert!(matches!(
            "iummax+tage".parse::<SystemSpec>().unwrap_err(),
            SpecError::UnknownToken { .. }
        ));
        assert_eq!("".parse::<SystemSpec>().unwrap_err(), SpecError::Empty);
    }

    #[test]
    fn build_validates_hand_constructed_specs() {
        let mut spec = SystemSpec::reference();
        spec.stages = vec![StageSpec::ium(), StageSpec::ium()];
        assert_eq!(
            spec.build().unwrap_err(),
            SpecError::DuplicateStage { kind: StageKind::Ium }
        );
        let mut spec = SystemSpec::reference();
        spec.stages = vec![StageSpec::Ium { capacity: 48 }];
        assert!(matches!(spec.build().unwrap_err(), SpecError::BadArg { .. }));
    }

    #[test]
    fn novel_compositions_build() {
        // Compositions no experiment table covers must assemble too:
        // loop-without-SC at a 32 KB budget, and a corrector judging the
        // loop output (loop *before* sc in the chain).
        for s in ["tage:x-1+ium+loop", "tage+ium+loop+sc"] {
            let spec: SystemSpec = s.parse().unwrap();
            let stack = spec.build().unwrap();
            assert!(stack.storage_bits() > 0);
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn provider_params_round_trip_and_canonicalize() {
        // Explicit defaults canonicalize away — the decomposed default
        // provider shares the reference suite's memo label.
        let spec: SystemSpec = "tage(base=bimodal,chooser=altweak)+ium".parse().unwrap();
        assert_eq!(spec.to_string(), "tage+ium");
        assert_eq!(spec, "tage+ium".parse().unwrap());
        // Non-defaults stay, in fixed base-then-chooser order.
        for s in [
            "tage(chooser=always)",
            "tage(base=gshare)",
            "tage(base=2bc,chooser=conf)",
            "tage(base=gshare,chooser=conf):lsc:x-1+ium+lsc",
            "tage(chooser=always)+ium+sc+loop/ilv/as=ABLATED",
        ] {
            let spec: SystemSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s, "canonical form changed");
            let stack = spec.build().unwrap();
            assert!(simkit::Predictor::storage_bits(&stack) > 0);
        }
    }

    #[test]
    fn ill_formed_provider_params_are_typed_errors() {
        for s in [
            "tage()",                     // empty group
            "tage(base)",                 // no value
            "tage(base=)",                // empty value
            "tage(base=altweak)",         // chooser value in the base domain
            "tage(chooser=bimodal)",      // base value in the chooser domain
            "tage(chooser=gshare)",       // base value in the chooser domain
            "tage(base=bimodal,base=2bc)", // duplicate key
            "tage(speed=fast)",           // unknown key
            "tage(base=gshare",           // unclosed group
        ] {
            assert!(
                matches!(
                    s.parse::<SystemSpec>().unwrap_err(),
                    SpecError::BadProviderParam { .. }
                ),
                "'{s}' should be a typed provider-param error"
            );
        }
        // A parameterized provider in a stage position is a duplicate
        // provider, same as the bare token.
        assert_eq!(
            "tage+ium+tage(chooser=always)".parse::<SystemSpec>().unwrap_err(),
            SpecError::DuplicateProvider
        );
    }

    #[test]
    fn provider_params_change_the_sim_identity() {
        let plain: SystemSpec = "tage".parse().unwrap();
        let always: SystemSpec = "tage(chooser=always)".parse().unwrap();
        let gshare: SystemSpec = "tage(base=gshare)".parse().unwrap();
        assert_ne!(plain, always);
        assert_ne!(plain.to_string(), gshare.to_string());
        // The base slot changes the budget; the chooser does not.
        assert_eq!(plain.storage_bits().unwrap(), always.storage_bits().unwrap());
        assert_ne!(plain.storage_bits().unwrap(), gshare.storage_bits().unwrap());
    }

    #[test]
    fn spec_budget_matches_builder_budget() {
        let spec = SystemSpec::preset("tage-lsc").unwrap();
        assert_eq!(
            spec.storage_bits().unwrap(),
            spec.build().unwrap().storage_bits()
        );
    }
}
