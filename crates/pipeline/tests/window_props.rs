//! Property tests for skip/warmup/measure windowing: the window must be
//! pure *accounting* over the same per-event arithmetic, never a second
//! simulation path. Three equivalences pin that:
//!
//! * under `Immediate` update, a `{skip: 0, warmup: w, measure: m}` run
//!   reproduces the full run's measure-region counters exactly, as the
//!   difference of two measured prefixes;
//! * the default window (and an explicit `{0, 0, len}` one) is
//!   bit-identical to the unwindowed engine under *every* scenario;
//! * skipping via the window and skipping via [`EventSource::skip`] land
//!   on the same stream position, so a data-path seek (`.ttr` v3 index)
//!   and a window skip are interchangeable.

use pipeline::{simulate, simulate_source, PipelineConfig, SimWindow};
use proptest::collection::vec;
use proptest::prelude::*;
use simkit::predictor::{BranchKind, UpdateScenario};
use workloads::event::{EventSource, Trace, TraceEvent, TraceStream};

const ALL_SCENARIOS: [UpdateScenario; 4] = [
    UpdateScenario::Immediate,
    UpdateScenario::RereadAtRetire,
    UpdateScenario::FetchOnly,
    UpdateScenario::RereadOnMispredict,
];

type RawEvent = ((u64, u8, bool), (u16, u64));

/// Small-footprint event streams: a handful of static branches so the
/// predictor actually learns (and mispredict counts move when the
/// window does), with occasional unconditional and load-carrying events
/// to exercise the non-predicted and penalty paths.
fn event_strategy() -> impl Strategy<Value = Vec<RawEvent>> {
    vec(((0u64..64, 0u8..8, any::<bool>()), (0u16..16, 0u64..4)), 1usize..250)
}

fn trace_of(raw: Vec<RawEvent>) -> Trace {
    let events = raw
        .into_iter()
        .map(|((slot, kind, taken), (uops, load))| {
            let pc = 0x1000 + slot * 4;
            let kind = match kind {
                0 => BranchKind::DirectJump,
                1 => BranchKind::Return,
                _ => BranchKind::Conditional,
            };
            TraceEvent {
                pc,
                kind,
                taken: taken || kind != BranchKind::Conditional,
                target: pc.wrapping_add(if taken { 0x40 } else { 8 }),
                uops_before: uops,
                load_addr: (load != 0).then(|| 0x10_0000 + load * 0x40),
            }
        })
        .collect();
    Trace { name: "PROP01".into(), category: "PROP".into(), events }
}

fn windowed(window: SimWindow) -> PipelineConfig {
    PipelineConfig { window, ..PipelineConfig::default() }
}

fn run(t: &Trace, scenario: UpdateScenario, cfg: &PipelineConfig) -> pipeline::SimReport {
    simulate(&mut baselines::Gshare::cbp_512k(), t, scenario, cfg)
}

proptest! {
    #[test]
    fn warmup_and_measure_partition_the_full_run_under_immediate(
        raw in event_strategy(), w in 0u64..120, m in 1u64..120,
    ) {
        // Under `Immediate` the predictor (and cache) state at event k is
        // the same in every run, so counters are per-event values summed
        // over the measured region: a `{0, w, m}` window must equal the
        // difference of the two measured prefixes `[0, w+m)` and `[0, w)`.
        let t = trace_of(raw);
        let sc = UpdateScenario::Immediate;
        let win = run(&t, sc, &windowed(SimWindow { skip: 0, warmup: w, measure: m }));
        let long = run(&t, sc, &windowed(SimWindow { skip: 0, warmup: 0, measure: w + m }));
        let short = run(&t, sc, &windowed(SimWindow { skip: 0, warmup: 0, measure: w }));
        prop_assert_eq!(win.mispredicts, long.mispredicts - short.mispredicts);
        prop_assert_eq!(win.penalty_cycles, long.penalty_cycles - short.penalty_cycles);
        prop_assert_eq!(win.uops, long.uops - short.uops);
        prop_assert_eq!(win.conditionals, long.conditionals - short.conditionals);
        // Warmup events still train, so the windowed run's table traffic
        // is the *long* prefix's, not the difference.
        prop_assert_eq!(win.stats, long.stats);
    }

    #[test]
    fn zero_warmup_full_measure_is_bit_identical_under_all_scenarios(raw in event_strategy()) {
        let t = trace_of(raw);
        let n = t.events.len() as u64;
        for sc in ALL_SCENARIOS {
            let full = run(&t, sc, &PipelineConfig::default());
            let explicit = run(&t, sc, &windowed(SimWindow::default()));
            let exact = run(&t, sc, &windowed(SimWindow { skip: 0, warmup: 0, measure: n }));
            prop_assert_eq!(&full, &explicit, "default window drifted under {:?}", sc);
            prop_assert_eq!(&full, &exact, "measure == len drifted under {:?}", sc);
        }
    }

    #[test]
    fn window_skip_equals_source_skip(
        raw in event_strategy(), s in 0u64..150, w in 0u64..60, m in 1u64..60,
    ) {
        // Fast-forwarding `s` events inside the window must equal
        // positioning the source itself `s` events in (the sampled
        // slice driver does the latter via the `.ttr` v3 index).
        let t = trace_of(raw);
        for sc in [UpdateScenario::Immediate, UpdateScenario::RereadAtRetire] {
            let via_window =
                run(&t, sc, &windowed(SimWindow { skip: s, warmup: w, measure: m }));
            let mut source = TraceStream::new(&t);
            let skipped = EventSource::skip(&mut source, s);
            prop_assert_eq!(skipped, s.min(t.events.len() as u64));
            let via_source = simulate_source(
                &mut baselines::Gshare::cbp_512k(),
                &mut source,
                sc,
                &windowed(SimWindow { skip: 0, warmup: w, measure: m }),
            );
            prop_assert_eq!(via_window.mispredicts, via_source.mispredicts, "{:?}", sc);
            prop_assert_eq!(via_window.penalty_cycles, via_source.penalty_cycles, "{:?}", sc);
            prop_assert_eq!(via_window.uops, via_source.uops, "{:?}", sc);
            prop_assert_eq!(via_window.conditionals, via_source.conditionals, "{:?}", sc);
            prop_assert_eq!(via_window.stats, via_source.stats, "{:?}", sc);
        }
    }
}
