//! A simple out-of-order core timing model with a realistic memory
//! hierarchy — the penalty side of the CBP-3 framework (§2).
//!
//! The MPPKI metric weighs each misprediction by its pipeline cost. On the
//! modeled core a misprediction costs the front-end refill depth plus the
//! *resolution latency* of the branch: a branch whose condition depends on
//! a load that misses in the cache hierarchy resolves hundreds of cycles
//! late, so flushing on it is far more expensive. This is why the paper's
//! 7 hard benchmarks (which also have large data footprints) dominate the
//! suite MPPKI.

/// One set-associative cache level with LRU replacement.
#[derive(Clone, Debug)]
pub struct CacheLevel {
    /// Tag store: `sets × ways` entries; 0 = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    sets: usize,
    ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
    clock: u64,
}

impl CacheLevel {
    /// A cache of `size_bytes` with 64-byte lines and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is not a positive power of two.
    pub fn new(size_bytes: usize, ways: usize, latency: u64) -> Self {
        let lines = size_bytes / 64;
        let sets = lines / ways;
        assert!(sets > 0 && sets.is_power_of_two(), "bad cache geometry");
        Self {
            tags: vec![0; lines],
            stamps: vec![0; lines],
            sets,
            ways,
            latency,
            clock: 0,
        }
    }

    /// The configuration words of this level (geometry + latency, not the
    /// runtime tag/LRU state, which starts cold every simulation).
    /// Exhaustively destructured so a new field fails this compile until
    /// classified as configuration or state.
    pub(crate) fn config_words(&self) -> [u64; 3] {
        let Self { tags: _, stamps: _, clock: _, sets, ways, latency } = self;
        [*sets as u64, *ways as u64, *latency]
    }

    /// Looks up `addr`; on a miss, fills the line. Returns hit/miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> 6;
        let set = (line as usize) & (self.sets - 1);
        let tag = (line >> self.sets.trailing_zeros()) | 1 << 63; // never 0
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.tags[base + w] == tag {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        // Miss: replace LRU way.
        let mut victim = base;
        for w in 1..self.ways {
            if self.stamps[base + w] < self.stamps[victim] {
                victim = base + w;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        false
    }
}

/// A three-level cache hierarchy backed by main memory.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1: CacheLevel,
    l2: CacheLevel,
    l3: CacheLevel,
    /// Main memory latency in cycles.
    pub memory_latency: u64,
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        Self {
            l1: CacheLevel::new(32 * 1024, 8, 3),
            l2: CacheLevel::new(256 * 1024, 8, 12),
            l3: CacheLevel::new(2 * 1024 * 1024, 16, 35),
            memory_latency: 180,
        }
    }
}

impl MemoryHierarchy {
    /// Walks `addr` through the hierarchy, filling on misses. Returns the
    /// load-to-use latency in cycles.
    pub fn load_latency(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            return self.l1.latency;
        }
        if self.l2.access(addr) {
            return self.l2.latency;
        }
        if self.l3.access(addr) {
            return self.l3.latency;
        }
        self.memory_latency
    }

    /// Configuration words of the whole hierarchy, for memo-cache keys.
    pub(crate) fn config_words(&self) -> Vec<u64> {
        let Self { l1, l2, l3, memory_latency } = self;
        let mut words = Vec::with_capacity(10);
        for level in [l1, l2, l3] {
            words.extend(level.config_words());
        }
        words.push(*memory_latency);
        words
    }
}

/// The core timing model: misprediction penalties and branch resolution
/// delays.
#[derive(Clone, Debug)]
pub struct CoreModel {
    /// Memory hierarchy for branch-feeding loads.
    pub memory: MemoryHierarchy,
    /// Front-end refill cost of a misprediction, in cycles.
    pub refill_penalty: u64,
    /// Minimum fetch→execute distance, in retired branches.
    pub min_exec_lag: usize,
}

impl Default for CoreModel {
    fn default() -> Self {
        Self { memory: MemoryHierarchy::default(), refill_penalty: 25, min_exec_lag: 4 }
    }
}

impl CoreModel {
    /// Resolves a branch: returns `(resolution_latency_cycles, exec_lag)`.
    /// `exec_lag` is how many subsequent fetched branches pass before this
    /// branch's outcome is known to the hardware (drives the IUM's
    /// P→E transition); load-dependent branches resolve later.
    pub fn resolve(&mut self, load_addr: Option<u64>) -> (u64, usize) {
        match load_addr {
            None => (1, self.min_exec_lag),
            Some(addr) => {
                let lat = self.memory.load_latency(addr);
                // Roughly one branch fetched every ~4 cycles on this core.
                (lat, self.min_exec_lag + (lat / 8) as usize)
            }
        }
    }

    /// Penalty charged for a misprediction whose resolution latency was
    /// `resolution`: front-end refill plus the wasted resolution wait.
    pub fn mispredict_penalty(&self, resolution: u64) -> u64 {
        self.refill_penalty + resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_hits_after_fill() {
        let mut m = MemoryHierarchy::default();
        let cold = m.load_latency(0x1000);
        assert_eq!(cold, m.memory_latency);
        let warm = m.load_latency(0x1000);
        assert_eq!(warm, 3);
    }

    #[test]
    fn capacity_eviction_falls_to_l2() {
        let mut m = MemoryHierarchy::default();
        // Touch far more lines than L1 holds (32KB = 512 lines), all in
        // distinct sets cyclically; then re-touch the first line.
        for i in 0..4096u64 {
            m.load_latency(i * 64);
        }
        let lat = m.load_latency(0);
        assert!(lat > 3, "line should have left L1, latency {lat}");
        assert!(lat <= 35, "line should still be cached, latency {lat}");
    }

    #[test]
    fn hierarchy_latencies_are_monotonic() {
        let m = MemoryHierarchy::default();
        assert!(m.l1.latency < m.l2.latency);
        assert!(m.l2.latency < m.l3.latency);
        assert!(m.l3.latency < m.memory_latency);
    }

    #[test]
    fn core_penalty_scales_with_resolution() {
        let core = CoreModel::default();
        assert!(core.mispredict_penalty(1) < core.mispredict_penalty(180));
        assert_eq!(core.mispredict_penalty(0), core.refill_penalty);
    }

    #[test]
    fn load_dependent_branches_execute_later() {
        let mut core = CoreModel::default();
        let (_, lag_plain) = core.resolve(None);
        // A cold load:
        let (lat, lag_loaded) = core.resolve(Some(0xDEAD_0000));
        assert!(lat > 1);
        assert!(lag_loaded > lag_plain);
    }

    #[test]
    fn lru_keeps_hot_lines() {
        let mut c = CacheLevel::new(4096, 4, 1); // 64 lines, 16 sets
        // Two addresses in the same set; keep one hot while streaming.
        let hot = 0u64;
        c.access(hot);
        for i in 1..64u64 {
            c.access(i * 64 * 16); // same set 0, different tags
            c.access(hot); // refresh
        }
        assert!(c.access(hot), "hot line evicted despite LRU refreshes");
    }
}
