//! Simulation results: per-trace reports and suite aggregation.
//!
//! The §2.1 metric is MPPKI — Misprediction Penalty Per Kilo Instructions.
//! Suite-level scores are arithmetic means over the 40 traces (consistent
//! with the paper's group arithmetic: 568 ≈ (33·196 + 7·2311)/40).

use simkit::predictor::UpdateScenario;
use simkit::stats::AccessStats;

/// Counters for one static branch, collected by the opt-in per-branch
/// profiler (`PipelineConfig::branch_stats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchStat {
    /// Static branch instruction address.
    pub pc: u64,
    /// Times the conditional branch was fetched and predicted.
    pub executions: u64,
    /// Times the resolved direction was taken.
    pub taken: u64,
    /// Mispredictions charged to this branch.
    pub mispredicts: u64,
    /// Misprediction penalty cycles charged to this branch.
    pub penalty_cycles: u64,
}

impl BranchStat {
    /// A zeroed accumulator for `pc`.
    pub fn new(pc: u64) -> Self {
        Self { pc, executions: 0, taken: 0, mispredicts: 0, penalty_cycles: 0 }
    }

    /// Misprediction rate over this branch's executions.
    pub fn mispredict_rate(&self) -> f64 {
        self.mispredicts as f64 / self.executions.max(1) as f64
    }

    /// Taken rate over this branch's executions.
    pub fn taken_rate(&self) -> f64 {
        self.taken as f64 / self.executions.max(1) as f64
    }
}

/// The per-static-branch profile of one simulation: one [`BranchStat`] per
/// distinct PC, sorted by ascending PC. The sort makes equality structural
/// and serialization deterministic regardless of hash-map iteration order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchProfile {
    /// Per-branch counters, ascending by `pc`.
    pub branches: Vec<BranchStat>,
}

impl BranchProfile {
    /// Builds a profile from raw per-PC accumulators, sorting by PC.
    pub fn from_map(map: &std::collections::HashMap<u64, BranchStat>) -> Self {
        let mut branches: Vec<BranchStat> = map.values().copied().collect();
        branches.sort_unstable_by_key(|s| s.pc);
        Self { branches }
    }

    /// The `n` worst branches by mispredict count (ties broken by lower
    /// PC), descending — the rows a hot-branch table wants.
    pub fn top_by_mispredicts(&self, n: usize) -> Vec<BranchStat> {
        let mut v = self.branches.clone();
        v.sort_by(|a, b| b.mispredicts.cmp(&a.mispredicts).then(a.pc.cmp(&b.pc)));
        v.truncate(n);
        v
    }

    /// Keeps only the `n` worst branches by mispredict count, restoring
    /// the ascending-PC invariant afterwards.
    pub fn truncated(&self, n: usize) -> Self {
        let mut branches = self.top_by_mispredicts(n);
        branches.sort_unstable_by_key(|s| s.pc);
        Self { branches }
    }

    /// Total executions across all recorded branches.
    pub fn total_executions(&self) -> u64 {
        self.branches.iter().map(|s| s.executions).sum()
    }

    /// Total taken outcomes across all recorded branches.
    pub fn total_taken(&self) -> u64 {
        self.branches.iter().map(|s| s.taken).sum()
    }

    /// Total mispredictions across all recorded branches.
    pub fn total_mispredicts(&self) -> u64 {
        self.branches.iter().map(|s| s.mispredicts).sum()
    }

    /// Total penalty cycles across all recorded branches.
    pub fn total_penalty_cycles(&self) -> u64 {
        self.branches.iter().map(|s| s.penalty_cycles).sum()
    }
}

/// Result of simulating one predictor over one trace.
///
/// `PartialEq` compares every counter bit-for-bit — the equivalence tests
/// use it to assert that streamed and materialized simulation agree
/// exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Trace name.
    pub trace: String,
    /// Trace category.
    pub category: String,
    /// Predictor name.
    pub predictor: String,
    /// Update scenario simulated.
    pub scenario: UpdateScenario,
    /// Total micro-ops.
    pub uops: u64,
    /// Conditional branches predicted.
    pub conditionals: u64,
    /// Mispredictions.
    pub mispredicts: u64,
    /// Total misprediction penalty cycles.
    pub penalty_cycles: u64,
    /// Predictor-table access counters.
    pub stats: AccessStats,
    /// Per-static-branch profile; `None` unless
    /// `PipelineConfig::branch_stats` opted in (the default path carries
    /// no collection cost and compares equal to pre-profiler reports).
    pub branches: Option<BranchProfile>,
}

impl SimReport {
    /// Mispredictions per kilo micro-op.
    pub fn mpki(&self) -> f64 {
        self.mispredicts as f64 * 1000.0 / self.uops.max(1) as f64
    }

    /// Misprediction penalty per kilo micro-op (the paper's metric).
    pub fn mppki(&self) -> f64 {
        self.penalty_cycles as f64 * 1000.0 / self.uops.max(1) as f64
    }

    /// Misprediction rate over conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        self.mispredicts as f64 / self.conditionals.max(1) as f64
    }

    /// Effective writes per misprediction (§4.1.1).
    pub fn writes_per_mispredict(&self) -> f64 {
        self.stats.effective_writes as f64 / self.mispredicts.max(1) as f64
    }

    /// Effective writes per 100 retired conditional branches (§4.1.1).
    pub fn writes_per_100_branches(&self) -> f64 {
        self.stats.effective_writes as f64 * 100.0 / self.conditionals.max(1) as f64
    }

    /// Total predictor accesses per retired conditional branch (§4.2).
    pub fn accesses_per_branch(&self) -> f64 {
        self.stats.total_accesses() as f64 / self.conditionals.max(1) as f64
    }
}

/// Aggregated results of a predictor over a trace suite.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// One report per trace, in suite order.
    pub reports: Vec<SimReport>,
}

impl SuiteReport {
    /// Wraps per-trace reports.
    pub fn new(reports: Vec<SimReport>) -> Self {
        Self { reports }
    }

    /// Suite MPPKI: arithmetic mean over traces.
    pub fn mppki(&self) -> f64 {
        mean(self.reports.iter().map(SimReport::mppki))
    }

    /// Suite MPKI: arithmetic mean over traces.
    pub fn mpki(&self) -> f64 {
        mean(self.reports.iter().map(SimReport::mpki))
    }

    /// Total mispredictions across the suite.
    pub fn total_mispredicts(&self) -> u64 {
        self.reports.iter().map(|r| r.mispredicts).sum()
    }

    /// Mean MPPKI over the traces whose names appear in `names`.
    pub fn mppki_of(&self, names: &[&str]) -> f64 {
        mean(self.reports.iter().filter(|r| names.contains(&r.trace.as_str())).map(SimReport::mppki))
    }

    /// Mean MPPKI over the traces whose names do *not* appear in `names`.
    pub fn mppki_excluding(&self, names: &[&str]) -> f64 {
        mean(
            self.reports
                .iter()
                .filter(|r| !names.contains(&r.trace.as_str()))
                .map(SimReport::mppki),
        )
    }

    /// Fraction of suite mispredictions contributed by the named traces.
    pub fn mispredict_share(&self, names: &[&str]) -> f64 {
        let total = self.total_mispredicts().max(1);
        let subset: u64 = self
            .reports
            .iter()
            .filter(|r| names.contains(&r.trace.as_str()))
            .map(|r| r.mispredicts)
            .sum();
        subset as f64 / total as f64
    }

    /// Suite-level effective writes per misprediction.
    pub fn writes_per_mispredict(&self) -> f64 {
        let w: u64 = self.reports.iter().map(|r| r.stats.effective_writes).sum();
        let m: u64 = self.reports.iter().map(|r| r.mispredicts).sum();
        w as f64 / m.max(1) as f64
    }

    /// Suite-level effective writes per 100 retired conditional branches.
    pub fn writes_per_100_branches(&self) -> f64 {
        let w: u64 = self.reports.iter().map(|r| r.stats.effective_writes).sum();
        let c: u64 = self.reports.iter().map(|r| r.conditionals).sum();
        w as f64 * 100.0 / c.max(1) as f64
    }

    /// Suite-level accesses per retired conditional branch (§4.2).
    pub fn accesses_per_branch(&self) -> f64 {
        let a: u64 = self.reports.iter().map(|r| r.stats.total_accesses()).sum();
        let c: u64 = self.reports.iter().map(|r| r.conditionals).sum();
        a as f64 / c.max(1) as f64
    }

    /// Suite-level silent-write fraction.
    pub fn silent_fraction(&self) -> f64 {
        let mut s = AccessStats::default();
        for r in &self.reports {
            s.merge(&r.stats);
        }
        s.silent_fraction()
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(trace: &str, mispredicts: u64, penalty: u64) -> SimReport {
        SimReport {
            trace: trace.to_string(),
            category: "TEST".to_string(),
            predictor: "p".to_string(),
            scenario: UpdateScenario::RereadAtRetire,
            uops: 1_000_000,
            conditionals: 100_000,
            mispredicts,
            penalty_cycles: penalty,
            stats: AccessStats {
                predict_reads: 100_000,
                retire_reads: mispredicts,
                effective_writes: mispredicts * 2,
                silent_writes_avoided: 50_000,
            },
            branches: None,
        }
    }

    #[test]
    fn per_trace_metrics() {
        let r = report("A", 5_000, 150_000);
        assert!((r.mpki() - 5.0).abs() < 1e-9);
        assert!((r.mppki() - 150.0).abs() < 1e-9);
        assert!((r.mispredict_rate() - 0.05).abs() < 1e-9);
        assert!((r.writes_per_mispredict() - 2.0).abs() < 1e-9);
        assert!((r.writes_per_100_branches() - 10.0).abs() < 1e-9);
        // 100_000 + 5_000 + 10_000 accesses over 100_000 branches.
        assert!((r.accesses_per_branch() - 1.15).abs() < 1e-9);
    }

    #[test]
    fn suite_mean_matches_paper_arithmetic() {
        // Shape check on the aggregation rule: (33·196 + 7·2311)/40 ≈ 566.
        let mut reports = Vec::new();
        for i in 0..33 {
            reports.push(report(&format!("E{i}"), 100, 196_000));
        }
        for i in 0..7 {
            reports.push(report(&format!("H{i}"), 10_000, 2_311_000));
        }
        let s = SuiteReport::new(reports);
        assert!((s.mppki() - 566.125).abs() < 0.01);
        let hard: Vec<&str> = (0..7).map(|i| Box::leak(format!("H{i}").into_boxed_str()) as &str).collect();
        assert!((s.mppki_of(&hard) - 2311.0).abs() < 1e-6);
        assert!((s.mppki_excluding(&hard) - 196.0).abs() < 1e-6);
        assert!(s.mispredict_share(&hard) > 0.9);
    }

    #[test]
    fn branch_profile_sorts_and_ranks() {
        let mut map = std::collections::HashMap::new();
        map.insert(0x30, BranchStat { pc: 0x30, executions: 10, taken: 4, mispredicts: 7, penalty_cycles: 210 });
        map.insert(0x10, BranchStat { pc: 0x10, executions: 90, taken: 80, mispredicts: 2, penalty_cycles: 60 });
        map.insert(0x20, BranchStat { pc: 0x20, executions: 50, taken: 25, mispredicts: 7, penalty_cycles: 175 });
        let p = BranchProfile::from_map(&map);
        // Ascending PC regardless of hash order.
        let pcs: Vec<u64> = p.branches.iter().map(|s| s.pc).collect();
        assert_eq!(pcs, vec![0x10, 0x20, 0x30]);
        // Top-N descends by mispredicts, ties broken by lower PC.
        let top = p.top_by_mispredicts(2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].pc, top[1].pc), (0x20, 0x30));
        // Truncation restores ascending-PC order.
        let t = p.truncated(2);
        assert_eq!(t.branches[0].pc, 0x20);
        assert_eq!(t.branches[1].pc, 0x30);
        assert_eq!(p.total_executions(), 150);
        assert_eq!(p.total_taken(), 109);
        assert_eq!(p.total_mispredicts(), 16);
        assert_eq!(p.total_penalty_cycles(), 445);
        assert!((p.branches[0].mispredict_rate() - 2.0 / 90.0).abs() < 1e-12);
        assert!((p.branches[0].taken_rate() - 80.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn empty_suite_is_zero() {
        let s = SuiteReport::new(vec![]);
        assert_eq!(s.mppki(), 0.0);
        assert_eq!(s.total_mispredicts(), 0);
    }
}
