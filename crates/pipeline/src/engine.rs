//! The in-flight window engine: delayed execute/retire and the §4.1.2
//! update scenarios.
//!
//! Every conditional branch is predicted at fetch, extends the speculative
//! history immediately (exact on the correct path, §5.1), *executes* after
//! its resolution lag (when the IUM learns its outcome) and *retires* — in
//! program order — `retire_lag` branches later, at which point the
//! predictor tables are updated according to the chosen scenario.

use crate::core_model::CoreModel;
use crate::report::{BranchProfile, BranchStat, SimReport};
use simkit::predictor::{Predictor, UpdateScenario};
use simkit::stats::AccessStats;
use std::collections::{HashMap, VecDeque};
use workloads::event::{
    prefetch_event, EventBlock, EventSource, Trace, TraceEvent, TraceStream, EVENT_PREFETCH_AHEAD,
};

/// Default block size for the batched drivers ([`simulate_source_batched`],
/// [`simulate_engine`]). Big enough to amortize the per-block virtual
/// calls to nothing, small enough that the reusable [`EventBlock`] stays
/// cache-resident (~160 KiB of events).
pub const DEFAULT_BATCH: usize = 4096;

/// Skip/warmup/measure windows over the event stream (sampled
/// simulation). Positions count *trace events* — conditional or not —
/// matching [`EventSource::skip`] units and the `.ttr` per-block event
/// counts, so a data-path seek and a window skip agree on where event N
/// is.
///
/// * the first `skip` events are fast-forwarded: the predictor is never
///   touched and no counter moves;
/// * the next `warmup` events train the predictor (the full
///   predict/update path through the in-flight window) but score
///   nothing — [`AccessStats`] still observes their table traffic;
/// * the next `measure` events train *and* count; everything after is
///   fast-forwarded again (the drivers stop pulling events once the
///   window is spent).
///
/// The default (`skip = 0`, `warmup = 0`, `measure = u64::MAX`) runs the
/// identical arithmetic path as the unwindowed engine, so its reports are
/// bit-identical to the pre-window goldens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimWindow {
    /// Events fast-forwarded before any predictor activity.
    pub skip: u64,
    /// Events that train the predictor without scoring.
    pub warmup: u64,
    /// Events that are scored (`u64::MAX` = to the end of the trace).
    pub measure: u64,
}

impl Default for SimWindow {
    fn default() -> Self {
        Self { skip: 0, warmup: 0, measure: u64::MAX }
    }
}

impl SimWindow {
    /// First measured event position (`skip + warmup`, saturating).
    pub fn measure_start(&self) -> u64 {
        self.skip.saturating_add(self.warmup)
    }

    /// One past the last measured event position (saturating).
    pub fn end(&self) -> u64 {
        self.measure_start().saturating_add(self.measure)
    }

    /// Whether this is the default full-trace window.
    pub fn is_full(&self) -> bool {
        *self == Self::default()
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Branches fetched between a branch's fetch and its in-order retire.
    pub retire_lag: usize,
    /// Core timing model (execute lags, penalties, caches).
    pub core: CoreModel,
    /// Collect per-static-branch counters ([`BranchProfile`]) during
    /// simulation. Off by default: the collector never perturbs prediction
    /// (it only observes outcomes already computed), so reports with it on
    /// match the aggregate counters of reports with it off bit-for-bit.
    pub branch_stats: bool,
    /// Skip/warmup/measure windowing over the event stream. The default
    /// measures every event.
    pub window: SimWindow,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            retire_lag: 32,
            core: CoreModel::default(),
            branch_stats: false,
            window: SimWindow::default(),
        }
    }
}

impl PipelineConfig {
    /// Collapses the configuration to a fingerprint for suite-memoization
    /// keys. Every struct on the path is destructured exhaustively, so
    /// adding a configuration field fails this compile until the field is
    /// mixed into the key (or explicitly classified as runtime state) —
    /// two configs differing in any knob can never silently share a memo
    /// entry.
    pub fn fingerprint(&self) -> u64 {
        let Self { retire_lag, core, branch_stats, window } = self;
        let CoreModel { memory, refill_penalty, min_exec_lag } = core;
        let SimWindow { skip, warmup, measure } = window;
        let mut h = 0xCBF29CE484222325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001B3);
        };
        mix(*retire_lag as u64);
        // branch_stats cannot change any aggregate counter, but a memoized
        // report without a profile must not satisfy a request with one.
        mix(*branch_stats as u64);
        mix(*refill_penalty);
        mix(*min_exec_lag as u64);
        for w in memory.config_words() {
            mix(w);
        }
        // Window bounds change every counter, so a windowed report can
        // never alias a full-run memo entry (or another window's).
        mix(*skip);
        mix(*warmup);
        mix(*measure);
        h
    }
}

struct Inflight<F> {
    branch: simkit::BranchInfo,
    outcome: bool,
    predicted: bool,
    flight: F,
    exec_at: usize,
    retire_at: usize,
    executed: bool,
}

/// The in-flight window plus the accumulated counters of one simulation —
/// everything `simulate_source` used to keep in locals, factored out so
/// the scalar loop, the batched loop, and the type-erased [`WindowEngine`]
/// all drive the *same* per-event body ([`WindowState::step`]) and stay
/// bit-identical by construction.
struct WindowState<F> {
    // INVARIANT: `base` is the sequence number of `window.front()`, and
    // `pending_exec` holds sequence numbers of not-yet-executed window
    // entries in program order — `step` and `drain` maintain both in
    // lockstep with every push/pop.
    window: VecDeque<Inflight<F>>,
    pending_exec: VecDeque<usize>,
    base: usize,
    fetch_index: usize,
    core: CoreModel,
    retire_lag: usize,
    scenario: UpdateScenario,
    immediate: bool,
    mispredicts: u64,
    penalty: u64,
    uops: u64,
    conditionals: u64,
    // Sampled-simulation bounds (`PipelineConfig::window`), precomputed
    // as absolute event positions: [0, skip_end) is fast-forwarded,
    // [skip_end, measure_start) trains without counting,
    // [measure_start, window_end) trains and counts.
    position: u64,
    skip_end: u64,
    measure_start: u64,
    window_end: u64,
    // Opt-in per-static-branch accumulators (`PipelineConfig::branch_stats`).
    // `None` on the default path, so the only cost when off is one branch
    // per conditional; collection reads only values `step` already
    // computed, so it can never perturb prediction.
    profile: Option<HashMap<u64, BranchStat>>,
}

impl<F> WindowState<F> {
    fn new(scenario: UpdateScenario, cfg: &PipelineConfig) -> Self {
        Self {
            window: VecDeque::with_capacity(cfg.retire_lag + 64),
            pending_exec: VecDeque::new(),
            base: 0,
            fetch_index: 0,
            core: cfg.core.clone(),
            retire_lag: cfg.retire_lag,
            scenario,
            immediate: scenario == UpdateScenario::Immediate,
            mispredicts: 0,
            penalty: 0,
            uops: 0,
            conditionals: 0,
            position: 0,
            skip_end: cfg.window.skip,
            measure_start: cfg.window.measure_start(),
            window_end: cfg.window.end(),
            profile: cfg.branch_stats.then(HashMap::new),
        }
    }

    /// Whether the measurement window is spent: every further event would
    /// be fast-forwarded, so drivers may stop pulling from the source.
    /// Never true for the default full-trace window.
    fn complete(&self) -> bool {
        self.position >= self.window_end
    }

    /// Advances the simulation by exactly one trace event. This is *the*
    /// per-event body: every driver funnels through it, so batched and
    /// scalar runs perform the identical predict/execute/retire call
    /// sequence against the predictor.
    #[inline]
    fn step<P: Predictor<Flight = F>>(&mut self, predictor: &mut P, ev: &TraceEvent) {
        // Window gating. The default full-trace window resolves to
        // `measuring = true` on every event, taking the identical
        // arithmetic path as the pre-window engine (golden bit-identity).
        let pos = self.position;
        self.position += 1;
        if pos < self.skip_end || pos >= self.window_end {
            // Fast-forward: skipped events never touch the predictor, the
            // core model, or any counter — exactly as if the source had
            // been cut before/after them.
            return;
        }
        let measuring = pos >= self.measure_start;
        if measuring {
            self.uops += ev.uops();
        }
        let b = ev.branch_info();
        if !b.kind.is_conditional() {
            // Non-conditional events do not occupy a fetch slot:
            // `fetch_index` counts conditionals only.
            predictor.note_uncond(&b);
            return;
        }
        if measuring {
            self.conditionals += 1;
        }
        let (pred, mut flight) = predictor.predict(&b);
        let (resolution, exec_lag) = self.core.resolve(ev.load_addr);
        let mut event_penalty = 0;
        if pred != ev.taken && measuring {
            self.mispredicts += 1;
            event_penalty = self.core.mispredict_penalty(resolution);
            self.penalty += event_penalty;
        }
        if measuring {
            if let Some(profile) = &mut self.profile {
                let stat = profile.entry(b.pc).or_insert_with(|| BranchStat::new(b.pc));
                stat.executions += 1;
                stat.taken += ev.taken as u64;
                stat.mispredicts += (pred != ev.taken) as u64;
                stat.penalty_cycles += event_penalty;
            }
        }
        predictor.fetch_commit(&b, ev.taken, &mut flight);

        if self.immediate {
            predictor.execute(&b, ev.taken, &mut flight);
            predictor.retire(&b, ev.taken, pred, flight, self.scenario);
        } else {
            self.pending_exec.push_back(self.base + self.window.len());
            self.window.push_back(Inflight {
                branch: b,
                outcome: ev.taken,
                predicted: pred,
                flight,
                exec_at: self.fetch_index + exec_lag,
                retire_at: self.fetch_index + self.retire_lag.max(exec_lag + 1),
                executed: false,
            });
            // Execute every branch whose resolution completed, in program
            // order.
            let mut k = 0;
            while k < self.pending_exec.len() {
                let seq = self.pending_exec[k];
                let inflight = &mut self.window[seq - self.base];
                if inflight.exec_at <= self.fetch_index {
                    let ib = inflight.branch;
                    let io = inflight.outcome;
                    predictor.execute(&ib, io, &mut inflight.flight);
                    inflight.executed = true;
                    self.pending_exec.remove(k);
                } else {
                    k += 1;
                }
            }
            // Retire in order.
            while self.window.front().is_some_and(|f| f.retire_at <= self.fetch_index) {
                // INVARIANT: the loop condition just witnessed a front.
                let mut f = self.window.pop_front().unwrap();
                if !f.executed {
                    self.pending_exec.pop_front();
                    predictor.execute(&f.branch, f.outcome, &mut f.flight);
                }
                self.base += 1;
                predictor.retire(&f.branch, f.outcome, f.predicted, f.flight, self.scenario);
            }
        }
        self.fetch_index += 1;
    }

    /// Drains the window at trace end (`base` no longer needs maintaining:
    /// nothing indexes the window after this).
    fn drain<P: Predictor<Flight = F>>(&mut self, predictor: &mut P) {
        while let Some(mut f) = self.window.pop_front() {
            if !f.executed {
                self.pending_exec.pop_front();
                predictor.execute(&f.branch, f.outcome, &mut f.flight);
            }
            predictor.retire(&f.branch, f.outcome, f.predicted, f.flight, self.scenario);
        }
    }

    fn report<P: Predictor<Flight = F>>(
        &self,
        predictor: &P,
        name: &str,
        category: &str,
    ) -> SimReport {
        SimReport {
            trace: name.to_string(),
            category: category.to_string(),
            predictor: predictor.name(),
            scenario: self.scenario,
            uops: self.uops,
            conditionals: self.conditionals,
            mispredicts: self.mispredicts,
            penalty_cycles: self.penalty,
            stats: predictor.stats(),
            branches: self.profile.as_ref().map(BranchProfile::from_map),
        }
    }
}

/// Simulates one predictor over one trace under one update scenario.
///
/// Thin wrapper over [`simulate_source`] streaming the materialized trace;
/// the two paths are bit-identical.
pub fn simulate<P: Predictor>(
    predictor: &mut P,
    trace: &Trace,
    scenario: UpdateScenario,
    cfg: &PipelineConfig,
) -> SimReport {
    simulate_source(predictor, &mut TraceStream::new(trace), scenario, cfg)
}

/// Simulates one predictor over any [`EventSource`] under one update
/// scenario. Memory use is bounded by the in-flight window, not the trace
/// length, so arbitrarily long streamed traces are feasible.
///
/// Under [`UpdateScenario::Immediate`] the window is bypassed entirely
/// (oracle fetch-time update); the other scenarios run the full in-flight
/// window.
pub fn simulate_source<P: Predictor, S: EventSource>(
    predictor: &mut P,
    source: &mut S,
    scenario: UpdateScenario,
    cfg: &PipelineConfig,
) -> SimReport {
    predictor.reset_stats();
    let mut st = WindowState::new(scenario, cfg);
    while let Some(ev) = source.next_event() {
        st.step(predictor, &ev);
        if st.complete() {
            break;
        }
    }
    st.drain(predictor);
    st.report(predictor, source.name(), source.category())
}

/// Like [`simulate_source`], but pulls events in blocks of `batch` through
/// a reusable [`EventBlock`] instead of one virtual `next_event` call per
/// event. The per-event call sequence against the predictor is identical
/// to the scalar path (both funnel through the same [`WindowState::step`]),
/// so results are bit-identical for every scenario and any `batch >= 1`;
/// the win is amortized source dispatch — one `next_block` call per
/// `batch` events — which matters most for `Box<dyn EventSource>` decoder
/// chains.
pub fn simulate_source_batched<P: Predictor, S: EventSource>(
    predictor: &mut P,
    source: &mut S,
    scenario: UpdateScenario,
    cfg: &PipelineConfig,
    batch: usize,
) -> SimReport {
    let batch = batch.max(1);
    predictor.reset_stats();
    let mut st = WindowState::new(scenario, cfg);
    let mut block = EventBlock::with_capacity(batch);
    while source.next_block(&mut block, batch) > 0 {
        for (i, ev) in block.events.iter().enumerate() {
            block.prefetch(i + EVENT_PREFETCH_AHEAD);
            st.step(predictor, ev);
        }
        if st.complete() {
            break;
        }
    }
    st.drain(predictor);
    st.report(predictor, source.name(), source.category())
}

/// An object-safe whole-window simulation engine: predictor, in-flight
/// window, and counters behind one vtable, driven a *block* of events at a
/// time.
///
/// This is the batched counterpart of `Box<dyn BranchPredictor>`: instead
/// of erasing the predictor and paying four virtual calls plus a
/// `FlightSlot` round-trip per branch, [`WindowEngine`] monomorphizes the
/// entire hot loop over the concrete predictor (typed flights, inlined
/// table access) and erases *outside* the loop — one virtual
/// [`run_block`](BlockSim::run_block) call per [`EventBlock`].
pub trait BlockSim: Send {
    /// The composed predictor's display name (for reports).
    fn predictor_name(&self) -> String;

    /// Feeds `events` through the window in order.
    fn run_block(&mut self, events: &[TraceEvent]);

    /// Whether the engine's measurement window is spent — further blocks
    /// would be fast-forwarded without effect, so the driver may stop
    /// pulling events. Default: never (full-trace simulation).
    fn done(&self) -> bool {
        false
    }

    /// Drains the in-flight window and assembles the final report. The
    /// engine is spent afterwards; build a fresh one per simulation.
    fn finish(&mut self, trace: &str, category: &str) -> SimReport;
}

/// The concrete [`BlockSim`] implementation: a predictor plus its
/// [`WindowState`], monomorphized together. See the trait docs for why
/// this beats per-event dynamic dispatch.
pub struct WindowEngine<P: Predictor> {
    predictor: P,
    state: WindowState<P::Flight>,
}

impl<P: Predictor> WindowEngine<P> {
    /// A fresh engine (stats reset, empty window) for one simulation.
    pub fn new(predictor: P, scenario: UpdateScenario, cfg: &PipelineConfig) -> Self {
        let mut predictor = predictor;
        predictor.reset_stats();
        Self { predictor, state: WindowState::new(scenario, cfg) }
    }
}

impl<P: Predictor + Send> BlockSim for WindowEngine<P>
where
    P::Flight: Send,
{
    fn predictor_name(&self) -> String {
        self.predictor.name()
    }

    fn run_block(&mut self, events: &[TraceEvent]) {
        for (i, ev) in events.iter().enumerate() {
            prefetch_event(events, i + EVENT_PREFETCH_AHEAD);
            self.state.step(&mut self.predictor, ev);
        }
    }

    fn done(&self) -> bool {
        self.state.complete()
    }

    fn finish(&mut self, trace: &str, category: &str) -> SimReport {
        self.state.drain(&mut self.predictor);
        self.state.report(&self.predictor, trace, category)
    }
}

/// Drives a type-erased [`BlockSim`] over an event source in blocks of
/// `batch`. Two virtual calls per block (`next_block` + `run_block`)
/// replace the scalar path's four-per-branch, which is where the batched
/// throughput win on runtime-composed stacks comes from.
pub fn simulate_engine<S: EventSource>(
    engine: &mut dyn BlockSim,
    source: &mut S,
    batch: usize,
) -> SimReport {
    let batch = batch.max(1);
    let mut block = EventBlock::with_capacity(batch);
    while source.next_block(&mut block, batch) > 0 {
        engine.run_block(&block.events);
        if engine.done() {
            break;
        }
    }
    engine.finish(source.name(), source.category())
}

/// A resumable twin of [`simulate_engine`]: the same loop — whole
/// [`EventBlock`]s of `batch` events, two virtual calls per block, stop
/// on stream end or a spent window — but sliced into caller-bounded
/// chunks so the driver can interleave other work (the prediction
/// server emits a `Stats` frame between chunks). Because the chunking
/// never changes block boundaries, pull order, or the stop condition,
/// a chunked run is bit-identical to one [`simulate_engine`] call by
/// construction (and pinned by test).
pub struct ChunkDriver {
    block: EventBlock,
    batch: usize,
    events_fed: u64,
    done: bool,
}

impl ChunkDriver {
    /// A fresh driver pulling blocks of `batch` events (clamped to ≥ 1,
    /// like [`simulate_engine`]).
    pub fn new(batch: usize) -> Self {
        let batch = batch.max(1);
        Self { block: EventBlock::with_capacity(batch), batch, events_fed: 0, done: false }
    }

    /// The clamped block size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Total events fed to the engine so far.
    pub fn events_fed(&self) -> u64 {
        self.events_fed
    }

    /// Whether the run is over: the source ended or the engine's
    /// measurement window is spent. Further chunks feed nothing.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Feeds up to `max_blocks` blocks (clamped to ≥ 1) from `source`
    /// into `engine`, returning the events fed by this chunk (0 once
    /// [`ChunkDriver::is_done`]).
    pub fn run_chunk<S: EventSource>(
        &mut self,
        engine: &mut dyn BlockSim,
        source: &mut S,
        max_blocks: usize,
    ) -> u64 {
        if self.done {
            return 0;
        }
        let mut fed = 0u64;
        for _ in 0..max_blocks.max(1) {
            let n = source.next_block(&mut self.block, self.batch);
            if n == 0 {
                self.done = true;
                break;
            }
            engine.run_block(&self.block.events);
            fed += n as u64;
            if engine.done() {
                self.done = true;
                break;
            }
        }
        self.events_fed += fed;
        fed
    }

    /// Drains the window and assembles the final report — the tail of
    /// [`simulate_engine`]. The engine is spent afterwards.
    pub fn finish<S: EventSource>(self, engine: &mut dyn BlockSim, source: &S) -> SimReport {
        engine.finish(source.name(), source.category())
    }
}

/// Runs a freshly built predictor (from `make`) over every trace of a
/// suite, returning one report per trace.
///
/// Each trace gets a *cold* predictor, as in CBP-3 (one simulation per
/// trace).
pub fn simulate_suite<P, F>(
    make: F,
    traces: &[Trace],
    scenario: UpdateScenario,
    cfg: &PipelineConfig,
) -> Vec<SimReport>
where
    P: Predictor,
    F: Fn() -> P,
{
    traces.iter().map(|t| simulate(&mut make(), t, scenario, cfg)).collect()
}

/// Convenience: merged access statistics over a set of reports.
pub fn merged_stats(reports: &[SimReport]) -> AccessStats {
    let mut s = AccessStats::default();
    for r in reports {
        s.merge(&r.stats);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{Bimodal, Gshare};
    use workloads::suite::{by_name, Scale};

    fn tiny(name: &str) -> Trace {
        by_name(name, Scale::Tiny).unwrap().generate()
    }

    #[test]
    fn counts_are_consistent() {
        let t = tiny("CLIENT01");
        let mut p = Gshare::new(12);
        let r = simulate(&mut p, &t, UpdateScenario::RereadAtRetire, &PipelineConfig::default());
        assert_eq!(r.conditionals, t.conditional_count());
        assert_eq!(r.uops, t.total_uops());
        assert!(r.mispredicts <= r.conditionals);
        assert!(r.penalty_cycles >= r.mispredicts * 25);
        // One predict read per conditional.
        assert_eq!(r.stats.predict_reads, r.conditionals);
    }

    #[test]
    fn immediate_beats_delayed_scenarios_on_aggregate() {
        // Pointwise per-trace inversions are possible (stale updates can
        // act as accidental hysteresis); the §4.1.2 ordering is an
        // aggregate claim — assert it over several traces.
        let traces: Vec<Trace> =
            ["CLIENT04", "CLIENT06", "MM04", "WS06"].iter().map(|n| tiny(n)).collect();
        let run = |s| -> u64 {
            traces
                .iter()
                .map(|t| {
                    simulate(&mut Gshare::new(12), t, s, &PipelineConfig::default()).mispredicts
                })
                .sum()
        };
        let i = run(UpdateScenario::Immediate);
        let a = run(UpdateScenario::RereadAtRetire);
        let b = run(UpdateScenario::FetchOnly);
        let c = run(UpdateScenario::RereadOnMispredict);
        // [I] vs [A] can invert slightly on small noisy subsets (stale
        // updates act as a slower, sometimes beneficial learning rate);
        // the strict suite-wide ordering is asserted in the workspace
        // integration tests. Allow 5% here.
        assert!(i <= a + a / 20, "[I] {i} should not exceed [A] {a} by >5%");
        assert!(a <= b, "[A] {a} should not exceed [B] {b}");
        assert!(c <= b, "[C] {c} should not exceed [B] {b}");
    }

    #[test]
    fn retire_reads_only_on_mispredicts_under_c() {
        let t = tiny("WS01");
        let mut p = Bimodal::new(4096, 2);
        let r = simulate(&mut p, &t, UpdateScenario::RereadOnMispredict, &PipelineConfig::default());
        assert_eq!(r.stats.retire_reads, r.mispredicts);
        let mut p2 = Bimodal::new(4096, 2);
        let r2 = simulate(&mut p2, &t, UpdateScenario::RereadAtRetire, &PipelineConfig::default());
        assert_eq!(r2.stats.retire_reads, r2.conditionals);
    }

    #[test]
    fn streamed_source_matches_materialized_bit_for_bit() {
        // The same spec driven as a lazy ProgramStream and as a
        // materialized Vec<Trace> slice must produce identical SimReports,
        // for every scenario (the §4.1.2 window behaviours all exercise
        // the in-flight bookkeeping differently).
        let spec = by_name("INT02", Scale::Tiny).unwrap();
        let trace = spec.generate();
        let cfg = PipelineConfig::default();
        for scenario in simkit::predictor::UpdateScenario::ALL {
            let materialized = simulate(&mut Gshare::new(12), &trace, scenario, &cfg);
            let streamed =
                simulate_source(&mut Gshare::new(12), &mut spec.stream(), scenario, &cfg);
            assert_eq!(streamed, materialized, "scenario {scenario} diverged");
        }
    }

    #[test]
    fn streamed_source_matches_for_stateful_predictor() {
        // TAGE-LSC exercises IUM execute ordering; a load-heavy hard trace
        // exercises variable execute lags through the pending-execute
        // queue.
        let spec = by_name("MM05", Scale::Tiny).unwrap();
        let trace = spec.generate();
        let cfg = PipelineConfig::default();
        let materialized = simulate(
            &mut tage::TageSystem::tage_lsc(),
            &trace,
            UpdateScenario::RereadOnMispredict,
            &cfg,
        );
        let streamed = simulate_source(
            &mut tage::TageSystem::tage_lsc(),
            &mut spec.stream(),
            UpdateScenario::RereadOnMispredict,
            &cfg,
        );
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn boxed_branch_predictor_matches_static_stack() {
        // Runtime-composed stacks arrive as `Box<dyn BranchPredictor>` —
        // bare (one flight allocation per branch) or wrapped in the
        // recycling `DynPredictor` pool. The engine must drive both with
        // bit-identical results: flights round-trip through type-erased
        // `FlightSlot`s across the whole in-flight window.
        let spec = by_name("INT02", Scale::Tiny).unwrap();
        let cfg = PipelineConfig::default();
        for scenario in simkit::predictor::UpdateScenario::ALL {
            let static_r = simulate_source(
                &mut tage::TageSystem::isl_tage(),
                &mut spec.stream(),
                scenario,
                &cfg,
            );
            let mut boxed: Box<dyn simkit::BranchPredictor> =
                Box::new(tage::TageSystem::isl_tage());
            let dyn_r = simulate_source(&mut boxed, &mut spec.stream(), scenario, &cfg);
            assert_eq!(dyn_r, static_r, "dyn dispatch diverged under {scenario}");
            let mut pooled =
                simkit::DynPredictor::new(Box::new(tage::TageSystem::isl_tage()));
            let pooled_r = simulate_source(&mut pooled, &mut spec.stream(), scenario, &cfg);
            assert_eq!(pooled_r, static_r, "pooled dispatch diverged under {scenario}");
            // The pool bounds flight allocations by the in-flight depth,
            // not the branch count.
            assert!(
                pooled.flight_allocations() <= cfg.retire_lag as u64 + 1,
                "pooled route allocated {} flights under {scenario}",
                pooled.flight_allocations()
            );
        }
    }

    #[test]
    fn boxed_dyn_source_matches_concrete_source() {
        // Foreign-format decoders arrive as `Box<dyn EventSource>`; the
        // engine must produce identical reports through the boxed path.
        let spec = by_name("CLIENT03", Scale::Tiny).unwrap();
        let cfg = PipelineConfig::default();
        let concrete =
            simulate_source(&mut Gshare::new(12), &mut spec.stream(), UpdateScenario::FetchOnly, &cfg);
        let mut boxed: Box<dyn EventSource + Send> = Box::new(spec.stream());
        let via_box =
            simulate_source(&mut Gshare::new(12), &mut boxed, UpdateScenario::FetchOnly, &cfg);
        assert_eq!(via_box, concrete);
    }

    #[test]
    fn batched_matches_scalar_for_every_scenario_and_edge_batch_size() {
        // The batched driver must be bit-identical to the scalar reference
        // for every §4.1.2 scenario at the in-flight-depth edge sizes:
        // N=1 (degenerate), N=7 (smaller than the retire lag, so blocks
        // straddle window boundaries), N=len, and N>len (single block).
        let spec = by_name("INT02", Scale::Tiny).unwrap();
        let trace = spec.generate();
        let len = trace.events.len();
        let cfg = PipelineConfig::default();
        for scenario in simkit::predictor::UpdateScenario::ALL {
            let scalar =
                simulate_source(&mut Gshare::new(12), &mut spec.stream(), scenario, &cfg);
            for batch in [1usize, 7, len, len + 13] {
                let batched = simulate_source_batched(
                    &mut Gshare::new(12),
                    &mut spec.stream(),
                    scenario,
                    &cfg,
                    batch,
                );
                assert_eq!(batched, scalar, "batch {batch} diverged under {scenario}");
            }
        }
    }

    #[test]
    fn batched_matches_scalar_for_stateful_predictor_and_dyn_stack() {
        // IUM/loop/SC state is order-sensitive; a load-heavy trace drives
        // variable execute lags through the pending-execute queue. The
        // batched path must track the scalar one through both a concrete
        // TAGE system and the boxed-dyn + pooled routes.
        let spec = by_name("MM05", Scale::Tiny).unwrap();
        let cfg = PipelineConfig::default();
        for scenario in simkit::predictor::UpdateScenario::ALL {
            let scalar = simulate_source(
                &mut tage::TageSystem::isl_tage(),
                &mut spec.stream(),
                scenario,
                &cfg,
            );
            let batched = simulate_source_batched(
                &mut tage::TageSystem::isl_tage(),
                &mut spec.stream(),
                scenario,
                &cfg,
                64,
            );
            assert_eq!(batched, scalar, "concrete batched diverged under {scenario}");
            let mut pooled = simkit::DynPredictor::new(Box::new(tage::TageSystem::isl_tage()));
            let pooled_r =
                simulate_source_batched(&mut pooled, &mut spec.stream(), scenario, &cfg, 64);
            assert_eq!(pooled_r, scalar, "pooled batched diverged under {scenario}");
        }
    }

    #[test]
    fn window_engine_matches_scalar_bit_for_bit() {
        // The type-erased block engine (one virtual call per block, typed
        // flights inside) is the third driver over the same step body.
        let spec = by_name("INT02", Scale::Tiny).unwrap();
        let cfg = PipelineConfig::default();
        for scenario in simkit::predictor::UpdateScenario::ALL {
            let scalar = simulate_source(
                &mut tage::TageSystem::isl_tage(),
                &mut spec.stream(),
                scenario,
                &cfg,
            );
            for batch in [1usize, DEFAULT_BATCH] {
                let mut engine: Box<dyn BlockSim> =
                    Box::new(WindowEngine::new(tage::TageSystem::isl_tage(), scenario, &cfg));
                assert_eq!(engine.predictor_name(), scalar.predictor);
                let r = simulate_engine(&mut *engine, &mut spec.stream(), batch);
                assert_eq!(r, scalar, "engine batch {batch} diverged under {scenario}");
            }
        }
    }

    #[test]
    fn chunked_driver_is_bit_identical_to_simulate_engine() {
        // The server's resumable driver must reproduce one-shot
        // `simulate_engine` exactly for any chunk granularity — same
        // block boundaries, same stop condition — across scenarios and
        // edge batch sizes.
        let spec = by_name("INT02", Scale::Tiny).unwrap();
        let cfg = PipelineConfig::default();
        for scenario in simkit::predictor::UpdateScenario::ALL {
            for batch in [1usize, 97, DEFAULT_BATCH] {
                let mut engine: Box<dyn BlockSim> =
                    Box::new(WindowEngine::new(tage::TageSystem::isl_tage(), scenario, &cfg));
                let whole = simulate_engine(&mut *engine, &mut spec.stream(), batch);
                for max_blocks in [1usize, 3, usize::MAX] {
                    let mut engine: Box<dyn BlockSim> = Box::new(WindowEngine::new(
                        tage::TageSystem::isl_tage(),
                        scenario,
                        &cfg,
                    ));
                    let mut src = spec.stream();
                    let mut driver = ChunkDriver::new(batch);
                    let mut fed = 0u64;
                    while !driver.is_done() {
                        fed += driver.run_chunk(&mut *engine, &mut src, max_blocks);
                    }
                    assert_eq!(fed, driver.events_fed());
                    let r = driver.finish(&mut *engine, &src);
                    assert_eq!(
                        r, whole,
                        "chunked run (batch {batch}, max_blocks {max_blocks}) diverged under {scenario}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_driver_stops_when_the_window_is_spent() {
        // A spent measurement window must end the chunk loop exactly
        // like simulate_engine's `done()` break — not at stream end.
        let spec = by_name("MM05", Scale::Tiny).unwrap();
        let cfg = PipelineConfig {
            window: SimWindow { skip: 0, warmup: 100, measure: 500 },
            ..PipelineConfig::default()
        };
        let scenario = UpdateScenario::FetchOnly;
        let mut engine: Box<dyn BlockSim> =
            Box::new(WindowEngine::new(tage::TageSystem::isl_tage(), scenario, &cfg));
        let whole = simulate_engine(&mut *engine, &mut spec.stream(), 64);
        let mut engine: Box<dyn BlockSim> =
            Box::new(WindowEngine::new(tage::TageSystem::isl_tage(), scenario, &cfg));
        let mut src = spec.stream();
        let mut driver = ChunkDriver::new(64);
        while !driver.is_done() {
            driver.run_chunk(&mut *engine, &mut src, 2);
        }
        // Stopped by the window, well short of the whole trace.
        assert!(driver.events_fed() < spec.generate().events.len() as u64);
        let r = driver.finish(&mut *engine, &src);
        assert_eq!(r, whole);
    }

    #[test]
    fn branch_profile_sums_to_aggregate_for_every_scenario() {
        // The tentpole invariant: per-branch counters partition the
        // aggregate exactly, under every §4.1.2 update scenario (each
        // exercises the window bookkeeping differently).
        let spec = by_name("INT02", Scale::Tiny).unwrap();
        let cfg = PipelineConfig { branch_stats: true, ..PipelineConfig::default() };
        for scenario in simkit::predictor::UpdateScenario::ALL {
            let r = simulate_source(
                &mut tage::TageSystem::isl_tage(),
                &mut spec.stream(),
                scenario,
                &cfg,
            );
            let p = r.branches.as_ref().expect("branch_stats=true attaches a profile");
            assert_eq!(p.total_executions(), r.conditionals, "executions diverged under {scenario}");
            assert_eq!(p.total_mispredicts(), r.mispredicts, "mispredicts diverged under {scenario}");
            assert_eq!(
                p.total_penalty_cycles(),
                r.penalty_cycles,
                "penalty diverged under {scenario}"
            );
            assert!(p.total_taken() <= p.total_executions());
            assert!(!p.branches.is_empty());
            // Sorted ascending by PC (deterministic serialization order).
            assert!(p.branches.windows(2).all(|w| w[0].pc < w[1].pc));
        }
    }

    #[test]
    fn branch_profile_identical_across_drivers_and_free_when_off() {
        // All three drivers share `step`, so the profile — not just the
        // aggregate — must match bit-for-bit; and switching collection on
        // must leave every aggregate counter untouched.
        let spec = by_name("MM05", Scale::Tiny).unwrap();
        let scenario = UpdateScenario::RereadAtRetire;
        let off = PipelineConfig::default();
        let on = PipelineConfig { branch_stats: true, ..PipelineConfig::default() };
        assert_ne!(off.fingerprint(), on.fingerprint());
        let plain = simulate_source(&mut Gshare::new(12), &mut spec.stream(), scenario, &off);
        assert!(plain.branches.is_none());
        let scalar = simulate_source(&mut Gshare::new(12), &mut spec.stream(), scenario, &on);
        let batched =
            simulate_source_batched(&mut Gshare::new(12), &mut spec.stream(), scenario, &on, 64);
        let mut engine: Box<dyn BlockSim> =
            Box::new(WindowEngine::new(Gshare::new(12), scenario, &on));
        let engined = simulate_engine(&mut *engine, &mut spec.stream(), 64);
        assert_eq!(scalar, batched);
        assert_eq!(scalar, engined);
        // Aggregates unchanged by collection.
        assert_eq!(plain.mispredicts, scalar.mispredicts);
        assert_eq!(plain.penalty_cycles, scalar.penalty_cycles);
        assert_eq!(plain.conditionals, scalar.conditionals);
        assert_eq!(plain.uops, scalar.uops);
        assert_eq!(plain.stats, scalar.stats);
    }

    #[test]
    fn deterministic_simulation() {
        let t = tiny("INT03");
        let run = || {
            let mut p = Gshare::new(12);
            simulate(&mut p, &t, UpdateScenario::RereadAtRetire, &PipelineConfig::default())
        };
        let a = run();
        let b = run();
        assert_eq!(a.mispredicts, b.mispredicts);
        assert_eq!(a.penalty_cycles, b.penalty_cycles);
    }

    #[test]
    fn suite_runner_covers_all_traces() {
        let traces: Vec<Trace> = ["MM01", "MM02"].iter().map(|n| tiny(n)).collect();
        let reports = simulate_suite(
            || Gshare::new(10),
            &traces,
            UpdateScenario::RereadAtRetire,
            &PipelineConfig::default(),
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].trace, "MM01");
        let merged = merged_stats(&reports);
        assert_eq!(merged.predict_reads, reports.iter().map(|r| r.stats.predict_reads).sum::<u64>());
    }

    #[test]
    fn hard_traces_have_higher_penalty_per_mispredict() {
        let easy = tiny("MM01");
        let hard = tiny("INT02");
        let run = |t: &Trace| {
            let mut p = Gshare::new(14);
            let r = simulate(&mut p, t, UpdateScenario::RereadAtRetire, &PipelineConfig::default());
            r.penalty_cycles as f64 / r.mispredicts.max(1) as f64
        };
        assert!(
            run(&hard) > run(&easy),
            "cold-data traces should pay more per misprediction"
        );
    }
}
