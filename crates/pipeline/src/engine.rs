//! The in-flight window engine: delayed execute/retire and the §4.1.2
//! update scenarios.
//!
//! Every conditional branch is predicted at fetch, extends the speculative
//! history immediately (exact on the correct path, §5.1), *executes* after
//! its resolution lag (when the IUM learns its outcome) and *retires* — in
//! program order — `retire_lag` branches later, at which point the
//! predictor tables are updated according to the chosen scenario.

use crate::core_model::CoreModel;
use crate::report::SimReport;
use simkit::predictor::{Predictor, UpdateScenario};
use simkit::stats::AccessStats;
use std::collections::VecDeque;
use workloads::event::{EventSource, Trace, TraceStream};

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Branches fetched between a branch's fetch and its in-order retire.
    pub retire_lag: usize,
    /// Core timing model (execute lags, penalties, caches).
    pub core: CoreModel,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { retire_lag: 32, core: CoreModel::default() }
    }
}

impl PipelineConfig {
    /// Collapses the configuration to a fingerprint for suite-memoization
    /// keys. Every struct on the path is destructured exhaustively, so
    /// adding a configuration field fails this compile until the field is
    /// mixed into the key (or explicitly classified as runtime state) —
    /// two configs differing in any knob can never silently share a memo
    /// entry.
    pub fn fingerprint(&self) -> u64 {
        let Self { retire_lag, core } = self;
        let CoreModel { memory, refill_penalty, min_exec_lag } = core;
        let mut h = 0xCBF29CE484222325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001B3);
        };
        mix(*retire_lag as u64);
        mix(*refill_penalty);
        mix(*min_exec_lag as u64);
        for w in memory.config_words() {
            mix(w);
        }
        h
    }
}

struct Inflight<F> {
    branch: simkit::BranchInfo,
    outcome: bool,
    predicted: bool,
    flight: F,
    exec_at: usize,
    retire_at: usize,
    executed: bool,
}

/// Simulates one predictor over one trace under one update scenario.
///
/// Thin wrapper over [`simulate_source`] streaming the materialized trace;
/// the two paths are bit-identical.
pub fn simulate<P: Predictor>(
    predictor: &mut P,
    trace: &Trace,
    scenario: UpdateScenario,
    cfg: &PipelineConfig,
) -> SimReport {
    simulate_source(predictor, &mut TraceStream::new(trace), scenario, cfg)
}

/// Simulates one predictor over any [`EventSource`] under one update
/// scenario. Memory use is bounded by the in-flight window, not the trace
/// length, so arbitrarily long streamed traces are feasible.
///
/// Under [`UpdateScenario::Immediate`] the window is bypassed entirely
/// (oracle fetch-time update); the other scenarios run the full in-flight
/// window.
pub fn simulate_source<P: Predictor, S: EventSource>(
    predictor: &mut P,
    source: &mut S,
    scenario: UpdateScenario,
    cfg: &PipelineConfig,
) -> SimReport {
    predictor.reset_stats();
    let mut core = cfg.core.clone();
    let mut window: VecDeque<Inflight<P::Flight>> = VecDeque::with_capacity(cfg.retire_lag + 64);
    // Window entries not yet executed, as sequence numbers in program
    // order; `base` is the sequence number of `window.front()`. Scanning
    // only these (instead of the whole window) keeps the per-branch cost
    // proportional to the execute lag rather than the retire lag, while
    // visiting due branches in exactly the order the full scan would.
    let mut pending_exec: VecDeque<usize> = VecDeque::new();
    let mut base = 0usize;
    let mut mispredicts = 0u64;
    let mut penalty = 0u64;
    let mut uops = 0u64;
    let mut conditionals = 0u64;
    let immediate = scenario == UpdateScenario::Immediate;

    let mut fetch_index = 0usize;
    while let Some(ev) = source.next_event() {
        uops += ev.uops();
        let b = ev.branch_info();
        if !b.kind.is_conditional() {
            predictor.note_uncond(&b);
            continue;
        }
        conditionals += 1;
        let (pred, mut flight) = predictor.predict(&b);
        let (resolution, exec_lag) = core.resolve(ev.load_addr);
        if pred != ev.taken {
            mispredicts += 1;
            penalty += core.mispredict_penalty(resolution);
        }
        predictor.fetch_commit(&b, ev.taken, &mut flight);

        if immediate {
            predictor.execute(&b, ev.taken, &mut flight);
            predictor.retire(&b, ev.taken, pred, flight, scenario);
        } else {
            pending_exec.push_back(base + window.len());
            window.push_back(Inflight {
                branch: b,
                outcome: ev.taken,
                predicted: pred,
                flight,
                exec_at: fetch_index + exec_lag,
                retire_at: fetch_index + cfg.retire_lag.max(exec_lag + 1),
                executed: false,
            });
            // Execute every branch whose resolution completed, in program
            // order.
            let mut k = 0;
            while k < pending_exec.len() {
                let seq = pending_exec[k];
                let inflight = &mut window[seq - base];
                if inflight.exec_at <= fetch_index {
                    let ib = inflight.branch;
                    let io = inflight.outcome;
                    predictor.execute(&ib, io, &mut inflight.flight);
                    inflight.executed = true;
                    pending_exec.remove(k);
                } else {
                    k += 1;
                }
            }
            // Retire in order.
            while window.front().is_some_and(|f| f.retire_at <= fetch_index) {
                // INVARIANT: the loop condition just witnessed a front.
                let mut f = window.pop_front().unwrap();
                if !f.executed {
                    pending_exec.pop_front();
                    predictor.execute(&f.branch, f.outcome, &mut f.flight);
                }
                base += 1;
                predictor.retire(&f.branch, f.outcome, f.predicted, f.flight, scenario);
            }
        }
        fetch_index += 1;
    }
    // Drain the window at trace end (`base` no longer needs maintaining:
    // nothing indexes the window after this).
    while let Some(mut f) = window.pop_front() {
        if !f.executed {
            pending_exec.pop_front();
            predictor.execute(&f.branch, f.outcome, &mut f.flight);
        }
        predictor.retire(&f.branch, f.outcome, f.predicted, f.flight, scenario);
    }

    SimReport {
        trace: source.name().to_string(),
        category: source.category().to_string(),
        predictor: predictor.name(),
        scenario,
        uops,
        conditionals,
        mispredicts,
        penalty_cycles: penalty,
        stats: predictor.stats(),
    }
}

/// Runs a freshly built predictor (from `make`) over every trace of a
/// suite, returning one report per trace.
///
/// Each trace gets a *cold* predictor, as in CBP-3 (one simulation per
/// trace).
pub fn simulate_suite<P, F>(
    make: F,
    traces: &[Trace],
    scenario: UpdateScenario,
    cfg: &PipelineConfig,
) -> Vec<SimReport>
where
    P: Predictor,
    F: Fn() -> P,
{
    traces.iter().map(|t| simulate(&mut make(), t, scenario, cfg)).collect()
}

/// Convenience: merged access statistics over a set of reports.
pub fn merged_stats(reports: &[SimReport]) -> AccessStats {
    let mut s = AccessStats::default();
    for r in reports {
        s.merge(&r.stats);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{Bimodal, Gshare};
    use workloads::suite::{by_name, Scale};

    fn tiny(name: &str) -> Trace {
        by_name(name, Scale::Tiny).unwrap().generate()
    }

    #[test]
    fn counts_are_consistent() {
        let t = tiny("CLIENT01");
        let mut p = Gshare::new(12);
        let r = simulate(&mut p, &t, UpdateScenario::RereadAtRetire, &PipelineConfig::default());
        assert_eq!(r.conditionals, t.conditional_count());
        assert_eq!(r.uops, t.total_uops());
        assert!(r.mispredicts <= r.conditionals);
        assert!(r.penalty_cycles >= r.mispredicts * 25);
        // One predict read per conditional.
        assert_eq!(r.stats.predict_reads, r.conditionals);
    }

    #[test]
    fn immediate_beats_delayed_scenarios_on_aggregate() {
        // Pointwise per-trace inversions are possible (stale updates can
        // act as accidental hysteresis); the §4.1.2 ordering is an
        // aggregate claim — assert it over several traces.
        let traces: Vec<Trace> =
            ["CLIENT04", "CLIENT06", "MM04", "WS06"].iter().map(|n| tiny(n)).collect();
        let run = |s| -> u64 {
            traces
                .iter()
                .map(|t| {
                    simulate(&mut Gshare::new(12), t, s, &PipelineConfig::default()).mispredicts
                })
                .sum()
        };
        let i = run(UpdateScenario::Immediate);
        let a = run(UpdateScenario::RereadAtRetire);
        let b = run(UpdateScenario::FetchOnly);
        let c = run(UpdateScenario::RereadOnMispredict);
        // [I] vs [A] can invert slightly on small noisy subsets (stale
        // updates act as a slower, sometimes beneficial learning rate);
        // the strict suite-wide ordering is asserted in the workspace
        // integration tests. Allow 5% here.
        assert!(i <= a + a / 20, "[I] {i} should not exceed [A] {a} by >5%");
        assert!(a <= b, "[A] {a} should not exceed [B] {b}");
        assert!(c <= b, "[C] {c} should not exceed [B] {b}");
    }

    #[test]
    fn retire_reads_only_on_mispredicts_under_c() {
        let t = tiny("WS01");
        let mut p = Bimodal::new(4096, 2);
        let r = simulate(&mut p, &t, UpdateScenario::RereadOnMispredict, &PipelineConfig::default());
        assert_eq!(r.stats.retire_reads, r.mispredicts);
        let mut p2 = Bimodal::new(4096, 2);
        let r2 = simulate(&mut p2, &t, UpdateScenario::RereadAtRetire, &PipelineConfig::default());
        assert_eq!(r2.stats.retire_reads, r2.conditionals);
    }

    #[test]
    fn streamed_source_matches_materialized_bit_for_bit() {
        // The same spec driven as a lazy ProgramStream and as a
        // materialized Vec<Trace> slice must produce identical SimReports,
        // for every scenario (the §4.1.2 window behaviours all exercise
        // the in-flight bookkeeping differently).
        let spec = by_name("INT02", Scale::Tiny).unwrap();
        let trace = spec.generate();
        let cfg = PipelineConfig::default();
        for scenario in simkit::predictor::UpdateScenario::ALL {
            let materialized = simulate(&mut Gshare::new(12), &trace, scenario, &cfg);
            let streamed =
                simulate_source(&mut Gshare::new(12), &mut spec.stream(), scenario, &cfg);
            assert_eq!(streamed, materialized, "scenario {scenario} diverged");
        }
    }

    #[test]
    fn streamed_source_matches_for_stateful_predictor() {
        // TAGE-LSC exercises IUM execute ordering; a load-heavy hard trace
        // exercises variable execute lags through the pending-execute
        // queue.
        let spec = by_name("MM05", Scale::Tiny).unwrap();
        let trace = spec.generate();
        let cfg = PipelineConfig::default();
        let materialized = simulate(
            &mut tage::TageSystem::tage_lsc(),
            &trace,
            UpdateScenario::RereadOnMispredict,
            &cfg,
        );
        let streamed = simulate_source(
            &mut tage::TageSystem::tage_lsc(),
            &mut spec.stream(),
            UpdateScenario::RereadOnMispredict,
            &cfg,
        );
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn boxed_branch_predictor_matches_static_stack() {
        // Runtime-composed stacks arrive as `Box<dyn BranchPredictor>` —
        // bare (one flight allocation per branch) or wrapped in the
        // recycling `DynPredictor` pool. The engine must drive both with
        // bit-identical results: flights round-trip through type-erased
        // `FlightSlot`s across the whole in-flight window.
        let spec = by_name("INT02", Scale::Tiny).unwrap();
        let cfg = PipelineConfig::default();
        for scenario in simkit::predictor::UpdateScenario::ALL {
            let static_r = simulate_source(
                &mut tage::TageSystem::isl_tage(),
                &mut spec.stream(),
                scenario,
                &cfg,
            );
            let mut boxed: Box<dyn simkit::BranchPredictor> =
                Box::new(tage::TageSystem::isl_tage());
            let dyn_r = simulate_source(&mut boxed, &mut spec.stream(), scenario, &cfg);
            assert_eq!(dyn_r, static_r, "dyn dispatch diverged under {scenario}");
            let mut pooled =
                simkit::DynPredictor::new(Box::new(tage::TageSystem::isl_tage()));
            let pooled_r = simulate_source(&mut pooled, &mut spec.stream(), scenario, &cfg);
            assert_eq!(pooled_r, static_r, "pooled dispatch diverged under {scenario}");
            // The pool bounds flight allocations by the in-flight depth,
            // not the branch count.
            assert!(
                pooled.flight_allocations() <= cfg.retire_lag as u64 + 1,
                "pooled route allocated {} flights under {scenario}",
                pooled.flight_allocations()
            );
        }
    }

    #[test]
    fn boxed_dyn_source_matches_concrete_source() {
        // Foreign-format decoders arrive as `Box<dyn EventSource>`; the
        // engine must produce identical reports through the boxed path.
        let spec = by_name("CLIENT03", Scale::Tiny).unwrap();
        let cfg = PipelineConfig::default();
        let concrete =
            simulate_source(&mut Gshare::new(12), &mut spec.stream(), UpdateScenario::FetchOnly, &cfg);
        let mut boxed: Box<dyn EventSource + Send> = Box::new(spec.stream());
        let via_box =
            simulate_source(&mut Gshare::new(12), &mut boxed, UpdateScenario::FetchOnly, &cfg);
        assert_eq!(via_box, concrete);
    }

    #[test]
    fn deterministic_simulation() {
        let t = tiny("INT03");
        let run = || {
            let mut p = Gshare::new(12);
            simulate(&mut p, &t, UpdateScenario::RereadAtRetire, &PipelineConfig::default())
        };
        let a = run();
        let b = run();
        assert_eq!(a.mispredicts, b.mispredicts);
        assert_eq!(a.penalty_cycles, b.penalty_cycles);
    }

    #[test]
    fn suite_runner_covers_all_traces() {
        let traces: Vec<Trace> = ["MM01", "MM02"].iter().map(|n| tiny(n)).collect();
        let reports = simulate_suite(
            || Gshare::new(10),
            &traces,
            UpdateScenario::RereadAtRetire,
            &PipelineConfig::default(),
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].trace, "MM01");
        let merged = merged_stats(&reports);
        assert_eq!(merged.predict_reads, reports.iter().map(|r| r.stats.predict_reads).sum::<u64>());
    }

    #[test]
    fn hard_traces_have_higher_penalty_per_mispredict() {
        let easy = tiny("MM01");
        let hard = tiny("INT02");
        let run = |t: &Trace| {
            let mut p = Gshare::new(14);
            let r = simulate(&mut p, t, UpdateScenario::RereadAtRetire, &PipelineConfig::default());
            r.penalty_cycles as f64 / r.mispredicts.max(1) as f64
        };
        assert!(
            run(&hard) > run(&easy),
            "cold-data traces should pay more per misprediction"
        );
    }
}
