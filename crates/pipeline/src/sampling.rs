//! SimPoint-style phase sampling: weighted representative slices
//! combined into a whole-trace estimate.
//!
//! Full simulation at CBP trace lengths (30M–1B branches) is the wrong
//! default: the standard technique is to simulate a handful of
//! skip/warmup/measure windows ([`crate::engine::SimWindow`]) placed
//! across the trace and combine their per-slice [`SimReport`]s into an
//! estimate of the full-run MPPKI/MPKI. The first (and so far only)
//! selector is [`fixed_interval`]: every k-th window of length
//! `warmup + measure`, with seeded deterministic jitter so slice starts
//! do not systematically align with program periodicity.
//!
//! The combine arithmetic is exact: weights and counters stay integers
//! ([`u128`] accumulation, no floats stored), and a float appears only at
//! the final ratio. With the equal weights [`fixed_interval`] produces,
//! the weighted estimate collapses to the ratio of *summed* slice
//! counters, which is why [`SampledResult::combined_report`] (plain
//! counter sums) is a faithful artifact row for fixed-interval runs.

use crate::engine::SimWindow;
use crate::report::SimReport;
use simkit::rng::Xoshiro256;

/// One sampling phase: a measurement slice anchored at an absolute event
/// position, weighted by the number of trace events it represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Absolute event position (in total trace events) where the slice's
    /// warmup begins.
    pub start: u64,
    /// Events this slice stands in for (its sampling interval). Equal
    /// across slices for the fixed-interval selector.
    pub weight: u64,
}

impl Phase {
    /// The [`SimWindow`] that simulates this phase once the source has
    /// been positioned at `start` (via `EventSource::skip`): no further
    /// in-window skip, then the given warmup and measure lengths.
    pub fn window(&self, warmup: u64, measure: u64) -> SimWindow {
        SimWindow { skip: 0, warmup, measure }
    }
}

/// The fixed-interval phase selector: `n` slices of `warmup + measure`
/// events, one per `total / n` interval, each jittered to a
/// deterministic, seed-dependent offset within its interval's slack.
///
/// Guarantees, for any inputs:
/// * deterministic — same `(total, n, warmup, measure, seed)` gives the
///   same phases;
/// * every slice starts within the trace, and within `total - len` when
///   the trace is long enough to hold a whole slice;
/// * every phase carries the same weight (its interval), so the weighted
///   combine equals the summed-counter estimate.
///
/// Returns fewer than `n` phases only when the trace has fewer than `n`
/// events; returns none for an empty trace or `n == 0`.
pub fn fixed_interval(total: u64, n: u64, warmup: u64, measure: u64, seed: u64) -> Vec<Phase> {
    if total == 0 || n == 0 {
        return Vec::new();
    }
    let n = n.min(total);
    let interval = total / n;
    let len = warmup.saturating_add(measure);
    let last_start = total.saturating_sub(len);
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|i| {
            // Jitter within the interval's slack after the slice itself;
            // the RNG is drawn unconditionally so phase positions stay a
            // pure function of (seed, i) regardless of slack.
            let slack = interval.saturating_sub(len);
            let jitter = rng.gen_range(slack + 1);
            Phase { start: (i * interval + jitter).min(last_start), weight: interval }
        })
        .collect()
}

/// One simulated slice: the phase that placed it and the per-slice
/// report the engine produced for its measure region.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleSlice {
    /// The phase this slice realizes.
    pub phase: Phase,
    /// The slice's measure-region report.
    pub report: SimReport,
}

/// The combined result of a sampled run: per-slice reports plus the
/// exact-integer weighted aggregation. No derived float is stored;
/// ratios are computed on demand from the `u128` accumulators.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledResult {
    /// The simulated slices, in phase order.
    pub slices: Vec<SampleSlice>,
    /// Total events in the underlying trace (the population the sample
    /// estimates).
    pub total_events: u64,
}

impl SampledResult {
    /// Pairs phases with their per-slice reports. The two must line up
    /// one-to-one and in the same order (the sample driver produces them
    /// together).
    ///
    /// # Panics
    ///
    /// Panics when `phases` and `reports` disagree in length.
    pub fn combine(phases: &[Phase], reports: Vec<SimReport>, total_events: u64) -> Self {
        assert_eq!(phases.len(), reports.len(), "one report per phase");
        let slices = phases
            .iter()
            .zip(reports)
            .map(|(phase, report)| SampleSlice { phase: *phase, report })
            .collect();
        Self { slices, total_events }
    }

    /// Weighted penalty-cycle accumulator: `Σ weight · penalty_cycles`.
    pub fn weighted_penalty(&self) -> u128 {
        self.weighted(|r| r.penalty_cycles)
    }

    /// Weighted misprediction accumulator: `Σ weight · mispredicts`.
    pub fn weighted_mispredicts(&self) -> u128 {
        self.weighted(|r| r.mispredicts)
    }

    /// Weighted micro-op accumulator: `Σ weight · uops`.
    pub fn weighted_uops(&self) -> u128 {
        self.weighted(|r| r.uops)
    }

    fn weighted(&self, f: impl Fn(&SimReport) -> u64) -> u128 {
        self.slices
            .iter()
            .map(|s| u128::from(s.phase.weight) * u128::from(f(&s.report)))
            .sum()
    }

    /// The sampled whole-trace MPPKI estimate:
    /// `Σ w·penalty · 1000 / Σ w·uops`, computed from the exact integer
    /// accumulators.
    pub fn mppki(&self) -> f64 {
        self.weighted_penalty() as f64 * 1000.0 / self.weighted_uops().max(1) as f64
    }

    /// The sampled whole-trace MPKI estimate.
    pub fn mpki(&self) -> f64 {
        self.weighted_mispredicts() as f64 * 1000.0 / self.weighted_uops().max(1) as f64
    }

    /// Events fed to a predictor across all slices (`warmup + measure`
    /// per slice, capped by the trace) — the simulated-event cost of the
    /// sampled run, against `total_events` for the full run.
    pub fn simulated_events(&self, warmup: u64, measure: u64) -> u64 {
        let len = warmup.saturating_add(measure);
        self.slices
            .iter()
            .map(|s| len.min(self.total_events.saturating_sub(s.phase.start)))
            .sum()
    }

    /// One report with the slice counters summed — the valid whole-trace
    /// estimator when every phase carries the same weight (fixed-interval
    /// sampling), and the shape the `tage.run/1` artifact rows store.
    /// Identification fields come from the first slice.
    ///
    /// Returns `None` for an empty sample.
    pub fn combined_report(&self) -> Option<SimReport> {
        let first = self.slices.first()?;
        let mut out = first.report.clone();
        for s in &self.slices[1..] {
            out.uops += s.report.uops;
            out.conditionals += s.report.conditionals;
            out.mispredicts += s.report.mispredicts;
            out.penalty_cycles += s.report.penalty_cycles;
            out.stats.merge(&s.report.stats);
        }
        out.branches = None;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::predictor::UpdateScenario;
    use simkit::stats::AccessStats;

    fn report(uops: u64, mispredicts: u64, penalty: u64) -> SimReport {
        SimReport {
            trace: "T".into(),
            category: "TEST".into(),
            predictor: "p".into(),
            scenario: UpdateScenario::RereadAtRetire,
            uops,
            conditionals: uops / 4,
            mispredicts,
            penalty_cycles: penalty,
            stats: AccessStats::default(),
            branches: None,
        }
    }

    #[test]
    fn fixed_interval_is_deterministic_and_in_bounds() {
        let a = fixed_interval(1_000_000, 10, 1000, 4000, 42);
        let b = fixed_interval(1_000_000, 10, 1000, 4000, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.weight, 100_000);
            assert!(p.start >= i as u64 * 100_000, "phase {i} before its interval");
            assert!(p.start + 5000 <= 1_000_000, "phase {i} overruns the trace");
        }
        // A different seed moves the jitter but keeps the interval grid.
        let c = fixed_interval(1_000_000, 10, 1000, 4000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_selectors_are_safe() {
        assert!(fixed_interval(0, 10, 1, 1, 0).is_empty());
        assert!(fixed_interval(100, 0, 1, 1, 0).is_empty());
        // More phases than events: clamped, still in bounds.
        let p = fixed_interval(3, 10, 0, 1, 7);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|p| p.start < 3));
        // Slice longer than the trace: anchored at 0.
        let p = fixed_interval(10, 2, 100, 100, 7);
        assert!(p.iter().all(|p| p.start == 0));
    }

    #[test]
    fn equal_weights_collapse_to_summed_counters() {
        let phases = [Phase { start: 0, weight: 50 }, Phase { start: 100, weight: 50 }];
        let s = SampledResult::combine(
            &phases,
            vec![report(1000, 10, 300), report(3000, 50, 1500)],
            200,
        );
        // Weighted ratio == summed ratio when weights are equal.
        let summed = s.combined_report().unwrap();
        assert_eq!(summed.uops, 4000);
        assert_eq!(summed.mispredicts, 60);
        assert_eq!(summed.penalty_cycles, 1800);
        assert!((s.mppki() - summed.mppki()).abs() < 1e-12);
        assert!((s.mpki() - summed.mpki()).abs() < 1e-12);
    }

    #[test]
    fn unequal_weights_use_exact_integer_arithmetic() {
        let phases = [Phase { start: 0, weight: 3 }, Phase { start: 10, weight: 1 }];
        let s = SampledResult::combine(
            &phases,
            vec![report(1000, 10, 300), report(1000, 50, 1500)],
            20,
        );
        assert_eq!(s.weighted_uops(), 3 * 1000 + 1000);
        assert_eq!(s.weighted_penalty(), 3 * 300 + 1500);
        assert_eq!(s.weighted_mispredicts(), 3 * 10 + 50);
        assert!((s.mppki() - (2400.0 * 1000.0 / 4000.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_has_no_combined_report() {
        let s = SampledResult::combine(&[], Vec::new(), 100);
        assert!(s.combined_report().is_none());
        assert_eq!(s.weighted_uops(), 0);
    }
}
