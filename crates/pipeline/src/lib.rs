//! Trace-driven simulation engine modeling the CBP-3 evaluation framework.
//!
//! The paper's experimental framework (§2) is trace-driven but "includes
//! features to model a simple out-of-order execution core with a realistic
//! memory hierarchy" and "allows to delay branch prediction table updates
//! till the retire stage in the pipeline". This crate rebuilds those
//! features:
//!
//! * [`core_model`] — a small out-of-order core timing model with an
//!   L1/L2/L3 cache hierarchy: branches that depend on loads resolve late,
//!   which both delays their *execute* event (IUM food) and raises their
//!   misprediction penalty (the MPPKI numerator);
//! * [`engine`] — the in-flight window: fetch-time prediction, speculative
//!   history commit, delayed execute and retire events, and the §4.1.2
//!   update scenarios `[I]/[A]/[B]/[C]`;
//! * [`report`] — per-trace and suite-level results: MPKI, MPPKI (the §2.1
//!   metric), predictor-table access counts.
//!
//! # Example
//!
//! ```
//! use pipeline::{simulate, PipelineConfig};
//! use simkit::UpdateScenario;
//! use workloads::suite::{by_name, Scale};
//!
//! let trace = by_name("MM01", Scale::Tiny).unwrap().generate();
//! let mut p = baselines::Gshare::new(12);
//! let r = simulate(&mut p, &trace, UpdateScenario::RereadAtRetire, &PipelineConfig::default());
//! assert!(r.conditionals > 0);
//! ```

#![forbid(unsafe_code)]

pub mod core_model;
pub mod engine;
pub mod report;
pub mod sampling;

pub use core_model::{CoreModel, MemoryHierarchy};
pub use engine::{
    simulate, simulate_engine, simulate_source, simulate_source_batched, simulate_suite, BlockSim,
    ChunkDriver, PipelineConfig, SimWindow, WindowEngine, DEFAULT_BATCH,
};
pub use report::{BranchProfile, BranchStat, SimReport, SuiteReport};
pub use sampling::{fixed_interval, Phase, SampledResult, SampleSlice};
