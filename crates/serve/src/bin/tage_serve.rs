//! `tage_serve` — prediction-as-a-service CLI.
//!
//! One binary, three roles: the server (default mode), a single-session
//! `client`, and the `manyclient` load bench. A fourth verb, `shutdown`,
//! asks a running server to drain gracefully.

use std::path::PathBuf;
use std::process::ExitCode;

use harness::artifact::RunArtifact;
use harness::Table;
use serve::wire::Handshake;
use serve::{
    request_shutdown, run_bench, run_one, ClientOptions, ManyClientOptions, ServeOptions,
};

fn usage() -> &'static str {
    "tage_serve — prediction-as-a-service for TAGE trace simulation (tage.wire/1)

USAGE:
  tage_serve [serve] [--host H] [--port N] [--max-sessions N] [--threads N] [--allow-fault-injection]
      Serve until a shutdown frame drains the server. `--port 0` binds an
      ephemeral port; the bound address is printed on stdout as
      `listening <addr>`.

  tage_serve client --addr HOST:PORT --spec SPEC [session options] TRACE
      Stream one trace file, print the per-trace result table, exit 1 on a
      typed server error.
        --artifacts DIR   write the result artifact verbatim (byte-identical
                          to `tage_exp system --trace ... --artifacts`)
        --quiet           suppress per-frame progress lines

  tage_serve manyclient --addr HOST:PORT --traces DIR --sessions N --spec SPEC
                        [session options] [--inject-panic N] [--json PATH]
                        [--min-throughput EV_PER_SEC]
      Run N concurrent sessions round-robin over the traces in DIR; print
      throughput and p50/p99 session latency. Exits 1 unless exactly the
      injected sessions (default none) failed, every failure has code
      `panic`, and the throughput gate (if given) holds.

  tage_serve shutdown --addr HOST:PORT
      Ask the server to drain and exit.

SESSION OPTIONS (client and manyclient):
  --scenario I|A|B|C   update scenario (default A)
  --batch auto|0|N     block batch size; 0 = scalar engine (default auto)
  --skip N / --warmup N / --measure N   simulation window (events)
  --branch-stats       collect per-branch profiles
  --top N              per-branch rows kept in the artifact (default 20)
  --stats-every N      periodic stats frames every ~N events (default 0)
  --fault panic        fault-injection hook (server must allow it)
"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("client") => client_main(&args[1..]),
        Some("manyclient") => manyclient_main(&args[1..]),
        Some("shutdown") => shutdown_main(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            print!("{}", usage());
            0
        }
        // `serve` may be spelled out (symmetric with the other verbs) or
        // left implicit (bare flags).
        Some("serve") => serve_main(&args[1..]),
        _ => serve_main(&args),
    };
    ExitCode::from(code)
}

fn bad_usage(msg: &str) -> u8 {
    eprintln!("error: {msg}\n");
    eprint!("{}", usage());
    2
}

fn serve_main(args: &[String]) -> u8 {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--host" => match it.next() {
                Some(v) => opts.host = v.clone(),
                None => return bad_usage("--host needs a value"),
            },
            "--port" => match it.next().and_then(|v| v.parse::<u16>().ok()) {
                Some(v) => opts.port = v,
                None => return bad_usage("--port needs a number"),
            },
            "--max-sessions" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => opts.max_sessions = v,
                _ => return bad_usage("--max-sessions needs a positive number"),
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => opts.threads = Some(v),
                _ => return bad_usage("--threads needs a positive number"),
            },
            "--allow-fault-injection" => opts.allow_fault_injection = true,
            other => return bad_usage(&format!("unknown serve flag {other:?}")),
        }
    }
    match serve::serve(&opts) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// Verb-specific flag hook: consume `arg` (pulling values off the
/// iterator) and return whether it was recognized.
type ExtraFlag<'a> = dyn FnMut(&str, &mut std::slice::Iter<String>) -> Result<bool, String> + 'a;

/// Parse the session options shared by `client` and `manyclient` into a
/// handshake template. Returns unconsumed positional arguments.
fn parse_session_flags(
    args: &[String],
    hs: &mut Handshake,
    addr: &mut String,
    extra: &mut ExtraFlag<'_>,
) -> Result<Vec<String>, String> {
    fn take(it: &mut std::slice::Iter<String>, name: &str) -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
    }
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => *addr = take(&mut it, "--addr")?,
            "--spec" => hs.spec = take(&mut it, "--spec")?,
            "--scenario" => hs.scenario = take(&mut it, "--scenario")?,
            "--batch" => {
                let v = take(&mut it, "--batch")?;
                hs.batch = if v == "auto" {
                    pipeline::DEFAULT_BATCH
                } else {
                    v.parse::<usize>().map_err(|_| format!("bad --batch value {v:?}"))?
                };
            }
            "--skip" => {
                hs.skip = take(&mut it, "--skip")?.parse().map_err(|_| "bad --skip".to_string())?
            }
            "--warmup" => {
                hs.warmup =
                    take(&mut it, "--warmup")?.parse().map_err(|_| "bad --warmup".to_string())?
            }
            "--measure" => {
                hs.measure =
                    take(&mut it, "--measure")?.parse().map_err(|_| "bad --measure".to_string())?
            }
            "--branch-stats" => hs.branch_stats = true,
            "--top" => {
                hs.top = take(&mut it, "--top")?.parse().map_err(|_| "bad --top".to_string())?
            }
            "--stats-every" => {
                hs.stats_every = take(&mut it, "--stats-every")?
                    .parse()
                    .map_err(|_| "bad --stats-every".to_string())?
            }
            "--fault" => hs.fault = take(&mut it, "--fault")?,
            other => {
                if other.starts_with("--") {
                    if !extra(other, &mut it)? {
                        return Err(format!("unknown flag {other:?}"));
                    }
                } else {
                    positional.push(other.to_string());
                }
            }
        }
    }
    Ok(positional)
}

fn client_main(args: &[String]) -> u8 {
    let mut hs = Handshake::default();
    let mut addr = String::new();
    let mut artifacts: Option<PathBuf> = None;
    let mut quiet = false;
    let parsed = parse_session_flags(args, &mut hs, &mut addr, &mut |flag, it| match flag {
        "--artifacts" => {
            artifacts =
                Some(PathBuf::from(it.next().ok_or("--artifacts needs a value".to_string())?));
            Ok(true)
        }
        "--quiet" => {
            quiet = true;
            Ok(true)
        }
        _ => Ok(false),
    });
    let positional = match parsed {
        Ok(p) => p,
        Err(msg) => return bad_usage(&msg),
    };
    if addr.is_empty() || hs.spec.is_empty() || positional.len() != 1 {
        return bad_usage("client needs --addr, --spec, and exactly one TRACE file");
    }
    let trace = PathBuf::from(&positional[0]);

    let opts = ClientOptions { addr, handshake: hs, quiet };
    let result = match run_one(&trace, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if let Some(err) = &result.error {
        eprintln!("server error [{}]: {}", err.code, err.message);
        return 1;
    }
    let json = result.artifact_json.expect("ok result carries an artifact");
    let artifact = match RunArtifact::from_json(&json) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: result artifact did not parse: {e}");
            return 1;
        }
    };
    println!(
        "# session: {} events, {} stats frame(s), {:.1} ms",
        result.events,
        result.stats_frames,
        result.elapsed.as_secs_f64() * 1e3
    );
    let mut table = Table::new(
        &format!("SERVED RESULT — spec {}, scenario {}", artifact.spec, artifact.scenario),
        &["trace", "category", "MPPKI"],
    );
    let suite = match artifact.suite_report() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: result artifact did not round-trip: {e}");
            return 1;
        }
    };
    for r in &suite.reports {
        table.row(vec![r.trace.clone(), r.category.clone(), format!("{:.4}", r.mppki())]);
    }
    table.print();
    if let Some(dir) = artifacts {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: {e}");
            return 1;
        }
        let path = dir.join(artifact.file_name());
        // The payload bytes, not a re-serialization: byte-identical to the
        // offline `tage_exp system --trace --artifacts` output.
        if let Err(e) = std::fs::write(&path, json.as_bytes()) {
            eprintln!("error: {e}");
            return 1;
        }
        println!("# artifact: {}", path.display());
    }
    0
}

fn manyclient_main(args: &[String]) -> u8 {
    let mut hs = Handshake::default();
    let mut addr = String::new();
    let mut traces_dir: Option<PathBuf> = None;
    let mut sessions = 0usize;
    let mut inject_panic = 0usize;
    let mut json_out: Option<PathBuf> = None;
    let mut min_throughput: Option<f64> = None;
    let parsed = parse_session_flags(args, &mut hs, &mut addr, &mut |flag, it| {
        let mut take = |name: &str| it.next().cloned().ok_or(format!("{name} needs a value"));
        match flag {
            "--traces" => {
                traces_dir = Some(PathBuf::from(take("--traces")?));
                Ok(true)
            }
            "--sessions" => {
                sessions = take("--sessions")?.parse().map_err(|_| "bad --sessions".to_string())?;
                Ok(true)
            }
            "--inject-panic" => {
                inject_panic =
                    take("--inject-panic")?.parse().map_err(|_| "bad --inject-panic".to_string())?;
                Ok(true)
            }
            "--json" => {
                json_out = Some(PathBuf::from(take("--json")?));
                Ok(true)
            }
            "--min-throughput" => {
                min_throughput = Some(
                    take("--min-throughput")?
                        .parse()
                        .map_err(|_| "bad --min-throughput".to_string())?,
                );
                Ok(true)
            }
            _ => Ok(false),
        }
    });
    if let Err(msg) = parsed {
        return bad_usage(&msg);
    }
    let traces_dir = match traces_dir {
        Some(d) => d,
        None => return bad_usage("manyclient needs --traces DIR"),
    };
    if addr.is_empty() || hs.spec.is_empty() || sessions == 0 {
        return bad_usage("manyclient needs --addr, --spec, and --sessions N");
    }
    if inject_panic > sessions {
        return bad_usage("--inject-panic cannot exceed --sessions");
    }

    let opts = ManyClientOptions { addr, traces_dir, sessions, handshake: hs, inject_panic };
    let (summary, outcomes) = match run_bench(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };

    println!(
        "# manyclient: {} session(s), {} ok, {} error(s), {:.0} events/s, p50 {:.1} ms, p99 {:.1} ms",
        summary.sessions,
        summary.ok,
        summary.errors,
        summary.events_per_sec,
        summary.p50_ms,
        summary.p99_ms
    );
    for (code, n) in &summary.error_codes {
        println!("#   error [{code}]: {n} session(s)");
    }
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, summary.to_json()) {
            eprintln!("error: {e}");
            return 1;
        }
        println!("# load-bench json: {}", path.display());
    }

    // Gates: exactly the injected sessions fail, each with code `panic`.
    let mut failed_gate = false;
    for o in &outcomes {
        if o.injected && o.error_code.as_deref() != Some("panic") {
            eprintln!(
                "gate: injected session on {} should have failed with code panic, got {:?}",
                o.trace.display(),
                o.error_code
            );
            failed_gate = true;
        }
        if !o.injected && !o.is_ok() {
            eprintln!(
                "gate: healthy session on {} failed with {:?}",
                o.trace.display(),
                o.error_code
            );
            failed_gate = true;
        }
    }
    if let Some(min) = min_throughput {
        if summary.events_per_sec < min {
            eprintln!(
                "gate: throughput {:.0} events/s is below the {min:.0} events/s floor",
                summary.events_per_sec
            );
            failed_gate = true;
        }
    }
    if failed_gate {
        1
    } else {
        0
    }
}

fn shutdown_main(args: &[String]) -> u8 {
    let mut addr = String::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return bad_usage("--addr needs a value"),
            },
            other => return bad_usage(&format!("unknown shutdown flag {other:?}")),
        }
    }
    if addr.is_empty() {
        return bad_usage("shutdown needs --addr");
    }
    match request_shutdown(&addr) {
        Ok(()) => {
            println!("# shutdown acknowledged");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
