//! One served session: handshake → streamed trace → result artifact.
//!
//! A session IS the offline `tage_exp system --trace` recipe
//! ([`harness::trace_mode::run_spec_cell`]) with the trace bytes arriving
//! over a socket instead of from a file. The socket's read half is wrapped
//! in [`FrameFeed`] — a `Read` adapter that unwraps `data` frames — and
//! handed to `traces::CodecRegistry::open_feed`, which sniffs the codec
//! from the first bytes exactly as it would from a file. Because both
//! paths converge on the same decode + simulate recipe, a served result is
//! bit-identical to the offline run by construction (pinned by the
//! `serve_e2e` integration tests).
//!
//! **Backpressure** falls out of the design: the server reads the next
//! `data` frame only when the decoder asks for more bytes, and the decoder
//! is only polled between simulated blocks. A fast client blocks on TCP
//! send once the kernel buffers fill; the server never queues more than
//! one payload per session.
//!
//! **Isolation**: every failure path emits one typed `error` frame and
//! ends only this session. The panic fence lives in the server's worker
//! job (see `server.rs`); it relies on unwinding, which holds in every
//! `cargo test` build. The release profile sets `panic = "abort"` (the
//! simulator treats panics as fatal), so fault injection is additionally
//! gated behind `--allow-fault-injection`.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use harness::artifact::{scenario_from_label, RunArtifact};
use harness::trace_mode::run_spec_cell;
use harness::PredictorSpec;
use pipeline::{ChunkDriver, PipelineConfig, SimWindow, SuiteReport};
use traces::CodecRegistry;

use crate::wire::{
    self, encode_stats, FrameType, Handshake, WireError, ERR_BAD_FRAME, ERR_BAD_HANDSHAKE,
    ERR_DECODE, ERR_OVERSIZED_FRAME, ERR_PANIC, ERR_SPEC,
};

/// Server-side knobs a session needs; shared by all sessions of one server.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Directory spooling codecs (`.ttr3`, `.cbp`) buffer into; cleaned up
    /// per-feed by the decoder's drop guard.
    pub spool_dir: PathBuf,
    /// Honor the handshake's `fault` test hook. Off by default: a release
    /// server must never let a client ask it to panic.
    pub allow_fault_injection: bool,
}

/// How a session ended, for the server's log line and drain logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// Result frame sent; `events` is what the final `stats` frame carried.
    Completed { events: u64 },
    /// A typed `error` frame was sent (or attempted) with this code.
    Errored { code: String, message: String },
    /// The connection's first frame was `shutdown`: drain the server.
    ShutdownRequested,
}

/// Best-effort typed `error` frame; used by sessions, the admission check,
/// and the panic fence. Write failures are ignored — the peer may be gone.
pub fn send_error_frame(w: &mut dyn Write, code: &str, message: &str) {
    let err = WireError::new(code, message);
    let _ = wire::write_frame(w, FrameType::Error, &err.encode());
}

/// `Read` adapter over the session's frame stream: yields the payload
/// bytes of `data` frames, EOF at `end`, error on anything else. Records a
/// wire-level error code in `protocol_code` so the session can distinguish
/// "client spoke garbage" from "trace bytes failed to decode" — by the
/// time the error surfaces it has passed through the trace decoder.
pub struct FrameFeed<R: Read + Send> {
    rd: R,
    buf: Vec<u8>,
    pos: usize,
    done: bool,
    protocol_code: Arc<Mutex<Option<&'static str>>>,
}

impl<R: Read + Send> FrameFeed<R> {
    pub fn new(rd: R, protocol_code: Arc<Mutex<Option<&'static str>>>) -> Self {
        FrameFeed { rd, buf: Vec::new(), pos: 0, done: false, protocol_code }
    }

    fn mark(&self, code: &'static str) {
        if let Ok(mut slot) = self.protocol_code.lock() {
            slot.get_or_insert(code);
        }
    }
}

/// Map a frame-read failure onto a wire error code. `None` means the
/// transport died (disconnect mid-trace): that is a decode-level failure,
/// not a protocol violation by the peer.
fn classify_read_error(e: &io::Error) -> Option<&'static str> {
    if e.kind() != io::ErrorKind::InvalidData {
        return None;
    }
    if e.to_string().contains("oversized") {
        Some(ERR_OVERSIZED_FRAME)
    } else {
        Some(ERR_BAD_FRAME)
    }
}

impl<R: Read + Send> Read for FrameFeed<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.pos < self.buf.len() {
                let n = (self.buf.len() - self.pos).min(out.len());
                out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            if self.done {
                return Ok(0);
            }
            let frame = match wire::read_frame(&mut self.rd) {
                Ok(f) => f,
                Err(e) => {
                    if let Some(code) = classify_read_error(&e) {
                        self.mark(code);
                    }
                    return Err(e);
                }
            };
            match frame.kind {
                FrameType::Data => {
                    self.buf = frame.payload;
                    self.pos = 0;
                }
                FrameType::End => self.done = true,
                other => {
                    self.mark(ERR_BAD_FRAME);
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected {} frame inside the data stream", other.name()),
                    ));
                }
            }
        }
    }
}

/// Bounded graceful-close drain: consume whatever the peer still has in
/// flight, so our `close()` doesn't turn into a TCP RST that destroys the
/// final `result`/`error` frame inside the client's receive buffer. (On
/// the happy path the leftover is the 5-byte `end` frame — the decoder
/// stops pulling bytes once the container is complete.) The read timeout
/// caps how long a misbehaving peer can pin a worker thread.
pub fn drain_to_eof(stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let mut buf = [0u8; 8192];
    let mut s = stream;
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
}

/// Run one connection to completion. Never panics on malformed input —
/// every failure is a typed `error` frame plus a `SessionEnd::Errored`.
/// (The one deliberate panic is the gated `fault=panic` test hook.)
pub fn run_session(stream: TcpStream, cfg: &SessionConfig) -> SessionEnd {
    let drain_half = stream.try_clone().ok();
    let end = session_body(stream, cfg);
    if let Some(s) = drain_half {
        drain_to_eof(&s);
    }
    end
}

/// [`run_session`] minus the graceful drain — for callers (the server's
/// worker job) that must release their admission slot *before* spending
/// up to the drain timeout on a slow peer.
pub(crate) fn session_body(stream: TcpStream, cfg: &SessionConfig) -> SessionEnd {
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            return SessionEnd::Errored { code: ERR_DECODE.to_string(), message: e.to_string() }
        }
    };
    let mut rd = BufReader::new(read_half);
    let mut wr = BufWriter::new(stream);

    // --- handshake ------------------------------------------------------
    let first = match wire::read_frame(&mut rd) {
        Ok(f) => f,
        Err(e) => {
            let code = classify_read_error(&e).unwrap_or(ERR_BAD_FRAME);
            return fail(&mut wr, code, e.to_string());
        }
    };
    match first.kind {
        FrameType::Shutdown => {
            // Drain ack: the caller flips the server's shutdown flag.
            let _ = wire::write_frame(&mut wr, FrameType::Ready, b"");
            return SessionEnd::ShutdownRequested;
        }
        FrameType::Hello => {}
        other => {
            return fail(
                &mut wr,
                ERR_BAD_HANDSHAKE,
                format!("expected a hello frame, got {}", other.name()),
            )
        }
    }
    let hs = match Handshake::parse(&first.payload) {
        Ok(h) => h,
        Err(e) => return fail(&mut wr, ERR_BAD_HANDSHAKE, e.to_string()),
    };
    let spec = match PredictorSpec::parse(&hs.spec) {
        Ok(s) => s,
        Err(e) => return fail(&mut wr, ERR_SPEC, e.to_string()),
    };
    let scenario = match scenario_from_label(&hs.scenario) {
        Ok(s) => s,
        Err(e) => return fail(&mut wr, ERR_SPEC, e.to_string()),
    };
    if !hs.fault.is_empty() {
        if !cfg.allow_fault_injection {
            return fail(
                &mut wr,
                ERR_SPEC,
                "fault injection is disabled (start the server with --allow-fault-injection)"
                    .to_string(),
            );
        }
        match hs.fault.as_str() {
            "panic" => {
                // INVARIANT: deliberate, doubly-gated fault-injection hook —
                // the robustness suite plants it to prove the server-side
                // panic fence confines a panicking session to itself.
                panic!("injected session fault (fault=panic)");
            }
            other => return fail(&mut wr, ERR_SPEC, format!("unknown fault hook {other:?}")),
        }
    }
    if wire::write_frame(&mut wr, FrameType::Ready, b"").is_err() {
        return SessionEnd::Errored {
            code: ERR_DECODE.to_string(),
            message: "peer vanished before ready".to_string(),
        };
    }

    // --- trace feed ------------------------------------------------------
    let protocol_code: Arc<Mutex<Option<&'static str>>> = Arc::new(Mutex::new(None));
    let feed = FrameFeed::new(rd, Arc::clone(&protocol_code));
    let registry = CodecRegistry::standard();
    let hint: Option<PathBuf> =
        if hs.name_hint.is_empty() { None } else { Some(PathBuf::from(&hs.name_hint)) };
    let mut decoder = match registry.open_feed(Box::new(feed), hint.as_deref(), &cfg.spool_dir) {
        Ok(d) => d,
        Err(e) => return fail(&mut wr, pick_code(&protocol_code, &e), e.to_string()),
    };

    // --- simulate --------------------------------------------------------
    let sim_cfg = PipelineConfig {
        branch_stats: hs.branch_stats,
        window: SimWindow { skip: hs.skip, warmup: hs.warmup, measure: hs.measure },
        ..PipelineConfig::default()
    };
    let mut chunk_events: Option<u64> = None;
    let report = if hs.batch > 0 && hs.stats_every > 0 {
        // Periodic progress: drive the engine in chunks so `stats` frames
        // interleave with simulation. ChunkDriver is bit-identical to the
        // one-shot engine run (pinned in pipeline::engine tests).
        let mut engine = match spec.build_engine(scenario, &sim_cfg) {
            Ok(e) => e,
            Err(e) => return fail(&mut wr, ERR_SPEC, e.to_string()),
        };
        let mut driver = ChunkDriver::new(hs.batch);
        let blocks_per_chunk = (hs.stats_every / hs.batch as u64).max(1) as usize;
        while !driver.is_done() {
            driver.run_chunk(&mut *engine, &mut decoder, blocks_per_chunk);
            if wire::write_frame(&mut wr, FrameType::Stats, &encode_stats(driver.events_fed()))
                .is_err()
            {
                return SessionEnd::Errored {
                    code: ERR_DECODE.to_string(),
                    message: "peer vanished mid-session".to_string(),
                };
            }
        }
        if let Err(e) = traces::finish(decoder.as_ref()) {
            return fail(&mut wr, pick_code(&protocol_code, &e), e.to_string());
        }
        chunk_events = Some(driver.events_fed());
        driver.finish(&mut *engine, &decoder)
    } else {
        // Default path: exactly the offline per-(spec × trace) recipe.
        match run_spec_cell(&spec, scenario, &mut decoder, &sim_cfg, hs.batch) {
            Ok(r) => r,
            Err(e) => return fail(&mut wr, pick_code(&protocol_code, &e), e.to_string()),
        }
    };

    // --- result ----------------------------------------------------------
    let events = chunk_events.unwrap_or(report.conditionals);
    let suite = SuiteReport::new(vec![report]);
    let artifact =
        RunArtifact::from_suite(&spec.sim_key(), scenario, "external", &suite, None, hs.top);
    let sent = wire::write_frame(&mut wr, FrameType::Stats, &encode_stats(events))
        .and_then(|_| wire::write_frame(&mut wr, FrameType::Result, artifact.to_json().as_bytes()));
    match sent {
        Ok(()) => SessionEnd::Completed { events },
        Err(e) => SessionEnd::Errored { code: ERR_DECODE.to_string(), message: e.to_string() },
    }
}

/// Panic-fence follow-up: tell the peer their session died. Exposed for
/// the server's worker job, which catches the unwind outside this module.
pub fn report_panic(stream: Option<TcpStream>, detail: &str) -> SessionEnd {
    if let Some(s) = stream {
        let mut wr = BufWriter::new(&s);
        send_error_frame(&mut wr, ERR_PANIC, detail);
    }
    SessionEnd::Errored { code: ERR_PANIC.to_string(), message: detail.to_string() }
}

fn pick_code(slot: &Arc<Mutex<Option<&'static str>>>, e: &io::Error) -> &'static str {
    if let Ok(guard) = slot.lock() {
        if let Some(code) = *guard {
            return code;
        }
    }
    // No wire-level violation recorded: invalid *input* means the spec was
    // rejected at build time, anything else is a trace decode failure.
    if e.kind() == io::ErrorKind::InvalidInput {
        ERR_SPEC
    } else {
        ERR_DECODE
    }
}

fn fail(wr: &mut dyn Write, code: &'static str, message: String) -> SessionEnd {
    send_error_frame(wr, code, &message);
    SessionEnd::Errored { code: code.to_string(), message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frames(parts: &[(FrameType, &[u8])]) -> Cursor<Vec<u8>> {
        let mut buf = Vec::new();
        for &(kind, payload) in parts {
            wire::write_frame(&mut buf, kind, payload).unwrap();
        }
        Cursor::new(buf)
    }

    fn code_slot() -> Arc<Mutex<Option<&'static str>>> {
        Arc::new(Mutex::new(None))
    }

    #[test]
    fn frame_feed_concatenates_data_frames() {
        let rd = frames(&[
            (FrameType::Data, b"abc"),
            (FrameType::Data, b""),
            (FrameType::Data, b"defg"),
            (FrameType::End, b""),
        ]);
        let mut feed = FrameFeed::new(rd, code_slot());
        let mut out = Vec::new();
        feed.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abcdefg");
        // EOF is sticky.
        let mut again = [0u8; 4];
        assert_eq!(feed.read(&mut again).unwrap(), 0);
    }

    #[test]
    fn frame_feed_rejects_garbage_mid_stream() {
        let slot = code_slot();
        let rd = frames(&[(FrameType::Data, b"abc"), (FrameType::Hello, b"nope")]);
        let mut feed = FrameFeed::new(rd, Arc::clone(&slot));
        let mut out = Vec::new();
        let err = feed.read_to_end(&mut out).unwrap_err();
        assert!(err.to_string().contains("unexpected hello frame"));
        assert_eq!(*slot.lock().unwrap(), Some(ERR_BAD_FRAME));
    }

    #[test]
    fn frame_feed_flags_oversized_frames() {
        let slot = code_slot();
        let mut raw = Vec::new();
        wire::write_frame(&mut raw, FrameType::Data, b"ok").unwrap();
        raw.push(FrameType::Data as u8);
        raw.extend_from_slice(&(wire::MAX_FRAME_LEN + 1).to_le_bytes());
        let mut feed = FrameFeed::new(Cursor::new(raw), Arc::clone(&slot));
        let mut out = Vec::new();
        assert!(feed.read_to_end(&mut out).is_err());
        assert_eq!(*slot.lock().unwrap(), Some(ERR_OVERSIZED_FRAME));
    }

    #[test]
    fn frame_feed_reports_disconnects_without_blaming_the_protocol() {
        let slot = code_slot();
        // A data frame header promising bytes that never arrive = the peer
        // vanished mid-trace.
        let mut raw = Vec::new();
        raw.push(FrameType::Data as u8);
        raw.extend_from_slice(&100u32.to_le_bytes());
        raw.extend_from_slice(b"only a little");
        let mut feed = FrameFeed::new(Cursor::new(raw), Arc::clone(&slot));
        let mut out = Vec::new();
        let err = feed.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(*slot.lock().unwrap(), None, "disconnects carry no protocol code");
    }
}
