//! The accept loop: a std-only threaded TCP server.
//!
//! No async runtime — the container is offline and the workload is
//! CPU-bound simulation, so a [`harness::WorkerPool`] of OS threads is the
//! right shape: one blocking accept loop, one pooled job per connection.
//! Admission control happens on the acceptor thread (connections beyond
//! `max_sessions` get a typed `admission` error and are closed without
//! ever touching the pool), so a flood of clients cannot queue unbounded
//! work behind the limit.
//!
//! Graceful drain: a `shutdown` frame as the first frame of a fresh
//! connection flips the shutdown flag; the handling worker then opens a
//! loopback connection to wake the blocking `accept()`, the acceptor
//! re-checks the flag and breaks, and dropping the pool joins every
//! worker — in-flight sessions finish before the process exits. (This is
//! the sanctioned graceful-stop path; the crate forbids `unsafe`, so no
//! signal handler is installed.)

use std::io::{self, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use harness::WorkerPool;

use crate::session::{self, SessionConfig, SessionEnd};
use crate::wire::ERR_ADMISSION;

/// Server configuration, straight from the CLI flags.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind host (default loopback — this is a lab tool, not an internet
    /// service).
    pub host: String,
    /// Bind port; `0` asks the OS for an ephemeral port, printed on stdout.
    pub port: u16,
    /// Admission limit: concurrent sessions beyond this are refused with a
    /// typed `admission` error.
    pub max_sessions: usize,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
    /// Honor the handshake `fault` test hook (robustness suite only).
    pub allow_fault_injection: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            host: "127.0.0.1".to_string(),
            port: 0,
            max_sessions: 64,
            threads: None,
            allow_fault_injection: false,
        }
    }
}

/// A server that has bound its listening socket but not yet started
/// accepting. Splitting bind from run lets the integration tests learn
/// the ephemeral port (`--port 0`) before the accept loop takes the
/// thread over.
pub struct BoundServer {
    listener: TcpListener,
    opts: ServeOptions,
}

impl BoundServer {
    pub fn bind(opts: &ServeOptions) -> io::Result<Self> {
        let listener = TcpListener::bind((opts.host.as_str(), opts.port))?;
        Ok(BoundServer { listener, opts: opts.clone() })
    }

    /// The actually-bound address (resolves `--port 0`).
    pub fn addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept sessions until a `shutdown` frame drains the server.
    pub fn run(self) -> io::Result<()> {
        run_accept_loop(self.listener, &self.opts)
    }
}

/// Run the server until a `shutdown` frame drains it. The bound address is
/// printed on stdout as `listening <addr>` before the first accept — CI
/// and the integration tests parse that line to discover the ephemeral
/// port from `--port 0`.
pub fn serve(opts: &ServeOptions) -> io::Result<()> {
    let server = BoundServer::bind(opts)?;
    let addr = server.addr()?;
    println!("listening {addr}");
    io::stdout().flush()?;
    server.run()
}

fn run_accept_loop(listener: TcpListener, opts: &ServeOptions) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let threads = opts
        .threads
        .unwrap_or_else(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16));
    let pool = WorkerPool::new(threads);
    println!(
        "# tage_serve: {} worker thread(s), max {} concurrent session(s){}",
        pool.threads(),
        opts.max_sessions,
        if opts.allow_fault_injection { ", fault injection ENABLED" } else { "" }
    );

    // Unique per server *instance*, not just per process: the integration
    // tests run several servers in one process, and tearing one down must
    // not sweep a sibling's spool files.
    static SERVER_SEQ: AtomicUsize = AtomicUsize::new(0);
    let spool_dir = std::env::temp_dir().join(format!(
        "tage-serve-{}-{}",
        std::process::id(),
        // ORDERING: Relaxed — the counter only needs uniqueness.
        SERVER_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&spool_dir)?;
    let cfg = Arc::new(SessionConfig {
        spool_dir: spool_dir.clone(),
        allow_fault_injection: opts.allow_fault_injection,
    });

    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let session_seq = AtomicUsize::new(0);

    loop {
        let stream = match listener.accept() {
            Ok((s, _peer)) => s,
            Err(e) => {
                // Transient accept failures (EMFILE under load, aborted
                // connections) must not kill the server.
                eprintln!("# accept error: {e}");
                continue;
            }
        };
        // ORDERING: Relaxed — the wake connection that follows the store
        // provides the needed happens-before through the socket itself.
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        // ORDERING: Relaxed — admission is an advisory gate; a racily
        // stale read admits (or refuses) one borderline session, which
        // the limit's contract ("about this many") tolerates.
        if active.load(Ordering::Relaxed) >= opts.max_sessions {
            // Refuse on a detached thread: the typed error must reach the
            // peer (send + graceful drain) without ever blocking accept.
            let limit = opts.max_sessions;
            thread::spawn(move || {
                {
                    let mut wr = BufWriter::new(&stream);
                    session::send_error_frame(
                        &mut wr,
                        ERR_ADMISSION,
                        &format!("server is at its session limit ({limit})"),
                    );
                }
                session::drain_to_eof(&stream);
            });
            continue;
        }
        // ORDERING: Relaxed — see the admission read above; the counter
        // never orders any other memory.
        active.fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — the id only needs uniqueness for log lines.
        let id = session_seq.fetch_add(1, Ordering::Relaxed);
        let cfg = Arc::clone(&cfg);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        pool.submit(Box::new(move || {
            // Panic fence: a panicking session (decoder bug, predictor
            // bug, injected fault) must degrade only itself. Unwinding is
            // live in every test build; the release binary aborts instead
            // (see Cargo.toml), which is why fault injection is gated.
            let fence_half = stream.try_clone().ok();
            let drain_half = stream.try_clone().ok();
            let end = catch_unwind(AssertUnwindSafe(|| session::session_body(stream, &cfg)))
                .unwrap_or_else(|payload| {
                    let detail = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("session panicked");
                    session::report_panic(fence_half, detail)
                });
            // Slot release strictly precedes the graceful drain: a slow
            // peer must not hold an admission slot (or block a shutdown
            // connection) for the drain timeout.
            // ORDERING: Relaxed — advisory admission counter, see above.
            active.fetch_sub(1, Ordering::Relaxed);
            match &end {
                SessionEnd::Completed { events } => {
                    println!("# session {id}: ok ({events} events)");
                }
                SessionEnd::Errored { code, message } => {
                    println!("# session {id}: error [{code}] {message}");
                }
                SessionEnd::ShutdownRequested => {
                    println!("# session {id}: shutdown requested, draining");
                    // ORDERING: Relaxed — the loopback connect below gives
                    // the acceptor a happens-before edge via the socket.
                    shutdown.store(true, Ordering::Relaxed);
                    // Wake the blocking accept() so the acceptor sees the
                    // flag even if no further client ever connects.
                    let _ = TcpStream::connect(addr);
                }
            }
            if let Some(s) = drain_half {
                session::drain_to_eof(&s);
            }
        }));
    }

    // Joining the pool drains in-flight sessions before we return.
    drop(pool);
    let _ = std::fs::remove_dir_all(&spool_dir);
    println!("# tage_serve: drained, exiting");
    Ok(())
}
