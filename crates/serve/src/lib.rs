//! Prediction-as-a-service: serve TAGE trace simulations over TCP.
//!
//! The `tage_serve` binary turns the offline `tage_exp system --trace`
//! recipe into a long-lived service: clients open a socket, send a
//! [`wire::Handshake`] naming a predictor spec and simulation options,
//! stream raw trace bytes in any registered `traces` codec (the server
//! sniffs the format from the first bytes, exactly like opening a file),
//! and receive the `tage.run/1` result artifact back — byte-identical to
//! what the offline run would have written.
//!
//! Layering:
//!
//! * [`wire`] — the `tage.wire/1` frame protocol: framing, handshake,
//!   typed errors (pinned against DESIGN.md §9 by `tage_lint`);
//! * [`session`] — one connection end-to-end: handshake → frame-fed trace
//!   decode → simulate → result;
//! * [`server`] — the std-only accept loop: `harness::WorkerPool` workers,
//!   admission limit, per-session panic fence, graceful drain;
//! * [`client`] — stream one trace, collect the artifact;
//! * [`manyclient`] — the concurrent load bench;
//! * [`stats`] — latency percentiles and the load-bench JSON summary.
//!
//! Design stance: **no async runtime**. The container is offline (no new
//! dependencies) and the workload is CPU-bound simulation, so blocking
//! sockets plus a worker pool give the same throughput with none of the
//! machinery. Backpressure is structural — the server reads trace bytes
//! only when the decoder wants more, so a fast client simply blocks in
//! TCP send.

#![forbid(unsafe_code)]

pub mod client;
pub mod manyclient;
pub mod server;
pub mod session;
pub mod stats;
pub mod wire;

pub use client::{request_shutdown, run_one, ClientOptions, SessionResult};
pub use manyclient::{collect_trace_files, run_bench, ManyClientOptions, SessionOutcome};
pub use server::{serve, BoundServer, ServeOptions};
pub use session::{run_session, SessionConfig, SessionEnd};
pub use stats::BenchSummary;
pub use wire::{Frame, FrameType, Handshake, WireError, MAX_FRAME_LEN, WIRE_SCHEMA};
