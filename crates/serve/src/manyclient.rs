//! The `manyclient` load bench: N concurrent sessions against one server.
//!
//! Each session is a real [`crate::client::run_one`] over a real socket —
//! no shortcuts through in-process channels — so the bench exercises the
//! admission gate, the worker pool, per-session spool isolation, and the
//! panic fence exactly as production clients would. `--inject-panic N`
//! plants the `fault=panic` hook in the first N sessions to prove a dying
//! session degrades only itself while its neighbors finish clean.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Instant;

use crate::client::{run_one, ClientOptions};
use crate::stats::{percentile, BenchSummary};
use crate::wire::Handshake;

/// Extensions the trace-directory scan accepts — one per registered codec
/// in `traces::CodecRegistry::standard()`.
const TRACE_EXTENSIONS: &[&str] = &["ttr", "ttr3", "cbp", "csv"];

/// Load-bench options, straight from the CLI.
#[derive(Clone, Debug)]
pub struct ManyClientOptions {
    /// Server address, `host:port`.
    pub addr: String,
    /// Directory scanned (non-recursively) for trace files.
    pub traces_dir: PathBuf,
    /// Concurrent sessions to run; traces are assigned round-robin.
    pub sessions: usize,
    /// Handshake template shared by every session.
    pub handshake: Handshake,
    /// Plant `fault=panic` in the first N sessions (robustness proof).
    pub inject_panic: usize,
}

/// One session's outcome, kept per-session so the caller can assert that
/// *exactly* the injected sessions failed.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    pub trace: PathBuf,
    pub injected: bool,
    /// Error code if the session failed (`transport` for non-typed
    /// failures), `None` on success.
    pub error_code: Option<String>,
    pub events: u64,
    pub latency_ms: f64,
}

impl SessionOutcome {
    pub fn is_ok(&self) -> bool {
        self.error_code.is_none()
    }
}

/// Scan `dir` for trace files in any registered codec, sorted by name so
/// the round-robin assignment is deterministic.
pub fn collect_trace_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.is_file() {
            continue;
        }
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("").to_ascii_lowercase();
        if TRACE_EXTENSIONS.contains(&ext.as_str()) {
            files.push(path);
        }
    }
    files.sort();
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no trace files ({}) under {}", TRACE_EXTENSIONS.join("/"), dir.display()),
        ));
    }
    Ok(files)
}

/// Run the bench: all sessions concurrently, one OS thread each (the
/// client side is I/O-bound; the server's worker pool does the heavy
/// lifting). Returns the aggregate summary plus per-session outcomes.
pub fn run_bench(opts: &ManyClientOptions) -> io::Result<(BenchSummary, Vec<SessionOutcome>)> {
    let files = collect_trace_files(&opts.traces_dir)?;
    let started = Instant::now();

    let mut handles = Vec::with_capacity(opts.sessions);
    for i in 0..opts.sessions {
        let trace = files[i % files.len()].clone();
        let mut handshake = opts.handshake.clone();
        let injected = i < opts.inject_panic;
        if injected {
            handshake.fault = "panic".to_string();
        }
        let client = ClientOptions { addr: opts.addr.clone(), handshake, quiet: true };
        handles.push(thread::spawn(move || {
            let run = run_one(&trace, &client);
            match run {
                Ok(res) => SessionOutcome {
                    trace,
                    injected,
                    error_code: res.error.as_ref().map(|e| e.code.clone()),
                    events: res.events,
                    latency_ms: res.elapsed.as_secs_f64() * 1e3,
                },
                Err(e) => SessionOutcome {
                    trace,
                    injected,
                    error_code: Some(format!("transport:{}", e.kind())),
                    events: 0,
                    latency_ms: 0.0,
                },
            }
        }));
    }

    let mut outcomes = Vec::with_capacity(handles.len());
    for handle in handles {
        match handle.join() {
            Ok(outcome) => outcomes.push(outcome),
            Err(_) => return Err(io::Error::other("a manyclient session thread panicked")),
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let ok = outcomes.iter().filter(|o| o.is_ok()).count();
    let mut codes: BTreeMap<String, usize> = BTreeMap::new();
    for o in &outcomes {
        if let Some(code) = &o.error_code {
            *codes.entry(code.clone()).or_insert(0) += 1;
        }
    }
    let events_total: u64 = outcomes.iter().filter(|o| o.is_ok()).map(|o| o.events).sum();
    let mut latencies: Vec<f64> =
        outcomes.iter().filter(|o| o.is_ok()).map(|o| o.latency_ms).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));

    let summary = BenchSummary {
        sessions: opts.sessions,
        ok,
        errors: opts.sessions - ok,
        error_codes: codes.into_iter().collect(),
        events_total,
        wall_secs,
        events_per_sec: if wall_secs > 0.0 { events_total as f64 / wall_secs } else { 0.0 },
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    };
    Ok((summary, outcomes))
}
