//! Load-bench aggregation: session latency percentiles, throughput, and
//! the JSON summary the CI `serve-smoke` job uploads next to the
//! `BENCH_*.json` artifacts.

use harness::artifact::json_str;

/// Nearest-rank percentile over an ascending-sorted slice of latencies.
/// Index is `round((p/100) * (n-1))` — small-sample friendly (p99 of 8
/// sessions is the max, not an extrapolation).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Aggregate result of one `manyclient` run.
#[derive(Clone, Debug)]
pub struct BenchSummary {
    /// Sessions attempted.
    pub sessions: usize,
    /// Sessions that returned a result artifact.
    pub ok: usize,
    /// Sessions that failed (typed error or transport failure).
    pub errors: usize,
    /// Error-code histogram, sorted by code.
    pub error_codes: Vec<(String, usize)>,
    /// Sum of final `stats` event counts over successful sessions.
    pub events_total: u64,
    /// Wall time of the whole run (first connect → last frame), seconds.
    pub wall_secs: f64,
    /// `events_total / wall_secs`.
    pub events_per_sec: f64,
    /// Median session latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile session latency, milliseconds.
    pub p99_ms: f64,
}

impl BenchSummary {
    /// Deterministic JSON (keys in fixed order) for the CI upload.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"tage.loadbench/1\",\n");
        s.push_str(&format!("  \"sessions\": {},\n", self.sessions));
        s.push_str(&format!("  \"ok\": {},\n", self.ok));
        s.push_str(&format!("  \"errors\": {},\n", self.errors));
        s.push_str("  \"error_codes\": {");
        for (i, (code, n)) in self.error_codes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", json_str(code), n));
        }
        s.push_str("},\n");
        s.push_str(&format!("  \"events_total\": {},\n", self.events_total));
        s.push_str(&format!("  \"wall_secs\": {:.6},\n", self.wall_secs));
        s.push_str(&format!("  \"events_per_sec\": {:.1},\n", self.events_per_sec));
        s.push_str(&format!("  \"p50_ms\": {:.3},\n", self.p50_ms));
        s.push_str(&format!("  \"p99_ms\": {:.3}\n", self.p99_ms));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 99.0), 8.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn summary_json_is_well_formed() {
        let s = BenchSummary {
            sessions: 8,
            ok: 7,
            errors: 1,
            error_codes: vec![("panic".to_string(), 1)],
            events_total: 123_456,
            wall_secs: 1.5,
            events_per_sec: 82_304.0,
            p50_ms: 12.5,
            p99_ms: 80.0,
        };
        let json = s.to_json();
        assert!(json.contains("\"schema\": \"tage.loadbench/1\""));
        assert!(json.contains("\"error_codes\": {\"panic\": 1}"));
        assert!(json.contains("\"events_per_sec\": 82304.0"));
    }
}
