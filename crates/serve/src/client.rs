//! Client side of a `tage.wire/1` session: stream one trace, collect the
//! result artifact.
//!
//! Frames from the server arrive on a dedicated reader thread and are
//! forwarded over a channel; the sender thread just pumps file bytes. The
//! split matters: with `stats_every` set the server emits progress frames
//! *while* the client is still uploading, and a single-threaded client
//! that never reads until it finishes writing can deadlock once both
//! kernel socket buffers fill.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read};
use std::net::TcpStream;
use std::path::Path;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use crate::wire::{self, Frame, FrameType, Handshake, WireError, DATA_CHUNK};

/// Per-session client options. `handshake` is the template sent as the
/// `hello` payload; `run_one` fills `name_hint` from the trace path.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Server address, `host:port`.
    pub addr: String,
    /// Handshake template (spec, scenario, window, batch, …).
    pub handshake: Handshake,
    /// Suppress per-frame progress lines.
    pub quiet: bool,
}

/// What one session produced.
#[derive(Debug)]
pub struct SessionResult {
    /// Raw bytes of the `result` frame — the `tage.run/1` artifact JSON,
    /// exactly as the server serialized it. Kept as the original string so
    /// `--artifacts` can write it verbatim (byte-identity with offline runs).
    pub artifact_json: Option<String>,
    /// Typed server-side error, if the session failed.
    pub error: Option<WireError>,
    /// Event count from the last `stats` frame.
    pub events: u64,
    /// Number of `stats` frames received (≥1 on success).
    pub stats_frames: usize,
    /// Wall time from connect to final frame.
    pub elapsed: Duration,
}

impl SessionResult {
    pub fn is_ok(&self) -> bool {
        self.artifact_json.is_some() && self.error.is_none()
    }
}

/// Run one full session: connect, handshake, stream `path`, await result.
///
/// A transport-level failure is an `Err`; a *typed* server-side failure
/// (error frame) is an `Ok` result with `error` set, so callers can tell
/// "the server refused" from "the network broke".
pub fn run_one(path: &Path, opts: &ClientOptions) -> io::Result<SessionResult> {
    let started = Instant::now();
    let stream = TcpStream::connect(&opts.addr)?;
    let mut wr = BufWriter::new(stream.try_clone()?);

    let mut hs = opts.handshake.clone();
    if hs.name_hint.is_empty() {
        hs.name_hint =
            path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    }
    wire::write_frame(&mut wr, FrameType::Hello, &hs.encode())?;

    // Reader thread: forward every frame, stop after a terminal one.
    let (tx, rx) = mpsc::channel::<io::Result<Frame>>();
    let reader_stream = stream;
    let reader = thread::spawn(move || {
        let mut rd = BufReader::new(reader_stream);
        loop {
            match wire::read_frame(&mut rd) {
                Ok(frame) => {
                    let terminal = matches!(frame.kind, FrameType::Result | FrameType::Error);
                    if tx.send(Ok(frame)).is_err() || terminal {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        }
    });

    let mut result = SessionResult {
        artifact_json: None,
        error: None,
        events: 0,
        stats_frames: 0,
        elapsed: Duration::ZERO,
    };

    // Wait for ready (or an immediate typed refusal: admission, bad spec…).
    let mut streamed: io::Result<()> = Ok(());
    match rx.recv() {
        Ok(Ok(frame)) => match frame.kind {
            FrameType::Ready => streamed = stream_file(path, &mut wr),
            FrameType::Error => result.error = Some(WireError::parse(&frame.payload)),
            other => {
                let _ = reader.join();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected ready, server sent {}", other.name()),
                ));
            }
        },
        Ok(Err(e)) => {
            let _ = reader.join();
            return Err(e);
        }
        Err(_) => {
            let _ = reader.join();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "connection closed before ready",
            ));
        }
    }

    // Collect frames until a terminal one. If streaming failed (broken
    // pipe), the server most likely sent a typed error — surface that in
    // preference to the raw transport error.
    if result.error.is_none() {
        loop {
            match rx.recv() {
                Ok(Ok(frame)) => match frame.kind {
                    FrameType::Stats => {
                        result.events = wire::parse_stats(&frame.payload);
                        result.stats_frames += 1;
                        if !opts.quiet {
                            println!("# stats: {} events", result.events);
                        }
                    }
                    FrameType::Result => {
                        result.artifact_json =
                            Some(String::from_utf8(frame.payload).map_err(|_| {
                                io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    "result artifact is not UTF-8",
                                )
                            })?);
                        break;
                    }
                    FrameType::Error => {
                        result.error = Some(WireError::parse(&frame.payload));
                        break;
                    }
                    other => {
                        let _ = reader.join();
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected {} frame from server", other.name()),
                        ));
                    }
                },
                Ok(Err(e)) => {
                    let _ = reader.join();
                    return Err(streamed.err().unwrap_or(e));
                }
                Err(_) => {
                    let _ = reader.join();
                    return Err(streamed.err().unwrap_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "connection closed before a result or error frame",
                        )
                    }));
                }
            }
        }
    }

    let _ = reader.join();
    result.elapsed = started.elapsed();
    Ok(result)
}

fn stream_file(path: &Path, wr: &mut BufWriter<TcpStream>) -> io::Result<()> {
    let mut f = File::open(path)?;
    let mut buf = vec![0u8; DATA_CHUNK];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        wire::write_frame(wr, FrameType::Data, &buf[..n])?;
    }
    wire::write_frame(wr, FrameType::End, b"")
}

/// Ask a server to drain and exit: open a connection whose first frame is
/// `shutdown`, wait for the `ready` ack.
pub fn request_shutdown(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut wr = BufWriter::new(stream.try_clone()?);
    wire::write_frame(&mut wr, FrameType::Shutdown, b"")?;
    let mut rd = BufReader::new(stream);
    let ack = wire::read_frame(&mut rd)?;
    if ack.kind != FrameType::Ready {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a ready ack, got {}", ack.kind.name()),
        ));
    }
    Ok(())
}
