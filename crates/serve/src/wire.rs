//! The `tage.wire/1` framed binary protocol.
//!
//! Everything on a serve connection is a **frame**: a 1-byte type tag, a
//! 4-byte little-endian payload length, then the payload. The layout is
//! deliberately boring — no varints, no compression at the frame layer —
//! because the payloads themselves are either opaque trace bytes (already
//! compressed by the `.ttr`/`.ttr3` codecs) or small `key=value` text
//! blocks that must stay greppable in packet dumps.
//!
//! The frame-type table, the handshake fields, and the schema string below
//! are pinned against `DESIGN.md` §9 by the `doc-sync` lint pass: renaming
//! a frame or adding a handshake field without updating the design doc
//! fails `tage_lint`.
//!
//! Session state machine (server side):
//!
//! ```text
//! accept → HELLO → READY → (DATA* → END) → STATS* → RESULT → close
//!            │                  │
//!            │ (bad handshake)  │ (garbage / oversize / decode failure)
//!            └──► ERROR ◄───────┘
//! ```
//!
//! A `shutdown` frame sent as the *first* frame of a fresh connection asks
//! the server to drain: stop accepting, finish in-flight sessions, exit.

use std::io::{self, Read, Write};

/// Wire schema identifier. The client sends it in the handshake; the server
/// rejects any mismatch with a `bad-handshake` error so old clients fail
/// loudly instead of mis-parsing frames.
pub const WIRE_SCHEMA: &str = "tage.wire/1";

/// Hard cap on a single frame payload. Anything larger is a protocol error
/// (`oversized-frame`), not an allocation: the reader refuses before
/// reserving memory, so a hostile length prefix cannot OOM the server.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Chunk size clients use when streaming trace bytes as `data` frames.
/// Small enough to keep the server's one-payload buffer modest, large
/// enough that framing overhead (5 bytes) is noise.
pub const DATA_CHUNK: usize = 64 * 1024;

/// Frame-type table: name-keyed, one row per wire frame. Kept as data (not
/// just an enum) so the `doc-sync` lint pass can extract the names and
/// check each one appears in the DESIGN.md §9 frame table.
pub const FRAMES: &[(&str, u8)] = &[
    ("hello", 0x01),
    ("ready", 0x02),
    ("data", 0x03),
    ("end", 0x04),
    ("stats", 0x05),
    ("result", 0x06),
    ("error", 0x07),
    ("shutdown", 0x08),
];

/// One frame type per [`FRAMES`] row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    Hello = 0x01,
    Ready = 0x02,
    Data = 0x03,
    End = 0x04,
    Stats = 0x05,
    Result = 0x06,
    Error = 0x07,
    Shutdown = 0x08,
}

impl FrameType {
    /// Decode a wire tag byte. Unknown tags are a protocol error the caller
    /// turns into `bad-frame`; the byte domain is open by design (future
    /// schema versions may add frames).
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0x01 => Some(FrameType::Hello),
            0x02 => Some(FrameType::Ready),
            0x03 => Some(FrameType::Data),
            0x04 => Some(FrameType::End),
            0x05 => Some(FrameType::Stats),
            0x06 => Some(FrameType::Result),
            0x07 => Some(FrameType::Error),
            0x08 => Some(FrameType::Shutdown),
            // WILDCARD: the tag-byte domain is open — future wire schema
            // versions may add frames; unknown tags map to a typed error.
            _ => None,
        }
    }

    /// Human-readable name, as it appears in [`FRAMES`] and error messages.
    pub fn name(self) -> &'static str {
        match self {
            FrameType::Hello => "hello",
            FrameType::Ready => "ready",
            FrameType::Data => "data",
            FrameType::End => "end",
            FrameType::Stats => "stats",
            FrameType::Result => "result",
            FrameType::Error => "error",
            FrameType::Shutdown => "shutdown",
        }
    }
}

/// A decoded frame: type tag plus owned payload bytes.
#[derive(Debug)]
pub struct Frame {
    pub kind: FrameType,
    pub payload: Vec<u8>,
}

/// Write one frame: `[type u8][len u32 LE][payload]`, then flush, so a
/// frame is either fully on the wire or not sent at all.
pub fn write_frame(w: &mut dyn Write, kind: FrameType, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("refusing to send oversized {} frame ({} bytes)", kind.name(), payload.len()),
        ));
    }
    let mut head = [0u8; 5];
    head[0] = kind as u8;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Errors: clean EOF surfaces as `UnexpectedEof`; an
/// unknown type tag or a length above [`MAX_FRAME_LEN`] is `InvalidData`
/// (the length check runs *before* any allocation).
pub fn read_frame(r: &mut dyn Read) -> io::Result<Frame> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let kind = FrameType::from_byte(head[0]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown tage.wire frame type 0x{:02x}", head[0]),
        )
    })?;
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("oversized {} frame: {} bytes exceeds MAX_FRAME_LEN", kind.name(), len),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame { kind, payload })
}

/// Session handshake, carried in the `hello` payload as `key=value` lines.
///
/// Every field is pinned against the DESIGN.md §9 handshake table by the
/// `doc-sync` lint pass. The parser is strict — an unknown key is a
/// `bad-handshake` error, not a silent skip — so schema drift between
/// client and server versions is caught at session start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Handshake {
    /// Wire schema; must equal [`WIRE_SCHEMA`].
    pub wire: String,
    /// Predictor spec string (`harness::PredictorSpec` grammar).
    pub spec: String,
    /// Update-scenario label: `I`, `A`, `B`, or `C`.
    pub scenario: String,
    /// Block-sim batch size; `0` selects the scalar (non-batched) engine.
    pub batch: usize,
    /// Simulation-window prefix skipped entirely (events).
    pub skip: u64,
    /// Window warmup length (events): simulated, not measured.
    pub warmup: u64,
    /// Window measurement length (events); `u64::MAX` = to end of trace.
    pub measure: u64,
    /// Collect per-branch profiles in the result artifact.
    pub branch_stats: bool,
    /// Top-N per-branch rows kept in the artifact (when `branch_stats`).
    pub top: usize,
    /// Client-side trace file name; drives codec detection fallback and the
    /// trace's display name, so served results match offline runs byte-for-byte.
    pub name_hint: String,
    /// Emit a `stats` frame roughly every this many events (`0` = only the
    /// final one before `result`).
    pub stats_every: u64,
    /// Fault-injection hook for robustness tests: empty = none, `panic` =
    /// deliberately panic mid-session. Honored only when the server runs
    /// with `--allow-fault-injection`.
    pub fault: String,
}

impl Default for Handshake {
    fn default() -> Self {
        Handshake {
            wire: WIRE_SCHEMA.to_string(),
            spec: String::new(),
            scenario: "A".to_string(),
            batch: pipeline::DEFAULT_BATCH,
            skip: 0,
            warmup: 0,
            measure: u64::MAX,
            branch_stats: false,
            top: 20,
            name_hint: String::new(),
            stats_every: 0,
            fault: String::new(),
        }
    }
}

impl Handshake {
    /// Encode as `key=value` lines in a fixed field order.
    pub fn encode(&self) -> Vec<u8> {
        let mut s = String::new();
        s.push_str(&format!("wire={}\n", self.wire));
        s.push_str(&format!("spec={}\n", self.spec));
        s.push_str(&format!("scenario={}\n", self.scenario));
        s.push_str(&format!("batch={}\n", self.batch));
        s.push_str(&format!("skip={}\n", self.skip));
        s.push_str(&format!("warmup={}\n", self.warmup));
        s.push_str(&format!("measure={}\n", self.measure));
        s.push_str(&format!("branch_stats={}\n", self.branch_stats));
        s.push_str(&format!("top={}\n", self.top));
        s.push_str(&format!("name_hint={}\n", self.name_hint));
        s.push_str(&format!("stats_every={}\n", self.stats_every));
        s.push_str(&format!("fault={}\n", self.fault));
        s.into_bytes()
    }

    /// Strict parse of a `hello` payload. Rejects non-UTF-8 bytes, lines
    /// without `=`, unknown keys, unparsable numbers, and a `wire` value
    /// that is not exactly [`WIRE_SCHEMA`].
    pub fn parse(payload: &[u8]) -> io::Result<Handshake> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let text = std::str::from_utf8(payload)
            .map_err(|_| bad("handshake payload is not UTF-8".to_string()))?;
        let mut hs = Handshake { wire: String::new(), ..Handshake::default() };
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("handshake line without '=': {line:?}")))?;
            match key {
                "wire" => hs.wire = value.to_string(),
                "spec" => hs.spec = value.to_string(),
                "scenario" => hs.scenario = value.to_string(),
                "batch" => hs.batch = parse_num(key, value)? as usize,
                "skip" => hs.skip = parse_num(key, value)?,
                "warmup" => hs.warmup = parse_num(key, value)?,
                "measure" => hs.measure = parse_num(key, value)?,
                "branch_stats" => {
                    hs.branch_stats = match value {
                        "true" => true,
                        "false" => false,
                        other => return Err(bad(format!("bad branch_stats value {other:?}"))),
                    }
                }
                "top" => hs.top = parse_num(key, value)? as usize,
                "name_hint" => hs.name_hint = value.to_string(),
                "stats_every" => hs.stats_every = parse_num(key, value)?,
                "fault" => hs.fault = value.to_string(),
                other => return Err(bad(format!("unknown handshake key {other:?}"))),
            }
        }
        if hs.wire != WIRE_SCHEMA {
            return Err(bad(format!(
                "wire schema mismatch: client sent {:?}, server speaks {WIRE_SCHEMA:?}",
                hs.wire
            )));
        }
        if hs.spec.is_empty() {
            return Err(bad("handshake is missing a predictor spec".to_string()));
        }
        Ok(hs)
    }
}

fn parse_num(key: &str, value: &str) -> io::Result<u64> {
    value.parse::<u64>().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("handshake field {key} is not a number: {value:?}"),
        )
    })
}

/// Error codes carried in `error` frames. One code per failure family so
/// clients (and the robustness suite) can assert on *which* fault tripped.
pub const ERR_BAD_HANDSHAKE: &str = "bad-handshake";
pub const ERR_BAD_FRAME: &str = "bad-frame";
pub const ERR_OVERSIZED_FRAME: &str = "oversized-frame";
pub const ERR_ADMISSION: &str = "admission";
pub const ERR_SPEC: &str = "spec";
pub const ERR_DECODE: &str = "decode";
pub const ERR_PANIC: &str = "panic";

/// Typed `error` frame payload: `code=...\nmessage=...`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    pub code: String,
    pub message: String,
}

impl WireError {
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        WireError { code: code.to_string(), message: message.into() }
    }

    pub fn encode(&self) -> Vec<u8> {
        // Keep the message on one line: the payload grammar is line-based.
        let one_line = self.message.replace('\n', " ");
        format!("code={}\nmessage={}\n", self.code, one_line).into_bytes()
    }

    /// Lenient parse: a mangled error payload still yields a displayable
    /// error (code `bad-frame`) instead of masking the original failure.
    pub fn parse(payload: &[u8]) -> WireError {
        let text = String::from_utf8_lossy(payload);
        let mut err = WireError::new(ERR_BAD_FRAME, "unparsable error payload");
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("code=") {
                err.code = v.to_string();
            } else if let Some(v) = line.strip_prefix("message=") {
                err.message = v.to_string();
            }
        }
        err
    }
}

/// Encode a `stats` payload: running count of events fed to the engine.
pub fn encode_stats(events: u64) -> Vec<u8> {
    format!("events={events}\n").into_bytes()
}

/// Parse a `stats` payload; returns the event count (0 if mangled — stats
/// frames are advisory progress, never load-bearing for correctness).
pub fn parse_stats(payload: &[u8]) -> u64 {
    let text = String::from_utf8_lossy(payload);
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("events=") {
            return v.parse::<u64>().unwrap_or(0);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_table_matches_the_enum() {
        for &(name, byte) in FRAMES {
            let kind = FrameType::from_byte(byte).expect("table byte decodes");
            assert_eq!(kind.name(), name);
            assert_eq!(kind as u8, byte);
        }
        assert_eq!(FRAMES.len(), 8);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Data, b"hello bytes").unwrap();
        write_frame(&mut buf, FrameType::End, b"").unwrap();
        let mut rd: &[u8] = &buf;
        let f1 = read_frame(&mut rd).unwrap();
        assert_eq!(f1.kind, FrameType::Data);
        assert_eq!(f1.payload, b"hello bytes");
        let f2 = read_frame(&mut rd).unwrap();
        assert_eq!(f2.kind, FrameType::End);
        assert!(f2.payload.is_empty());
        assert!(read_frame(&mut rd).is_err(), "EOF after last frame");
    }

    #[test]
    fn unknown_type_and_oversize_are_rejected_before_allocation() {
        let mut bad_type = vec![0xEEu8];
        bad_type.extend_from_slice(&0u32.to_le_bytes());
        let mut rd: &[u8] = &bad_type;
        let err = read_frame(&mut rd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown tage.wire frame type"));

        let mut oversize = vec![FrameType::Data as u8];
        oversize.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut rd: &[u8] = &oversize;
        let err = read_frame(&mut rd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("oversized"));
    }

    #[test]
    fn handshake_round_trips() {
        let hs = Handshake {
            spec: "tage -b 256".to_string(),
            scenario: "C".to_string(),
            batch: 97,
            skip: 5,
            warmup: 10,
            measure: 1000,
            branch_stats: true,
            top: 7,
            name_hint: "INT01.ttr".to_string(),
            stats_every: 4096,
            fault: String::new(),
            ..Handshake::default()
        };
        let parsed = Handshake::parse(&hs.encode()).unwrap();
        assert_eq!(parsed, hs);
    }

    #[test]
    fn handshake_rejects_drift() {
        assert!(Handshake::parse(b"\xff\xfe").is_err(), "non-UTF-8");
        assert!(Handshake::parse(b"no equals sign").is_err());
        let unknown = b"wire=tage.wire/1\nspec=tage\nflux_capacitor=1\n";
        assert!(Handshake::parse(unknown).is_err(), "unknown key");
        let old = b"wire=tage.wire/0\nspec=tage\n";
        let err = Handshake::parse(old).unwrap_err();
        assert!(err.to_string().contains("wire schema mismatch"));
        assert!(Handshake::parse(b"wire=tage.wire/1\n").is_err(), "missing spec");
    }

    #[test]
    fn error_and_stats_payloads_round_trip() {
        let e = WireError::new(ERR_DECODE, "truncated container:\nexpected more");
        let parsed = WireError::parse(&e.encode());
        assert_eq!(parsed.code, ERR_DECODE);
        assert_eq!(parsed.message, "truncated container: expected more");

        assert_eq!(parse_stats(&encode_stats(123_456)), 123_456);
        assert_eq!(parse_stats(b"garbage"), 0);
    }
}
