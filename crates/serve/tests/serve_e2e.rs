//! End-to-end tests for the prediction service: bit-identity with offline
//! runs across every container codec, and the robustness suite proving a
//! faulty session never takes the server (or a neighbor) down with it.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

use harness::artifact::{scenario_from_label, RunArtifact};
use harness::trace_mode::{record_trace, run_spec_over_files};
use harness::PredictorSpec;
use pipeline::PipelineConfig;
use serve::wire::{self, FrameType, Handshake, WireError};
use serve::{run_one, BoundServer, ClientOptions, ServeOptions};
use traces::{Ttr3Codec, TtrCodec};
use workloads::suite::{by_name, Scale};

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(max_sessions: usize, allow_fault_injection: bool) -> (SocketAddr, thread::JoinHandle<()>) {
    let opts = ServeOptions {
        max_sessions,
        threads: Some(4),
        allow_fault_injection,
        ..ServeOptions::default()
    };
    let server = BoundServer::bind(&opts).expect("bind an ephemeral port");
    let addr = server.addr().unwrap();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn stop_server(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    serve::request_shutdown(&addr.to_string()).expect("shutdown ack");
    handle.join().expect("server thread joins cleanly");
}

fn client_opts(addr: SocketAddr) -> ClientOptions {
    ClientOptions {
        addr: addr.to_string(),
        handshake: Handshake { spec: "tage".to_string(), ..Handshake::default() },
        quiet: true,
    }
}

/// The offline twin: exactly what `tage_exp system tage --trace FILE
/// --artifacts DIR` writes for this file.
fn offline_artifact_json(file: &Path) -> String {
    let spec = PredictorSpec::parse("tage").unwrap();
    let scenario = scenario_from_label("A").unwrap();
    let suite = run_spec_over_files(
        &spec,
        scenario,
        &[file.to_path_buf()],
        &PipelineConfig::default(),
        pipeline::DEFAULT_BATCH,
    )
    .unwrap();
    RunArtifact::from_suite(&spec.sim_key(), scenario, "external", &suite, None, 20).to_json()
}

#[test]
fn port_zero_binds_an_ephemeral_port() {
    let server = BoundServer::bind(&ServeOptions::default()).unwrap();
    assert_ne!(server.addr().unwrap().port(), 0);
}

#[test]
fn served_results_are_bit_identical_to_offline_runs_across_codecs() {
    let dir = test_dir("bitident");
    let trace = by_name("INT01", Scale::Tiny).unwrap().generate();
    // One subdir per container variant — both v3 flavors share the .ttr3
    // extension, so they cannot live in one directory.
    let v2 = record_trace(&trace, &TtrCodec, &dir.join("v2")).unwrap();
    let v3_raw = record_trace(&trace, &Ttr3Codec { scheme_id: 0 }, &dir.join("v3")).unwrap();
    let v3_lz = record_trace(&trace, &Ttr3Codec::default(), &dir.join("v3lz")).unwrap();

    let (addr, handle) = start_server(8, false);
    for (label, file) in [("ttr v2", &v2), ("ttr3 raw", &v3_raw), ("ttr3 lz", &v3_lz)] {
        let res = run_one(file, &client_opts(addr)).unwrap();
        assert!(res.error.is_none(), "{label}: server error {:?}", res.error);
        let served = res.artifact_json.expect("result artifact");
        let offline = offline_artifact_json(file);
        assert_eq!(served, offline, "{label}: served artifact differs from the offline run");
        assert!(res.events > 0, "{label}: final stats frame carries events");
    }
    stop_server(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn periodic_stats_frames_do_not_change_the_result() {
    let dir = test_dir("stats");
    let trace = by_name("MM05", Scale::Tiny).unwrap().generate();
    let file = record_trace(&trace, &TtrCodec, &dir).unwrap();

    let (addr, handle) = start_server(8, false);
    let mut opts = client_opts(addr);
    opts.handshake.batch = 97;
    opts.handshake.stats_every = 500;
    let res = run_one(&file, &opts).unwrap();
    assert!(res.error.is_none(), "server error {:?}", res.error);
    assert!(res.stats_frames > 1, "expected periodic stats frames, got {}", res.stats_frames);

    // The chunked, stats-interleaved run must equal the one-shot offline
    // run — ChunkDriver bit-identity carried over the wire. MPPKI and all
    // counters live in the trace rows, so compare artifacts modulo nothing:
    // batch size is not part of the artifact.
    let served = RunArtifact::from_json(&res.artifact_json.unwrap()).unwrap();
    let offline = RunArtifact::from_json(&offline_artifact_json(&file)).unwrap();
    assert_eq!(served.to_json(), offline.to_json());
    stop_server(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Open a raw wire connection and return (reader, writer) halves.
fn raw_connect(addr: SocketAddr) -> (BufReader<TcpStream>, BufWriter<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let rd = BufReader::new(stream.try_clone().unwrap());
    (rd, BufWriter::new(stream))
}

fn expect_error(rd: &mut BufReader<TcpStream>, want_code: &str, context: &str) {
    loop {
        let frame = wire::read_frame(rd).unwrap_or_else(|e| panic!("{context}: read failed: {e}"));
        match frame.kind {
            FrameType::Stats => continue,
            FrameType::Error => {
                let err = WireError::parse(&frame.payload);
                assert_eq!(err.code, want_code, "{context}: wrong error code ({})", err.message);
                return;
            }
            other => panic!("{context}: expected an error frame, got {}", other.name()),
        }
    }
}

fn expect_ready(rd: &mut BufReader<TcpStream>, context: &str) {
    let frame = wire::read_frame(rd).unwrap_or_else(|e| panic!("{context}: read failed: {e}"));
    assert_eq!(frame.kind, FrameType::Ready, "{context}: expected ready");
}

fn healthy_session(addr: SocketAddr, file: &Path, context: &str) {
    let res = run_one(file, &client_opts(addr))
        .unwrap_or_else(|e| panic!("{context}: healthy session transport error: {e}"));
    assert!(res.error.is_none(), "{context}: healthy session got {:?}", res.error);
    assert!(res.artifact_json.is_some(), "{context}: healthy session missing artifact");
}

#[test]
fn every_fault_kills_only_its_own_session() {
    let dir = test_dir("faults");
    let trace = by_name("INT02", Scale::Tiny).unwrap().generate();
    let file = record_trace(&trace, &TtrCodec, &dir).unwrap();
    let trace_bytes = std::fs::read(&file).unwrap();

    let (addr, handle) = start_server(8, true);

    // A healthy neighbor churns through sessions *while* the faults fire:
    // isolation means it never notices them.
    let neighbor_file = file.clone();
    let neighbor = thread::spawn(move || {
        for i in 0..5 {
            healthy_session(addr, &neighbor_file, &format!("concurrent neighbor #{i}"));
        }
    });

    // 1. Malformed handshake: hello payload that fails the strict parser.
    {
        let (mut rd, mut wr) = raw_connect(addr);
        wire::write_frame(&mut wr, FrameType::Hello, b"wire=tage.wire/1\nnot a key value line")
            .unwrap();
        expect_error(&mut rd, "bad-handshake", "malformed handshake");
    }
    healthy_session(addr, &file, "after malformed handshake");

    // 2. Unknown frame tag as the very first frame.
    {
        let (mut rd, mut wr) = raw_connect(addr);
        let mut raw = vec![0xEEu8];
        raw.extend_from_slice(&4u32.to_le_bytes());
        raw.extend_from_slice(b"junk");
        wr.write_all(&raw).unwrap();
        wr.flush().unwrap();
        expect_error(&mut rd, "bad-frame", "unknown first frame");
    }
    healthy_session(addr, &file, "after unknown first frame");

    // 3. Garbage mid-stream: a stats frame (client→server nonsense) in the
    //    middle of the data phase.
    {
        let (mut rd, mut wr) = raw_connect(addr);
        let hs = Handshake { spec: "tage".to_string(), name_hint: "INT02.ttr".to_string(), ..Handshake::default() };
        wire::write_frame(&mut wr, FrameType::Hello, &hs.encode()).unwrap();
        expect_ready(&mut rd, "garbage mid-stream");
        wire::write_frame(&mut wr, FrameType::Data, &trace_bytes[..64]).unwrap();
        wire::write_frame(&mut wr, FrameType::Stats, b"events=1\n").unwrap();
        expect_error(&mut rd, "bad-frame", "garbage mid-stream");
    }
    healthy_session(addr, &file, "after garbage mid-stream");

    // 4. Oversized frame length: refused before allocation.
    {
        let (mut rd, mut wr) = raw_connect(addr);
        let hs = Handshake { spec: "tage".to_string(), name_hint: "INT02.ttr".to_string(), ..Handshake::default() };
        wire::write_frame(&mut wr, FrameType::Hello, &hs.encode()).unwrap();
        expect_ready(&mut rd, "oversized frame");
        let mut raw = vec![FrameType::Data as u8];
        raw.extend_from_slice(&(wire::MAX_FRAME_LEN + 1).to_le_bytes());
        wr.write_all(&raw).unwrap();
        wr.flush().unwrap();
        expect_error(&mut rd, "oversized-frame", "oversized frame");
    }
    healthy_session(addr, &file, "after oversized frame");

    // 5. Client disconnect mid-trace: nothing to assert on this socket —
    //    the proof is that the server keeps serving afterwards.
    {
        let (_rd, mut wr) = raw_connect(addr);
        let hs = Handshake { spec: "tage".to_string(), name_hint: "INT02.ttr".to_string(), ..Handshake::default() };
        wire::write_frame(&mut wr, FrameType::Hello, &hs.encode()).unwrap();
        wire::write_frame(&mut wr, FrameType::Data, &trace_bytes[..128]).unwrap();
        // Drop both halves: the peer vanishes mid-stream.
    }
    healthy_session(addr, &file, "after client disconnect");

    // 6. Planted panic: the session dies behind the fence and reports a
    //    typed error; the server survives.
    {
        let mut opts = client_opts(addr);
        opts.handshake.fault = "panic".to_string();
        let res = run_one(&file, &opts).unwrap();
        let err = res.error.expect("injected panic must surface as a typed error");
        assert_eq!(err.code, "panic", "got {err:?}");
    }
    healthy_session(addr, &file, "after injected panic");

    neighbor.join().expect("concurrent neighbor stayed healthy");
    stop_server(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_injection_is_refused_unless_enabled() {
    let dir = test_dir("noinject");
    let trace = by_name("WS01", Scale::Tiny).unwrap().generate();
    let file = record_trace(&trace, &TtrCodec, &dir).unwrap();

    let (addr, handle) = start_server(8, false);
    let mut opts = client_opts(addr);
    opts.handshake.fault = "panic".to_string();
    let res = run_one(&file, &opts).unwrap();
    let err = res.error.expect("fault hook must be refused");
    assert_eq!(err.code, "spec");
    assert!(err.message.contains("fault injection is disabled"));
    stop_server(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_limit_sends_a_typed_refusal() {
    let dir = test_dir("admission");
    let trace = by_name("INT01", Scale::Tiny).unwrap().generate();
    let file = record_trace(&trace, &TtrCodec, &dir).unwrap();

    let (addr, handle) = start_server(1, false);

    // Occupy the single slot: handshake through `ready`, then stall.
    let (mut rd, mut wr) = raw_connect(addr);
    let hs = Handshake { spec: "tage".to_string(), name_hint: "INT01.ttr".to_string(), ..Handshake::default() };
    wire::write_frame(&mut wr, FrameType::Hello, &hs.encode()).unwrap();
    expect_ready(&mut rd, "slot holder");

    // Anyone else is refused with a typed error before the handshake.
    let res = run_one(&file, &client_opts(addr)).unwrap();
    let err = res.error.expect("second session must be refused");
    assert_eq!(err.code, "admission");

    // Release the slot; the server recovers (the held session ends in a
    // decode error — it never got a full trace — which is fine).
    drop(rd);
    drop(wr);
    let mut ok = false;
    for _ in 0..50 {
        thread::sleep(Duration::from_millis(50));
        let res = run_one(&file, &client_opts(addr)).unwrap();
        if res.error.is_none() {
            ok = true;
            break;
        }
        assert_eq!(res.error.as_ref().unwrap().code, "admission");
    }
    assert!(ok, "slot never freed after the holder disconnected");
    stop_server(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manyclient_bench_aggregates_and_isolates_injected_panics() {
    let dir = test_dir("manyclient");
    for name in ["INT01", "MM01", "WS01"] {
        let trace = by_name(name, Scale::Tiny).unwrap().generate();
        record_trace(&trace, &TtrCodec, &dir).unwrap();
    }

    let (addr, handle) = start_server(16, true);
    let opts = serve::ManyClientOptions {
        addr: addr.to_string(),
        traces_dir: dir.clone(),
        sessions: 6,
        handshake: Handshake { spec: "tage".to_string(), ..Handshake::default() },
        inject_panic: 1,
    };
    let (summary, outcomes) = serve::run_bench(&opts).unwrap();
    assert_eq!(summary.sessions, 6);
    assert_eq!(summary.ok, 5, "outcomes: {outcomes:?}");
    assert_eq!(summary.errors, 1);
    assert_eq!(summary.error_codes, vec![("panic".to_string(), 1)]);
    assert!(summary.events_total > 0);
    assert!(summary.p99_ms >= summary.p50_ms);
    for o in &outcomes {
        if o.injected {
            assert_eq!(o.error_code.as_deref(), Some("panic"));
        } else {
            assert!(o.is_ok(), "healthy session failed: {o:?}");
        }
    }
    stop_server(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
