//! Integration tests for the simkit primitives: saturating-counter boundary
//! behavior, the O(1) folded history against a naive re-fold oracle, and
//! RNG determinism across runs.

use simkit::bits::mask;
use simkit::counter::{SignedCounter, UnsignedCounter};
use simkit::history::{FoldedHistory, GlobalHistory};
use simkit::rng::{SplitMix64, Xoshiro256};

#[test]
fn signed_counter_3bit_covers_minus_four_to_three() {
    let mut c = SignedCounter::new(3);
    assert_eq!(c.min(), -4);
    assert_eq!(c.max(), 3);
    assert_eq!(c.get(), 0, "counters start weakly taken");
    assert!(c.is_taken());

    for _ in 0..10 {
        c.increment();
        assert!(c.get() <= 3, "must saturate at max");
    }
    assert_eq!(c.get(), 3);
    c.increment();
    assert_eq!(c.get(), 3, "increment at max is a no-op");

    for _ in 0..20 {
        c.decrement();
        assert!(c.get() >= -4, "must saturate at min");
    }
    assert_eq!(c.get(), -4);
    c.decrement();
    assert_eq!(c.get(), -4, "decrement at min is a no-op");
    assert!(!c.is_taken());

    // Walk the full range back up one step at a time.
    for expected in -3..=3 {
        c.update(true);
        assert_eq!(c.get(), expected);
        assert_eq!(c.is_taken(), expected >= 0);
    }
}

#[test]
fn signed_counter_widths_one_to_eight_have_two_complement_ranges() {
    for bits in 1..=8u8 {
        let c = SignedCounter::new(bits);
        assert_eq!(c.min(), -(1 << (bits - 1)), "min for {bits}-bit");
        assert_eq!(c.max(), (1 << (bits - 1)) - 1, "max for {bits}-bit");
    }
}

#[test]
fn unsigned_counter_saturates_at_zero_and_max() {
    let mut c = UnsignedCounter::new(2);
    assert_eq!(c.max(), 3);
    c.decrement();
    assert_eq!(c.get(), 0, "decrement at 0 is a no-op");
    for _ in 0..5 {
        c.increment();
    }
    assert_eq!(c.get(), 3);
    assert!(c.is_saturated());
}

/// Naive oracle: re-fold the last `length` history bits from scratch,
/// oldest bit first, exactly mirroring the incremental recurrence.
fn naive_fold(gh: &GlobalHistory, length: usize, width: u32) -> u64 {
    let mut comp = 0u64;
    for i in (0..length).rev() {
        comp = (comp << 1) | gh.bit(i);
        comp ^= comp >> width;
        comp &= mask(width);
    }
    comp
}

#[test]
fn folded_history_o1_update_matches_naive_refold() {
    // Deterministic but aperiodic bit stream from the workspace RNG.
    let mut rng = SplitMix64::new(0xF01D_ED01);
    // Lengths bracket the interesting cases: shorter than, equal to, and
    // much longer than the fold width, including the paper's (6, 2000) ends.
    let cases = [(3usize, 8u32), (6, 10), (10, 10), (17, 11), (130, 12), (2000, 12)];
    let mut gh = GlobalHistory::new();
    let mut folds: Vec<FoldedHistory> =
        cases.iter().map(|&(l, w)| FoldedHistory::new(l, w)).collect();
    for step in 0..4096 {
        gh.push(rng.next_u64() & 1 == 1);
        for (f, &(l, w)) in folds.iter_mut().zip(&cases) {
            f.update(&gh);
            assert_eq!(
                f.value(),
                naive_fold(&gh, l, w),
                "fold ({l},{w}) diverged from oracle at step {step}"
            );
            assert_eq!(f.value(), f.recompute(&gh), "recompute oracle disagrees at step {step}");
            assert!(f.value() <= mask(w));
        }
    }
}

#[test]
fn splitmix_is_deterministic_across_runs() {
    let mut a = SplitMix64::new(42);
    let mut b = SplitMix64::new(42);
    let first: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
    let again: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
    assert_eq!(first, again, "same seed must replay the same stream");

    let mut c = SplitMix64::new(43);
    let other: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
    assert_ne!(first, other, "different seeds must diverge");
}

#[test]
fn xoshiro_is_deterministic_and_seed_sensitive() {
    let mut a = Xoshiro256::seed_from(7);
    let mut b = Xoshiro256::seed_from(7);
    for i in 0..256 {
        assert_eq!(a.next_u64(), b.next_u64(), "streams diverged at {i}");
    }
    let mut c = Xoshiro256::seed_from(8);
    let from_7: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
    let from_8: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
    assert_ne!(from_7, from_8);
}

#[test]
fn xoshiro_helpers_stay_in_bounds() {
    let mut r = Xoshiro256::seed_from(99);
    for _ in 0..1000 {
        let v = r.gen_range(17);
        assert!(v < 17);
        let f = r.next_f64();
        assert!((0.0..1.0).contains(&f));
    }
    // gen_bool extremes are exact.
    let mut r = Xoshiro256::seed_from(100);
    assert!(!(0..100).any(|_| r.gen_bool(0.0)));
    assert!((0..100).all(|_| r.gen_bool(1.0)));
}
