//! Predictor-table access accounting.
//!
//! Section 4 of the paper argues the TAGE predictor's hardware cost case in
//! units of *predictor accesses per retired branch*:
//!
//! * a **read** is one parallel lookup of all predictor tables (what the
//!   fetch stage does once per prediction, and what the retire stage may do
//!   again to recompute the update);
//! * a **write** is one *effective* (non-silent) entry write — the paper
//!   eliminates silent updates, i.e. writes that would store the value the
//!   entry already holds.
//!
//! [`AccessStats`] tracks both, plus the silent writes avoided, so the
//! harness can reproduce §4.1.1 ("2.17 effective writes per misprediction")
//! and §4.2 ("1.13 accesses per retired branch").

/// Running predictor access counters.
///
/// # Example
///
/// ```
/// use simkit::stats::AccessStats;
///
/// let mut s = AccessStats::default();
/// s.predict_reads += 1;
/// s.effective_writes += 2;
/// s.silent_writes_avoided += 5;
/// assert_eq!(s.total_accesses(), 3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AccessStats {
    /// Full-predictor reads performed at prediction (fetch) time.
    pub predict_reads: u64,
    /// Full-predictor reads performed at retire time (scenario [A] always,
    /// scenario [C] only on mispredictions, scenario [B] never).
    pub retire_reads: u64,
    /// Entry writes that changed the stored value.
    pub effective_writes: u64,
    /// Entry writes skipped because the stored value was already equal
    /// (silent updates, §4.1.1).
    pub silent_writes_avoided: u64,
}

impl AccessStats {
    /// All memory-array accesses actually performed.
    #[inline]
    pub fn total_accesses(&self) -> u64 {
        self.predict_reads + self.retire_reads + self.effective_writes
    }

    /// Total writes had silent updates not been eliminated.
    #[inline]
    pub fn raw_writes(&self) -> u64 {
        self.effective_writes + self.silent_writes_avoided
    }

    /// Fraction of writes that were silent (eliminated), in `[0, 1]`.
    /// Returns 0 when no write was attempted.
    pub fn silent_fraction(&self) -> f64 {
        let raw = self.raw_writes();
        if raw == 0 {
            0.0
        } else {
            self.silent_writes_avoided as f64 / raw as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.predict_reads += other.predict_reads;
        self.retire_reads += other.retire_reads;
        self.effective_writes += other.effective_writes;
        self.silent_writes_avoided += other.silent_writes_avoided;
    }

    /// Records an entry write, counting it as effective only when the value
    /// changed. Returns true when the write was effective.
    #[inline]
    pub fn record_write(&mut self, changed: bool) -> bool {
        if changed {
            self.effective_writes += 1;
        } else {
            self.silent_writes_avoided += 1;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = AccessStats {
            predict_reads: 100,
            retire_reads: 4,
            effective_writes: 9,
            silent_writes_avoided: 91,
        };
        assert_eq!(s.total_accesses(), 113);
        assert_eq!(s.raw_writes(), 100);
        assert!((s.silent_fraction() - 0.91).abs() < 1e-12);
    }

    #[test]
    fn silent_fraction_no_writes() {
        assert_eq!(AccessStats::default().silent_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = AccessStats { predict_reads: 1, retire_reads: 2, effective_writes: 3, silent_writes_avoided: 4 };
        let b = AccessStats { predict_reads: 10, retire_reads: 20, effective_writes: 30, silent_writes_avoided: 40 };
        a.merge(&b);
        assert_eq!(a.predict_reads, 11);
        assert_eq!(a.retire_reads, 22);
        assert_eq!(a.effective_writes, 33);
        assert_eq!(a.silent_writes_avoided, 44);
    }

    #[test]
    fn record_write_classifies() {
        let mut s = AccessStats::default();
        assert!(s.record_write(true));
        assert!(!s.record_write(false));
        assert_eq!(s.effective_writes, 1);
        assert_eq!(s.silent_writes_avoided, 1);
    }
}
