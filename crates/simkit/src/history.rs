//! Branch history registers.
//!
//! * [`GlobalHistory`] — a long (thousands of bits) circular-buffer global
//!   direction history, as used by TAGE/GEHL with geometric history lengths.
//! * [`FoldedHistory`] — the incrementally maintained XOR-fold of the most
//!   recent `length` history bits down to `width` bits. This is the classic
//!   TAGE trick that makes indexing with a 2000-bit history O(1) per branch.
//! * [`PathHistory`] — a short register of branch PC bits ("path" history).
//! * [`LocalHistories`] — a PC-indexed table of per-branch local histories
//!   (the committed local history table of the LSC predictor, §6).

use crate::bits::mask;

/// Maximum global history capacity (must exceed the longest geometric
/// history length used anywhere; the paper's maximum is 5000 in §6.2).
const CAPACITY: usize = 8192;

/// A circular-buffer global branch direction history.
///
/// Bit 0 is the most recent branch outcome. The buffer never forgets until
/// `CAPACITY` bits; predictors only ever look `length` bits back.
///
/// # Example
///
/// ```
/// use simkit::history::GlobalHistory;
///
/// let mut h = GlobalHistory::new();
/// h.push(true);
/// h.push(false);
/// assert_eq!(h.bit(0), 0); // newest: not taken
/// assert_eq!(h.bit(1), 1);
/// ```
#[derive(Clone)]
pub struct GlobalHistory {
    /// Fixed-size boxed array: masked indexing is provably in-bounds, so
    /// the (very hot) `bit` reads compile without bounds checks.
    buf: Box<[u8; CAPACITY]>,
    /// Index of the most recent bit.
    head: usize,
    pushed: u64,
}

impl GlobalHistory {
    /// Creates an empty history (all zeros).
    pub fn new() -> Self {
        // INVARIANT: the boxed slice is built with length CAPACITY on the
        // previous token, so the fixed-size conversion cannot fail.
        Self { buf: vec![0u8; CAPACITY].into_boxed_slice().try_into().unwrap(), head: 0, pushed: 0 }
    }

    /// Pushes the newest branch outcome.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.head = (self.head + CAPACITY - 1) & (CAPACITY - 1);
        self.buf[self.head] = taken as u8;
        self.pushed = self.pushed.wrapping_add(1);
    }

    /// Returns history bit `i` (0 = most recent) as 0 or 1.
    #[inline]
    pub fn bit(&self, i: usize) -> u64 {
        debug_assert!(i < CAPACITY);
        u64::from(self.buf[(self.head + i) & (CAPACITY - 1)])
    }

    /// Number of outcomes pushed so far.
    #[inline]
    pub fn len(&self) -> u64 {
        self.pushed
    }

    /// True if no outcome has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Collects the most recent `n` bits into a `u64` (bit 0 = newest).
    /// Convenience for short-history predictors (gshare, SC tables).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn low_bits(&self, n: u32) -> u64 {
        assert!(n <= 64);
        let mut v = 0u64;
        for i in (0..n as usize).rev() {
            v = (v << 1) | self.bit(i);
        }
        v
    }
}

impl Default for GlobalHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for GlobalHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GlobalHistory(len={}, recent={:016b})", self.pushed, self.low_bits(16))
    }
}

/// An incrementally maintained XOR-fold of the `length` most recent global
/// history bits onto `width` bits.
///
/// Must be updated **after** every [`GlobalHistory::push`] via
/// [`FoldedHistory::update`], in lock-step, with the same `GlobalHistory`.
///
/// The fold is the standard TAGE/CBP recurrence: shift in the newest bit,
/// XOR out the bit that just left the `length`-bit window (pre-rotated to
/// the position it occupies in the fold), then wrap the overflow bit.
///
/// # Example
///
/// ```
/// use simkit::history::{FoldedHistory, GlobalHistory};
///
/// let mut gh = GlobalHistory::new();
/// let mut fh = FoldedHistory::new(17, 10);
/// for i in 0..100 {
///     gh.push(i % 3 == 0);
///     fh.update(&gh);
/// }
/// assert!(fh.value() < (1 << 10));
/// ```
#[derive(Clone, Debug)]
pub struct FoldedHistory {
    comp: u64,
    length: usize,
    width: u32,
    outpoint: u32,
}

impl FoldedHistory {
    /// A fold of `length` history bits down to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32, or `length` is 0.
    pub fn new(length: usize, width: u32) -> Self {
        assert!(length > 0, "folded history length must be positive");
        assert!((1..=32).contains(&width), "folded history width {width} out of range");
        Self { comp: 0, length, width, outpoint: (length as u32) % width }
    }

    /// Incorporates the newest history bit (bit 0 of `gh`) and retires the
    /// bit that just fell out of the window (bit `length` of `gh`).
    #[inline]
    pub fn update(&mut self, gh: &GlobalHistory) {
        self.update_split(gh.bit(0), gh.bit(self.length));
    }

    /// [`FoldedHistory::update`] with the two history bits supplied by the
    /// caller — `in_bit` the newest bit (bit 0), `out_bit` the bit leaving
    /// the window (bit `length`). Lets callers maintaining several folds
    /// of the *same* length (TAGE's index + two tag folds per table) read
    /// the history buffer once per table instead of once per fold.
    #[inline]
    pub fn update_split(&mut self, in_bit: u64, out_bit: u64) {
        self.comp = (self.comp << 1) | in_bit;
        self.comp ^= out_bit << self.outpoint;
        self.comp ^= self.comp >> self.width;
        self.comp &= mask(self.width);
    }

    /// The current folded value (always `< 2^width`).
    #[inline]
    pub fn value(&self) -> u64 {
        self.comp
    }

    /// History length being folded.
    #[inline]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Output width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Recomputes the fold from scratch (test oracle; O(length)).
    pub fn recompute(&self, gh: &GlobalHistory) -> u64 {
        let mut comp = 0u64;
        // Oldest bit first, replaying the incremental construction.
        for i in (0..self.length).rev() {
            comp = (comp << 1) | gh.bit(i);
            comp ^= comp >> self.width;
            comp &= mask(self.width);
        }
        comp
    }
}

/// A short path history of branch PC bits.
///
/// Each predicted branch contributes one low PC bit (after dropping the
/// instruction alignment bits); conditional and unconditional branches both
/// contribute, which lets tables distinguish paths with identical direction
/// histories.
///
/// # Example
///
/// ```
/// use simkit::history::PathHistory;
///
/// let mut p = PathHistory::new(16);
/// p.push(0x400_0F4);
/// assert_eq!(p.value() & 1, (0x400_0F4u64 >> 2) & 1);
/// ```
#[derive(Clone, Debug)]
pub struct PathHistory {
    value: u64,
    width: u32,
}

impl PathHistory {
    /// A path history of `width` bits (1–64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "path history width {width} out of range");
        Self { value: 0, width }
    }

    /// Pushes one bit of the branch address.
    #[inline]
    pub fn push(&mut self, pc: u64) {
        self.value = ((self.value << 1) | ((pc >> 2) & 1)) & mask(self.width);
    }

    /// Current path register value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }
}

/// A PC-indexed table of per-branch (local) direction histories.
///
/// This is the *committed* local history table of the LSC predictor (§6):
/// a small direct-mapped table (the paper uses 32 entries) of shift
/// registers updated at retire time. Speculative (in-flight) local history
/// is layered on top by the predictor's speculative local history manager.
///
/// # Example
///
/// ```
/// use simkit::history::LocalHistories;
///
/// let mut lh = LocalHistories::new(32, 11);
/// lh.update(0x44, true);
/// lh.update(0x44, false);
/// assert_eq!(lh.history(0x44) & 0b11, 0b10);
/// ```
#[derive(Clone, Debug)]
pub struct LocalHistories {
    table: Vec<u64>,
    entries: usize,
    width: u32,
}

impl LocalHistories {
    /// A table of `entries` local histories of `width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `width` is 0 or > 64.
    pub fn new(entries: usize, width: u32) -> Self {
        assert!(entries.is_power_of_two(), "local history entries must be a power of two");
        assert!((1..=64).contains(&width), "local history width {width} out of range");
        Self { table: vec![0; entries], entries, width }
    }

    /// Table index for `pc`.
    #[inline]
    pub fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries - 1)
    }

    /// The local history register for `pc` (bit 0 = most recent outcome).
    #[inline]
    pub fn history(&self, pc: u64) -> u64 {
        self.table[self.index(pc)]
    }

    /// Shifts `taken` into the history register for `pc`.
    #[inline]
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i] = ((self.table[i] << 1) | taken as u64) & mask(self.width);
    }

    /// Number of entries.
    #[inline]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// History width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Total storage in bits.
    #[inline]
    pub fn storage_bits(&self) -> u64 {
        self.entries as u64 * u64::from(self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_history_order() {
        let mut h = GlobalHistory::new();
        for taken in [true, true, false, true] {
            h.push(taken);
        }
        assert_eq!(h.bit(0), 1);
        assert_eq!(h.bit(1), 0);
        assert_eq!(h.bit(2), 1);
        assert_eq!(h.bit(3), 1);
        assert_eq!(h.low_bits(4), 0b1101);
    }

    #[test]
    fn global_history_wraps() {
        let mut h = GlobalHistory::new();
        for i in 0..(CAPACITY * 2 + 17) {
            h.push(i % 2 == 0);
        }
        // Last pushed index: i = 2*CAPACITY+16, even => taken.
        assert_eq!(h.bit(0), 1);
        assert_eq!(h.bit(1), 0);
    }

    #[test]
    fn folded_matches_recompute() {
        let mut gh = GlobalHistory::new();
        let mut folds = vec![
            FoldedHistory::new(6, 10),
            FoldedHistory::new(17, 10),
            FoldedHistory::new(130, 11),
            FoldedHistory::new(2000, 12),
            FoldedHistory::new(10, 10), // length == width
            FoldedHistory::new(5, 9),   // length < width
        ];
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            gh.push(x & 1 == 1);
            for f in &mut folds {
                f.update(&gh);
                assert_eq!(f.value(), f.recompute(&gh), "fold {}/{}", f.length(), f.width());
            }
        }
    }

    #[test]
    fn folded_distinguishes_histories() {
        // Two different 20-bit histories should (almost always) fold apart.
        let mut gh1 = GlobalHistory::new();
        let mut gh2 = GlobalHistory::new();
        let mut f1 = FoldedHistory::new(20, 10);
        let mut f2 = FoldedHistory::new(20, 10);
        for i in 0..20 {
            gh1.push(i % 2 == 0);
            f1.update(&gh1);
            gh2.push(i % 3 == 0);
            f2.update(&gh2);
        }
        assert_ne!(f1.value(), f2.value());
    }

    #[test]
    fn path_history_shifts() {
        let mut p = PathHistory::new(8);
        p.push(0b100); // (pc>>2)&1 = 1
        p.push(0b000); // 0
        p.push(0b100); // 1
        assert_eq!(p.value(), 0b101);
    }

    #[test]
    fn path_history_masks() {
        let mut p = PathHistory::new(4);
        for _ in 0..100 {
            p.push(0b100);
        }
        assert_eq!(p.value(), 0b1111);
    }

    #[test]
    fn local_histories_are_independent() {
        let mut lh = LocalHistories::new(4, 8);
        lh.update(0b00_00, true); // index 0
        lh.update(0b01_00, false); // index 1
        assert_eq!(lh.history(0b00_00), 1);
        assert_eq!(lh.history(0b01_00), 0);
        // Aliasing: entry 4 maps onto entry 0 with 4-entry table.
        lh.update(0b1_0000, false);
        assert_eq!(lh.history(0b00_00), 0b10);
    }

    #[test]
    fn local_histories_storage() {
        let lh = LocalHistories::new(32, 31);
        assert_eq!(lh.storage_bits(), 32 * 31);
    }
}
