//! Deterministic, portable pseudo-random number generators.
//!
//! Workload generation and every stochastic element of the simulator use
//! these in-tree generators rather than an external crate so results are
//! bit-identical across platforms and dependency upgrades.
//!
//! * [`SplitMix64`] — tiny, used for seeding and cheap one-off streams.
//! * [`Xoshiro256`] — xoshiro256\*\*, the workhorse stream generator.

/// SplitMix64 generator (Steele, Lea, Vigna). Primarily used to expand a
/// single `u64` seed into the larger state of [`Xoshiro256`].
///
/// # Example
///
/// ```
/// use simkit::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* (Blackman, Vigna): fast, high-quality, 256-bit state.
///
/// # Example
///
/// ```
/// use simkit::rng::Xoshiro256;
///
/// let mut r = Xoshiro256::seed_from(7);
/// let p = r.next_f64();
/// assert!((0.0..1.0).contains(&p));
/// assert!(r.gen_range(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range upper bound must be positive");
        // Lemire's method with rejection.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator (for per-trace streams).
    pub fn fork(&mut self) -> Self {
        Self::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 (from the public-domain C code).
        let mut r = SplitMix64::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut r2 = SplitMix64::new(0);
        assert_eq!(r2.next_u64(), a);
        assert_eq!(r2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_range_bounds() {
        let mut r = Xoshiro256::seed_from(5);
        for n in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.gen_range(n) < n);
            }
        }
    }

    #[test]
    fn xoshiro_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(11);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = Xoshiro256::seed_from(123);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut r = Xoshiro256::seed_from(77);
        let mut child = r.fork();
        let parent_next: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let child_next: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(parent_next, child_next);
    }

    #[test]
    fn gen_range_uniformity_smoke() {
        let mut r = Xoshiro256::seed_from(2024);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9000..11000).contains(&b), "bucket count {b}");
        }
    }
}
