//! The predictor lifecycle trait shared by every predictor in the workspace.
//!
//! A hardware branch predictor interacts with the pipeline at three points,
//! and §4 of the paper is entirely about what state flows between them:
//!
//! 1. **fetch** — the predictor is *read* and produces a direction; the
//!    speculative global history is extended (and repaired on a
//!    misprediction, so on the correct path it is always exact — the paper
//!    leans on this in §5.1);
//! 2. **execute** — the branch outcome becomes known to the hardware (the
//!    IUM consumes this event);
//! 3. **retire** — the predictor tables are *updated*; depending on the
//!    update scenario the update is computed from a fresh read ([A]), from
//!    the values read at fetch and carried with the branch ([B]), or from a
//!    fresh read only after mispredictions ([C]).
//!
//! The [`Predictor`] trait mirrors exactly this lifecycle. The associated
//! [`Predictor::Flight`] type is the bundle of information a real pipeline
//! would propagate with each in-flight branch (indices, tags read, counter
//! values read, side-predictor decisions).

use crate::stats::AccessStats;
use serde::{Deserialize, Serialize};

/// Classification of a control-flow instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch — the only kind that is *predicted* here.
    Conditional,
    /// Unconditional direct jump.
    DirectJump,
    /// Indirect jump.
    IndirectJump,
    /// Function call.
    Call,
    /// Function return.
    Return,
}

impl BranchKind {
    /// True for the conditional direct branches the predictors predict.
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }
}

/// Static information about a branch presented to the predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Instruction address.
    pub pc: u64,
    /// Branch class.
    pub kind: BranchKind,
    /// Branch target (used only for path-style hashing).
    pub target: u64,
}

impl BranchInfo {
    /// Convenience constructor for a conditional branch.
    pub fn conditional(pc: u64) -> Self {
        Self { pc, kind: BranchKind::Conditional, target: 0 }
    }
}

/// The four predictor-update scenarios of §4.1.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateScenario {
    /// `[I]` — oracle immediate update at fetch time (upper bound).
    Immediate,
    /// `[A]` — tables re-read at retire and the update recomputed from
    /// fresh values: 3 accesses per branch (read, read, write).
    RereadAtRetire,
    /// `[B]` — tables read only at fetch; the update is computed from the
    /// (possibly stale) values carried with the branch: at most 1 read + 1
    /// write per branch.
    FetchOnly,
    /// `[C]` — like `[B]`, but mispredicted branches re-read the tables at
    /// retire: 2 reads only on mispredictions.
    RereadOnMispredict,
}

impl UpdateScenario {
    /// All four scenarios in paper order `[I] [A] [B] [C]`.
    pub const ALL: [UpdateScenario; 4] = [
        UpdateScenario::Immediate,
        UpdateScenario::RereadAtRetire,
        UpdateScenario::FetchOnly,
        UpdateScenario::RereadOnMispredict,
    ];

    /// Should the retire-time update use freshly re-read table values
    /// (true) or the values captured at prediction time (false)?
    ///
    /// `Immediate` answers true: the pipeline invokes retire with zero
    /// delay, so "fresh" values are exactly the immediate-update values.
    #[inline]
    pub fn reread_at_retire(self, mispredicted: bool) -> bool {
        match self {
            UpdateScenario::Immediate | UpdateScenario::RereadAtRetire => true,
            UpdateScenario::FetchOnly => false,
            UpdateScenario::RereadOnMispredict => mispredicted,
        }
    }

    /// Does the retire-time update cost a *retire read* predictor access?
    /// (`Immediate` is an oracle — it does not model extra accesses.)
    #[inline]
    pub fn counts_retire_read(self, mispredicted: bool) -> bool {
        match self {
            UpdateScenario::Immediate => false,
            UpdateScenario::RereadAtRetire => true,
            UpdateScenario::FetchOnly => false,
            UpdateScenario::RereadOnMispredict => mispredicted,
        }
    }

    /// Short paper label: `I`, `A`, `B` or `C`.
    pub fn label(self) -> &'static str {
        match self {
            UpdateScenario::Immediate => "I",
            UpdateScenario::RereadAtRetire => "A",
            UpdateScenario::FetchOnly => "B",
            UpdateScenario::RereadOnMispredict => "C",
        }
    }
}

impl std::fmt::Display for UpdateScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.label())
    }
}

/// The predictor lifecycle.
///
/// The simulation engine (`pipeline` crate) drives implementations through
/// `predict → fetch_commit → execute → retire`, with `execute` and `retire`
/// delayed by the in-flight window, reproducing the delayed-update behaviour
/// the paper studies. A functional (no-pipeline) simulation simply calls the
/// four methods back-to-back with [`UpdateScenario::Immediate`].
///
/// # Example
///
/// Driving any predictor functionally:
///
/// ```
/// use simkit::{BranchInfo, Predictor, UpdateScenario};
///
/// fn run<P: Predictor>(p: &mut P, stream: &[(u64, bool)]) -> u64 {
///     let mut mispredicts = 0;
///     for &(pc, outcome) in stream {
///         let b = BranchInfo::conditional(pc);
///         let (pred, mut flight) = p.predict(&b);
///         if pred != outcome { mispredicts += 1; }
///         p.fetch_commit(&b, outcome, &mut flight);
///         p.execute(&b, outcome, &mut flight);
///         p.retire(&b, outcome, pred, flight, UpdateScenario::Immediate);
///     }
///     mispredicts
/// }
/// ```
pub trait Predictor {
    /// Per-in-flight-branch state: everything read at prediction time that
    /// a real pipeline would carry with the branch to retire.
    type Flight;

    /// Human-readable name including the configuration (for reports).
    fn name(&self) -> String;

    /// Total predictor storage in bits (tables + side structures), the
    /// budget axis of Figure 9.
    fn storage_bits(&self) -> u64;

    /// Fetch-time prediction of a conditional branch. Reads the tables
    /// (one `predict_read`) and returns the predicted direction plus the
    /// in-flight snapshot.
    fn predict(&mut self, b: &BranchInfo) -> (bool, Self::Flight);

    /// Called immediately after [`Predictor::predict`] with the resolved
    /// outcome: extends the speculative histories (global, path, local,
    /// loop iteration, IUM). Because trace-driven simulation only ever
    /// follows the correct path and the paper repairs histories immediately
    /// on mispredictions (§5.1), updating speculative history with the
    /// actual outcome is exact, not an approximation.
    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, flight: &mut Self::Flight);

    /// The branch has executed: its outcome is now known to the hardware.
    /// Default: no-op. The IUM overrides this.
    fn execute(&mut self, b: &BranchInfo, outcome: bool, flight: &mut Self::Flight) {
        let _ = (b, outcome, flight);
    }

    /// The branch retires: update the predictor tables according to
    /// `scenario`. `predicted` is the direction produced at fetch time
    /// (after any side-predictor overrides), so the implementation can tell
    /// whether this branch was mispredicted.
    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: Self::Flight,
        scenario: UpdateScenario,
    );

    /// A non-conditional control-flow instruction passed the front-end:
    /// predictors may fold it into path history. Default: no-op.
    fn note_uncond(&mut self, b: &BranchInfo) {
        let _ = b;
    }

    /// Access counters accumulated so far.
    fn stats(&self) -> AccessStats;

    /// Clears the access counters (e.g. after warm-up).
    fn reset_stats(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_reread_rules() {
        use UpdateScenario::*;
        for m in [false, true] {
            assert!(Immediate.reread_at_retire(m));
            assert!(RereadAtRetire.reread_at_retire(m));
            assert!(!FetchOnly.reread_at_retire(m));
        }
        assert!(!RereadOnMispredict.reread_at_retire(false));
        assert!(RereadOnMispredict.reread_at_retire(true));
    }

    #[test]
    fn scenario_read_accounting_rules() {
        use UpdateScenario::*;
        for m in [false, true] {
            assert!(!Immediate.counts_retire_read(m));
            assert!(RereadAtRetire.counts_retire_read(m));
            assert!(!FetchOnly.counts_retire_read(m));
        }
        assert!(!RereadOnMispredict.counts_retire_read(false));
        assert!(RereadOnMispredict.counts_retire_read(true));
    }

    #[test]
    fn scenario_labels() {
        let labels: Vec<&str> = UpdateScenario::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["I", "A", "B", "C"]);
        assert_eq!(format!("{}", UpdateScenario::FetchOnly), "[B]");
    }

    #[test]
    fn branch_info_conditional() {
        let b = BranchInfo::conditional(0x40_0000);
        assert!(b.kind.is_conditional());
        assert_eq!(b.pc, 0x40_0000);
    }

    #[test]
    fn branch_kind_classes() {
        assert!(BranchKind::Conditional.is_conditional());
        for k in [BranchKind::DirectJump, BranchKind::IndirectJump, BranchKind::Call, BranchKind::Return] {
            assert!(!k.is_conditional());
        }
    }
}
