//! GEHL-style dynamic threshold adaptation.
//!
//! The O-GEHL predictor trains its adder tree whenever the prediction is
//! wrong *or* the summed magnitude is below an update threshold θ, and
//! adapts θ at run time so that roughly as many updates come from each
//! cause. The paper reuses the same technique for the statistical
//! corrector's *revert* threshold (§5.3: "The dynamic threshold is adjusted
//! at run-time… similar to the technique proposed for dynamically adapting
//! the update threshold of the GEHL predictor").

use crate::counter::SignedCounter;

/// A self-adjusting threshold on the magnitude of an adder-tree sum.
///
/// # Example
///
/// ```
/// use simkit::threshold::AdaptiveThreshold;
///
/// let mut th = AdaptiveThreshold::new(8, 1, 63);
/// // Many mispredictions at low magnitude push the threshold up.
/// for _ in 0..2000 { th.on_event(true, true); }
/// assert!(th.value() > 8);
/// ```
#[derive(Clone, Debug)]
pub struct AdaptiveThreshold {
    threshold: i32,
    tc: SignedCounter,
    min: i32,
    max: i32,
}

impl AdaptiveThreshold {
    /// Creates a threshold starting at `initial`, clamped to `[min, max]`
    /// for all time.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(initial: i32, min: i32, max: i32) -> Self {
        assert!(min <= max, "threshold bounds inverted");
        Self { threshold: initial.clamp(min, max), tc: SignedCounter::new(7), min, max }
    }

    /// Current threshold value.
    #[inline]
    pub fn value(&self) -> i32 {
        self.threshold
    }

    /// Records a training event.
    ///
    /// * `mispredicted` — the adder-tree's final decision was wrong;
    /// * `low_confidence` — |sum| was at or below the current threshold.
    ///
    /// Following O-GEHL: mispredictions push the threshold up (train more),
    /// correct-but-low-confidence events push it down (train less), with a
    /// 7-bit hysteresis counter so θ moves slowly.
    pub fn on_event(&mut self, mispredicted: bool, low_confidence: bool) {
        if mispredicted {
            self.tc.increment();
            if self.tc.get() == self.tc.max() {
                if self.threshold < self.max {
                    self.threshold += 1;
                }
                self.tc.set(0);
            }
        } else if low_confidence {
            self.tc.decrement();
            if self.tc.get() == self.tc.min() {
                if self.threshold > self.min {
                    self.threshold -= 1;
                }
                self.tc.set(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clamped() {
        assert_eq!(AdaptiveThreshold::new(100, 1, 63).value(), 63);
        assert_eq!(AdaptiveThreshold::new(-5, 1, 63).value(), 1);
    }

    #[test]
    fn mispredictions_raise() {
        let mut th = AdaptiveThreshold::new(10, 1, 63);
        for _ in 0..10_000 {
            th.on_event(true, false);
        }
        assert!(th.value() > 10);
        assert!(th.value() <= 63);
    }

    #[test]
    fn low_confidence_correct_lowers() {
        let mut th = AdaptiveThreshold::new(10, 1, 63);
        for _ in 0..10_000 {
            th.on_event(false, true);
        }
        assert!(th.value() < 10);
        assert!(th.value() >= 1);
    }

    #[test]
    fn balanced_events_hold_steady() {
        let mut th = AdaptiveThreshold::new(10, 1, 63);
        for _ in 0..5_000 {
            th.on_event(true, false);
            th.on_event(false, true);
        }
        assert!((8..=12).contains(&th.value()), "threshold drifted to {}", th.value());
    }

    #[test]
    fn neutral_events_do_nothing() {
        let mut th = AdaptiveThreshold::new(10, 1, 63);
        for _ in 0..10_000 {
            th.on_event(false, false);
        }
        assert_eq!(th.value(), 10);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = AdaptiveThreshold::new(5, 10, 1);
    }
}
