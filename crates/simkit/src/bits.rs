//! Tiny bit-manipulation helpers shared by table indexing code.

/// Returns a mask with the low `n` bits set.
///
/// # Panics
///
/// Panics if `n > 64`.
///
/// # Example
///
/// ```
/// assert_eq!(simkit::bits::mask(4), 0xF);
/// assert_eq!(simkit::bits::mask(0), 0);
/// assert_eq!(simkit::bits::mask(64), u64::MAX);
/// ```
#[inline]
pub fn mask(n: u32) -> u64 {
    assert!(n <= 64, "mask width {n} exceeds 64 bits");
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics if `x` is not a power of two.
///
/// # Example
///
/// ```
/// assert_eq!(simkit::bits::log2(4096), 12);
/// ```
#[inline]
pub fn log2(x: u64) -> u32 {
    assert!(x.is_power_of_two(), "{x} is not a power of two");
    x.trailing_zeros()
}

/// Folds a 64-bit value down to `width` bits by repeated XOR of
/// `width`-bit chunks. Used to mix PC bits into small table indices.
///
/// # Example
///
/// ```
/// let f = simkit::bits::fold_xor(0xDEAD_BEEF_1234_5678, 12);
/// assert!(f < (1 << 12));
/// ```
#[inline]
pub fn fold_xor(mut v: u64, width: u32) -> u64 {
    assert!(width > 0 && width <= 64);
    let m = mask(width);
    let mut out = 0u64;
    while v != 0 {
        out ^= v & m;
        v >>= width;
    }
    out
}

/// Number of bits needed to store values `0..n` (ceil log2), minimum 1.
///
/// # Example
///
/// ```
/// assert_eq!(simkit::bits::bits_for(1024), 10);
/// assert_eq!(simkit::bits::bits_for(1000), 10);
/// assert_eq!(simkit::bits::bits_for(1), 1);
/// ```
#[inline]
pub fn bits_for(n: u64) -> u32 {
    if n <= 2 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_widths() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xFF);
        assert_eq!(mask(63), u64::MAX >> 1);
    }

    #[test]
    #[should_panic]
    fn mask_too_wide_panics() {
        let _ = mask(65);
    }

    #[test]
    fn log2_powers() {
        for i in 0..63 {
            assert_eq!(log2(1u64 << i), i);
        }
    }

    #[test]
    #[should_panic]
    fn log2_non_power_panics() {
        let _ = log2(12);
    }

    #[test]
    fn fold_stays_in_range() {
        for w in 1..=16 {
            for v in [0u64, 1, 0xFFFF_FFFF, u64::MAX, 0x0123_4567_89AB_CDEF] {
                assert!(fold_xor(v, w) <= mask(w));
            }
        }
    }

    #[test]
    fn fold_identity_below_width() {
        assert_eq!(fold_xor(0x3A, 8), 0x3A);
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(4096), 12);
    }
}
