//! Saturating counters — the universal state element of branch predictors.
//!
//! Two flavours are provided:
//!
//! * [`SignedCounter`] — an n-bit two's-complement counter in
//!   `[-2^(n-1), 2^(n-1)-1]`; its *sign* provides the prediction
//!   (`>= 0` ⇒ taken). TAGE's 3-bit `ctr`, GEHL's 5-bit weights and the
//!   statistical corrector's 6-bit counters are all `SignedCounter`s.
//! * [`UnsignedCounter`] — an n-bit counter in `[0, 2^n-1]`; the MSB
//!   provides the prediction. Bimodal/gshare 2-bit counters, confidence
//!   and age counters use this flavour.

use std::fmt;

/// An n-bit saturating signed counter, `1 <= n <= 16`.
///
/// The prediction convention follows the paper: the counter predicts *taken*
/// when its value is non-negative (the "sign provides the prediction").
///
/// # Example
///
/// ```
/// use simkit::counter::SignedCounter;
///
/// let mut c = SignedCounter::new(3);
/// assert_eq!(c.get(), 0);
/// for _ in 0..10 { c.increment(); }
/// assert_eq!(c.get(), 3); // saturates at 2^(3-1) - 1
/// for _ in 0..20 { c.decrement(); }
/// assert_eq!(c.get(), -4); // saturates at -2^(3-1)
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignedCounter {
    value: i16,
    bits: u8,
}

impl SignedCounter {
    /// Creates a counter of `bits` width initialized to zero (weakly taken).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn new(bits: u8) -> Self {
        assert!((1..=16).contains(&bits), "signed counter width {bits} out of range");
        Self { value: 0, bits }
    }

    /// Creates a counter initialized to `value`, clamped to the legal range.
    pub fn with_value(bits: u8, value: i16) -> Self {
        let mut c = Self::new(bits);
        c.set(value);
        c
    }

    /// Maximum representable value, `2^(bits-1) - 1`.
    #[inline]
    pub fn max(&self) -> i16 {
        (1i16 << (self.bits - 1)) - 1
    }

    /// Minimum representable value, `-2^(bits-1)`.
    #[inline]
    pub fn min(&self) -> i16 {
        -(1i16 << (self.bits - 1))
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i16 {
        self.value
    }

    /// Sets the value, clamping into range.
    #[inline]
    pub fn set(&mut self, v: i16) {
        self.value = v.clamp(self.min(), self.max());
    }

    /// Width in bits.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Saturating increment.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max() {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > self.min() {
            self.value -= 1;
        }
    }

    /// Moves the counter toward `taken` by one step.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.increment()
        } else {
            self.decrement()
        }
    }

    /// The prediction: taken iff the value is non-negative.
    #[inline]
    pub fn is_taken(&self) -> bool {
        self.value >= 0
    }

    /// True when the counter holds a *weak* prediction (0 or -1), i.e. the
    /// two central values. TAGE uses this to decide whether to trust the
    /// alternate prediction.
    #[inline]
    pub fn is_weak(&self) -> bool {
        self.value == 0 || self.value == -1
    }

    /// The *centered* value `2c + 1` used by GEHL-style adder trees; it is
    /// symmetric around zero and never zero itself.
    #[inline]
    pub fn centered(&self) -> i32 {
        2 * i32::from(self.value) + 1
    }
}

impl fmt::Debug for SignedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignedCounter({}/{}b)", self.value, self.bits)
    }
}

/// An n-bit saturating unsigned counter, `1 <= n <= 16`.
///
/// Predicts *taken* when the value is in the upper half of its range
/// (MSB set), the classic 2-bit bimodal convention.
///
/// # Example
///
/// ```
/// use simkit::counter::UnsignedCounter;
///
/// let mut c = UnsignedCounter::new(2); // 0..=3, starts at 1 (weakly not-taken)
/// assert!(!c.is_taken());
/// c.increment();
/// assert!(c.is_taken());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnsignedCounter {
    value: u16,
    bits: u8,
}

impl UnsignedCounter {
    /// Creates a counter of `bits` width initialized just below the taken
    /// threshold (weakly not-taken), e.g. 1 for a 2-bit counter.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn new(bits: u8) -> Self {
        assert!((1..=16).contains(&bits), "unsigned counter width {bits} out of range");
        let value = if bits == 1 { 0 } else { (1u16 << (bits - 1)) - 1 };
        Self { value, bits }
    }

    /// Creates a counter initialized to `value`, clamped to the legal range.
    pub fn with_value(bits: u8, value: u16) -> Self {
        let mut c = Self::new(bits);
        c.set(value);
        c
    }

    /// Maximum representable value, `2^bits - 1`.
    #[inline]
    pub fn max(&self) -> u16 {
        if self.bits == 16 {
            u16::MAX
        } else {
            (1u16 << self.bits) - 1
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u16 {
        self.value
    }

    /// Sets the value, clamping into range.
    #[inline]
    pub fn set(&mut self, v: u16) {
        self.value = v.min(self.max());
    }

    /// Width in bits.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Saturating increment.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max() {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Moves the counter toward `taken` by one step.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.increment()
        } else {
            self.decrement()
        }
    }

    /// The prediction: taken iff the MSB is set.
    #[inline]
    pub fn is_taken(&self) -> bool {
        self.value >= (1u16 << (self.bits - 1))
    }

    /// True when saturated at either extreme.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == 0 || self.value == self.max()
    }
}

impl fmt::Debug for UnsignedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UnsignedCounter({}/{}b)", self.value, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_saturation_bounds() {
        for bits in 1..=8u8 {
            let mut c = SignedCounter::new(bits);
            for _ in 0..300 {
                c.increment();
            }
            assert_eq!(c.get(), c.max());
            for _ in 0..600 {
                c.decrement();
            }
            assert_eq!(c.get(), c.min());
        }
    }

    #[test]
    fn signed_weak_detection() {
        let mut c = SignedCounter::new(3);
        assert!(c.is_weak());
        c.decrement();
        assert!(c.is_weak());
        c.decrement();
        assert!(!c.is_weak());
        c.set(1);
        assert!(!c.is_weak());
    }

    #[test]
    fn signed_centered_never_zero() {
        let c3 = SignedCounter::new(6);
        for v in c3.min()..=c3.max() {
            let c = SignedCounter::with_value(6, v);
            assert_ne!(c.centered(), 0);
            assert_eq!(c.centered() >= 0, c.is_taken());
        }
    }

    #[test]
    fn signed_set_clamps() {
        let mut c = SignedCounter::new(3);
        c.set(100);
        assert_eq!(c.get(), 3);
        c.set(-100);
        assert_eq!(c.get(), -4);
    }

    #[test]
    fn unsigned_init_weakly_not_taken() {
        let c = UnsignedCounter::new(2);
        assert_eq!(c.get(), 1);
        assert!(!c.is_taken());
        let c3 = UnsignedCounter::new(3);
        assert_eq!(c3.get(), 3);
        assert!(!c3.is_taken());
    }

    #[test]
    fn unsigned_saturation() {
        let mut c = UnsignedCounter::new(2);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.get(), 3);
        assert!(c.is_saturated());
        for _ in 0..10 {
            c.decrement();
        }
        assert_eq!(c.get(), 0);
        assert!(c.is_saturated());
    }

    #[test]
    fn unsigned_taken_threshold() {
        let mut c = UnsignedCounter::with_value(2, 1);
        assert!(!c.is_taken());
        c.increment();
        assert!(c.is_taken());
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn one_bit_counters() {
        let mut s = SignedCounter::new(1);
        assert_eq!((s.min(), s.max()), (-1, 0));
        s.update(true);
        assert!(s.is_taken());
        s.update(false);
        assert!(!s.is_taken());

        let mut u = UnsignedCounter::new(1);
        assert!(!u.is_taken());
        u.update(true);
        assert!(u.is_taken());
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        let _ = SignedCounter::new(0);
    }
}
