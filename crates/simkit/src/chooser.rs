//! The provider/alternate chooser contract.
//!
//! A tagged-geometric provider produces *two* candidate directions per
//! lookup: the prediction of the longest hitting component (the
//! *provider*) and the prediction that would have been used on a provider
//! miss (the *alternate* — the next hitting component, or the base
//! predictor). Which one steers the pipeline is a policy decision: §3.1
//! of the paper uses the `USE_ALT_ON_NA` heuristic (trust the alternate
//! when the provider entry looks newly allocated), but the arbitration
//! point is exactly where chooser ablations plug in.
//!
//! [`Chooser`] is that policy as a trait: a pure decision function over a
//! [`ChooserView`] plus a retire-time learning hook. Implementations live
//! with the predictors (see `tage::chooser`); the trait lives here so the
//! contract is shared infrastructure like [`crate::Predictor`], not a
//! TAGE implementation detail.
//!
//! Two rules keep chooser implementations honest:
//!
//! * `choose` must be a **pure read** — predictor state may only move in
//!   `update` (the simulation engine calls `choose` from both the fetch
//!   path and retire-time re-reads);
//! * `update` receives the *retire-time* view (possibly re-read under
//!   scenarios \[I\]/\[A\]/mispredicted \[C\]), mirroring how the paper's
//!   `USE_ALT_ON_NA` counter learns from retire-time values.

/// Everything a chooser may consult: the provider/alternate reads of one
/// lookup, pre-digested so policies stay table-layout agnostic.
#[derive(Clone, Copy, Debug)]
pub struct ChooserView {
    /// The branch's instruction address — the index for per-PC policies
    /// (ISL-TAGE keeps several `USE_ALT_ON_NA` counters selected by PC).
    pub pc: u64,
    /// Whether a tagged component hit (false: the base predictor provides,
    /// and `provider_pred == alt_pred`).
    pub has_provider: bool,
    /// The providing component's prediction.
    pub provider_pred: bool,
    /// The alternate prediction.
    pub alt_pred: bool,
    /// Whether the providing counter is weak (±0 on the centered scale) —
    /// the paper's "newly allocated" signal.
    pub provider_weak: bool,
    /// |centered counter| of the providing component (odd, ≥ 1).
    pub provider_strength: i32,
    /// |centered counter| of the alternate's source (odd, ≥ 1).
    pub alt_strength: i32,
}

/// A provider/alternate arbitration policy.
pub trait Chooser: Send {
    /// The spec-grammar token (also the budget-row / report name).
    fn token(&self) -> &'static str;

    /// Chooser-owned *table* storage in bits. Small control state (the
    /// paper's single 4-bit `USE_ALT_ON_NA` counter, like the allocation
    /// tick counter) is excluded — §3.4's 65,408-byte figure counts
    /// tables only.
    fn storage_bits(&self) -> u64 {
        0
    }

    /// The arbitrated direction for this lookup. Must not mutate state.
    fn choose(&self, view: &ChooserView) -> bool;

    /// Retire-time learning from the resolved `outcome`. Default: no-op
    /// (stateless policies).
    fn update(&mut self, view: &ChooserView, outcome: bool) {
        let _ = (view, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy majority chooser exercising the trait surface.
    struct Toy(i8);

    impl Chooser for Toy {
        fn token(&self) -> &'static str {
            "toy"
        }

        fn choose(&self, view: &ChooserView) -> bool {
            if self.0 >= 0 {
                view.provider_pred
            } else {
                view.alt_pred
            }
        }

        fn update(&mut self, view: &ChooserView, outcome: bool) {
            let delta = if (view.provider_pred == outcome) == (self.0 >= 0) { 1 } else { -1 };
            self.0 = (self.0 + delta).clamp(-2, 1);
        }
    }

    #[test]
    fn trait_defaults_are_storage_free_and_inert() {
        let mut t = Toy(0);
        let view = ChooserView {
            pc: 0x40,
            has_provider: true,
            provider_pred: true,
            alt_pred: false,
            provider_weak: false,
            provider_strength: 7,
            alt_strength: 1,
        };
        assert_eq!(t.storage_bits(), 0);
        assert!(t.choose(&view));
        t.update(&view, false);
        t.update(&view, false);
        t.update(&view, false);
        assert!(!t.choose(&view), "toy chooser must learn to flip");
    }
}
