//! The object-safe predictor trait: one vtable for every predictor.
//!
//! [`Predictor`] carries an associated `Flight` type — the statically
//! typed snapshot a pipeline propagates with each in-flight branch. That
//! is the right shape for monomorphized hot loops, but it is not object
//! safe: a harness that composes predictor *stacks at runtime* (from a
//! parsed `SystemSpec`, a registry, a CLI argument) needs one common type
//! it can box, store in tables, and hand to a single generic simulation
//! path.
//!
//! [`BranchPredictor`] is that trait. It mirrors the [`Predictor`]
//! lifecycle method for method, with the flight erased to a
//! [`BoxedFlight`]. Every [`Predictor`] is a [`BranchPredictor`] through
//! the blanket impl below, and a `Box<dyn BranchPredictor>` is itself a
//! [`Predictor`] (with `Flight = BoxedFlight`), so
//! `pipeline::simulate_source` drives dynamically composed stacks through
//! exactly the same engine as static ones — bit-identically, since the
//! erasure only moves the flight behind one allocation.
//!
//! # Example
//!
//! ```
//! use simkit::{BranchInfo, BranchPredictor, UpdateScenario};
//!
//! fn run(p: &mut dyn BranchPredictor, stream: &[(u64, bool)]) -> u64 {
//!     let mut mispredicts = 0;
//!     for &(pc, outcome) in stream {
//!         let b = BranchInfo::conditional(pc);
//!         let (pred, mut flight) = p.predict(&b);
//!         if pred != outcome { mispredicts += 1; }
//!         p.fetch_commit(&b, outcome, &mut flight);
//!         p.execute(&b, outcome, &mut flight);
//!         p.retire(&b, outcome, pred, flight, UpdateScenario::Immediate);
//!     }
//!     mispredicts
//! }
//! ```

use crate::predictor::{BranchInfo, Predictor, UpdateScenario};
use crate::stats::AccessStats;

/// A type-erased in-flight snapshot. The concrete type is the wrapped
/// predictor's [`Predictor::Flight`]; only that predictor ever downcasts
/// it back.
pub type BoxedFlight = Box<dyn std::any::Any + Send>;

/// Object-safe twin of [`Predictor`]: the same
/// `predict → fetch_commit → execute → retire` lifecycle, the same
/// speculative-state rules, the same `storage_bits()` accounting — with
/// the flight behind a [`BoxedFlight`] so heterogeneous predictors share
/// one `dyn` type.
///
/// Do not implement this trait directly: implement [`Predictor`] and let
/// the blanket impl lift it. Direct implementations would bypass the
/// downcast discipline the blanket impl guarantees.
pub trait BranchPredictor: Send {
    /// Human-readable name including the configuration (for reports).
    fn name(&self) -> String;

    /// Total predictor storage in bits (tables + side structures).
    fn storage_bits(&self) -> u64;

    /// Fetch-time prediction; see [`Predictor::predict`].
    fn predict(&mut self, b: &BranchInfo) -> (bool, BoxedFlight);

    /// Speculative-history extension; see [`Predictor::fetch_commit`].
    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, flight: &mut BoxedFlight);

    /// Outcome known to the hardware; see [`Predictor::execute`].
    fn execute(&mut self, b: &BranchInfo, outcome: bool, flight: &mut BoxedFlight);

    /// Retire-time table update; see [`Predictor::retire`].
    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: BoxedFlight,
        scenario: UpdateScenario,
    );

    /// Non-conditional control flow; see [`Predictor::note_uncond`].
    fn note_uncond(&mut self, b: &BranchInfo);

    /// Access counters accumulated so far.
    fn stats(&self) -> AccessStats;

    /// Clears the access counters (e.g. after warm-up).
    fn reset_stats(&mut self);
}

/// The flight a foreign caller slipped in was not produced by this
/// predictor's own `predict` — a contract violation, never a data error.
#[track_caller]
fn downcast<F: 'static>(flight: BoxedFlight) -> Box<F> {
    flight.downcast::<F>().expect("BoxedFlight fed back to a different predictor")
}

impl<P> BranchPredictor for P
where
    P: Predictor + Send,
    P::Flight: Send + 'static,
{
    fn name(&self) -> String {
        Predictor::name(self)
    }

    fn storage_bits(&self) -> u64 {
        Predictor::storage_bits(self)
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, BoxedFlight) {
        let (pred, flight) = Predictor::predict(self, b);
        (pred, Box::new(flight))
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, flight: &mut BoxedFlight) {
        let f = flight.downcast_mut::<P::Flight>().expect("flight from a different predictor");
        Predictor::fetch_commit(self, b, outcome, f);
    }

    fn execute(&mut self, b: &BranchInfo, outcome: bool, flight: &mut BoxedFlight) {
        let f = flight.downcast_mut::<P::Flight>().expect("flight from a different predictor");
        Predictor::execute(self, b, outcome, f);
    }

    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: BoxedFlight,
        scenario: UpdateScenario,
    ) {
        Predictor::retire(self, b, outcome, predicted, *downcast::<P::Flight>(flight), scenario);
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        Predictor::note_uncond(self, b);
    }

    fn stats(&self) -> AccessStats {
        Predictor::stats(self)
    }

    fn reset_stats(&mut self) {
        Predictor::reset_stats(self);
    }
}

/// A boxed dynamic predictor is itself a [`Predictor`], so every generic
/// simulation path (`pipeline::simulate_source`, the suite scheduler)
/// accepts runtime-composed stacks unchanged.
impl Predictor for Box<dyn BranchPredictor> {
    type Flight = BoxedFlight;

    fn name(&self) -> String {
        (**self).name()
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, BoxedFlight) {
        (**self).predict(b)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, flight: &mut BoxedFlight) {
        (**self).fetch_commit(b, outcome, flight);
    }

    fn execute(&mut self, b: &BranchInfo, outcome: bool, flight: &mut BoxedFlight) {
        (**self).execute(b, outcome, flight);
    }

    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: BoxedFlight,
        scenario: UpdateScenario,
    ) {
        (**self).retire(b, outcome, predicted, flight, scenario);
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        (**self).note_uncond(b);
    }

    fn stats(&self) -> AccessStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-bit-counter toy predictor exercising every lifecycle hook.
    struct Toy {
        ctr: i8,
        stats: AccessStats,
    }

    impl Predictor for Toy {
        type Flight = i8;

        fn name(&self) -> String {
            "toy".into()
        }

        fn storage_bits(&self) -> u64 {
            2
        }

        fn predict(&mut self, _b: &BranchInfo) -> (bool, i8) {
            self.stats.predict_reads += 1;
            (self.ctr >= 0, self.ctr)
        }

        fn fetch_commit(&mut self, _b: &BranchInfo, _outcome: bool, _flight: &mut i8) {}

        fn retire(
            &mut self,
            _b: &BranchInfo,
            outcome: bool,
            _predicted: bool,
            flight: i8,
            _scenario: UpdateScenario,
        ) {
            // Update from the carried (possibly stale) flight value.
            self.ctr = (flight + if outcome { 1 } else { -1 }).clamp(-2, 1);
        }

        fn stats(&self) -> AccessStats {
            self.stats
        }

        fn reset_stats(&mut self) {
            self.stats = AccessStats::default();
        }
    }

    fn drive<P: Predictor>(p: &mut P, stream: &[(u64, bool)]) -> u64 {
        let mut wrong = 0;
        for &(pc, outcome) in stream {
            let b = BranchInfo::conditional(pc);
            let (pred, mut f) = p.predict(&b);
            if pred != outcome {
                wrong += 1;
            }
            p.fetch_commit(&b, outcome, &mut f);
            p.execute(&b, outcome, &mut f);
            p.retire(&b, outcome, pred, f, UpdateScenario::FetchOnly);
        }
        wrong
    }

    #[test]
    fn boxed_dyn_matches_static_bit_for_bit() {
        let stream: Vec<(u64, bool)> =
            (0..500u64).map(|i| (0x40 + (i % 3) * 4, i % 7 < 4)).collect();
        let mut direct = Toy { ctr: 0, stats: AccessStats::default() };
        let mut boxed: Box<dyn BranchPredictor> =
            Box::new(Toy { ctr: 0, stats: AccessStats::default() });
        assert_eq!(drive(&mut direct, &stream), drive(&mut boxed, &stream));
        assert_eq!(Predictor::stats(&direct), Predictor::stats(&boxed));
        assert_eq!(Predictor::name(&boxed), "toy");
        assert_eq!(Predictor::storage_bits(&boxed), 2);
    }

    #[test]
    #[should_panic(expected = "different predictor")]
    fn foreign_flight_is_rejected() {
        let mut boxed: Box<dyn BranchPredictor> =
            Box::new(Toy { ctr: 0, stats: AccessStats::default() });
        let b = BranchInfo::conditional(0x40);
        let mut wrong: BoxedFlight = Box::new("not a toy flight");
        BranchPredictor::fetch_commit(&mut *boxed, &b, true, &mut wrong);
    }
}
