//! The object-safe predictor trait: one vtable for every predictor.
//!
//! [`Predictor`] carries an associated `Flight` type — the statically
//! typed snapshot a pipeline propagates with each in-flight branch. That
//! is the right shape for monomorphized hot loops, but it is not object
//! safe: a harness that composes predictor *stacks at runtime* (from a
//! parsed `SystemSpec`, a registry, a CLI argument) needs one common type
//! it can box, store in tables, and hand to a single generic simulation
//! path.
//!
//! [`BranchPredictor`] is that trait. It mirrors the [`Predictor`]
//! lifecycle method for method, with the flight written into a caller
//! owned [`FlightSlot`] instead of returned by value. A slot is a
//! type-erased, **reusable** flight container: the first `predict_into`
//! allocates its backing box, every later reuse of the same slot
//! overwrites the value in place. [`DynPredictor`] pairs a boxed
//! predictor with a small slot pool, so steady-state dynamic simulation
//! performs *zero* per-branch flight allocations — the pool warms up to
//! the pipeline's in-flight depth and recycles from there.
//!
//! Every [`Predictor`] is a [`BranchPredictor`] through the blanket impl
//! below. A bare `Box<dyn BranchPredictor>` still implements
//! [`Predictor`] (with `Flight = FlightSlot`) for compatibility, but that
//! route allocates one slot per predicted branch — the throughput bench
//! (`isl_tage_boxed_dyn` vs `isl_tage_dyn_pooled`) records the gap.
//! Dynamic callers (trace mode, registries) should wrap in
//! [`DynPredictor`]. Both routes are bit-identical to the monomorphized
//! path: the erasure only moves the flight behind type-erased storage.
//!
//! # Example
//!
//! ```
//! use simkit::{BranchInfo, BranchPredictor, DynPredictor, Predictor, UpdateScenario};
//!
//! fn run<P: Predictor>(p: &mut P, stream: &[(u64, bool)]) -> u64 {
//!     let mut mispredicts = 0;
//!     for &(pc, outcome) in stream {
//!         let b = BranchInfo::conditional(pc);
//!         let (pred, mut flight) = p.predict(&b);
//!         if pred != outcome { mispredicts += 1; }
//!         p.fetch_commit(&b, outcome, &mut flight);
//!         p.execute(&b, outcome, &mut flight);
//!         p.retire(&b, outcome, pred, flight, UpdateScenario::Immediate);
//!     }
//!     mispredicts
//! }
//!
//! /// A runtime-composed stack drives through the same generic loop,
//! /// with flights recycled instead of re-boxed per branch.
//! fn run_dynamic(boxed: Box<dyn BranchPredictor>, stream: &[(u64, bool)]) -> u64 {
//!     run(&mut DynPredictor::new(boxed), stream)
//! }
//! ```

use crate::predictor::{BranchInfo, Predictor, UpdateScenario};
use crate::stats::AccessStats;
use std::any::Any;

/// A reusable, type-erased in-flight snapshot container.
///
/// Internally the slot holds a `Box<Option<F>>` for whatever concrete
/// flight type `F` last passed through it. Storing a new flight of the
/// same type overwrites the `Option` in place (no allocation); `take`
/// moves the value out but keeps the box alive for the next reuse. Only
/// the predictor that produced a flight ever downcasts it back.
#[derive(Debug, Default)]
pub struct FlightSlot {
    cell: Option<Box<dyn Any + Send>>,
}

impl FlightSlot {
    /// A slot with no backing storage yet (first use allocates).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Stores `flight`, reusing the existing allocation when the slot
    /// already carries storage for this type. Returns `true` when the
    /// allocation was reused, `false` when a fresh box was needed.
    pub fn put<F: Send + 'static>(&mut self, flight: F) -> bool {
        if let Some(cell) = &mut self.cell {
            if let Some(opt) = cell.downcast_mut::<Option<F>>() {
                *opt = Some(flight);
                return true;
            }
        }
        self.cell = Some(Box::new(Some(flight)));
        false
    }

    /// Mutable access to the stored flight.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or holds a different flight type — a
    /// foreign slot fed back to the wrong predictor is a contract
    /// violation, never a data error.
    #[track_caller]
    pub fn get_mut<F: 'static>(&mut self) -> &mut F {
        self.cell
            .as_mut()
            .and_then(|c| c.downcast_mut::<Option<F>>())
            .and_then(Option::as_mut)
            // INVARIANT: the lifecycle contract — a flight returns to the
            // predictor that issued it; a mixed-up slot is a harness bug
            // that must fail loudly, not mispredict quietly.
            .expect("FlightSlot fed back to a different predictor")
    }

    /// Moves the stored flight out, leaving the allocation in place for
    /// reuse by the next [`FlightSlot::put`] of the same type.
    ///
    /// # Panics
    ///
    /// Same conditions as [`FlightSlot::get_mut`].
    #[track_caller]
    pub fn take<F: 'static>(&mut self) -> F {
        self.cell
            .as_mut()
            .and_then(|c| c.downcast_mut::<Option<F>>())
            .and_then(Option::take)
            // INVARIANT: the lifecycle contract — a flight returns to the
            // predictor that issued it; a mixed-up slot is a harness bug
            // that must fail loudly, not mispredict quietly.
            .expect("FlightSlot fed back to a different predictor")
    }
}

/// Object-safe twin of [`Predictor`]: the same
/// `predict → fetch_commit → execute → retire` lifecycle, the same
/// speculative-state rules, the same `storage_bits()` accounting — with
/// the flight living in a caller-owned [`FlightSlot`] so heterogeneous
/// predictors share one `dyn` type without a per-branch allocation.
///
/// Do not implement this trait directly: implement [`Predictor`] and let
/// the blanket impl lift it. Direct implementations would bypass the
/// downcast discipline the blanket impl guarantees.
pub trait BranchPredictor: Send {
    /// Human-readable name including the configuration (for reports).
    fn name(&self) -> String;

    /// Total predictor storage in bits (tables + side structures).
    fn storage_bits(&self) -> u64;

    /// Fetch-time prediction; the flight is written into `slot`
    /// (reusing its allocation when possible). See [`Predictor::predict`].
    fn predict_into(&mut self, b: &BranchInfo, slot: &mut FlightSlot) -> bool;

    /// Speculative-history extension; see [`Predictor::fetch_commit`].
    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, slot: &mut FlightSlot);

    /// Outcome known to the hardware; see [`Predictor::execute`].
    fn execute(&mut self, b: &BranchInfo, outcome: bool, slot: &mut FlightSlot);

    /// Retire-time table update. Consumes the flight *value* out of
    /// `slot`; the slot's allocation survives for recycling. See
    /// [`Predictor::retire`].
    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        slot: &mut FlightSlot,
        scenario: UpdateScenario,
    );

    /// Non-conditional control flow; see [`Predictor::note_uncond`].
    fn note_uncond(&mut self, b: &BranchInfo);

    /// Access counters accumulated so far.
    fn stats(&self) -> AccessStats;

    /// Clears the access counters (e.g. after warm-up).
    fn reset_stats(&mut self);
}

impl<P> BranchPredictor for P
where
    P: Predictor + Send,
    P::Flight: Send + 'static,
{
    fn name(&self) -> String {
        Predictor::name(self)
    }

    fn storage_bits(&self) -> u64 {
        Predictor::storage_bits(self)
    }

    fn predict_into(&mut self, b: &BranchInfo, slot: &mut FlightSlot) -> bool {
        let (pred, flight) = Predictor::predict(self, b);
        slot.put(flight);
        pred
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, slot: &mut FlightSlot) {
        Predictor::fetch_commit(self, b, outcome, slot.get_mut::<P::Flight>());
    }

    fn execute(&mut self, b: &BranchInfo, outcome: bool, slot: &mut FlightSlot) {
        Predictor::execute(self, b, outcome, slot.get_mut::<P::Flight>());
    }

    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        slot: &mut FlightSlot,
        scenario: UpdateScenario,
    ) {
        Predictor::retire(self, b, outcome, predicted, slot.take::<P::Flight>(), scenario);
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        Predictor::note_uncond(self, b);
    }

    fn stats(&self) -> AccessStats {
        Predictor::stats(self)
    }

    fn reset_stats(&mut self) {
        Predictor::reset_stats(self);
    }
}

/// Upper bound on pooled slots: comfortably above any pipeline's
/// in-flight depth, small enough that a pool is never a memory concern.
const POOL_CAP: usize = 512;

/// A boxed dynamic predictor with a recycling flight pool: the arena
/// route for runtime-composed stacks.
///
/// `predict` pops a warm [`FlightSlot`] from the pool (or creates an
/// empty one); `retire` consumes the flight value and returns the slot —
/// allocation intact — to the pool. After warm-up (one slot per
/// simultaneously in-flight branch) the dynamic path performs no
/// per-branch allocation; [`DynPredictor::flight_allocations`] counts the
/// fresh boxes actually created, which the tests pin to the in-flight
/// depth rather than the branch count.
pub struct DynPredictor {
    inner: Box<dyn BranchPredictor>,
    pool: Vec<FlightSlot>,
    flight_allocations: u64,
}

impl DynPredictor {
    /// Wraps a boxed predictor with an empty (lazily warmed) slot pool.
    pub fn new(inner: Box<dyn BranchPredictor>) -> Self {
        Self { inner, pool: Vec::new(), flight_allocations: 0 }
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &dyn BranchPredictor {
        &*self.inner
    }

    /// Fresh flight boxes allocated so far (steady state: bounded by the
    /// in-flight depth, not the branch count).
    pub fn flight_allocations(&self) -> u64 {
        self.flight_allocations
    }
}

impl From<Box<dyn BranchPredictor>> for DynPredictor {
    fn from(inner: Box<dyn BranchPredictor>) -> Self {
        Self::new(inner)
    }
}

impl Predictor for DynPredictor {
    type Flight = FlightSlot;

    fn name(&self) -> String {
        (*self.inner).name()
    }

    fn storage_bits(&self) -> u64 {
        (*self.inner).storage_bits()
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, FlightSlot) {
        let mut slot = self.pool.pop().unwrap_or_default();
        let had_storage = slot.cell.is_some();
        let pred = (*self.inner).predict_into(b, &mut slot);
        if !had_storage {
            self.flight_allocations += 1;
        }
        (pred, slot)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, flight: &mut FlightSlot) {
        (*self.inner).fetch_commit(b, outcome, flight);
    }

    fn execute(&mut self, b: &BranchInfo, outcome: bool, flight: &mut FlightSlot) {
        (*self.inner).execute(b, outcome, flight);
    }

    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        mut flight: FlightSlot,
        scenario: UpdateScenario,
    ) {
        (*self.inner).retire(b, outcome, predicted, &mut flight, scenario);
        if self.pool.len() < POOL_CAP {
            self.pool.push(flight);
        }
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        (*self.inner).note_uncond(b);
    }

    fn stats(&self) -> AccessStats {
        (*self.inner).stats()
    }

    fn reset_stats(&mut self) {
        (*self.inner).reset_stats();
    }
}

/// A bare boxed predictor is itself a [`Predictor`] — the compatibility
/// route. Each `predict` starts from an empty slot, so this path pays
/// one flight allocation per predicted branch; wrap in [`DynPredictor`]
/// to recycle instead.
impl Predictor for Box<dyn BranchPredictor> {
    type Flight = FlightSlot;

    fn name(&self) -> String {
        (**self).name()
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, FlightSlot) {
        let mut slot = FlightSlot::empty();
        let pred = (**self).predict_into(b, &mut slot);
        (pred, slot)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, flight: &mut FlightSlot) {
        (**self).fetch_commit(b, outcome, flight);
    }

    fn execute(&mut self, b: &BranchInfo, outcome: bool, flight: &mut FlightSlot) {
        (**self).execute(b, outcome, flight);
    }

    fn retire(
        &mut self,
        b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        mut flight: FlightSlot,
        scenario: UpdateScenario,
    ) {
        (**self).retire(b, outcome, predicted, &mut flight, scenario);
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        (**self).note_uncond(b);
    }

    fn stats(&self) -> AccessStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-bit-counter toy predictor exercising every lifecycle hook.
    struct Toy {
        ctr: i8,
        stats: AccessStats,
    }

    impl Toy {
        fn new() -> Self {
            Toy { ctr: 0, stats: AccessStats::default() }
        }
    }

    impl Predictor for Toy {
        type Flight = i8;

        fn name(&self) -> String {
            "toy".into()
        }

        fn storage_bits(&self) -> u64 {
            2
        }

        fn predict(&mut self, _b: &BranchInfo) -> (bool, i8) {
            self.stats.predict_reads += 1;
            (self.ctr >= 0, self.ctr)
        }

        fn fetch_commit(&mut self, _b: &BranchInfo, _outcome: bool, _flight: &mut i8) {}

        fn retire(
            &mut self,
            _b: &BranchInfo,
            outcome: bool,
            _predicted: bool,
            flight: i8,
            _scenario: UpdateScenario,
        ) {
            // Update from the carried (possibly stale) flight value.
            self.ctr = (flight + if outcome { 1 } else { -1 }).clamp(-2, 1);
        }

        fn stats(&self) -> AccessStats {
            self.stats
        }

        fn reset_stats(&mut self) {
            self.stats = AccessStats::default();
        }
    }

    fn drive<P: Predictor>(p: &mut P, stream: &[(u64, bool)]) -> u64 {
        let mut wrong = 0;
        for &(pc, outcome) in stream {
            let b = BranchInfo::conditional(pc);
            let (pred, mut f) = p.predict(&b);
            if pred != outcome {
                wrong += 1;
            }
            p.fetch_commit(&b, outcome, &mut f);
            p.execute(&b, outcome, &mut f);
            p.retire(&b, outcome, pred, f, UpdateScenario::FetchOnly);
        }
        wrong
    }

    fn stream() -> Vec<(u64, bool)> {
        (0..500u64).map(|i| (0x40 + (i % 3) * 4, i % 7 < 4)).collect()
    }

    #[test]
    fn boxed_dyn_matches_static_bit_for_bit() {
        let stream = stream();
        let mut direct = Toy::new();
        let mut boxed: Box<dyn BranchPredictor> = Box::new(Toy::new());
        assert_eq!(drive(&mut direct, &stream), drive(&mut boxed, &stream));
        assert_eq!(Predictor::stats(&direct), Predictor::stats(&boxed));
        assert_eq!(Predictor::name(&boxed), "toy");
        assert_eq!(Predictor::storage_bits(&boxed), 2);
    }

    #[test]
    fn pooled_dyn_matches_static_and_recycles_flights() {
        let stream = stream();
        let mut direct = Toy::new();
        let mut pooled = DynPredictor::new(Box::new(Toy::new()));
        assert_eq!(drive(&mut direct, &stream), drive(&mut pooled, &stream));
        assert_eq!(Predictor::stats(&direct), Predictor::stats(&pooled));
        // Back-to-back lifecycle: exactly one in-flight slot ever needed.
        assert_eq!(
            pooled.flight_allocations(),
            1,
            "steady-state dynamic prediction must not allocate per branch"
        );
        assert_eq!(Predictor::name(&pooled), "toy");
    }

    #[test]
    fn pool_bounds_allocations_by_inflight_depth() {
        // A 16-deep in-flight window: flights are held across 16 further
        // predictions before retiring. Allocations must track the window
        // depth, not the branch count.
        let mut pooled = DynPredictor::new(Box::new(Toy::new()));
        let mut window: std::collections::VecDeque<(BranchInfo, bool, bool, FlightSlot)> =
            Default::default();
        for i in 0..2000u64 {
            let b = BranchInfo::conditional(0x40 + (i % 5) * 4);
            let outcome = i % 3 == 0;
            let (pred, mut f) = pooled.predict(&b);
            Predictor::fetch_commit(&mut pooled, &b, outcome, &mut f);
            window.push_back((b, outcome, pred, f));
            if window.len() > 16 {
                let (b, outcome, pred, f) = window.pop_front().unwrap();
                Predictor::retire(&mut pooled, &b, outcome, pred, f, UpdateScenario::FetchOnly);
            }
        }
        assert!(
            pooled.flight_allocations() <= 17,
            "allocations {} exceed the in-flight depth",
            pooled.flight_allocations()
        );
    }

    #[test]
    fn flight_slot_reuses_storage_across_types_correctly() {
        let mut slot = FlightSlot::empty();
        assert!(!slot.put(41i8), "first put must allocate");
        assert!(slot.put(42i8), "same-type put must reuse");
        assert_eq!(slot.take::<i8>(), 42);
        assert!(slot.put(43i8), "take keeps the allocation alive");
        // A different flight type reallocates rather than corrupting.
        assert!(!slot.put(7u32));
        assert_eq!(*slot.get_mut::<u32>(), 7);
    }

    #[test]
    #[should_panic(expected = "different predictor")]
    fn foreign_flight_is_rejected() {
        let mut boxed: Box<dyn BranchPredictor> = Box::new(Toy::new());
        let b = BranchInfo::conditional(0x40);
        let mut wrong = FlightSlot::empty();
        wrong.put("not a toy flight");
        BranchPredictor::fetch_commit(&mut *boxed, &b, true, &mut wrong);
    }
}
