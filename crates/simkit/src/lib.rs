//! Shared simulation substrate for the TAGE reproduction.
//!
//! This crate hosts the small, heavily reused building blocks that both the
//! predictors (`tage`, `baselines`) and the simulation engine (`pipeline`)
//! depend on:
//!
//! * [`counter`] — saturating signed/unsigned counters, the universal branch
//!   prediction state element;
//! * [`history`] — global/path/local branch history registers and the
//!   *folded* history used to index TAGE's geometric-length tables in O(1);
//! * [`rng`] — deterministic, portable pseudo-random number generators
//!   (SplitMix64, Xoshiro256**) so every experiment is bit-reproducible;
//! * [`predictor`] — the predictor lifecycle trait shared by every predictor:
//!   `predict` → `fetch_commit` → `execute` → `retire`, with an associated
//!   `Flight` snapshot type that models the information a real pipeline
//!   propagates alongside each in-flight branch;
//! * [`dynamic`] — the object-safe [`BranchPredictor`] twin of that trait
//!   plus the recycling [`FlightSlot`]/[`DynPredictor`] arena, so
//!   runtime-composed predictor stacks (`SystemSpec`-built chains,
//!   registries, CLI-selected predictors) share one boxable type without
//!   per-branch flight allocation;
//! * [`chooser`] — the provider/alternate arbitration contract
//!   ([`Chooser`]) tagged-geometric providers plug their chooser policies
//!   into;
//! * [`stats`] — predictor-table access accounting (reads, effective writes,
//!   silent writes avoided) in the units used by §4 of the paper;
//! * [`bits`] — tiny bit-manipulation helpers.
//!
//! # Example
//!
//! ```
//! use simkit::counter::SignedCounter;
//!
//! let mut c = SignedCounter::new(3); // 3-bit: range [-4, 3]
//! assert!(c.is_taken()); // starts at 0 = weakly taken
//! c.decrement();
//! assert!(!c.is_taken());
//! ```

#![forbid(unsafe_code)]

pub mod bits;
pub mod chooser;
pub mod counter;
pub mod dynamic;
pub mod history;
pub mod predictor;
pub mod rng;
pub mod threshold;
pub mod stats;

pub use chooser::{Chooser, ChooserView};
pub use counter::{SignedCounter, UnsignedCounter};
pub use dynamic::{BranchPredictor, DynPredictor, FlightSlot};
pub use history::{FoldedHistory, GlobalHistory, LocalHistories, PathHistory};
pub use predictor::{BranchInfo, BranchKind, Predictor, UpdateScenario};
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::AccessStats;
pub use threshold::AdaptiveThreshold;
