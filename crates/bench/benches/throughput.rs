//! Prediction throughput of every predictor in the workspace: how many
//! simulated branches per second the functional models sustain.

use bench::{bench_trace, run_once, run_streamed};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simkit::UpdateScenario;
use std::hint::black_box;

fn throughput(c: &mut Criterion) {
    let trace = bench_trace("CLIENT08");
    let branches = trace.conditional_count();
    let mut g = c.benchmark_group("predict_throughput");
    g.throughput(Throughput::Elements(branches));
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));

    g.bench_function("bimodal", |b| {
        b.iter(|| {
            let mut p = baselines::Bimodal::new(1 << 15, 2);
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("gshare_512k", |b| {
        b.iter(|| {
            let mut p = baselines::Gshare::cbp_512k();
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("gehl_520k", |b| {
        b.iter(|| {
            let mut p = baselines::Gehl::cbp_520k();
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("perceptron", |b| {
        b.iter(|| {
            let mut p = baselines::Perceptron::new(512, 32);
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("snap_512k", |b| {
        b.iter(|| {
            let mut p = baselines::Snap::cbp_512k();
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("ftl_512k", |b| {
        b.iter(|| {
            let mut p = baselines::Ftl::cbp_512k();
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("tage_ref", |b| {
        b.iter(|| {
            let mut p = tage::Tage::reference_64kb();
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("isl_tage", |b| {
        b.iter(|| {
            let mut p = tage::TageSystem::isl_tage();
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("isl_tage_boxed_dyn", |b| {
        // The same stack behind a bare `Box<dyn BranchPredictor>`: vtable
        // dispatch plus one flight allocation per predicted branch — the
        // "before" of the flight-arena change, kept as the baseline.
        b.iter(|| {
            let mut p: Box<dyn simkit::BranchPredictor> = Box::new(tage::TageSystem::isl_tage());
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("isl_tage_dyn_pooled", |b| {
        // The `DynPredictor` flight pool (the route trace mode uses):
        // same vtable dispatch, flights recycled through reusable slots —
        // the "after". The gap to `isl_tage_boxed_dyn` is the per-branch
        // allocation cost; the gap to `isl_tage` is pure dyn dispatch.
        b.iter(|| {
            let mut p = simkit::DynPredictor::new(Box::new(tage::TageSystem::isl_tage()));
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("isl_tage_from_spec", |b| {
        // Spec-assembled chain, monomorphized (the sweep route): measures
        // the stage-chain walk against the preset constructor path.
        let spec: tage::SystemSpec = "tage+ium+sc+loop/as=ISL-TAGE".parse().unwrap();
        b.iter(|| {
            let mut p = spec.build().unwrap();
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("tage_lsc", |b| {
        b.iter(|| {
            let mut p = tage::TageSystem::tage_lsc();
            black_box(run_once(&mut p, &trace, UpdateScenario::RereadAtRetire))
        })
    });
    g.bench_function("tage_ref_streamed", |b| {
        // Generation fused into simulation: no materialized event vector.
        b.iter(|| {
            let mut p = tage::Tage::reference_64kb();
            black_box(run_streamed(&mut p, "CLIENT08", UpdateScenario::RereadAtRetire))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("components");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.bench_function("trace_generation_tiny", |b| {
        b.iter(|| black_box(bench_trace("SERVER04")))
    });
    g.bench_function("folded_history_update", |b| {
        let mut gh = simkit::GlobalHistory::new();
        let mut fh = simkit::FoldedHistory::new(2000, 12);
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            gh.push(bit);
            fh.update(&gh);
            black_box(fh.value())
        })
    });
    g.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
