//! Batched vs scalar hot-loop throughput on dynamically dispatched
//! stacks: the measurement behind the block-engine driver.
//!
//! The scalar rows drive `pipeline::simulate_source` through the two
//! object-safe routes registry callers use (`Box<dyn BranchPredictor>`
//! and the pooled `DynPredictor`): one virtual predictor call per event.
//! The engine rows drive the same ISL-TAGE stack through a
//! `pipeline::WindowEngine` behind `dyn BlockSim`: one virtual
//! `run_block` per batch with a monomorphized window loop inside. Every
//! row simulates identical bits (the engine tests pin this); only the
//! dispatch amortization differs.

use bench::bench_trace;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pipeline::{simulate_engine, simulate_source, PipelineConfig, WindowEngine, DEFAULT_BATCH};
use simkit::UpdateScenario;
use std::hint::black_box;
use workloads::event::{prefetch_event, TraceStream, EVENT_PREFETCH_AHEAD};

fn batch(c: &mut Criterion) {
    let trace = bench_trace("CLIENT08");
    let branches = trace.conditional_count();
    let cfg = PipelineConfig::default();
    let scenario = UpdateScenario::RereadAtRetire;
    let mut g = c.benchmark_group("batch_throughput");
    g.throughput(Throughput::Elements(branches));
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));

    g.bench_function("isl_tage_boxed_dyn_scalar", |b| {
        b.iter(|| {
            let mut p: Box<dyn simkit::BranchPredictor> = Box::new(tage::TageSystem::isl_tage());
            black_box(simulate_source(&mut p, &mut TraceStream::new(&trace), scenario, &cfg))
        })
    });
    g.bench_function("isl_tage_dyn_pooled_scalar", |b| {
        b.iter(|| {
            let mut p = simkit::DynPredictor::new(Box::new(tage::TageSystem::isl_tage()));
            black_box(simulate_source(&mut p, &mut TraceStream::new(&trace), scenario, &cfg))
        })
    });
    for batch in [64usize, DEFAULT_BATCH] {
        g.bench_function(&format!("isl_tage_engine_batch{batch}"), |b| {
            b.iter(|| {
                let mut e = WindowEngine::new(tage::TageSystem::isl_tage(), scenario, &cfg);
                black_box(simulate_engine(&mut e, &mut TraceStream::new(&trace), batch))
            })
        });
    }
    // The dispatch-bound end of the spectrum: a cheap predictor behind
    // the same two routes. ISL-TAGE's table walks dominate its per-event
    // cost, so amortizing dispatch moves it ~15%; on gshare the virtual
    // calls and flight boxing *are* the cost, and the engine's win is the
    // dispatch overhead itself.
    g.bench_function("gshare_boxed_dyn_scalar", |b| {
        b.iter(|| {
            let mut p: Box<dyn simkit::BranchPredictor> = Box::new(baselines::Gshare::cbp_512k());
            black_box(simulate_source(&mut p, &mut TraceStream::new(&trace), scenario, &cfg))
        })
    });
    g.bench_function("gshare_engine_batch4096", |b| {
        b.iter(|| {
            let mut e = WindowEngine::new(baselines::Gshare::cbp_512k(), scenario, &cfg);
            black_box(simulate_engine(&mut e, &mut TraceStream::new(&trace), DEFAULT_BATCH))
        })
    });
    // The event-prefetch pair: the block engines' consumption pattern —
    // sequential event reads interleaved with quasi-random table traffic
    // that evicts the event buffer — with and without the software hint
    // the hot loops issue (`prefetch_event`, EVENT_PREFETCH_AHEAD events
    // ahead). The table is predictor-sized (512 K entries, 4 MiB) so its
    // misses contend with the event stream like real tagged-bank walks.
    let mut table = vec![0u64; 512 * 1024];
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    let scan = |prefetch: bool, table: &mut [u64]| {
        let mut acc = 0u64;
        for (i, ev) in trace.events.iter().enumerate() {
            if prefetch {
                prefetch_event(&trace.events, i + EVENT_PREFETCH_AHEAD);
            }
            let slot = (ev.pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 45) as usize;
            table[slot & (table.len() - 1)] ^= ev.target ^ ev.uops();
            acc = acc.wrapping_add(ev.pc ^ ev.target);
        }
        acc
    };
    g.bench_function("event_scan_plain", |b| {
        b.iter(|| black_box(scan(false, &mut table)))
    });
    g.bench_function("event_scan_prefetch", |b| {
        b.iter(|| black_box(scan(true, &mut table)))
    });
    g.finish();
}

criterion_group!(benches, batch);
criterion_main!(benches);
