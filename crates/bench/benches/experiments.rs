//! One benchmark per paper table/figure (E00–E13): each runs a
//! scaled-down (Tiny, few traces) kernel of the corresponding experiment
//! so `cargo bench` exercises every experiment code path end to end.

use bench::{bench_trace, run_once};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::UpdateScenario;
use std::hint::black_box;
use tage::{Tage, TageSystem};
use workloads::Trace;

fn traces() -> Vec<Trace> {
    ["CLIENT04", "MM05", "WS03"].iter().map(|n| bench_trace(n)).collect()
}

fn experiments(c: &mut Criterion) {
    let ts = traces();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));

    // E00 — benchmark characterization kernel.
    g.bench_function("e00_bench_chars", |b| {
        b.iter(|| {
            for t in &ts {
                black_box(run_once(
                    &mut TageSystem::reference_tage(),
                    t,
                    UpdateScenario::RereadAtRetire,
                ));
            }
        })
    });
    // E01 — Figure 3 kernel (bimodal, tiny).
    g.bench_function("e01_fig3", |b| {
        b.iter(|| {
            let mut p = baselines::Bimodal::new(64, 2);
            black_box(run_once(&mut p, &ts[0], UpdateScenario::FetchOnly))
        })
    });
    // E02 — silent-update accounting.
    g.bench_function("e02_writes", |b| {
        b.iter(|| {
            let r = run_once(&mut Tage::reference_64kb(), &ts[0], UpdateScenario::RereadAtRetire);
            black_box((r.writes_per_mispredict(), r.stats.silent_fraction()))
        })
    });
    // E03 — scenario sweep.
    g.bench_function("e03_scenarios", |b| {
        b.iter(|| {
            for s in UpdateScenario::ALL {
                black_box(run_once(&mut baselines::Gshare::cbp_512k(), &ts[0], s));
            }
        })
    });
    // E04 — bank interleaving.
    g.bench_function("e04_interleave", |b| {
        b.iter(|| {
            black_box(run_once(
                &mut Tage::reference_64kb().with_interleaving(),
                &ts[0],
                UpdateScenario::RereadOnMispredict,
            ))
        })
    });
    // E05 — IUM.
    g.bench_function("e05_ium", |b| {
        b.iter(|| {
            black_box(run_once(&mut TageSystem::tage_ium(), &ts[0], UpdateScenario::FetchOnly))
        })
    });
    // E06 — loop predictor.
    g.bench_function("e06_loop", |b| {
        b.iter(|| {
            black_box(run_once(
                &mut TageSystem::tage_ium().with_loop(tage::LoopPredictor::cbp_64()),
                &ts[0],
                UpdateScenario::RereadAtRetire,
            ))
        })
    });
    // E07/E08 — ISL-TAGE.
    g.bench_function("e07_e08_isl", |b| {
        b.iter(|| {
            black_box(run_once(&mut TageSystem::isl_tage(), &ts[1], UpdateScenario::RereadAtRetire))
        })
    });
    // E09 — TAGE-LSC.
    g.bench_function("e09_lsc", |b| {
        b.iter(|| {
            black_box(run_once(&mut TageSystem::tage_lsc(), &ts[2], UpdateScenario::RereadAtRetire))
        })
    });
    // E10 — ablation configuration.
    g.bench_function("e10_ablation", |b| {
        b.iter(|| {
            let cfg = tage::TageConfig::balanced(8, 6, 1000);
            black_box(run_once(
                &mut TageSystem::new(cfg).with_ium(64).with_lsc(tage::Lsc::cbp_30kbit()),
                &ts[0],
                UpdateScenario::RereadAtRetire,
            ))
        })
    });
    // E11 — Figure 9 point (scaled predictor).
    g.bench_function("e11_fig9_point", |b| {
        b.iter(|| {
            black_box(run_once(
                &mut TageSystem::scaled_tage_lsc(2),
                &ts[0],
                UpdateScenario::RereadAtRetire,
            ))
        })
    });
    // E12 — Figure 10 contenders.
    g.bench_function("e12_fig10_contenders", |b| {
        b.iter(|| {
            black_box(run_once(&mut baselines::Snap::cbp_512k(), &ts[2], UpdateScenario::RereadAtRetire));
            black_box(run_once(&mut baselines::Ftl::cbp_512k(), &ts[2], UpdateScenario::RereadAtRetire));
        })
    });
    // E13 — cost-effective TAGE-LSC.
    g.bench_function("e13_cost_eff", |b| {
        b.iter(|| {
            black_box(run_once(
                &mut TageSystem::tage_lsc_cost_effective(),
                &ts[0],
                UpdateScenario::RereadOnMispredict,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, experiments);
criterion_main!(benches);
