//! `bench_report` — diff a `BENCH_JSON` record against a committed
//! baseline.
//!
//! ```text
//! bench_report <current.json> [--baseline FILE] [--fail-over PCT]
//! ```
//!
//! Both inputs are the JSON-lines files the vendored criterion stand-in
//! appends under `BENCH_JSON=` (one `{"id", "ns_per_iter",
//! "throughput_per_s"?}` object per line). The report prints per-id
//! ns/iter with the baseline delta. It is *advisory by default* — the
//! stand-in has no statistical sampling and CI runners are a
//! heterogeneous fleet, so exit code 0 regardless of drift — unless
//! `--fail-over PCT` turns regressions beyond that percentage into exit
//! code 1 (for local, same-machine comparisons).

use std::collections::BTreeMap;
use std::process::exit;

/// One `{"id":...,"ns_per_iter":...}` record per line; later lines win
/// (re-runs append).
fn parse(path: &str) -> Result<BTreeMap<String, u128>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let id = field(line, "\"id\":\"").and_then(|rest| rest.split('"').next());
        let ns = field(line, "\"ns_per_iter\":")
            .map(|rest| rest.trim_start())
            .and_then(|rest| {
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                digits.parse::<u128>().ok()
            });
        match (id, ns) {
            (Some(id), Some(ns)) => {
                out.insert(id.to_string(), ns);
            }
            _ => return Err(format!("{path}: malformed record: {line}")),
        }
    }
    Ok(out)
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.find(key).map(|i| &line[i + key.len()..])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut current: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut fail_over: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next().cloned(),
            "--fail-over" => {
                fail_over = it.next().and_then(|v| v.parse().ok());
                if fail_over.is_none() {
                    eprintln!("--fail-over expects a percentage");
                    exit(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: bench_report <current.json> [--baseline FILE] [--fail-over PCT]");
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                exit(2);
            }
            other => current = Some(other.to_string()),
        }
    }
    let Some(current) = current else {
        eprintln!("usage: bench_report <current.json> [--baseline FILE] [--fail-over PCT]");
        exit(2);
    };
    let cur = match parse(&current) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    };
    let base = match &baseline {
        None => BTreeMap::new(),
        // A missing or malformed baseline is advisory territory, not a
        // failure: report current numbers and say why there is no diff.
        Some(p) => match parse(p) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("note: no baseline diff ({e})");
                BTreeMap::new()
            }
        },
    };
    println!("{:<45} {:>14} {:>14} {:>9}", "benchmark", "ns/iter", "baseline", "delta");
    let mut worst: Option<(f64, String)> = None;
    for (id, ns) in &cur {
        match base.get(id) {
            Some(&b) if b > 0 => {
                let delta = *ns as f64 / b as f64 - 1.0;
                println!("{id:<45} {ns:>14} {b:>14} {:>+8.1}%", delta * 100.0);
                if worst.as_ref().is_none_or(|(w, _)| delta > *w) {
                    worst = Some((delta, id.clone()));
                }
            }
            _ => println!("{id:<45} {ns:>14} {:>14} {:>9}", "-", "-"),
        }
    }
    for id in base.keys().filter(|id| !cur.contains_key(*id)) {
        println!("{id:<45} {:>14} {:>14} {:>9}", "missing", base[id], "-");
    }
    if let Some((delta, id)) = &worst {
        println!("worst regression: {id} {:+.1}%", delta * 100.0);
        if let Some(limit) = fail_over {
            if *delta * 100.0 > limit {
                eprintln!("regression beyond --fail-over {limit}%");
                exit(1);
            }
        }
    }
}
