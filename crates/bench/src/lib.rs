//! Criterion benchmark support: shared fixtures for the `throughput` and
//! `experiments` benches.
//!
//! * `benches/throughput.rs` — prediction-rate microbenchmarks of every
//!   predictor (how fast the simulator itself runs);
//! * `benches/experiments.rs` — one benchmark per paper table/figure,
//!   running a scaled-down (Tiny) version of the experiment kernel so
//!   `cargo bench` exercises every experiment code path.

#![forbid(unsafe_code)]

use pipeline::{simulate, PipelineConfig, SimReport};
use simkit::predictor::{Predictor, UpdateScenario};
use workloads::suite::{by_name, Scale};
use workloads::Trace;

/// A small fixed trace for microbenchmarks.
pub fn bench_trace(name: &str) -> Trace {
    // INVARIANT: bench fixtures name suite members only; an unknown name
    // is a bench-code bug, failing at startup.
    by_name(name, Scale::Tiny).expect("known trace").generate()
}

/// Runs one predictor over one trace under one scenario (the benchmark
/// kernel shared by all experiment benches).
pub fn run_once<P: Predictor>(p: &mut P, trace: &Trace, scenario: UpdateScenario) -> SimReport {
    simulate(p, trace, scenario, &PipelineConfig::default())
}

/// Runs one predictor over a lazily streamed trace (generation fused into
/// simulation, no materialized `Vec<TraceEvent>`): the streaming-path
/// counterpart of [`run_once`].
pub fn run_streamed<P: Predictor>(p: &mut P, name: &str, scenario: UpdateScenario) -> SimReport {
    let spec = by_name(name, Scale::Tiny).expect("known trace"); // INVARIANT: see bench_trace
    pipeline::simulate_source(p, &mut spec.stream(), scenario, &PipelineConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let t = bench_trace("MM01");
        let mut p = baselines::Gshare::new(12);
        let r = run_once(&mut p, &t, UpdateScenario::RereadAtRetire);
        assert_eq!(r.conditionals, t.conditional_count());
    }
}
