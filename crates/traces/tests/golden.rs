//! Golden-fixture tests: checked-in files in each format must decode to
//! the known trace, and re-encoding the known trace must reproduce the
//! files byte for byte (pinning the on-disk layouts — an intentional
//! format change regenerates with `TAGE_WRITE_FIXTURES=1 cargo test -p
//! tage-traces --test golden` and shows up as a fixture diff in review).

use simkit::predictor::BranchKind;
use std::path::PathBuf;
use traces::CodecRegistry;
use workloads::event::{EventSource, Trace, TraceEvent};

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

/// The fixture: a hand-written stream exercising every branch kind, both
/// directions, load dependences, and a divergent indirect target.
fn fixture_trace() -> Trace {
    let ev = |pc: u64, kind, taken, target: u64, uops: u16, load: Option<u64>| TraceEvent {
        pc,
        kind,
        taken,
        target,
        uops_before: uops,
        load_addr: load,
    };
    use BranchKind::*;
    Trace {
        name: "GOLD01".into(),
        category: "GOLD".into(),
        events: vec![
            ev(0x40_0000, Conditional, true, 0x40_0040, 5, None),
            ev(0x40_0010, Conditional, false, 0x40_0018, 3, Some(0x10_0000_0040)),
            ev(0x40_0000, Conditional, true, 0x40_0040, 6, None),
            ev(0x40_0020, Call, true, 0x41_0000, 2, None),
            ev(0x41_0000, Return, true, 0x40_0028, 2, None),
            ev(0x40_0030, DirectJump, true, 0x40_0100, 1, None),
            ev(0x40_0110, IndirectJump, true, 0x42_0000, 4, None),
            ev(0x40_0110, IndirectJump, true, 0x43_0000, 4, None), // divergent target
            ev(0x40_0010, Conditional, true, 0x40_0050, 3, Some(0x10_0000_1000)),
            ev(0x40_0000, Conditional, false, 0x40_0008, 5, None),
        ],
    }
}

fn encode_with(codec_name: &str, trace: &Trace) -> Vec<u8> {
    let registry = CodecRegistry::standard();
    let codec = registry.by_name(codec_name).unwrap();
    let mut buf = Vec::new();
    codec.encode(&mut buf, trace).unwrap();
    buf
}

fn fixture_path(codec_name: &str) -> PathBuf {
    let registry = CodecRegistry::standard();
    let ext = registry.by_name(codec_name).unwrap().extensions()[0];
    data_dir().join(format!("GOLD01.{ext}"))
}

fn maybe_write_fixtures() -> bool {
    if std::env::var_os("TAGE_WRITE_FIXTURES").is_none() {
        return false;
    }
    std::fs::create_dir_all(data_dir()).unwrap();
    let t = fixture_trace();
    for name in ["ttr", "cbp", "csv"] {
        std::fs::write(fixture_path(name), encode_with(name, &t)).unwrap();
    }
    true
}

fn decode_fixture(codec_name: &str) -> Trace {
    let registry = CodecRegistry::standard();
    let mut src = registry.open(&fixture_path(codec_name)).unwrap();
    assert_eq!(src.format(), codec_name, "autodetection picked the wrong codec");
    let mut events = Vec::new();
    while let Some(e) = src.next_event() {
        events.push(e);
    }
    traces::finish(src.as_ref()).unwrap();
    Trace { name: src.name().to_string(), category: src.category().to_string(), events }
}

#[test]
fn ttr_fixture_decodes_and_reencodes_byte_identically() {
    if maybe_write_fixtures() {
        return;
    }
    let expected = fixture_trace();
    assert_eq!(decode_fixture("ttr"), expected);
    let on_disk = std::fs::read(fixture_path("ttr")).unwrap();
    assert_eq!(encode_with("ttr", &expected), on_disk, "the .ttr byte layout changed");
}

#[test]
fn csv_fixture_decodes_and_reencodes_byte_identically() {
    if maybe_write_fixtures() {
        return;
    }
    let expected = fixture_trace();
    assert_eq!(decode_fixture("csv"), expected);
    let on_disk = std::fs::read(fixture_path("csv")).unwrap();
    assert_eq!(encode_with("csv", &expected), on_disk, "the csv layout changed");
}

#[test]
fn cbp_fixture_decodes_representable_fields_and_reencodes_byte_identically() {
    if maybe_write_fixtures() {
        return;
    }
    let expected = fixture_trace();
    let decoded = decode_fixture("cbp");
    // Name/category come from the file name; uops/loads are synthesized
    // (lossy format) — compare the representable per-event fields.
    assert_eq!(decoded.name, "GOLD01");
    assert_eq!(decoded.category, "GOLD");
    assert_eq!(decoded.events.len(), expected.events.len());
    for (i, (a, b)) in decoded.events.iter().zip(&expected.events).enumerate() {
        assert_eq!((a.pc, a.kind, a.taken), (b.pc, b.kind, b.taken), "event {i}");
        if i != 7 {
            // Event 7's divergent indirect target is the one field the
            // single-target-per-site layout cannot carry.
            assert_eq!(a.target, b.target, "event {i}");
        }
    }
    let on_disk = std::fs::read(fixture_path("cbp")).unwrap();
    assert_eq!(encode_with("cbp", &expected), on_disk, "the cbp byte layout changed");
}

#[test]
fn fixtures_are_present_in_the_repo() {
    if maybe_write_fixtures() {
        return;
    }
    for name in ["ttr", "cbp", "csv"] {
        let p = fixture_path(name);
        assert!(p.exists(), "missing checked-in fixture {}", p.display());
    }
}
