//! Property tests: codec round-trips on arbitrary event streams, and
//! corrupt-input fuzzing (decoders must reject, never panic).

use proptest::collection::vec;
use proptest::prelude::*;
use simkit::predictor::BranchKind;
use std::io::Cursor;
use traces::{CbpReader, CsvReader, TraceDecoder, Ttr3Reader, TtrReader, TTR3_INDEX_FLAG};
use workloads::event::{EventSource, Trace, TraceEvent};

fn kind_of(code: u8) -> BranchKind {
    match code % 5 {
        0 => BranchKind::Conditional,
        1 => BranchKind::DirectJump,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::Call,
        _ => BranchKind::Return,
    }
}

/// Builds an event from one strategy sample. Targets derive from
/// `(pc, taken)` the way the synthetic generator's do, which keeps the
/// stream inside what the (lossy) CBP layout can represent; the TTR/CSV
/// properties additionally perturb targets via `toff` to exercise the
/// override path.
fn event(
    (pc, kind, taken): (u64, u8, bool),
    (toff, uops, load_code): (u64, u16, u64),
    divergent_targets: bool,
) -> TraceEvent {
    let base = pc.wrapping_add(if taken { 0x40 } else { 8 });
    TraceEvent {
        pc,
        kind: kind_of(kind),
        taken,
        target: if divergent_targets { base.wrapping_add(toff) } else { base },
        uops_before: uops,
        load_addr: (load_code != 0).then(|| 0x10_0000_0000 + load_code),
    }
}

fn trace_of(events: Vec<TraceEvent>) -> Trace {
    Trace { name: "PROP01".into(), category: "PROP".into(), events }
}

type RawEvent = ((u64, u8, bool), (u64, u16, u64));

fn event_strategy() -> impl Strategy<Value = Vec<RawEvent>> {
    vec(
        ((0u64..1 << 20, 0u8..5, any::<bool>()), (0u64..64, 0u16..2048, 0u64..4)),
        0usize..200,
    )
}

fn drain<D: TraceDecoder>(mut d: D) -> Result<Trace, String> {
    let mut events = Vec::new();
    while let Some(e) = d.next_event() {
        events.push(e);
    }
    match traces::finish(&d) {
        Ok(()) => {
            Ok(Trace { name: d.name().to_string(), category: d.category().to_string(), events })
        }
        Err(e) => Err(e.to_string()),
    }
}

proptest! {
    #[test]
    fn ttr_round_trips_losslessly(raw in event_strategy()) {
        let t = trace_of(raw.into_iter().map(|(a, b)| event(a, b, true)).collect());
        let mut buf = Vec::new();
        traces::ttr::encode(&mut buf, &t).unwrap();
        let back = drain(TtrReader::new(buf.as_slice()).unwrap()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn csv_round_trips_losslessly(raw in event_strategy()) {
        let t = trace_of(raw.into_iter().map(|(a, b)| event(a, b, true)).collect());
        let mut buf = Vec::new();
        traces::csv::encode(&mut buf, &t).unwrap();
        let back =
            drain(CsvReader::new(buf.as_slice(), "fb".into(), "FB".into()).unwrap()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn cbp_preserves_the_representable_fields(raw in event_strategy()) {
        // CBP carries no uops/loads and one target per (site, direction):
        // generate generator-shaped targets and assert the representable
        // fields round-trip exactly.
        let t = trace_of(raw.into_iter().map(|(a, b)| event(a, b, false)).collect());
        let mut buf = Vec::new();
        traces::cbp::encode(&mut buf, &t).unwrap();
        let back =
            drain(CbpReader::new(Cursor::new(buf), "t".into(), "T".into()).unwrap()).unwrap();
        prop_assert_eq!(back.events.len(), t.events.len());
        for (a, b) in back.events.iter().zip(&t.events) {
            prop_assert_eq!(a.pc, b.pc);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.taken, b.taken);
            prop_assert_eq!(a.target, b.target);
            prop_assert!(a.load_addr.is_none());
        }
    }

    #[test]
    fn ttr_header_fuzz_never_panics(bytes in vec(any::<u8>(), 0usize..256)) {
        // Arbitrary bytes: open may fail (expected) but must not panic,
        // and a decoder that does open must fail or finish cleanly.
        if let Ok(r) = TtrReader::new(bytes.as_slice()) {
            let _ = drain(r);
        }
    }

    #[test]
    fn ttr_magic_prefixed_fuzz_never_panics(bytes in vec(any::<u8>(), 0usize..256)) {
        // Valid magic + raw compression, garbage after: exercises the
        // header/table/event parsers past the magic check.
        let mut buf = b"TAGETTR2\0".to_vec();
        buf.extend(&bytes);
        if let Ok(r) = TtrReader::new(buf.as_slice()) {
            let _ = drain(r);
        }
    }

    #[test]
    fn cbp_fuzz_never_panics(bytes in vec(any::<u8>(), 0usize..256)) {
        if let Ok(r) = CbpReader::new(Cursor::new(bytes), "t".into(), "T".into()) {
            let _ = drain(r);
        }
    }

    #[test]
    fn csv_fuzz_never_panics(bytes in vec(any::<u8>(), 0usize..256)) {
        if let Ok(r) = CsvReader::new(bytes.as_slice(), "t".into(), "T".into()) {
            let _ = drain(r);
        }
    }

    #[test]
    fn truncated_ttr_is_rejected_not_silently_short(cut in 1usize..100) {
        let t = trace_of(
            (0..50)
                .map(|i| event((0x1000 + i * 16, (i % 5) as u8, i % 3 == 0), (0, 5, i % 2), true))
                .collect(),
        );
        let mut buf = Vec::new();
        traces::ttr::encode(&mut buf, &t).unwrap();
        let cut = cut.min(buf.len() - 1);
        buf.truncate(buf.len() - cut);
        let failed = match TtrReader::new(buf.as_slice()) {
            Err(_) => true,
            Ok(r) => drain(r).is_err(),
        };
        prop_assert!(failed, "truncation by {cut} bytes went unnoticed");
    }

    #[test]
    fn ttr3_round_trips_losslessly_under_both_schemes(raw in event_strategy(), scheme in 0u8..2) {
        let t = trace_of(raw.into_iter().map(|(a, b)| event(a, b, true)).collect());
        let mut buf = Vec::new();
        traces::ttr3::encode(&mut buf, &t, scheme).unwrap();
        let back = drain(Ttr3Reader::new(Cursor::new(buf)).unwrap()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn truncated_ttr3_block_is_rejected_not_silently_short(cut in 1usize..200) {
        // Truncation lands anywhere: in the trailer, the footer table, a
        // block payload, or a frame header. Every case must surface as an
        // open error or through traces::finish — never a panic, never a
        // silently short stream.
        let t = trace_of(
            (0..60)
                .map(|i| event((0x3000 + i * 16, (i % 5) as u8, i % 3 == 0), (0, 5, i % 2), true))
                .collect(),
        );
        let mut buf = Vec::new();
        traces::ttr3::encode(&mut buf, &t, 1).unwrap();
        let cut = cut.min(buf.len() - 1);
        buf.truncate(buf.len() - cut);
        let failed = match Ttr3Reader::new(Cursor::new(buf)) {
            Err(_) => true,
            Ok(r) => drain(r).is_err(),
        };
        prop_assert!(failed, "truncation by {cut} bytes went unnoticed");
    }

    #[test]
    fn flipped_byte_in_ttr3_never_panics(pos in 0usize..8192, val in any::<u8>()) {
        // Covers the corrupt-block cases by position: a flip in the scheme
        // byte (bad scheme), a frame length field (length overflow), or a
        // compressed payload (corrupt LZ stream).
        let t = trace_of(
            (0..60)
                .map(|i| event((0x4000 + i * 12, (i % 5) as u8, i % 2 == 0), (i, 7, 1), true))
                .collect(),
        );
        let mut buf = Vec::new();
        traces::ttr3::encode(&mut buf, &t, 1).unwrap();
        let pos = pos % buf.len();
        buf[pos] = val;
        if let Ok(r) = Ttr3Reader::new(Cursor::new(buf)) {
            let _ = drain(r);
        }
    }

    #[test]
    fn ttr3_frame_length_overflow_is_rejected(raw_len in any::<u32>(), comp_len in any::<u32>()) {
        // Overwrite the first frame's length fields with arbitrary values:
        // the frame-chain validation (or block decode) must reject any
        // combination that disagrees with the payload, without panicking
        // or over-allocating.
        let t = trace_of(
            (0..60)
                .map(|i| event((0x5000 + i * 8, 0, i % 2 == 0), (i, 3, 0), true))
                .collect(),
        );
        let mut buf = Vec::new();
        traces::ttr3::encode(&mut buf, &t, 1).unwrap();
        // Header: magic(8) + scheme(1) + name(2+6) + category(2+4); the
        // frame starts right after, with raw_len/comp_len at +4 and +8.
        let frame = 8 + 1 + 2 + t.name.len() + 2 + t.category.len();
        buf[frame + 4..frame + 8].copy_from_slice(&raw_len.to_le_bytes());
        buf[frame + 8..frame + 12].copy_from_slice(&comp_len.to_le_bytes());
        if let Ok(r) = Ttr3Reader::new(Cursor::new(buf.clone())) {
            if let Ok(back) = drain(r) {
                // Only the original lengths can decode the original data.
                prop_assert_eq!(back, t);
            }
        }
    }

    #[test]
    fn ttr3_header_fuzz_never_panics(bytes in vec(any::<u8>(), 0usize..256)) {
        let mut buf = b"TAGETTR3\x01".to_vec();
        buf.extend(&bytes);
        if let Ok(r) = Ttr3Reader::new(Cursor::new(buf)) {
            let _ = drain(r);
        }
    }

    #[test]
    fn indexed_skip_matches_decode_discard(raw in event_strategy(), s in 0u64..250) {
        // The O(1) index seek and the default decode-discard must land on
        // the same position: after skipping `s`, both readers produce the
        // same suffix (ground truth: the encoded trace itself).
        let t = trace_of(raw.into_iter().map(|(a, b)| event(a, b, true)).collect());
        let mut buf = Vec::new();
        traces::ttr3::encode(&mut buf, &t, 1 | TTR3_INDEX_FLAG).unwrap();
        let mut r = Ttr3Reader::new(Cursor::new(buf)).unwrap();
        let skipped = r.skip(s);
        prop_assert_eq!(skipped, s.min(t.events.len() as u64));
        let mut rest = Vec::new();
        while let Some(e) = r.next_event() {
            rest.push(e);
        }
        prop_assert!(r.decode_error().is_none());
        prop_assert_eq!(rest.as_slice(), &t.events[skipped as usize..]);
    }

    #[test]
    fn corrupt_index_footer_fails_loudly_never_misseeks(
        pos in 0usize..4096, val in any::<u8>(), s in 0u64..100,
    ) {
        // A flipped byte at or after the `TAGEIDX3` footer (the index, the
        // branch table, or the trailer) must either fail at open / during
        // the stream — or leave a reader whose seek still lands exactly
        // where decode-discard would. A silently wrong position is the one
        // forbidden outcome.
        let t = trace_of(
            (0..80)
                .map(|i| event((0x6000 + i * 16, (i % 5) as u8, i % 3 == 0), (i, 5, i % 2), true))
                .collect(),
        );
        let mut buf = Vec::new();
        traces::ttr3::encode(&mut buf, &t, 1 | TTR3_INDEX_FLAG).unwrap();
        let idx = buf
            .windows(8)
            .position(|w| w == traces::ttr3::TTR3_INDEX_MAGIC)
            .expect("indexed file carries the footer magic");
        let pos = idx + pos % (buf.len() - idx);
        let clean = buf[pos] == val;
        buf[pos] = val;
        if let Ok(mut fast) = Ttr3Reader::new(Cursor::new(buf.clone())) {
            let skipped = fast.skip(s);
            let mut via_seek = Vec::new();
            while let Some(e) = fast.next_event() {
                via_seek.push(e);
            }
            // Decode-discard over the *same* bytes (open is deterministic,
            // so the second open must succeed too): advance one event at a
            // time without ever touching the index.
            let mut slow = Ttr3Reader::new(Cursor::new(buf)).unwrap();
            let mut slow_skipped = 0u64;
            while slow_skipped < s && slow.next_event().is_some() {
                slow_skipped += 1;
            }
            let mut via_decode = Vec::new();
            while let Some(e) = slow.next_event() {
                via_decode.push(e);
            }
            if fast.decode_error().is_none() && slow.decode_error().is_none() {
                prop_assert_eq!(skipped, slow_skipped, "flip at byte {pos}");
                prop_assert_eq!(&via_seek, &via_decode, "seek diverged from decode-discard after flipping byte {pos}");
            }
            if clean {
                // A no-op flip must behave like the pristine file.
                prop_assert_eq!(skipped, s.min(80));
                prop_assert!(fast.decode_error().is_none());
                prop_assert_eq!(via_seek.as_slice(), &t.events[skipped as usize..]);
            }
        }
    }

    #[test]
    fn truncated_index_footer_is_rejected_not_misseeked(cut in 1usize..300) {
        // Truncation anywhere in an *indexed* file — index entries, the
        // footer magic, the branch table, or the trailer — must fail at
        // open or through `finish`, and a pre-failure `skip` must never
        // report progress it did not make.
        let t = trace_of(
            (0..80)
                .map(|i| event((0x7000 + i * 12, (i % 5) as u8, i % 2 == 0), (i, 3, 1), true))
                .collect(),
        );
        let mut buf = Vec::new();
        traces::ttr3::encode(&mut buf, &t, 1 | TTR3_INDEX_FLAG).unwrap();
        let cut = cut.min(buf.len() - 1);
        buf.truncate(buf.len() - cut);
        let failed = match Ttr3Reader::new(Cursor::new(buf)) {
            Err(_) => true,
            Ok(r) => drain(r).is_err(),
        };
        prop_assert!(failed, "index-footer truncation by {cut} bytes went unnoticed");
    }

    #[test]
    fn flipped_byte_in_ttr_never_panics(pos in 0usize..4096, val in any::<u8>()) {
        let t = trace_of(
            (0..40)
                .map(|i| event((0x2000 + i * 12, (i % 5) as u8, i % 2 == 0), (i, 7, 1), true))
                .collect(),
        );
        let mut buf = Vec::new();
        traces::ttr::encode(&mut buf, &t).unwrap();
        let pos = pos % buf.len();
        buf[pos] = val;
        // Any outcome but a panic is acceptable: reject, or decode to some
        // (possibly different) valid trace when the flip hit a don't-care.
        if let Ok(r) = TtrReader::new(buf.as_slice()) {
            let _ = drain(r);
        }
    }
}
