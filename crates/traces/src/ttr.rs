//! The native `.ttr` v2 binary trace format.
//!
//! Layout (all multi-byte integers little-endian, varints LEB128):
//!
//! ```text
//! header:
//!   magic            8 bytes  "TAGETTR2"
//!   compression      u8       0 = raw (other values reserved for a real
//!                             compression codec once crates.io access
//!                             lands; readers reject them)
//!   name             u16 len + UTF-8 bytes
//!   category         u16 len + UTF-8 bytes
//!   branch_count     u32      static-branch table entries
//!   event_count      u64      dynamic events
//! branch table (branch_count entries, ascending (pc, kind)):
//!   pc_delta         LEB128   pc − previous entry's pc (first: pc)
//!   kind             u8       0=cond 1=jump 2=ijump 3=call 4=ret
//!   taken_target     ZigZag LEB128   target − pc when taken
//!   nottaken_target  ZigZag LEB128   target − pc when not taken
//! event stream (event_count records):
//!   index_delta      ZigZag LEB128   site index − previous event's index
//!   flags            u8       bit0 taken, bit1 has_load,
//!                             bit2 target override, bits 3–7 zero
//!   uops_before      LEB128   (≤ 65535)
//!   [bit2] target    ZigZag LEB128   target − the site's default target
//!   [bit1] load_addr LEB128
//! ```
//!
//! The branch table deduplicates static sites; per-event targets that
//! match the site's recorded target (the overwhelmingly common case) cost
//! nothing, and the rare divergent target rides an explicit override, so
//! the format is lossless for arbitrary event streams. Decoding holds the
//! branch table in memory and nothing else — memory is bounded by the
//! static footprint, not the trace length.

use crate::decoder::TraceDecoder;
use crate::varint;
use simkit::predictor::BranchKind;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::Path;
use workloads::event::{EventSource, Trace, TraceEvent};

/// Leading magic of a `.ttr` v2 file.
pub const TTR_MAGIC: &[u8; 8] = b"TAGETTR2";

/// Compression scheme byte: raw (the only scheme implemented offline).
pub const COMPRESSION_RAW: u8 = 0;

/// Decoder cap on static-branch-table entries: bounds `open` memory on
/// corrupt or adversarial headers.
pub const MAX_BRANCH_TABLE: u32 = 1 << 24;

pub(crate) const FLAG_TAKEN: u8 = 1 << 0;
pub(crate) const FLAG_LOAD: u8 = 1 << 1;
pub(crate) const FLAG_TARGET: u8 = 1 << 2;

pub(crate) fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::DirectJump => 1,
        BranchKind::IndirectJump => 2,
        BranchKind::Call => 3,
        BranchKind::Return => 4,
    }
}

pub(crate) fn code_kind(c: u8) -> io::Result<BranchKind> {
    Ok(match c {
        0 => BranchKind::Conditional,
        1 => BranchKind::DirectJump,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::Call,
        4 => BranchKind::Return,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid branch kind code {other}"),
            ))
        }
    })
}

pub(crate) fn write_str(w: &mut dyn Write, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "string exceeds 64KiB"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(bytes)
}

pub(crate) fn read_str(r: &mut dyn Read) -> io::Result<String> {
    let mut len = [0u8; 2];
    r.read_exact(&mut len)?;
    let mut buf = vec![0u8; u16::from_le_bytes(len) as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// One static-branch-table entry (shared with the v3 container, whose
/// table differs only in ordering and placement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TableEntry {
    pub(crate) pc: u64,
    pub(crate) kind: BranchKind,
    pub(crate) taken_target: u64,
    pub(crate) nottaken_target: u64,
}

impl TableEntry {
    pub(crate) fn default_target(&self, taken: bool) -> u64 {
        if taken {
            self.taken_target
        } else {
            self.nottaken_target
        }
    }
}

/// Encodes one event record (index delta + flags + fields) against its
/// site entry. Both container versions use this exact record layout; they
/// differ only in which table the index refers to and where `prev_index`
/// resets.
pub(crate) fn encode_event_record(
    w: &mut dyn Write,
    site: &TableEntry,
    index: usize,
    prev_index: &mut i64,
    e: &TraceEvent,
) -> io::Result<()> {
    let default = site.default_target(e.taken);
    let mut flags = 0u8;
    if e.taken {
        flags |= FLAG_TAKEN;
    }
    if e.load_addr.is_some() {
        flags |= FLAG_LOAD;
    }
    if e.target != default {
        flags |= FLAG_TARGET;
    }
    varint::write_i64(w, index as i64 - *prev_index)?;
    w.write_all(&[flags])?;
    varint::write_u64(w, u64::from(e.uops_before))?;
    if flags & FLAG_TARGET != 0 {
        varint::write_i64(w, e.target.wrapping_sub(default) as i64)?;
    }
    if let Some(addr) = e.load_addr {
        varint::write_u64(w, addr)?;
    }
    *prev_index = index as i64;
    Ok(())
}

/// Decodes one event record against `table` — the inverse of
/// [`encode_event_record`].
pub(crate) fn decode_event_record(
    r: &mut dyn Read,
    table: &[TableEntry],
    prev_index: &mut i64,
) -> io::Result<TraceEvent> {
    let index = prev_index.wrapping_add(varint::read_i64(r)?);
    let site = usize::try_from(index)
        .ok()
        .and_then(|i| table.get(i))
        .copied()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("event site index {index} outside the branch table"),
            )
        })?;
    *prev_index = index;
    let mut byte = [0u8; 1];
    r.read_exact(&mut byte)?;
    let flags = byte[0];
    if flags & !(FLAG_TAKEN | FLAG_LOAD | FLAG_TARGET) != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid event flags {flags:#04x}"),
        ));
    }
    let taken = flags & FLAG_TAKEN != 0;
    let uops = varint::read_u64(r)?;
    let uops_before = u16::try_from(uops)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "uops_before exceeds u16"))?;
    let mut target = site.default_target(taken);
    if flags & FLAG_TARGET != 0 {
        target = target.wrapping_add(varint::read_i64(r)? as u64);
    }
    let load_addr =
        if flags & FLAG_LOAD != 0 { Some(varint::read_u64(r)?) } else { None };
    Ok(TraceEvent { pc: site.pc, kind: site.kind, taken, target, uops_before, load_addr })
}

/// Serializes `trace` as `.ttr` v2. Thin wrapper over [`encode_two_pass`]
/// replaying the materialized trace twice, so the streamed and
/// materialized encoders are byte-identical by construction.
///
/// # Errors
///
/// Returns `InvalidInput` when the static footprint exceeds
/// [`MAX_BRANCH_TABLE`] or a string field exceeds 64 KiB, and any I/O
/// error from the writer.
pub fn encode(w: &mut dyn Write, trace: &Trace) -> io::Result<()> {
    encode_two_pass(w, || Ok(trace.stream()))
}

/// Streams a source to `.ttr` v2 in bounded memory: pass 1 collects the
/// deduplicated static-branch table (first-observed targets become the
/// per-site defaults; divergent events carry overrides) and the event
/// count, pass 2 re-plays the source and packs the event stream. Peak
/// memory is the branch table — the static footprint — independent of the
/// trace length.
///
/// `make` must produce a source replaying the identical event stream on
/// each call; a divergent replay is detected and reported.
///
/// # Errors
///
/// As [`encode`], plus `InvalidData` when the two passes disagree.
pub fn encode_two_pass<S, F>(w: &mut dyn Write, mut make: F) -> io::Result<()>
where
    S: EventSource,
    F: FnMut() -> io::Result<S>,
{
    let mut sites: BTreeMap<(u64, u8), (Option<u64>, Option<u64>)> = BTreeMap::new();
    let mut event_count = 0u64;
    let mut first = make()?;
    let name = first.name().to_string();
    let category = first.category().to_string();
    while let Some(e) = first.next_event() {
        let slot = sites.entry((e.pc, kind_code(e.kind))).or_default();
        let side = if e.taken { &mut slot.0 } else { &mut slot.1 };
        side.get_or_insert(e.target);
        event_count += 1;
    }
    drop(first);
    if sites.len() as u64 > u64::from(MAX_BRANCH_TABLE) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{} static branches exceed the table cap", sites.len()),
        ));
    }
    let table: Vec<TableEntry> = sites
        .iter()
        .map(|(&(pc, kind), &(t, nt))| TableEntry {
            pc,
            // INVARIANT: round-trips kind_code's own output; the codes are
            // a closed set both functions enumerate.
            kind: code_kind(kind).expect("kind_code output is always valid"),
            taken_target: t.unwrap_or(pc),
            nottaken_target: nt.unwrap_or(pc),
        })
        .collect();
    let index_of: BTreeMap<(u64, u8), usize> =
        sites.keys().enumerate().map(|(i, &k)| (k, i)).collect();

    w.write_all(TTR_MAGIC)?;
    w.write_all(&[COMPRESSION_RAW])?;
    write_str(w, &name)?;
    write_str(w, &category)?;
    w.write_all(&(table.len() as u32).to_le_bytes())?;
    w.write_all(&event_count.to_le_bytes())?;

    let mut prev_pc = 0u64;
    for t in &table {
        varint::write_u64(w, t.pc.wrapping_sub(prev_pc))?;
        w.write_all(&[kind_code(t.kind)])?;
        varint::write_i64(w, t.taken_target.wrapping_sub(t.pc) as i64)?;
        varint::write_i64(w, t.nottaken_target.wrapping_sub(t.pc) as i64)?;
        prev_pc = t.pc;
    }

    let mut second = make()?;
    let mut prev_index = 0i64;
    let mut replayed = 0u64;
    while let Some(e) = second.next_event() {
        let index = *index_of.get(&(e.pc, kind_code(e.kind))).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "source replay produced a branch site the first pass never saw",
            )
        })?;
        encode_event_record(w, &table[index], index, &mut prev_index, &e)?;
        replayed += 1;
    }
    if replayed != event_count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("source replay produced {replayed} events, first pass saw {event_count}"),
        ));
    }
    Ok(())
}

/// A streaming `.ttr` v2 decoder: holds the header and static-branch table,
/// decodes events one at a time.
pub struct TtrReader<R> {
    name: String,
    category: String,
    table: Vec<TableEntry>,
    remaining: u64,
    total: u64,
    prev_index: i64,
    reader: R,
    error: Option<io::Error>,
}

impl<R: Read> TtrReader<R> {
    /// Reads the header and branch table, leaving `reader` positioned at
    /// the event stream.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on bad magic, an unsupported compression
    /// scheme, an oversized branch table, or corrupt table entries, plus
    /// any I/O error.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != TTR_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad .ttr magic"));
        }
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if byte[0] != COMPRESSION_RAW {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported .ttr compression scheme {}", byte[0]),
            ));
        }
        let name = read_str(&mut reader)?;
        let category = read_str(&mut reader)?;
        let mut n32 = [0u8; 4];
        reader.read_exact(&mut n32)?;
        let branch_count = u32::from_le_bytes(n32);
        if branch_count > MAX_BRANCH_TABLE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("branch table of {branch_count} entries exceeds the cap"),
            ));
        }
        let mut n64 = [0u8; 8];
        reader.read_exact(&mut n64)?;
        let total = u64::from_le_bytes(n64);
        // The count is still untrusted until the table bytes actually
        // decode: cap the up-front allocation so a ~30-byte crafted header
        // cannot reserve hundreds of MiB before the read fails.
        let mut table = Vec::with_capacity((branch_count as usize).min(1 << 16));
        let mut prev_pc = 0u64;
        for _ in 0..branch_count {
            let pc = prev_pc.wrapping_add(varint::read_u64(&mut reader)?);
            reader.read_exact(&mut byte)?;
            let kind = code_kind(byte[0])?;
            let taken_target = pc.wrapping_add(varint::read_i64(&mut reader)? as u64);
            let nottaken_target = pc.wrapping_add(varint::read_i64(&mut reader)? as u64);
            table.push(TableEntry { pc, kind, taken_target, nottaken_target });
            prev_pc = pc;
        }
        Ok(Self {
            name,
            category,
            table,
            remaining: total,
            total,
            prev_index: 0,
            reader,
            error: None,
        })
    }

    /// Static-branch-table size.
    pub fn static_branches(&self) -> usize {
        self.table.len()
    }

    fn decode_event(&mut self) -> io::Result<TraceEvent> {
        decode_event_record(&mut self.reader, &self.table, &mut self.prev_index)
    }
}

impl<R: Read> EventSource for TtrReader<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn category(&self) -> &str {
        &self.category
    }

    fn next_event(&mut self) -> Option<TraceEvent> {
        if self.remaining == 0 || self.error.is_some() {
            return None;
        }
        match self.decode_event() {
            Ok(e) => {
                self.remaining -= 1;
                Some(e)
            }
            Err(e) => {
                // EventSource has no error channel; record the failure and
                // end the stream so TraceDecoder::decode_error surfaces it.
                self.error = Some(e);
                None
            }
        }
    }
}

impl<R: Read> TraceDecoder for TtrReader<R> {
    fn format(&self) -> &'static str {
        "ttr"
    }

    fn decode_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    fn expected_events(&self) -> Option<u64> {
        Some(self.total)
    }

    fn remaining_events(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// The `.ttr` [`crate::TraceCodec`].
pub struct TtrCodec;

impl crate::TraceCodec for TtrCodec {
    fn name(&self) -> &'static str {
        "ttr"
    }

    fn description(&self) -> &'static str {
        "native .ttr v2: branch table + LEB128-packed event stream (lossless)"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["ttr"]
    }

    fn matches_magic(&self, prefix: &[u8]) -> bool {
        prefix.starts_with(TTR_MAGIC)
    }

    fn encode(&self, w: &mut dyn Write, trace: &Trace) -> io::Result<()> {
        encode(w, trace)
    }

    fn encode_stream(
        &self,
        w: &mut dyn Write,
        make_source: &mut dyn FnMut() -> io::Result<Box<dyn EventSource + Send>>,
    ) -> io::Result<()> {
        // Two passes over a regenerated source instead of one pass over a
        // materialized trace: same bytes, bounded memory.
        encode_two_pass(w, make_source)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn TraceDecoder + Send>> {
        let f = std::fs::File::open(path)?;
        Ok(Box::new(TtrReader::new(io::BufReader::new(f))?))
    }

    fn open_stream(
        &self,
        reader: Box<dyn Read + Send>,
        _fallback_name: String,
        _fallback_category: String,
    ) -> io::Result<crate::feed::FeedOpen> {
        // Table-first layout: v2 decodes front-to-back off a live stream
        // (name/category come from the container, fallbacks unused).
        Ok(crate::feed::FeedOpen::Streaming(Box::new(TtrReader::new(io::BufReader::new(
            reader,
        ))?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::suite::{by_name, Scale};

    fn encode_vec(t: &Trace) -> Vec<u8> {
        let mut buf = Vec::new();
        encode(&mut buf, t).unwrap();
        buf
    }

    fn decode_vec(buf: &[u8]) -> io::Result<Trace> {
        let mut r = TtrReader::new(buf)?;
        let mut events = Vec::new();
        while let Some(e) = r.next_event() {
            events.push(e);
        }
        if let Some(e) = r.error.take() {
            return Err(e);
        }
        Ok(Trace { name: r.name.clone(), category: r.category.clone(), events })
    }

    #[test]
    fn suite_trace_round_trips_losslessly() {
        let t = by_name("INT02", Scale::Tiny).unwrap().generate();
        let back = decode_vec(&encode_vec(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn uncond_events_round_trip() {
        let t = by_name("CLIENT01", Scale::Tiny).unwrap().generate();
        assert!(t.events.iter().any(|e| !e.kind.is_conditional()));
        assert_eq!(decode_vec(&encode_vec(&t)).unwrap(), t);
    }

    #[test]
    fn divergent_targets_use_overrides() {
        // Same (pc, taken) with two different targets: the second event
        // must survive via the override path.
        let mk = |target| TraceEvent {
            pc: 0x100,
            kind: BranchKind::IndirectJump,
            taken: true,
            target,
            uops_before: 3,
            load_addr: None,
        };
        let t = Trace {
            name: "ind".into(),
            category: "TEST".into(),
            events: vec![mk(0x8000), mk(0x9000), mk(0x8000)],
        };
        assert_eq!(decode_vec(&encode_vec(&t)).unwrap(), t);
    }

    #[test]
    fn extreme_addresses_round_trip() {
        let mk = |pc, target| TraceEvent {
            pc,
            kind: BranchKind::Conditional,
            taken: pc % 2 == 0,
            target,
            uops_before: u16::MAX,
            load_addr: Some(u64::MAX),
        };
        let t = Trace {
            name: "edge".into(),
            category: "TEST".into(),
            events: vec![mk(0, u64::MAX), mk(u64::MAX, 0), mk(1 << 63, 1)],
        };
        assert_eq!(decode_vec(&encode_vec(&t)).unwrap(), t);
    }

    #[test]
    fn rejects_bad_magic_and_compression() {
        assert!(decode_vec(b"NOTATTR2________").is_err());
        let t = Trace { name: "x".into(), category: "X".into(), events: vec![] };
        let mut buf = encode_vec(&t);
        buf[8] = 7; // unknown compression scheme
        assert!(decode_vec(&buf).is_err());
    }

    #[test]
    fn rejects_truncation_and_oversized_table() {
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        let mut buf = encode_vec(&t);
        buf.truncate(buf.len() / 3);
        assert!(decode_vec(&buf).is_err());
        // Header claiming a huge branch table must be rejected before any
        // allocation of that size.
        let empty = Trace { name: "x".into(), category: "X".into(), events: vec![] };
        let mut buf = encode_vec(&empty);
        let bc_pos = 8 + 1 + 2 + 1 + 2 + 1; // magic+comp+name("x")+cat("X")
        buf[bc_pos..bc_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_vec(&buf).is_err());
    }

    #[test]
    fn rejects_out_of_range_event_index() {
        let t = Trace {
            name: "x".into(),
            category: "X".into(),
            events: vec![TraceEvent {
                pc: 4,
                kind: BranchKind::Conditional,
                taken: true,
                target: 8,
                uops_before: 0,
                load_addr: None,
            }],
        };
        let mut buf = encode_vec(&t);
        // The event stream starts right after the single table entry; bump
        // its index delta to point past the table.
        let ev_start = buf.len() - 3; // index_delta + flags + uops
        buf[ev_start] = 0x04; // zigzag(2)
        assert!(decode_vec(&buf).is_err());
    }

    #[test]
    fn streamed_encode_is_byte_identical_to_materialized() {
        // CI `cmp`s recorded .ttr files against csv-round-tripped ones, so
        // the bounded-memory two-pass recorder must reproduce the
        // materialized encoder exactly.
        let spec = by_name("CLIENT01", Scale::Tiny).unwrap();
        let t = spec.generate();
        let materialized = encode_vec(&t);
        let mut streamed = Vec::new();
        let codec = TtrCodec;
        let mut make = || -> io::Result<Box<dyn EventSource + Send>> {
            Ok(Box::new(by_name("CLIENT01", Scale::Tiny).unwrap().stream()))
        };
        crate::TraceCodec::encode_stream(&codec, &mut streamed, &mut make).unwrap();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn two_pass_detects_divergent_replay() {
        // A source that replays differently on the second pass must be
        // reported, not silently mis-encoded.
        let t1 = by_name("MM01", Scale::Tiny).unwrap().generate();
        let mut short = t1.clone();
        short.events.truncate(t1.events.len() / 2);
        let mut calls = 0;
        let mut buf = Vec::new();
        let r = encode_two_pass(&mut buf, || {
            calls += 1;
            Ok(if calls == 1 { t1.stream() } else { short.stream() })
        });
        assert!(r.is_err());
    }

    #[test]
    fn packed_stream_is_compact() {
        let t = by_name("MM01", Scale::Tiny).unwrap().generate();
        let packed = encode_vec(&t).len() as f64;
        // The v1 fixed-width codec spends 21–29 bytes/event.
        let v1 = {
            let mut buf = Vec::new();
            workloads::io::write_trace(&mut buf, &t).unwrap();
            buf.len() as f64
        };
        assert!(
            packed < v1 / 3.0,
            "packed {packed} bytes vs fixed-width {v1} bytes"
        );
    }
}
