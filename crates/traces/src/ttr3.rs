//! The native `.ttr` v3 binary trace format: streaming, block-compressed,
//! table-at-end.
//!
//! v2 ([`crate::ttr`]) puts the static-branch table *before* the event
//! stream, which forces an encoder to see every event before it can write
//! byte one — fine for materialized traces, fatal for `Scale::Full`+
//! recording. v3 moves the table to a footer located by a fixed-size
//! trailer, so the writer streams events as they arrive and its peak
//! memory is one block buffer plus the static footprint, independent of
//! the trace length. Blocks are compressed through the pluggable
//! [`crate::scheme`] registry named by the header's scheme byte.
//!
//! Layout (all multi-byte integers little-endian, varints LEB128):
//!
//! ```text
//! header:
//!   magic            8 bytes  "TAGETTR3"
//!   scheme           u8       crate::scheme registry byte (0=raw, 1=lz)
//!   name             u16 len + UTF-8 bytes
//!   category         u16 len + UTF-8 bytes
//! block frames (repeated):
//!   event_count      u32      events in this block; 0 = end of blocks
//!   raw_len          u32      decompressed payload bytes
//!   comp_len         u32      on-disk payload bytes
//!   payload          comp_len bytes, scheme-compressed event records
//! branch table (branch_count entries, first-appearance order):
//!   pc_delta         ZigZag LEB128   pc − previous entry's pc (first: pc)
//!   kind             u8       0=cond 1=jump 2=ijump 3=call 4=ret
//!   taken_target     ZigZag LEB128   target − pc when taken
//!   nottaken_target  ZigZag LEB128   target − pc when not taken
//! trailer (28 bytes, fixed):
//!   branch_count     u32
//!   event_count      u64
//!   table_offset     u64      file offset of the branch table
//!   end magic        8 bytes  "TAGEEND3"
//! ```
//!
//! A decompressed block payload is a run of v2 event records
//! ([`crate::ttr::encode_event_record`]) whose site indices refer to the
//! footer table; the index delta baseline resets to 0 at every block
//! boundary, so blocks decode independently. Site defaults are
//! first-observed per side, exactly as in v2. The writer needs only
//! `Write` (it counts bytes to learn `table_offset`); the reader needs
//! `Read + Seek` to fetch the footer before streaming blocks.

use crate::decoder::{ContainerInfo, TraceDecoder};
use crate::scheme::{self, BlockScheme, MAX_BLOCK_RAW};
use crate::ttr::{
    code_kind, decode_event_record, encode_event_record, kind_code, read_str, write_str,
    TableEntry, MAX_BRANCH_TABLE,
};
use crate::varint;
use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use workloads::event::{EventSource, Trace, TraceEvent};

/// Leading magic of a `.ttr` v3 file.
pub const TTR3_MAGIC: &[u8; 8] = b"TAGETTR3";

/// Trailing magic closing the fixed trailer.
pub const TTR3_END_MAGIC: &[u8; 8] = b"TAGEEND3";

/// Feature bit in the header scheme byte: the file carries a seekable
/// block-index footer section between the frame sentinel and the branch
/// table. The compression scheme proper lives in the low 7 bits, so
/// pre-index readers reject flagged files loudly (unknown scheme byte)
/// instead of misparsing them, and flagged writers stay readable by any
/// index-aware reader even when the index is ignored.
pub const TTR3_INDEX_FLAG: u8 = 0x80;

/// Magic opening the block-index footer section.
pub const TTR3_INDEX_MAGIC: &[u8; 8] = b"TAGEIDX3";

/// Fixed trailer size: branch_count u32 + event_count u64 + table_offset
/// u64 + end magic.
pub const TTR3_TRAILER_LEN: u64 = 4 + 8 + 8 + 8;

/// Default decompressed-block flush threshold. Small enough that the
/// writer's working set stays cache-resident, large enough that the LZ
/// scheme sees whole loop periods.
pub const DEFAULT_BLOCK_RAW: usize = 64 * 1024;

/// Cap on events per block (second flush trigger, bounds the frame field).
pub const MAX_BLOCK_EVENTS: u32 = 1 << 20;

/// Writer-side summary returned by [`Ttr3Writer::finish`]: the bounded-
/// memory recording evidence (`peak_block_raw`) plus the compression
/// ledger feeding `inspect`/EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ttr3Summary {
    /// Events written.
    pub events: u64,
    /// Static-branch-table entries.
    pub static_branches: usize,
    /// Blocks flushed.
    pub blocks: u64,
    /// Total decompressed payload bytes.
    pub raw_bytes: u64,
    /// Total compressed payload bytes.
    pub comp_bytes: u64,
    /// Largest decompressed block buffer held at any point — the writer's
    /// peak transient allocation besides the static table.
    pub peak_block_raw: usize,
}

struct CountingWriter<W> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct SiteSlot {
    pc: u64,
    kind: u8,
    taken_target: Option<u64>,
    nottaken_target: Option<u64>,
}

impl SiteSlot {
    fn entry(&self) -> io::Result<TableEntry> {
        Ok(TableEntry {
            pc: self.pc,
            kind: code_kind(self.kind)?,
            taken_target: self.taken_target.unwrap_or(self.pc),
            nottaken_target: self.nottaken_target.unwrap_or(self.pc),
        })
    }
}

/// A single-pass, bounded-memory `.ttr` v3 encoder. Push events as they
/// arrive; memory held is one block buffer (~[`DEFAULT_BLOCK_RAW`]) plus
/// the growing static-branch table, never the event stream.
pub struct Ttr3Writer<W: Write> {
    out: CountingWriter<W>,
    scheme: &'static dyn BlockScheme,
    site_index: HashMap<(u64, u8), u32>,
    table: Vec<SiteSlot>,
    raw: Vec<u8>,
    block_events: u32,
    prev_index: i64,
    block_target: usize,
    summary: Ttr3Summary,
    // `Some` when the header scheme byte carries [`TTR3_INDEX_FLAG`]:
    // one `(frame_offset, cum_events)` pair per flushed block, emitted as
    // the footer index section by `finish`.
    block_index: Option<Vec<(u64, u64)>>,
}

impl<W: Write> Ttr3Writer<W> {
    /// Writes the header and prepares for streaming under the given
    /// scheme byte. OR [`TTR3_INDEX_FLAG`] into `scheme_id` to also
    /// record the seekable block-index footer; the low 7 bits name the
    /// compression scheme.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for an unregistered scheme byte or
    /// over-long name/category, plus any writer I/O error.
    pub fn new(writer: W, name: &str, category: &str, scheme_id: u8) -> io::Result<Self> {
        let scheme = scheme::by_id(scheme_id & !TTR3_INDEX_FLAG).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "no registered compression scheme for byte {}",
                    scheme_id & !TTR3_INDEX_FLAG
                ),
            )
        })?;
        let mut out = CountingWriter { inner: writer, written: 0 };
        out.write_all(TTR3_MAGIC)?;
        out.write_all(&[scheme_id])?;
        write_str(&mut out, name)?;
        write_str(&mut out, category)?;
        Ok(Self {
            out,
            scheme,
            site_index: HashMap::new(),
            table: Vec::new(),
            raw: Vec::with_capacity(DEFAULT_BLOCK_RAW + 64),
            block_events: 0,
            prev_index: 0,
            block_target: DEFAULT_BLOCK_RAW,
            summary: Ttr3Summary::default(),
            block_index: (scheme_id & TTR3_INDEX_FLAG != 0).then(Vec::new),
        })
    }

    /// Overrides the block flush threshold (mainly for tests; clamped to
    /// at least one event per block by construction).
    pub fn with_block_target(mut self, bytes: usize) -> Self {
        self.block_target = bytes.max(1);
        self
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the static footprint exceeds
    /// [`MAX_BRANCH_TABLE`] and any writer I/O error from a block flush.
    pub fn push(&mut self, e: &TraceEvent) -> io::Result<()> {
        let key = (e.pc, kind_code(e.kind));
        let index = match self.site_index.get(&key) {
            Some(&i) => i as usize,
            None => {
                if self.table.len() as u64 >= u64::from(MAX_BRANCH_TABLE) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "static branch count exceeds the table cap",
                    ));
                }
                let i = self.table.len();
                self.site_index.insert(key, i as u32);
                self.table.push(SiteSlot {
                    pc: key.0,
                    kind: key.1,
                    taken_target: None,
                    nottaken_target: None,
                });
                i
            }
        };
        let slot = &mut self.table[index];
        let side = if e.taken { &mut slot.taken_target } else { &mut slot.nottaken_target };
        // First-observed target per side becomes the decoder's default —
        // including for this very event, which therefore needs no override.
        side.get_or_insert(e.target);
        let entry = slot.entry()?;
        encode_event_record(&mut self.raw, &entry, index, &mut self.prev_index, e)?;
        self.block_events += 1;
        self.summary.events += 1;
        if self.raw.len() >= self.block_target || self.block_events >= MAX_BLOCK_EVENTS {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.block_events == 0 {
            return Ok(());
        }
        if let Some(index) = &mut self.block_index {
            // Absolute offset of this frame's header, and the events that
            // precede the block (summary.events already counts this
            // block's events).
            index.push((self.out.written, self.summary.events - u64::from(self.block_events)));
        }
        self.summary.peak_block_raw = self.summary.peak_block_raw.max(self.raw.len());
        let comp = self.scheme.compress(&self.raw);
        self.out.write_all(&self.block_events.to_le_bytes())?;
        self.out.write_all(&(self.raw.len() as u32).to_le_bytes())?;
        self.out.write_all(&(comp.len() as u32).to_le_bytes())?;
        self.out.write_all(&comp)?;
        self.summary.blocks += 1;
        self.summary.raw_bytes += self.raw.len() as u64;
        self.summary.comp_bytes += comp.len() as u64;
        self.raw.clear();
        self.block_events = 0;
        self.prev_index = 0;
        Ok(())
    }

    /// Flushes the final block and writes the footer table and trailer.
    ///
    /// # Errors
    ///
    /// Any writer I/O error.
    pub fn finish(mut self) -> io::Result<Ttr3Summary> {
        self.flush_block()?;
        self.out.write_all(&0u32.to_le_bytes())?;
        if let Some(index) = &self.block_index {
            // The index section sits between the frame sentinel and the
            // branch table; the trailer's table_offset still names the
            // table, so the section is located purely by the scheme-byte
            // feature flag.
            self.out.write_all(TTR3_INDEX_MAGIC)?;
            self.out.write_all(&(index.len() as u32).to_le_bytes())?;
            for (frame_offset, cum_events) in index {
                self.out.write_all(&frame_offset.to_le_bytes())?;
                self.out.write_all(&cum_events.to_le_bytes())?;
            }
        }
        let table_offset = self.out.written;
        let mut prev_pc = 0u64;
        for slot in &self.table {
            let t = slot.entry()?;
            varint::write_i64(&mut self.out, t.pc.wrapping_sub(prev_pc) as i64)?;
            self.out.write_all(&[kind_code(t.kind)])?;
            varint::write_i64(&mut self.out, t.taken_target.wrapping_sub(t.pc) as i64)?;
            varint::write_i64(&mut self.out, t.nottaken_target.wrapping_sub(t.pc) as i64)?;
            prev_pc = t.pc;
        }
        self.out.write_all(&(self.table.len() as u32).to_le_bytes())?;
        self.out.write_all(&self.summary.events.to_le_bytes())?;
        self.out.write_all(&table_offset.to_le_bytes())?;
        self.out.write_all(TTR3_END_MAGIC)?;
        self.out.flush()?;
        self.summary.static_branches = self.table.len();
        Ok(self.summary)
    }
}

/// Serializes a materialized trace as `.ttr` v3 under the given scheme.
///
/// # Errors
///
/// Propagates [`Ttr3Writer`] errors.
pub fn encode(w: &mut dyn Write, trace: &Trace, scheme_id: u8) -> io::Result<Ttr3Summary> {
    let mut writer = Ttr3Writer::new(w, &trace.name, &trace.category, scheme_id)?;
    for e in &trace.events {
        writer.push(e)?;
    }
    writer.finish()
}

/// A streaming `.ttr` v3 decoder: reads the footer table up front (one
/// seek), then streams blocks, holding one decompressed block at a time.
pub struct Ttr3Reader<R> {
    name: String,
    category: String,
    table: Vec<TableEntry>,
    scheme: &'static dyn BlockScheme,
    info: ContainerInfo,
    reader: R,
    remaining: u64,
    total: u64,
    block: Vec<u8>,
    block_pos: usize,
    block_left: u32,
    prev_index: i64,
    error: Option<io::Error>,
    // `Some` when the file carries the [`TTR3_INDEX_FLAG`] footer: one
    // `(frame_offset, cum_events)` pair per block, validated entry-by-
    // entry against the open-time frame-chain walk — `skip` can therefore
    // never mis-seek on a corrupt index (corruption fails at open).
    block_index: Option<Vec<(u64, u64)>>,
}

impl<R: Read + Seek> Ttr3Reader<R> {
    /// Reads the header, trailer, and footer table, validates the block
    /// frame chain, and leaves the reader positioned at the first block.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on bad leading/trailing magic, an
    /// unregistered scheme byte, an oversized branch table or block
    /// frame, a frame chain that does not land exactly on the footer, or
    /// a block-frame event total disagreeing with the trailer — plus any
    /// I/O error.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != TTR3_MAGIC {
            return Err(bad("bad .ttr v3 magic".to_string()));
        }
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        let has_index = byte[0] & TTR3_INDEX_FLAG != 0;
        let scheme_id = byte[0] & !TTR3_INDEX_FLAG;
        let scheme = scheme::by_id(scheme_id).ok_or_else(|| {
            bad(format!("unknown .ttr v3 compression scheme byte {scheme_id}"))
        })?;
        let name = read_str(&mut reader)?;
        let category = read_str(&mut reader)?;
        let events_start = reader.stream_position()?;

        let file_len = reader.seek(SeekFrom::End(0))?;
        if file_len < events_start + 4 + TTR3_TRAILER_LEN {
            return Err(bad("file too short for a .ttr v3 trailer".to_string()));
        }
        let trailer_start = file_len - TTR3_TRAILER_LEN;
        reader.seek(SeekFrom::Start(trailer_start))?;
        let mut n32 = [0u8; 4];
        let mut n64 = [0u8; 8];
        reader.read_exact(&mut n32)?;
        let branch_count = u32::from_le_bytes(n32);
        reader.read_exact(&mut n64)?;
        let total = u64::from_le_bytes(n64);
        reader.read_exact(&mut n64)?;
        let table_offset = u64::from_le_bytes(n64);
        reader.read_exact(&mut magic)?;
        if &magic != TTR3_END_MAGIC {
            return Err(bad("bad .ttr v3 end magic".to_string()));
        }
        if branch_count > MAX_BRANCH_TABLE {
            return Err(bad(format!("branch table of {branch_count} entries exceeds the cap")));
        }
        if table_offset < events_start + 4 || table_offset > trailer_start {
            return Err(bad(format!("table offset {table_offset} outside the file body")));
        }

        reader.seek(SeekFrom::Start(table_offset))?;
        let mut table = Vec::with_capacity((branch_count as usize).min(1 << 16));
        let mut prev_pc = 0u64;
        for _ in 0..branch_count {
            let pc = prev_pc.wrapping_add(varint::read_i64(&mut reader)? as u64);
            reader.read_exact(&mut byte)?;
            let kind = code_kind(byte[0])?;
            let taken_target = pc.wrapping_add(varint::read_i64(&mut reader)? as u64);
            let nottaken_target = pc.wrapping_add(varint::read_i64(&mut reader)? as u64);
            table.push(TableEntry { pc, kind, taken_target, nottaken_target });
            prev_pc = pc;
        }
        if reader.stream_position()? != trailer_start {
            return Err(bad("branch table does not end at the trailer".to_string()));
        }

        // Walk the frame chain once (headers only, payloads skipped) to
        // validate it and collect the block/compression vitals — and, as
        // a side product, the ground-truth block offsets the footer index
        // is checked against.
        reader.seek(SeekFrom::Start(events_start))?;
        let mut info = ContainerInfo {
            scheme_id,
            scheme: scheme.name(),
            blocks: 0,
            raw_bytes: 0,
            comp_bytes: 0,
            index_bytes: None,
        };
        let mut frame_events = 0u64;
        let mut walk_index: Vec<(u64, u64)> = Vec::new();
        loop {
            let frame_offset = reader.stream_position()?;
            let (events, raw_len, comp_len) = read_frame(&mut reader)?;
            if events == 0 {
                break;
            }
            walk_index.push((frame_offset, frame_events));
            info.blocks += 1;
            info.raw_bytes += u64::from(raw_len);
            info.comp_bytes += u64::from(comp_len);
            frame_events += u64::from(events);
            let pos = reader.stream_position()?;
            if u64::from(comp_len) > table_offset.saturating_sub(pos) {
                return Err(bad(format!("block payload of {comp_len} bytes overruns the table")));
            }
            reader.seek(SeekFrom::Current(i64::from(comp_len)))?;
        }
        let block_index = if has_index {
            // The index section sits right after the frame sentinel. It
            // must agree with the walk exactly — a corrupt or truncated
            // index fails the open loudly instead of mis-seeking later.
            reader.read_exact(&mut magic)?;
            if &magic != TTR3_INDEX_MAGIC {
                return Err(bad("bad .ttr v3 block-index magic".to_string()));
            }
            reader.read_exact(&mut n32)?;
            let count = u32::from_le_bytes(n32);
            if u64::from(count) != info.blocks {
                return Err(bad(format!(
                    "block index declares {count} blocks, the frame chain holds {}",
                    info.blocks
                )));
            }
            for (i, &(frame_offset, cum_events)) in walk_index.iter().enumerate() {
                reader.read_exact(&mut n64)?;
                let idx_offset = u64::from_le_bytes(n64);
                reader.read_exact(&mut n64)?;
                let idx_events = u64::from_le_bytes(n64);
                if (idx_offset, idx_events) != (frame_offset, cum_events) {
                    return Err(bad(format!(
                        "block index entry {i} ({idx_offset}, {idx_events}) disagrees with \
                         the frame chain ({frame_offset}, {cum_events})"
                    )));
                }
            }
            info.index_bytes = Some(8 + 4 + 16 * u64::from(count));
            Some(walk_index)
        } else {
            None
        };
        if reader.stream_position()? != table_offset {
            return Err(bad("block chain does not end at the branch table".to_string()));
        }
        if frame_events != total {
            return Err(bad(format!(
                "block frames hold {frame_events} events, trailer declares {total}"
            )));
        }
        reader.seek(SeekFrom::Start(events_start))?;

        Ok(Self {
            name,
            category,
            table,
            scheme,
            info,
            reader,
            remaining: total,
            total,
            block: Vec::new(),
            block_pos: 0,
            block_left: 0,
            prev_index: 0,
            error: None,
            block_index,
        })
    }

    /// Static-branch-table size.
    pub fn static_branches(&self) -> usize {
        self.table.len()
    }

    fn refill_block(&mut self) -> io::Result<()> {
        if self.block_pos != self.block.len() {
            return Err(bad(format!(
                "{} undecoded bytes left at the end of a block",
                self.block.len() - self.block_pos
            )));
        }
        let (events, raw_len, comp_len) = read_frame(&mut self.reader)?;
        if events == 0 {
            // remaining > 0 here (next_event checks first); the count
            // shortfall is reported through remaining_events/finish.
            self.block_left = 0;
            return Err(bad("block chain ended before the declared event count".to_string()));
        }
        let mut comp = vec![0u8; comp_len as usize];
        self.reader.read_exact(&mut comp)?;
        self.block = self.scheme.decompress(&comp, raw_len as usize)?;
        self.block_pos = 0;
        self.block_left = events;
        self.prev_index = 0;
        Ok(())
    }

    fn decode_event(&mut self) -> io::Result<TraceEvent> {
        if self.block_left == 0 {
            self.refill_block()?;
        }
        let mut slice = &self.block[self.block_pos..];
        let before = slice.len();
        let e = decode_event_record(&mut slice, &self.table, &mut self.prev_index)?;
        self.block_pos += before - slice.len();
        self.block_left -= 1;
        Ok(e)
    }
}

fn read_frame<R: Read>(r: &mut R) -> io::Result<(u32, u32, u32)> {
    let mut n32 = [0u8; 4];
    r.read_exact(&mut n32)?;
    let events = u32::from_le_bytes(n32);
    if events == 0 {
        return Ok((0, 0, 0));
    }
    r.read_exact(&mut n32)?;
    let raw_len = u32::from_le_bytes(n32);
    r.read_exact(&mut n32)?;
    let comp_len = u32::from_le_bytes(n32);
    if events > MAX_BLOCK_EVENTS {
        return Err(bad(format!("block of {events} events exceeds the cap")));
    }
    if raw_len as usize > MAX_BLOCK_RAW {
        return Err(bad(format!("block of {raw_len} raw bytes exceeds the cap")));
    }
    if comp_len as usize > MAX_BLOCK_RAW + (MAX_BLOCK_RAW >> 3) {
        return Err(bad(format!("block of {comp_len} compressed bytes exceeds the cap")));
    }
    Ok((events, raw_len, comp_len))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl<R: Read + Seek> EventSource for Ttr3Reader<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn category(&self) -> &str {
        &self.category
    }

    fn next_event(&mut self) -> Option<TraceEvent> {
        if self.remaining == 0 || self.error.is_some() {
            return None;
        }
        match self.decode_event() {
            Ok(e) => {
                self.remaining -= 1;
                Some(e)
            }
            Err(e) => {
                // EventSource has no error channel; record the failure and
                // end the stream so TraceDecoder::decode_error surfaces it.
                self.error = Some(e);
                None
            }
        }
    }

    fn skip(&mut self, n: u64) -> u64 {
        let n = n.min(self.remaining);
        if n == 0 || self.error.is_some() {
            return 0;
        }
        let start = self.total - self.remaining;
        let target = start + n;
        if let Some(index) = &self.block_index {
            // Events decoded so far sit `block_left` short of the current
            // block's end; a target past that end is reached by seeking
            // straight to the frame holding it (the index was validated
            // against the frame chain at open), never by decompressing the
            // blocks in between.
            if target > start + u64::from(self.block_left) {
                let i = index.partition_point(|&(_, cum)| cum <= target) - 1;
                let (frame_offset, cum_events) = index[i];
                match self.reader.seek(SeekFrom::Start(frame_offset)) {
                    Ok(_) => {
                        self.block.clear();
                        self.block_pos = 0;
                        self.block_left = 0;
                        self.prev_index = 0;
                        self.remaining = self.total - cum_events;
                    }
                    Err(e) => {
                        self.error = Some(e);
                        return 0;
                    }
                }
            }
        }
        // Decode-discard the within-block remainder to land exactly on
        // `target` (the whole distance, for index-less files).
        while self.total - self.remaining < target {
            if self.next_event().is_none() {
                break;
            }
        }
        (self.total - self.remaining) - start
    }
}

impl<R: Read + Seek> TraceDecoder for Ttr3Reader<R> {
    fn format(&self) -> &'static str {
        "ttr3"
    }

    fn container_info(&self) -> Option<ContainerInfo> {
        Some(self.info)
    }

    fn decode_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    fn expected_events(&self) -> Option<u64> {
        Some(self.total)
    }

    fn remaining_events(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// The `.ttr` v3 [`crate::TraceCodec`]. Carries the scheme byte used for
/// encoding; decoding reads whatever scheme the file names.
pub struct Ttr3Codec {
    /// Scheme byte for `encode`/`encode_stream` output.
    pub scheme_id: u8,
}

impl Default for Ttr3Codec {
    /// Compression is the point of v3: default to the LZ scheme, with the
    /// seekable block index on (it costs 16 bytes per ~64 KiB block and
    /// buys O(1) `skip` for sampled simulation).
    fn default() -> Self {
        Self { scheme_id: 1 | TTR3_INDEX_FLAG }
    }
}

impl crate::TraceCodec for Ttr3Codec {
    fn name(&self) -> &'static str {
        "ttr3"
    }

    fn description(&self) -> &'static str {
        "native .ttr v3: streaming table-at-end container, block-compressed (lossless)"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["ttr3"]
    }

    fn matches_magic(&self, prefix: &[u8]) -> bool {
        prefix.starts_with(TTR3_MAGIC)
    }

    fn encode(&self, w: &mut dyn Write, trace: &Trace) -> io::Result<()> {
        encode(w, trace, self.scheme_id).map(|_| ())
    }

    fn encode_stream(
        &self,
        w: &mut dyn Write,
        make_source: &mut dyn FnMut() -> io::Result<Box<dyn EventSource + Send>>,
    ) -> io::Result<()> {
        // Single pass: v3 is the streaming-native container.
        let mut src = make_source()?;
        let mut writer = Ttr3Writer::new(w, src.name(), src.category(), self.scheme_id)?;
        while let Some(e) = src.next_event() {
            writer.push(&e)?;
        }
        writer.finish().map(|_| ())
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn TraceDecoder + Send>> {
        let f = std::fs::File::open(path)?;
        Ok(Box::new(Ttr3Reader::new(io::BufReader::new(f))?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use workloads::suite::{by_name, Scale};

    fn encode_vec(t: &Trace, scheme_id: u8) -> Vec<u8> {
        let mut buf = Vec::new();
        encode(&mut buf, t, scheme_id).unwrap();
        buf
    }

    fn decode_vec(buf: Vec<u8>) -> io::Result<Trace> {
        let mut r = Ttr3Reader::new(Cursor::new(buf))?;
        let name = r.name.clone();
        let category = r.category.clone();
        let mut events = Vec::new();
        while let Some(e) = r.next_event() {
            events.push(e);
        }
        crate::decoder::finish(&r)?;
        Ok(Trace { name, category, events })
    }

    #[test]
    fn suite_trace_round_trips_under_both_schemes() {
        let t = by_name("INT02", Scale::Tiny).unwrap().generate();
        for scheme_id in [0u8, 1] {
            let back = decode_vec(encode_vec(&t, scheme_id)).unwrap();
            assert_eq!(back, t, "scheme {scheme_id}");
        }
    }

    #[test]
    fn multi_block_trace_round_trips() {
        // A tiny block target forces many blocks, exercising the per-block
        // prev_index reset and the frame chain walk.
        let t = by_name("CLIENT01", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        let mut w = Ttr3Writer::new(&mut buf, &t.name, &t.category, 1)
            .unwrap()
            .with_block_target(128);
        for e in &t.events {
            w.push(e).unwrap();
        }
        let summary = w.finish().unwrap();
        assert!(summary.blocks > 10, "only {} blocks", summary.blocks);
        assert_eq!(summary.events, t.events.len() as u64);
        assert!(summary.peak_block_raw < 256, "peak {}", summary.peak_block_raw);
        let mut r = Ttr3Reader::new(Cursor::new(buf)).unwrap();
        let info = r.container_info().unwrap();
        assert_eq!(info.blocks, summary.blocks);
        assert_eq!(info.raw_bytes, summary.raw_bytes);
        assert_eq!(info.comp_bytes, summary.comp_bytes);
        assert_eq!(info.scheme, "lz");
        let mut events = Vec::new();
        while let Some(e) = r.next_event() {
            events.push(e);
        }
        crate::decoder::finish(&r).unwrap();
        assert_eq!(events, t.events);
    }

    #[test]
    fn writer_memory_is_bounded_by_the_block_target() {
        // The bounded-memory claim: the writer's transient buffer peaks
        // near the flush threshold no matter how many events stream
        // through (here ~40× the threshold's worth).
        let t = by_name("MM01", Scale::Small).unwrap().generate();
        let mut buf = Vec::new();
        let mut w = Ttr3Writer::new(&mut buf, &t.name, &t.category, 1)
            .unwrap()
            .with_block_target(1024);
        for e in &t.events {
            w.push(e).unwrap();
        }
        let summary = w.finish().unwrap();
        assert!(summary.raw_bytes > 40 * 1024, "trace too small: {}", summary.raw_bytes);
        // One event record never exceeds ~32 bytes, so the buffer peaks
        // just past the threshold.
        assert!(summary.peak_block_raw < 1024 + 64, "peak {}", summary.peak_block_raw);
    }

    #[test]
    fn compressed_v3_decodes_to_v2_identical_stream() {
        // v3(lz) → decode → re-encode as v2 must equal the direct v2
        // encoding of the source trace, byte for byte.
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        let back = decode_vec(encode_vec(&t, 1)).unwrap();
        let mut direct_v2 = Vec::new();
        crate::ttr::encode(&mut direct_v2, &t).unwrap();
        let mut roundtrip_v2 = Vec::new();
        crate::ttr::encode(&mut roundtrip_v2, &back).unwrap();
        assert_eq!(roundtrip_v2, direct_v2);
    }

    #[test]
    fn lz_v3_is_at_most_seven_tenths_of_v2() {
        // The compression acceptance bar: on the suite fixtures, v3+lz
        // must come in at ≤ 0.7× the v2 size (and beat stored v3 blocks),
        // while staying lossless.
        for name in ["CLIENT01", "MM01", "INT02", "WS01"] {
            let t = by_name(name, Scale::Tiny).unwrap().generate();
            let mut v2 = Vec::new();
            crate::ttr::encode(&mut v2, &t).unwrap();
            let raw = encode_vec(&t, 0);
            let lz = encode_vec(&t, 1);
            assert!(
                lz.len() * 10 <= v2.len() * 7,
                "{name}: v3+lz {} bytes vs v2 {} bytes",
                lz.len(),
                v2.len()
            );
            assert!(lz.len() < raw.len(), "{name}: lz {} >= raw {}", lz.len(), raw.len());
            assert_eq!(decode_vec(lz).unwrap(), t, "{name}");
        }
    }

    #[test]
    fn rejects_bad_magic_scheme_and_trailer() {
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        let good = encode_vec(&t, 1);
        // Leading magic.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Ttr3Reader::new(Cursor::new(bad_magic)).is_err());
        // Unregistered scheme byte.
        let mut bad_scheme = good.clone();
        bad_scheme[8] = 200;
        assert!(Ttr3Reader::new(Cursor::new(bad_scheme)).is_err());
        // Clipped trailer magic.
        let mut bad_end = good.clone();
        let n = bad_end.len();
        bad_end[n - 1] ^= 0xFF;
        assert!(Ttr3Reader::new(Cursor::new(bad_end)).is_err());
        // Truncations anywhere must error at open or at finish — never
        // panic, never silently succeed.
        for frac in 1..8 {
            let cut = good.len() * frac / 8;
            let r = decode_vec(good[..cut].to_vec());
            assert!(r.is_err(), "truncation to {cut} bytes went unnoticed");
        }
    }

    #[test]
    fn unconditional_and_divergent_target_events_round_trip() {
        let t = by_name("CLIENT01", Scale::Tiny).unwrap().generate();
        assert!(t.events.iter().any(|e| !e.kind.is_conditional()));
        assert_eq!(decode_vec(encode_vec(&t, 1)).unwrap(), t);
    }

    fn encode_indexed(t: &Trace, block_target: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = Ttr3Writer::new(&mut buf, &t.name, &t.category, 1 | TTR3_INDEX_FLAG)
            .unwrap()
            .with_block_target(block_target);
        for e in &t.events {
            w.push(e).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn indexed_container_round_trips_and_reports_the_index() {
        let t = by_name("INT02", Scale::Tiny).unwrap().generate();
        let buf = encode_indexed(&t, 256);
        let mut r = Ttr3Reader::new(Cursor::new(buf.clone())).unwrap();
        let info = r.container_info().unwrap();
        // The flag is masked out of the reported scheme byte.
        assert_eq!(info.scheme_id, 1);
        assert_eq!(info.scheme, "lz");
        assert!(info.blocks > 1);
        assert_eq!(info.index_bytes, Some(8 + 4 + 16 * info.blocks));
        let mut events = Vec::new();
        while let Some(e) = r.next_event() {
            events.push(e);
        }
        crate::decoder::finish(&r).unwrap();
        assert_eq!(events, t.events);
        // An index-less encoding reports None and decodes identically.
        let plain = Ttr3Reader::new(Cursor::new(encode_vec(&t, 1))).unwrap();
        assert_eq!(plain.container_info().unwrap().index_bytes, None);
    }

    #[test]
    fn seek_skip_lands_exactly_where_decode_discard_does() {
        let t = by_name("CLIENT01", Scale::Tiny).unwrap().generate();
        let total = t.events.len() as u64;
        let indexed = encode_indexed(&t, 200);
        let plain = encode_vec(&t, 1);
        // Offsets straddling block boundaries, plus the degenerate ends.
        for n in [0, 1, 7, 50, 51, 52, total / 2, total - 1, total, total + 10] {
            let mut seeker = Ttr3Reader::new(Cursor::new(indexed.clone())).unwrap();
            let mut walker = Ttr3Reader::new(Cursor::new(plain.clone())).unwrap();
            assert_eq!(seeker.skip(n), walker.skip(n), "skip count at n={n}");
            let rest: Vec<_> = std::iter::from_fn(|| seeker.next_event()).collect();
            let expect: Vec<_> = std::iter::from_fn(|| walker.next_event()).collect();
            assert!(seeker.decode_error().is_none(), "decode error at n={n}");
            assert_eq!(rest, expect, "stream mismatch after skip({n})");
            assert_eq!(rest.len() as u64, total.saturating_sub(n.min(total)));
        }
        // Repeated short skips interleaved with decoding also line up.
        let mut seeker = Ttr3Reader::new(Cursor::new(indexed)).unwrap();
        let mut walker = Ttr3Reader::new(Cursor::new(plain)).unwrap();
        loop {
            assert_eq!(seeker.skip(37), walker.skip(37));
            let (a, b) = (seeker.next_event(), walker.next_event());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert!(seeker.decode_error().is_none());
    }

    #[test]
    fn corrupt_or_truncated_index_fails_at_open() {
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        let good = encode_indexed(&t, 256);
        assert!(Ttr3Reader::new(Cursor::new(good.clone())).is_ok());
        let r = Ttr3Reader::new(Cursor::new(good.clone())).unwrap();
        let index_bytes = r.info.index_bytes.unwrap() as usize;
        drop(r);
        // The index section sits right before the branch table; locate it
        // through the trailer's table offset.
        let table_offset = u64::from_le_bytes(
            good[good.len() - 16..good.len() - 8].try_into().unwrap(),
        ) as usize;
        let index_start = table_offset - index_bytes;
        assert_eq!(&good[index_start..index_start + 8], TTR3_INDEX_MAGIC);
        // Flip bytes across the magic, the count, and every entry: each
        // single-byte corruption must be rejected at open, loudly.
        for at in index_start..table_offset {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            assert!(
                Ttr3Reader::new(Cursor::new(bad)).is_err(),
                "corrupt index byte at {at} went unnoticed"
            );
        }
        // A flagged header whose index section was cut out entirely (with
        // the trailer's table offset re-pointed so the rest still lines
        // up): the promised section is missing, so the open fails.
        let mut gutted = Vec::new();
        gutted.extend_from_slice(&good[..index_start]);
        gutted.extend_from_slice(&good[table_offset..]);
        let n = gutted.len();
        gutted[n - 16..n - 8]
            .copy_from_slice(&((table_offset - index_bytes) as u64).to_le_bytes());
        assert!(Ttr3Reader::new(Cursor::new(gutted)).is_err());
    }
}
