//! The pluggable codec interface and the format-autodetecting registry.

use crate::decoder::TraceDecoder;
use std::io::{self, Read, Write};
use std::path::Path;
use workloads::event::{EventSource, Trace};

/// How many leading bytes [`CodecRegistry::detect`] hands to
/// [`TraceCodec::matches_magic`].
pub const SNIFF_LEN: usize = 16;

/// One on-disk trace format.
///
/// Encoding is an offline operation and works from a materialized
/// [`Trace`]; decoding is the hot ingestion path and must stream — the
/// returned [`EventSource`] may hold the static-branch table in memory but
/// never the event stream.
pub trait TraceCodec: Send + Sync {
    /// Short format name, e.g. `"ttr"` (also the `--format` CLI token).
    fn name(&self) -> &'static str;

    /// One-line human description for CLI listings.
    fn description(&self) -> &'static str;

    /// File extensions (lower-case, no dot) this codec claims.
    fn extensions(&self) -> &'static [&'static str];

    /// Whether the first [`SNIFF_LEN`] bytes of a file identify this
    /// format. Formats without leading magic (CBP's header is a trailing
    /// footer) return `false` and are matched by extension instead.
    fn matches_magic(&self, prefix: &[u8]) -> bool;

    /// Whether decoding loses information ([`crate::CbpCodec`] carries
    /// neither µop padding nor load dependences).
    fn lossy(&self) -> bool {
        false
    }

    /// Serializes `trace` to `w`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if the trace is not representable (e.g. more
    /// static branches than CBP's 15-bit index can address) and any I/O
    /// error from the writer.
    fn encode(&self, w: &mut dyn Write, trace: &Trace) -> io::Result<()>;

    /// Streams a source into the encoded output without materializing the
    /// event stream, where the format allows it. `make_source` must
    /// produce a fresh source replaying the identical stream on every
    /// call: single-pass formats (`.ttr` v3) call it once, table-first
    /// formats (`.ttr` v2) twice. The default materializes one pass and
    /// delegates to [`TraceCodec::encode`] — correct for any codec, with
    /// memory proportional to the trace.
    ///
    /// Overrides must produce output byte-identical to encoding the
    /// materialized trace.
    ///
    /// # Errors
    ///
    /// As [`TraceCodec::encode`], plus any error from `make_source`.
    fn encode_stream(
        &self,
        w: &mut dyn Write,
        make_source: &mut dyn FnMut() -> io::Result<Box<dyn EventSource + Send>>,
    ) -> io::Result<()> {
        let mut src = make_source()?;
        let name = src.name().to_string();
        let category = src.category().to_string();
        let mut events = Vec::new();
        while let Some(e) = src.next_event() {
            events.push(e);
        }
        self.encode(w, &Trace { name, category, events })
    }

    /// Opens `path` as a streaming event source. Codecs that do not embed
    /// trace metadata derive name/category from the file name (see
    /// [`file_meta`]).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for corrupt or mismatched content and any I/O
    /// error from opening or reading the file.
    fn open(&self, path: &Path) -> io::Result<Box<dyn TraceDecoder + Send>>;

    /// Opens a decoder over a *non-seekable* byte stream — the network
    /// ingestion entry point (see [`crate::feed`]). Codecs whose layout
    /// decodes front-to-back (`.ttr` v2, CSV) override this and return
    /// [`FeedOpen::Streaming`]; formats that need random access (`.ttr`
    /// v3's table-at-end trailer, CBP's trailing footer) keep the default,
    /// which hands the reader back as [`FeedOpen::NeedsSpool`] so
    /// [`CodecRegistry::open_feed`] can spool it to disk first. The
    /// fallback name/category play the role [`file_meta`] plays in
    /// [`TraceCodec::open`] for codecs that do not embed metadata.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for corrupt header bytes and any I/O error
    /// from the reader.
    fn open_stream(
        &self,
        reader: Box<dyn Read + Send>,
        fallback_name: String,
        fallback_category: String,
    ) -> io::Result<crate::feed::FeedOpen> {
        let _ = (fallback_name, fallback_category);
        Ok(crate::feed::FeedOpen::NeedsSpool(reader))
    }
}

/// Derives `(name, category)` from a trace file name: the name is the file
/// stem, the category its leading alphabetic prefix upper-cased (so
/// `client02.ttr` groups under `CLIENT` exactly like the synthetic suite).
/// Falls back to `("trace", "TRACE")` for unusable stems.
pub fn file_meta(path: &Path) -> (String, String) {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    if stem.is_empty() {
        return ("trace".to_string(), "TRACE".to_string());
    }
    let prefix: String =
        stem.chars().take_while(|c| c.is_ascii_alphabetic()).collect::<String>().to_uppercase();
    let category = if prefix.is_empty() { "TRACE".to_string() } else { prefix };
    (stem.to_string(), category)
}

/// The codec registry: autodetects a file's format by magic bytes first,
/// extension second.
pub struct CodecRegistry {
    codecs: Vec<Box<dyn TraceCodec>>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self { codecs: Vec::new() }
    }

    /// The built-in formats: `.ttr` v2, `.ttr3` block-compressed,
    /// CBP-style, CSV.
    pub fn standard() -> Self {
        let mut r = Self::new();
        r.register(Box::new(crate::ttr::TtrCodec));
        r.register(Box::new(crate::ttr3::Ttr3Codec::default()));
        r.register(Box::new(crate::cbp::CbpCodec));
        r.register(Box::new(crate::csv::CsvCodec));
        r
    }

    /// Adds a codec (later registrations lose magic/extension ties).
    pub fn register(&mut self, codec: Box<dyn TraceCodec>) {
        self.codecs.push(codec);
    }

    /// All registered codecs.
    pub fn codecs(&self) -> impl Iterator<Item = &dyn TraceCodec> {
        self.codecs.iter().map(Box::as_ref)
    }

    /// Looks a codec up by its [`TraceCodec::name`].
    pub fn by_name(&self, name: &str) -> Option<&dyn TraceCodec> {
        self.codecs().find(|c| c.name() == name)
    }

    /// The codec claiming `path`'s extension, if any.
    pub fn by_extension(&self, path: &Path) -> Option<&dyn TraceCodec> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        self.codecs().find(|c| c.extensions().contains(&ext.as_str()))
    }

    /// Detects the format of an existing file: reads the first
    /// [`SNIFF_LEN`] bytes and asks each codec's magic matcher, falling
    /// back to the extension.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when no codec claims the file, plus any I/O
    /// error from reading the prefix.
    pub fn detect(&self, path: &Path) -> io::Result<&dyn TraceCodec> {
        let mut prefix = [0u8; SNIFF_LEN];
        let mut f = std::fs::File::open(path)?;
        let mut filled = 0;
        while filled < SNIFF_LEN {
            let n = f.read(&mut prefix[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        if let Some(c) = self.codecs().find(|c| c.matches_magic(&prefix[..filled])) {
            return Ok(c);
        }
        self.by_extension(path).ok_or_else(|| {
            let known: Vec<&str> = self.codecs().map(|c| c.name()).collect();
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: unrecognized trace format (known: {})", path.display(), known.join(", ")),
            )
        })
    }

    /// Detects the format of `path` and opens it as a streaming source.
    ///
    /// # Errors
    ///
    /// Propagates [`CodecRegistry::detect`] and [`TraceCodec::open`]
    /// errors.
    pub fn open(&self, path: &Path) -> io::Result<Box<dyn TraceDecoder + Send>> {
        self.detect(path)?.open(path)
    }
}

impl Default for CodecRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn file_meta_splits_prefix() {
        assert_eq!(
            file_meta(Path::new("/tmp/CLIENT02.ttr")),
            ("CLIENT02".to_string(), "CLIENT".to_string())
        );
        assert_eq!(
            file_meta(Path::new("ws7-recorded.csv")),
            ("ws7-recorded".to_string(), "WS".to_string())
        );
        assert_eq!(file_meta(Path::new("1234.cbp")), ("1234".to_string(), "TRACE".to_string()));
        assert_eq!(file_meta(Path::new("")), ("trace".to_string(), "TRACE".to_string()));
    }

    #[test]
    fn standard_registry_has_four_codecs() {
        let r = CodecRegistry::standard();
        let names: Vec<&str> = r.codecs().map(|c| c.name()).collect();
        assert_eq!(names, ["ttr", "ttr3", "cbp", "csv"]);
        assert!(r.by_name("ttr").is_some());
        assert!(r.by_name("ttr3").is_some());
        assert!(r.by_name("nope").is_none());
    }

    #[test]
    fn extension_lookup_is_case_insensitive() {
        let r = CodecRegistry::standard();
        assert_eq!(r.by_extension(&PathBuf::from("x.TTR")).unwrap().name(), "ttr");
        assert_eq!(r.by_extension(&PathBuf::from("x.csv")).unwrap().name(), "csv");
        assert!(r.by_extension(&PathBuf::from("x.bin")).is_none());
        assert!(r.by_extension(&PathBuf::from("noext")).is_none());
    }

    #[test]
    fn detect_rejects_unknown_files() {
        let dir = std::env::temp_dir().join(format!("tage-traces-detect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("garbage.bin");
        std::fs::write(&p, b"no codec claims this").unwrap();
        let r = CodecRegistry::standard();
        assert!(r.detect(&p).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
