//! The streaming-decoder trait layered on [`EventSource`].
//!
//! [`EventSource::next_event`] has no error channel — the simulation engine
//! treats `None` as end-of-stream. A decoder hitting corrupt bytes
//! mid-stream must therefore end the stream *and* record what went wrong;
//! [`TraceDecoder::decode_error`] lets callers distinguish a clean EOF from
//! a truncated simulation after the pass completes.

use std::io;
use workloads::event::EventSource;

/// Container-level vitals of a block-structured trace file, for
/// `tage_trace inspect`: which compression scheme the file carries and
/// how well it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContainerInfo {
    /// The compression-scheme byte from the container header (feature
    /// flags masked off).
    pub scheme_id: u8,
    /// The scheme's registry name (e.g. `"lz"`).
    pub scheme: &'static str,
    /// Number of event blocks.
    pub blocks: u64,
    /// Total decompressed payload bytes across all blocks.
    pub raw_bytes: u64,
    /// Total on-disk payload bytes across all blocks.
    pub comp_bytes: u64,
    /// On-disk bytes of the seekable block-index footer section, when the
    /// container carries one (`None` for index-less files).
    pub index_bytes: Option<u64>,
}

impl ContainerInfo {
    /// Compressed/raw payload ratio (1.0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.comp_bytes as f64 / self.raw_bytes as f64
        }
    }
}

/// A streaming trace decoder: an [`EventSource`] with error reporting and
/// optional size metadata.
pub trait TraceDecoder: EventSource {
    /// Codec name that produced this decoder (e.g. `"ttr"`).
    fn format(&self) -> &'static str;

    /// Block/compression vitals, for formats with a block structure.
    fn container_info(&self) -> Option<ContainerInfo> {
        None
    }

    /// The decode error that ended the stream early, if any. Checked after
    /// draining the source; `None` means the stream ended cleanly.
    fn decode_error(&self) -> Option<&io::Error> {
        None
    }

    /// Total events the container claims, when the format records it.
    fn expected_events(&self) -> Option<u64> {
        None
    }

    /// Events not yet decoded, when the format records a total.
    fn remaining_events(&self) -> Option<u64> {
        None
    }
}

/// Drains `decoder`, returning the event count or the recorded decode
/// error. Used by `tage_trace inspect` and the post-simulation integrity
/// check.
///
/// # Errors
///
/// Returns the decoder's recorded error when the stream ended on corrupt
/// input, and `InvalidData` when the container promised more events than it
/// delivered.
pub fn drain_checked<D: TraceDecoder + ?Sized>(decoder: &mut D) -> io::Result<u64> {
    let mut n = 0u64;
    while decoder.next_event().is_some() {
        n += 1;
    }
    finish(decoder)?;
    Ok(n)
}

/// Post-stream integrity check: surfaces a recorded decode error or an
/// event-count shortfall after the caller drained `decoder` itself (e.g.
/// through `pipeline::simulate_source`).
///
/// # Errors
///
/// See [`drain_checked`].
pub fn finish<D: TraceDecoder + ?Sized>(decoder: &D) -> io::Result<()> {
    if let Some(e) = decoder.decode_error() {
        return Err(io::Error::new(e.kind(), format!("{}: {e}", decoder.format())));
    }
    if let Some(left) = decoder.remaining_events() {
        if left > 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("stream ended {left} events short of the declared count"),
            ));
        }
    }
    Ok(())
}
