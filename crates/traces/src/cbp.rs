//! CBP-style trace codec: the branch-table + 16-bit entry-stream layout of
//! `cbp-experiments` (`dynamorio/common.h`), minus the zstd layer.
//!
//! ```text
//! file:
//!   entry    u16 × num_entries   bit 15 = taken, bits 0–14 = branch index
//!   branch   24 bytes × num_brs  inst_addr u64, targ_addr u64,
//!                                inst_length u32, branch_type u32
//!   footer   num_brs u64, num_entries u64
//! ```
//!
//! The upstream format zstd-compresses the entry stream; this offline
//! variant stores it raw (the container has no crates.io access — swap the
//! entry-region reader for a zstd decoder when the real crate lands).
//!
//! The format is **lossy** for this simulator: entries carry neither µop
//! padding nor load dependences, so decoding synthesizes
//! [`DEFAULT_UOPS_BEFORE`] and no loads. Branch PCs, kinds, and directions
//! round-trip exactly. Targets carry one value per (site, direction): the
//! first observed taken target becomes `targ_addr` and the first observed
//! not-taken fall-through distance becomes `inst_length` (the encoder
//! rejects a distance that overflows the u32 field rather than corrupt
//! it), so per-event targets round-trip exactly whenever each site's
//! target is a function of its direction — true for every generator
//! trace; a site with *divergent* targets per direction (e.g. a recorded
//! indirect branch) keeps only the first.

use crate::decoder::TraceDecoder;
use crate::file_meta;
use simkit::predictor::BranchKind;
use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use workloads::event::{EventSource, Trace, TraceEvent};

/// µop padding synthesized for decoded events (the format carries none);
/// matches the synthetic generator's default site padding.
pub const DEFAULT_UOPS_BEFORE: u16 = 5;

/// 15-bit entry index ⇒ at most this many static branches per file.
pub const MAX_BRANCHES: usize = 1 << 15;

const FOOTER_LEN: u64 = 16;
const BRANCH_LEN: u64 = 24;

// `enum branch_type` of cbp-experiments' dynamorio/common.h.
const BT_DIRECT_JUMP: u32 = 0;
const BT_INDIRECT_JUMP: u32 = 1;
const BT_DIRECT_CALL: u32 = 2;
const BT_INDIRECT_CALL: u32 = 3;
const BT_RETURN: u32 = 4;
const BT_COND_DIRECT_JUMP: u32 = 5;

fn kind_to_bt(k: BranchKind) -> u32 {
    match k {
        BranchKind::Conditional => BT_COND_DIRECT_JUMP,
        BranchKind::DirectJump => BT_DIRECT_JUMP,
        BranchKind::IndirectJump => BT_INDIRECT_JUMP,
        BranchKind::Call => BT_DIRECT_CALL,
        BranchKind::Return => BT_RETURN,
    }
}

fn bt_to_kind(bt: u32) -> io::Result<BranchKind> {
    Ok(match bt {
        BT_COND_DIRECT_JUMP => BranchKind::Conditional,
        BT_DIRECT_JUMP => BranchKind::DirectJump,
        BT_INDIRECT_JUMP => BranchKind::IndirectJump,
        BT_DIRECT_CALL | BT_INDIRECT_CALL => BranchKind::Call,
        BT_RETURN => BranchKind::Return,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid CBP branch type {other}"),
            ))
        }
    })
}

#[derive(Clone, Copy, Debug)]
struct BranchRec {
    inst_addr: u64,
    targ_addr: u64,
    inst_length: u32,
    kind: BranchKind,
}

impl BranchRec {
    fn target(&self, taken: bool) -> u64 {
        if taken {
            self.targ_addr
        } else {
            self.inst_addr.wrapping_add(u64::from(self.inst_length))
        }
    }
}

/// Serializes `trace` in the CBP layout (lossy — see the module docs).
///
/// # Errors
///
/// Returns `InvalidInput` when the static footprint exceeds
/// [`MAX_BRANCHES`] and any I/O error from the writer.
pub fn encode(w: &mut dyn Write, trace: &Trace) -> io::Result<()> {
    // Branch table in first-appearance order, as a tracer would emit it.
    // First-observed targets per direction; `None` marks a direction this
    // site never takes (filled with a canonical placeholder the decoder
    // can then never observe through a faithful entry stream).
    struct Building {
        inst_addr: u64,
        kind: BranchKind,
        taken_target: Option<u64>,
        fallthrough: Option<u32>,
    }
    let fallthrough_of = |e: &TraceEvent| -> io::Result<u32> {
        u32::try_from(e.target.wrapping_sub(e.pc)).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "not-taken fall-through distance {:#x} at pc {:#x} exceeds the u32 \
                     inst_length field",
                    e.target.wrapping_sub(e.pc),
                    e.pc
                ),
            )
        })
    };
    let mut index: HashMap<(u64, u32), usize> = HashMap::new();
    let mut table: Vec<Building> = Vec::new();
    for e in &trace.events {
        let key = (e.pc, kind_to_bt(e.kind));
        let i = match index.get(&key) {
            Some(&i) => i,
            None => {
                if table.len() >= MAX_BRANCHES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "more than {MAX_BRANCHES} static branches overflow the 15-bit \
                             entry index"
                        ),
                    ));
                }
                index.insert(key, table.len());
                table.push(Building {
                    inst_addr: e.pc,
                    kind: e.kind,
                    taken_target: None,
                    fallthrough: None,
                });
                table.len() - 1
            }
        };
        let rec = &mut table[i];
        if e.taken {
            rec.taken_target.get_or_insert(e.target);
        } else {
            let len = fallthrough_of(e)?;
            rec.fallthrough.get_or_insert(len);
        }
    }
    let table: Vec<BranchRec> = table
        .into_iter()
        .map(|b| BranchRec {
            inst_addr: b.inst_addr,
            targ_addr: b.taken_target.unwrap_or(b.inst_addr),
            inst_length: b.fallthrough.unwrap_or(4),
            kind: b.kind,
        })
        .collect();
    for e in &trace.events {
        let i = index[&(e.pc, kind_to_bt(e.kind))] as u16;
        let entry = i | if e.taken { 0x8000 } else { 0 };
        w.write_all(&entry.to_le_bytes())?;
    }
    for rec in &table {
        w.write_all(&rec.inst_addr.to_le_bytes())?;
        w.write_all(&rec.targ_addr.to_le_bytes())?;
        w.write_all(&rec.inst_length.to_le_bytes())?;
        w.write_all(&kind_to_bt(rec.kind).to_le_bytes())?;
    }
    w.write_all(&(table.len() as u64).to_le_bytes())?;
    w.write_all(&(trace.events.len() as u64).to_le_bytes())?;
    Ok(())
}

/// A streaming CBP decoder: reads the trailing footer and branch table
/// once, then streams the 2-byte entries from the front of the file.
pub struct CbpReader<R> {
    name: String,
    category: String,
    table: Vec<BranchRec>,
    remaining: u64,
    total: u64,
    reader: io::BufReader<R>,
    error: Option<io::Error>,
}

impl<R: Read + Seek> CbpReader<R> {
    /// Parses the footer and branch table of `reader`, leaving it
    /// positioned at the entry stream. `name`/`category` label the reports
    /// (the format embeds no metadata; [`CbpCodec::open`] derives them from
    /// the file name).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the footer, branch table, and file size
    /// are inconsistent, and any I/O error.
    pub fn new(mut reader: R, name: String, category: String) -> io::Result<Self> {
        let len = reader.seek(SeekFrom::End(0))?;
        if len < FOOTER_LEN {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "file shorter than the footer"));
        }
        reader.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut n64 = [0u8; 8];
        reader.read_exact(&mut n64)?;
        let num_brs = u64::from_le_bytes(n64);
        reader.read_exact(&mut n64)?;
        let num_entries = u64::from_le_bytes(n64);
        if num_brs > MAX_BRANCHES as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("branch table of {num_brs} entries exceeds the 15-bit index space"),
            ));
        }
        let table_bytes = num_brs * BRANCH_LEN;
        let entry_bytes = len
            .checked_sub(FOOTER_LEN + table_bytes)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "branch table overruns file"))?;
        // checked_mul: the footer is untrusted; an adversarial count must
        // not overflow (a debug-build panic) before the consistency check.
        if Some(entry_bytes) != num_entries.checked_mul(2) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("entry region is {entry_bytes} bytes but the footer declares {num_entries} entries"),
            ));
        }
        reader.seek(SeekFrom::Start(entry_bytes))?;
        // One read for the whole table region (bounded: ≤ MAX_BRANCHES ×
        // 24 bytes) — per-record read_exact on the unbuffered file would
        // cost one syscall per static branch, per open, per predictor.
        let mut raw = vec![0u8; table_bytes as usize];
        reader.read_exact(&mut raw)?;
        let mut table = Vec::with_capacity(num_brs as usize);
        for rec in raw.chunks_exact(BRANCH_LEN as usize) {
            table.push(BranchRec {
                // INVARIANT: fixed-width subslices of the 24-byte record
                // read_exact filled above; lengths match by const (×4).
                inst_addr: u64::from_le_bytes(rec[0..8].try_into().unwrap()),
                targ_addr: u64::from_le_bytes(rec[8..16].try_into().unwrap()), // INVARIANT: see above
                inst_length: u32::from_le_bytes(rec[16..20].try_into().unwrap()), // INVARIANT: see above
                kind: bt_to_kind(u32::from_le_bytes(rec[20..24].try_into().unwrap()))?, // INVARIANT: see above
            });
        }
        reader.seek(SeekFrom::Start(0))?;
        Ok(Self {
            name,
            category,
            table,
            remaining: num_entries,
            total: num_entries,
            reader: io::BufReader::new(reader),
            error: None,
        })
    }

    /// Static-branch-table size.
    pub fn static_branches(&self) -> usize {
        self.table.len()
    }

    fn decode_event(&mut self) -> io::Result<TraceEvent> {
        let mut e16 = [0u8; 2];
        self.reader.read_exact(&mut e16)?;
        let entry = u16::from_le_bytes(e16);
        let taken = entry & 0x8000 != 0;
        let i = usize::from(entry & 0x7FFF);
        let rec = self.table.get(i).copied().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("entry index {i} outside the {}-entry branch table", self.table.len()),
            )
        })?;
        Ok(TraceEvent {
            pc: rec.inst_addr,
            kind: rec.kind,
            taken,
            target: rec.target(taken),
            uops_before: DEFAULT_UOPS_BEFORE,
            load_addr: None,
        })
    }
}

impl<R: Read + Seek> EventSource for CbpReader<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn category(&self) -> &str {
        &self.category
    }

    fn next_event(&mut self) -> Option<TraceEvent> {
        if self.remaining == 0 || self.error.is_some() {
            return None;
        }
        match self.decode_event() {
            Ok(e) => {
                self.remaining -= 1;
                Some(e)
            }
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

impl<R: Read + Seek> TraceDecoder for CbpReader<R> {
    fn format(&self) -> &'static str {
        "cbp"
    }

    fn decode_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    fn expected_events(&self) -> Option<u64> {
        Some(self.total)
    }

    fn remaining_events(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// The CBP-style [`crate::TraceCodec`].
pub struct CbpCodec;

impl crate::TraceCodec for CbpCodec {
    fn name(&self) -> &'static str {
        "cbp"
    }

    fn description(&self) -> &'static str {
        "cbp-experiments layout: u16 entry stream + branch table + footer (lossy: no uops/loads)"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["cbp"]
    }

    fn matches_magic(&self, _prefix: &[u8]) -> bool {
        // The CBP header is a trailing footer; only the extension
        // identifies the format.
        false
    }

    fn lossy(&self) -> bool {
        true
    }

    fn encode(&self, w: &mut dyn Write, trace: &Trace) -> io::Result<()> {
        encode(w, trace)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn TraceDecoder + Send>> {
        let (name, category) = file_meta(path);
        Ok(Box::new(CbpReader::new(std::fs::File::open(path)?, name, category)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use workloads::suite::{by_name, Scale};

    fn decode_all(buf: Vec<u8>) -> io::Result<Vec<TraceEvent>> {
        let mut r = CbpReader::new(Cursor::new(buf), "t".into(), "TEST".into())?;
        let mut events = Vec::new();
        while let Some(e) = r.next_event() {
            events.push(e);
        }
        match r.error {
            Some(e) => Err(e),
            None => Ok(events),
        }
    }

    #[test]
    fn directions_and_pcs_round_trip() {
        let t = by_name("MM03", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        encode(&mut buf, &t).unwrap();
        let back = decode_all(buf).unwrap();
        assert_eq!(back.len(), t.events.len());
        for (a, b) in back.iter().zip(&t.events) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.taken, b.taken);
            assert_eq!(a.target, b.target, "target of pc {:#x}", b.pc);
        }
    }

    #[test]
    fn uops_and_loads_are_synthesized() {
        let t = by_name("INT01", Scale::Tiny).unwrap().generate();
        assert!(t.events.iter().any(|e| e.load_addr.is_some()));
        let mut buf = Vec::new();
        encode(&mut buf, &t).unwrap();
        let back = decode_all(buf).unwrap();
        assert!(back.iter().all(|e| e.load_addr.is_none()));
        assert!(back.iter().all(|e| e.uops_before == DEFAULT_UOPS_BEFORE));
    }

    #[test]
    fn rejects_inconsistent_footer() {
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        encode(&mut buf, &t).unwrap();
        // Chop two entry bytes: the entry region no longer matches the
        // declared count.
        let mut chopped = buf.clone();
        chopped.drain(0..2);
        assert!(decode_all(chopped).is_err());
        // A footer pointing past the file.
        let n = buf.len();
        buf[n - 16..n - 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_all(buf).is_err());
        // Shorter than any footer.
        assert!(decode_all(vec![1, 2, 3]).is_err());
    }

    #[test]
    fn rejects_bad_branch_type() {
        let t = Trace {
            name: "x".into(),
            category: "X".into(),
            events: vec![TraceEvent {
                pc: 0x40,
                kind: BranchKind::Conditional,
                taken: true,
                target: 0x80,
                uops_before: 0,
                load_addr: None,
            }],
        };
        let mut buf = Vec::new();
        encode(&mut buf, &t).unwrap();
        // branch_type lives at the end of the single 24-byte record,
        // right before the 16-byte footer.
        let pos = buf.len() - 16 - 4;
        buf[pos..pos + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(decode_all(buf).is_err());
    }

    #[test]
    fn zero_valued_targets_round_trip() {
        // Regression: the encoder once used 0 as an "unobserved" sentinel
        // for targ_addr/inst_length, corrupting a legitimate taken target
        // of 0 and a zero fall-through distance into placeholders.
        let mk = |pc, taken, target| TraceEvent {
            pc,
            kind: BranchKind::Conditional,
            taken,
            target,
            uops_before: 1,
            load_addr: None,
        };
        let t = Trace {
            name: "zero".into(),
            category: "Z".into(),
            events: vec![mk(0x80, true, 0), mk(0x90, false, 0x90), mk(0x80, true, 0)],
        };
        let mut buf = Vec::new();
        encode(&mut buf, &t).unwrap();
        let back = decode_all(buf).unwrap();
        assert_eq!(back[0].target, 0, "taken target 0 must survive");
        assert_eq!(back[1].target, 0x90, "zero fall-through distance must survive");
        assert_eq!(back[2].target, 0);
    }

    #[test]
    fn oversized_fallthrough_is_rejected_not_corrupted() {
        let t = Trace {
            name: "far".into(),
            category: "F".into(),
            events: vec![TraceEvent {
                pc: 0x10,
                kind: BranchKind::Conditional,
                taken: false,
                target: 0x10 + (1 << 40),
                uops_before: 0,
                load_addr: None,
            }],
        };
        let mut buf = Vec::new();
        let err = encode(&mut buf, &t).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn overflowing_footer_entry_count_is_rejected() {
        // An adversarial num_entries near u64::MAX must hit the checked
        // consistency test, not a multiply overflow.
        let mut buf = vec![0u8; 2];
        buf.extend(0u64.to_le_bytes()); // num_brs
        buf.extend((u64::MAX / 2 + 1).to_le_bytes()); // num_entries * 2 overflows
        assert!(decode_all(buf).is_err());
    }

    #[test]
    fn entry_limit_is_enforced() {
        // 2 events sharing one site: table has 1 entry, entries 2.
        let mk = |taken| TraceEvent {
            pc: 0x10,
            kind: BranchKind::Conditional,
            taken,
            target: if taken { 0x50 } else { 0x18 },
            uops_before: 1,
            load_addr: None,
        };
        let t = Trace { name: "x".into(), category: "X".into(), events: vec![mk(true), mk(false)] };
        let mut buf = Vec::new();
        encode(&mut buf, &t).unwrap();
        assert_eq!(buf.len(), 2 * 2 + 24 + 16);
        let back = decode_all(buf).unwrap();
        assert_eq!(back[0].target, 0x50);
        assert_eq!(back[1].target, 0x18, "fall-through from inst_length");
    }
}
