//! LEB128 variable-length integers and ZigZag signed mapping.
//!
//! The `.ttr` event stream is dominated by small deltas (branch-table
//! indices of neighbouring events, target offsets of a few bytes), so
//! LEB128 packs the common case into one byte while still representing the
//! full `u64` range. Signed deltas go through ZigZag first so that small
//! negative values stay small.

use std::io::{self, Read, Write};

/// Writes `v` as unsigned LEB128 (1–10 bytes).
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_u64<W: Write + ?Sized>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an unsigned LEB128 value.
///
/// # Errors
///
/// Returns `InvalidData` on an over-long encoding (more than 10 bytes or
/// bits beyond the 64th) and any I/O error — including `UnexpectedEof` on
/// truncation — from the underlying reader.
pub fn read_u64<R: Read + ?Sized>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        let payload = u64::from(b & 0x7F);
        // The 10th byte may only carry the top bit of a u64.
        if shift == 63 && payload > 1 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "LEB128 overflows u64"));
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "LEB128 too long"));
        }
    }
}

/// Maps a signed value to unsigned ZigZag (`0, -1, 1, -2, …` → `0, 1, 2,
/// 3, …`).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes `v` ZigZag-mapped as LEB128.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_i64<W: Write + ?Sized>(w: &mut W, v: i64) -> io::Result<()> {
    write_u64(w, zigzag(v))
}

/// Reads a ZigZag-mapped LEB128 value.
///
/// # Errors
///
/// Propagates [`read_u64`] errors.
pub fn read_i64<R: Read + ?Sized>(r: &mut R) -> io::Result<i64> {
    read_u64(r).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_edge_values() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert!(buf.len() <= 10);
            assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn i64_round_trips_edge_values() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v).unwrap();
            assert_eq!(read_i64(&mut buf.as_slice()).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn zigzag_is_order_preserving_near_zero() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn rejects_overlong_encoding() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        assert!(read_u64(&mut buf.as_slice()).is_err());
        // 10 bytes whose last carries more than the top bit overflows.
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x7F);
        assert!(read_u64(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let buf = [0x80u8, 0x80];
        assert!(read_u64(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn small_values_pack_into_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 42).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_i64(&mut buf, -3).unwrap();
        assert_eq!(buf.len(), 1);
    }
}
