//! Plain-text CSV trace codec for hand-authored regression traces.
//!
//! ```text
//! # tage-traces csv v1
//! # name=CLIENT02
//! # category=CLIENT
//! pc,kind,taken,target,uops_before,load_addr
//! 0x400000,cond,1,0x400040,5,
//! 0x40000c,call,1,0x8000,2,0x10000000
//! ```
//!
//! Addresses are hex (`0x…`) or decimal; `kind` is one of `cond`, `jump`,
//! `ijump`, `call`, `ret`; `taken` is `0`/`1`; an empty `load_addr` means
//! no load dependence. `#` lines are comments; the `name=`/`category=`
//! comments are optional (the file name supplies them otherwise), so a
//! trace can be authored in any editor with nothing but the column header.
//! Lossless, streaming, line-at-a-time.

use crate::decoder::TraceDecoder;
use crate::file_meta;
use simkit::predictor::BranchKind;
use std::io::{self, BufRead, Read, Write};
use std::path::Path;
use workloads::event::{EventSource, Trace, TraceEvent};

/// First line every writer emits (also the sniffed magic).
pub const CSV_MAGIC_LINE: &str = "# tage-traces csv v1";

/// The required column header.
pub const CSV_HEADER: &str = "pc,kind,taken,target,uops_before,load_addr";

fn kind_token(k: BranchKind) -> &'static str {
    match k {
        BranchKind::Conditional => "cond",
        BranchKind::DirectJump => "jump",
        BranchKind::IndirectJump => "ijump",
        BranchKind::Call => "call",
        BranchKind::Return => "ret",
    }
}

fn token_kind(s: &str) -> io::Result<BranchKind> {
    Ok(match s {
        "cond" => BranchKind::Conditional,
        "jump" => BranchKind::DirectJump,
        "ijump" => BranchKind::IndirectJump,
        "call" => BranchKind::Call,
        "ret" => BranchKind::Return,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown branch kind token {other:?}"),
            ))
        }
    })
}

fn parse_u64(s: &str) -> io::Result<u64> {
    let r = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("bad number {s:?}")))
}

/// Serializes `trace` as CSV.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn encode(w: &mut dyn Write, trace: &Trace) -> io::Result<()> {
    // Metadata lives in line-oriented, whitespace-trimmed comments: a
    // control character would desync the line structure and surrounding
    // whitespace would not survive the decoder's trim — either way the
    // value could silently change across a round trip, so reject it up
    // front (the lossless-convert contract).
    for (field, value) in [("name", &trace.name), ("category", &trace.category)] {
        if value.chars().any(|c| c.is_control()) || value.trim() != value.as_str() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace {field} {value:?} has control characters or edge whitespace"),
            ));
        }
    }
    writeln!(w, "{CSV_MAGIC_LINE}")?;
    writeln!(w, "# name={}", trace.name)?;
    writeln!(w, "# category={}", trace.category)?;
    writeln!(w, "# events={}", trace.events.len())?;
    writeln!(w, "{CSV_HEADER}")?;
    for e in &trace.events {
        let load = e.load_addr.map(|a| format!("{a:#x}")).unwrap_or_default();
        writeln!(
            w,
            "{:#x},{},{},{:#x},{},{}",
            e.pc,
            kind_token(e.kind),
            u8::from(e.taken),
            e.target,
            e.uops_before,
            load
        )?;
    }
    Ok(())
}

/// A streaming CSV decoder: one line at a time, metadata parsed up front.
pub struct CsvReader<R> {
    name: String,
    category: String,
    lines: io::Lines<io::BufReader<R>>,
    line_no: usize,
    /// From the writer's `# events=` comment; hand-authored files without
    /// it get no truncation check (nothing to check against).
    expected: Option<u64>,
    decoded: u64,
    error: Option<io::Error>,
}

impl<R: Read> CsvReader<R> {
    /// Parses comments and the column header; `fallback_name` /
    /// `fallback_category` apply when the file carries no `name=` /
    /// `category=` comments.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the column header is missing or wrong,
    /// and any I/O error.
    pub fn new(reader: R, fallback_name: String, fallback_category: String) -> io::Result<Self> {
        let mut lines = io::BufReader::new(reader).lines();
        let mut name = fallback_name;
        let mut category = fallback_category;
        let mut expected = None;
        let mut line_no = 0;
        loop {
            let line = lines.next().transpose()?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "missing csv column header")
            })?;
            line_no += 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let comment = comment.trim();
                if let Some(v) = comment.strip_prefix("name=") {
                    name = v.to_string();
                } else if let Some(v) = comment.strip_prefix("category=") {
                    category = v.to_string();
                } else if let Some(v) = comment.strip_prefix("events=") {
                    expected = Some(parse_u64(v)?);
                }
                continue;
            }
            if line != CSV_HEADER {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected column header {CSV_HEADER:?}, found {line:?}"),
                ));
            }
            return Ok(Self { name, category, lines, line_no, expected, decoded: 0, error: None });
        }
    }

    fn parse_line(line: &str) -> io::Result<TraceEvent> {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 6 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected 6 fields, found {}", fields.len()),
            ));
        }
        let taken = match fields[2] {
            "0" => false,
            "1" => true,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("taken must be 0 or 1, found {other:?}"),
                ))
            }
        };
        let uops = parse_u64(fields[4])?;
        let uops_before = u16::try_from(uops)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "uops_before exceeds u16"))?;
        Ok(TraceEvent {
            pc: parse_u64(fields[0])?,
            kind: token_kind(fields[1])?,
            taken,
            target: parse_u64(fields[3])?,
            uops_before,
            load_addr: if fields[5].is_empty() { None } else { Some(parse_u64(fields[5])?) },
        })
    }
}

impl<R: Read> EventSource for CsvReader<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn category(&self) -> &str {
        &self.category
    }

    fn next_event(&mut self) -> Option<TraceEvent> {
        if self.error.is_some() {
            return None;
        }
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            };
            self.line_no += 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match Self::parse_line(line) {
                Ok(e) => {
                    self.decoded += 1;
                    return Some(e);
                }
                Err(e) => {
                    self.error = Some(io::Error::new(
                        e.kind(),
                        format!("line {}: {e}", self.line_no),
                    ));
                    return None;
                }
            }
        }
    }
}

impl<R: Read> TraceDecoder for CsvReader<R> {
    fn format(&self) -> &'static str {
        "csv"
    }

    fn decode_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    fn expected_events(&self) -> Option<u64> {
        self.expected
    }

    fn remaining_events(&self) -> Option<u64> {
        self.expected.map(|e| e.saturating_sub(self.decoded))
    }
}

/// The CSV [`crate::TraceCodec`].
pub struct CsvCodec;

impl crate::TraceCodec for CsvCodec {
    fn name(&self) -> &'static str {
        "csv"
    }

    fn description(&self) -> &'static str {
        "plain-text csv for hand-authored regression traces (lossless)"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["csv"]
    }

    fn matches_magic(&self, prefix: &[u8]) -> bool {
        // Writers emit the magic comment; hand-authored files may start
        // straight at the column header. Any valid file is longer than
        // either probe, so a full-probe prefix match is unambiguous.
        let probe = |p: &[u8]| prefix.len() >= p.len() && prefix.starts_with(p);
        probe(&CSV_MAGIC_LINE.as_bytes()[..CSV_MAGIC_LINE.len().min(crate::SNIFF_LEN)])
            || probe(b"pc,kind,taken")
    }

    fn encode(&self, w: &mut dyn Write, trace: &Trace) -> io::Result<()> {
        encode(w, trace)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn TraceDecoder + Send>> {
        let (name, category) = file_meta(path);
        Ok(Box::new(CsvReader::new(std::fs::File::open(path)?, name, category)?))
    }

    fn open_stream(
        &self,
        reader: Box<dyn Read + Send>,
        fallback_name: String,
        fallback_category: String,
    ) -> io::Result<crate::feed::FeedOpen> {
        // Line-oriented text decodes off a live stream; in-file `name=` /
        // `category=` comments still win over the fallbacks.
        Ok(crate::feed::FeedOpen::Streaming(Box::new(CsvReader::new(
            reader,
            fallback_name,
            fallback_category,
        )?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::suite::{by_name, Scale};

    fn decode_str(s: &str) -> io::Result<Trace> {
        let mut r = CsvReader::new(s.as_bytes(), "fb".into(), "FB".into())?;
        let mut events = Vec::new();
        while let Some(e) = r.next_event() {
            events.push(e);
        }
        match r.error {
            Some(e) => Err(e),
            None => Ok(Trace { name: r.name.clone(), category: r.category.clone(), events }),
        }
    }

    #[test]
    fn suite_trace_round_trips_losslessly() {
        let t = by_name("MM05", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        encode(&mut buf, &t).unwrap();
        let back = decode_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn hand_authored_minimal_file_parses() {
        let src = "pc,kind,taken,target,uops_before,load_addr\n\
                   0x100,cond,1,0x140,5,\n\
                   256,ret,1,0x108,2,0x1000\n";
        let t = decode_str(src).unwrap();
        assert_eq!(t.name, "fb");
        assert_eq!(t.category, "FB");
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].pc, 0x100);
        assert!(t.events[0].load_addr.is_none());
        assert_eq!(t.events[1].pc, 256);
        assert_eq!(t.events[1].kind, BranchKind::Return);
        assert_eq!(t.events[1].load_addr, Some(0x1000));
    }

    #[test]
    fn metadata_comments_override_fallback() {
        let src = "# tage-traces csv v1\n# name=WS09\n# category=WS\n\
                   pc,kind,taken,target,uops_before,load_addr\n";
        let t = decode_str(src).unwrap();
        assert_eq!(t.name, "WS09");
        assert_eq!(t.category, "WS");
        assert!(t.events.is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(decode_str("").is_err());
        assert!(decode_str("not,a,header\n").is_err());
        let bad_rows = [
            "0x100,cond,1,0x140,5", // 5 fields
            "0x100,weird,1,0x140,5,",
            "0x100,cond,yes,0x140,5,",
            "zzz,cond,1,0x140,5,",
            "0x100,cond,1,0x140,70000,", // uops > u16
        ];
        for row in bad_rows {
            let src = format!("pc,kind,taken,target,uops_before,load_addr\n{row}\n");
            assert!(decode_str(&src).is_err(), "row {row:?} should be rejected");
        }
    }

    #[test]
    fn control_characters_in_metadata_are_rejected() {
        // A newline would desync the line-oriented comments; edge
        // whitespace would not survive the decoder's trim. Both would
        // silently change metadata across a round trip.
        for name in ["bad\nname", " padded", "padded "] {
            let t = Trace { name: name.into(), category: "X".into(), events: vec![] };
            let mut buf = Vec::new();
            let err = encode(&mut buf, &t).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "name {name:?}");
        }
    }

    #[test]
    fn declared_event_count_catches_clean_truncation() {
        // A writer-produced file truncated at a line boundary decodes to
        // a clean EOF; the `# events=` comment is what turns that into a
        // detectable error instead of a silently shorter simulation.
        let t = by_name("INT06", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        encode(&mut buf, &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(text.lines().count() - 5).fold(
            String::new(),
            |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            },
        );
        let mut r = CsvReader::new(truncated.as_bytes(), "t".into(), "T".into()).unwrap();
        assert_eq!(r.expected_events(), Some(t.events.len() as u64));
        while r.next_event().is_some() {}
        assert!(r.error.is_none(), "clean truncation records no parse error");
        let err = crate::decoder::finish(&r).unwrap_err();
        assert!(err.to_string().contains("events short"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped_mid_stream() {
        let src = "pc,kind,taken,target,uops_before,load_addr\n\
                   \n# interlude\n0x10,jump,1,0x20,0,\n";
        let t = decode_str(src).unwrap();
        assert_eq!(t.events.len(), 1);
    }
}
