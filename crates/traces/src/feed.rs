//! Network/pipe ingestion: decode a trace from a non-seekable byte
//! stream.
//!
//! [`CodecRegistry::open`] assumes a path on disk; the prediction
//! server receives trace bytes over a socket. [`CodecRegistry::open_feed`]
//! closes that gap: it sniffs the first [`SNIFF_LEN`] bytes off the
//! stream, autodetects the codec (magic first, name-hint extension
//! second — the same precedence as file detection), splices the sniffed
//! prefix back in front of the reader, and asks the codec for a
//! streaming decoder via [`TraceCodec::open_stream`].
//!
//! Two codec families fall out:
//!
//! * **Streaming** (`.ttr` v2, CSV): the layout decodes front-to-back,
//!   so the decoder wraps the live stream directly. Memory stays
//!   bounded by the static-branch table, and the *caller's* reader is
//!   pulled one block at a time — which is exactly how the server
//!   exerts backpressure (it simply does not read the socket while the
//!   simulation is busy).
//! * **Spooled** (`.ttr` v3, CBP): the container's table/footer lives
//!   at the end, so the stream is copied to a temporary file under the
//!   caller's spool directory first, then opened through the ordinary
//!   path route. The spool file keeps the hinted file *name* (so
//!   [`file_meta`]-derived trace names match a direct [`CodecRegistry::open`]
//!   of the original file bit for bit) inside a process-unique
//!   directory, and is deleted when the decoder drops. Memory stays
//!   bounded; disk holds the trace once.

use crate::codec::{file_meta, CodecRegistry, TraceCodec, SNIFF_LEN};
use crate::decoder::{ContainerInfo, TraceDecoder};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use workloads::event::{EventBlock, EventSource, TraceEvent};

/// What [`TraceCodec::open_stream`] made of a live byte stream.
pub enum FeedOpen {
    /// The codec decodes front-to-back: a live streaming decoder.
    Streaming(Box<dyn TraceDecoder + Send>),
    /// The codec needs random access: the (untouched) reader comes
    /// back so the registry can spool it to disk.
    NeedsSpool(Box<dyn Read + Send>),
}

// ORDERING: a process-wide uniqueness counter for spool directory names;
// no other memory is published through it.
static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);

impl CodecRegistry {
    /// Detects a format from a byte prefix (up to [`SNIFF_LEN`] bytes)
    /// plus an optional file-name hint for magic-less formats — the
    /// stream-side twin of [`CodecRegistry::detect`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when no codec claims the prefix or the
    /// hinted extension.
    pub fn detect_prefix(
        &self,
        prefix: &[u8],
        name_hint: Option<&Path>,
    ) -> io::Result<&dyn TraceCodec> {
        let sniff = &prefix[..prefix.len().min(SNIFF_LEN)];
        if let Some(c) = self.codecs().find(|c| c.matches_magic(sniff)) {
            return Ok(c);
        }
        if let Some(c) = name_hint.and_then(|hint| self.by_extension(hint)) {
            return Ok(c);
        }
        let known: Vec<&str> = self.codecs().map(|c| c.name()).collect();
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "unrecognized trace stream ({} prefix bytes{}; known: {})",
                sniff.len(),
                name_hint
                    .map(|h| format!(", hint {}", h.display()))
                    .unwrap_or_default(),
                known.join(", ")
            ),
        ))
    }

    /// Opens a streaming decoder over a non-seekable byte stream:
    /// detect via [`CodecRegistry::detect_prefix`], then either wrap
    /// the live stream (streaming codecs) or spool it to a temporary
    /// file under `spool_dir` first (seek-requiring codecs). The
    /// `name_hint` doubles as the extension fallback for magic-less
    /// formats and the [`file_meta`] source for codecs that derive
    /// trace metadata from file names.
    ///
    /// # Errors
    ///
    /// Propagates detection, decode-header, and spool I/O errors.
    pub fn open_feed(
        &self,
        mut reader: Box<dyn Read + Send>,
        name_hint: Option<&Path>,
        spool_dir: &Path,
    ) -> io::Result<Box<dyn TraceDecoder + Send>> {
        let mut prefix = [0u8; SNIFF_LEN];
        let mut filled = 0;
        while filled < SNIFF_LEN {
            let n = reader.read(&mut prefix[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        let codec = self.detect_prefix(&prefix[..filled], name_hint)?;
        let (name, category) = match name_hint {
            Some(p) => file_meta(p),
            None => ("trace".to_string(), "TRACE".to_string()),
        };
        let sniffed: Vec<u8> = prefix[..filled].to_vec();
        let chained: Box<dyn Read + Send> = Box::new(io::Cursor::new(sniffed).chain(reader));
        match codec.open_stream(chained, name, category)? {
            FeedOpen::Streaming(d) => Ok(d),
            FeedOpen::NeedsSpool(rest) => spool_and_open(codec, rest, name_hint, spool_dir),
        }
    }
}

/// Copies the remaining stream to a uniquely named directory under
/// `spool_dir` (keeping the hinted file name so path-derived trace
/// metadata matches the original file), opens it through the codec's
/// path route, and wraps the decoder so the spool is deleted on drop.
fn spool_and_open(
    codec: &dyn TraceCodec,
    mut rest: Box<dyn Read + Send>,
    name_hint: Option<&Path>,
    spool_dir: &Path,
) -> io::Result<Box<dyn TraceDecoder + Send>> {
    // ORDERING: uniqueness counter only; see SPOOL_SEQ.
    let seq = SPOOL_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = spool_dir.join(format!("feed-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let file_name = name_hint
        .and_then(|p| p.file_name())
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "trace.bin".into());
    let path = dir.join(file_name);
    let open = (|| {
        let mut f = io::BufWriter::new(std::fs::File::create(&path)?);
        io::copy(&mut rest, &mut f)?;
        f.flush()?;
        drop(f);
        codec.open(&path)
    })();
    match open {
        Ok(inner) => Ok(Box::new(SpooledDecoder { inner, dir })),
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            Err(e)
        }
    }
}

/// A decoder over a spooled temporary file: pure delegation, plus
/// spool-file cleanup on drop.
struct SpooledDecoder {
    inner: Box<dyn TraceDecoder + Send>,
    dir: PathBuf,
}

impl Drop for SpooledDecoder {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl EventSource for SpooledDecoder {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn category(&self) -> &str {
        self.inner.category()
    }

    fn next_event(&mut self) -> Option<TraceEvent> {
        self.inner.next_event()
    }

    fn next_block(&mut self, block: &mut EventBlock, max: usize) -> usize {
        self.inner.next_block(block, max)
    }

    fn skip(&mut self, n: u64) -> u64 {
        self.inner.skip(n)
    }
}

impl TraceDecoder for SpooledDecoder {
    fn format(&self) -> &'static str {
        self.inner.format()
    }

    fn container_info(&self) -> Option<ContainerInfo> {
        self.inner.container_info()
    }

    fn decode_error(&self) -> Option<&io::Error> {
        self.inner.decode_error()
    }

    fn expected_events(&self) -> Option<u64> {
        self.inner.expected_events()
    }

    fn remaining_events(&self) -> Option<u64> {
        self.inner.remaining_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::drain_checked;
    use workloads::suite::{by_name, Scale};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tage-feed-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_trace() -> workloads::event::Trace {
        by_name("INT01", Scale::Tiny).unwrap().generate()
    }

    fn encode(codec_name: &str) -> Vec<u8> {
        let r = CodecRegistry::standard();
        let mut buf = Vec::new();
        r.by_name(codec_name).unwrap().encode(&mut buf, &sample_trace()).unwrap();
        buf
    }

    fn spool_entries(dir: &Path) -> usize {
        std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0)
    }

    #[test]
    fn ttr_v2_feed_streams_without_spooling() {
        let spool = tmp("v2");
        let r = CodecRegistry::standard();
        let bytes = encode("ttr");
        let mut d = r.open_feed(Box::new(io::Cursor::new(bytes)), None, &spool).unwrap();
        assert_eq!(d.format(), "ttr");
        assert_eq!(d.name(), "INT01");
        // Nothing spooled: the v2 layout decodes off the live stream.
        assert_eq!(spool_entries(&spool), 0);
        let n = drain_checked(d.as_mut()).unwrap();
        assert_eq!(n, sample_trace().events.len() as u64);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn ttr3_feed_spools_and_cleans_up() {
        let spool = tmp("v3");
        let r = CodecRegistry::standard();
        let bytes = encode("ttr3");
        let mut d = r
            .open_feed(
                Box::new(io::Cursor::new(bytes)),
                Some(Path::new("INT01.ttr3")),
                &spool,
            )
            .unwrap();
        assert_eq!(d.format(), "ttr3");
        assert_eq!(d.name(), "INT01");
        assert_eq!(spool_entries(&spool), 1);
        let n = drain_checked(d.as_mut()).unwrap();
        assert_eq!(n, sample_trace().events.len() as u64);
        drop(d);
        // The spool directory is gone once the decoder drops.
        assert_eq!(spool_entries(&spool), 0);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn feed_decode_matches_direct_open() {
        // The feed route must replay the identical event stream the
        // path route produces, for every standard codec.
        let spool = tmp("match");
        let r = CodecRegistry::standard();
        let direct = sample_trace();
        for codec_name in ["ttr", "ttr3", "csv", "cbp"] {
            let bytes = encode(codec_name);
            let hint = format!("INT01.{codec_name}");
            let mut d = r
                .open_feed(Box::new(io::Cursor::new(bytes)), Some(Path::new(&hint)), &spool)
                .unwrap();
            let mut events = Vec::new();
            while let Some(e) = d.next_event() {
                events.push(e);
            }
            crate::decoder::finish(d.as_ref()).unwrap();
            assert_eq!(events.len(), direct.events.len(), "codec {codec_name}");
            for (got, want) in events.iter().zip(direct.events.iter()) {
                assert_eq!(got.pc, want.pc, "codec {codec_name}");
                assert_eq!(got.taken, want.taken, "codec {codec_name}");
            }
        }
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn cbp_feed_needs_the_name_hint() {
        // CBP has no leading magic: without an extension hint the
        // stream is undetectable, with one it spools and decodes.
        let spool = tmp("cbp");
        let r = CodecRegistry::standard();
        let bytes = encode("cbp");
        assert!(r.open_feed(Box::new(io::Cursor::new(bytes.clone())), None, &spool).is_err());
        let mut d = r
            .open_feed(Box::new(io::Cursor::new(bytes)), Some(Path::new("INT01.cbp")), &spool)
            .unwrap();
        assert_eq!(d.format(), "cbp");
        assert_eq!(d.name(), "INT01");
        assert!(drain_checked(d.as_mut()).unwrap() > 0);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn garbage_stream_is_rejected() {
        let spool = tmp("garbage");
        let r = CodecRegistry::standard();
        let err =
            r.open_feed(Box::new(io::Cursor::new(b"not a trace".to_vec())), None, &spool);
        assert!(err.is_err());
        assert_eq!(spool_entries(&spool), 0);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn truncated_spooled_stream_fails_loudly() {
        let spool = tmp("trunc");
        let r = CodecRegistry::standard();
        let mut bytes = encode("ttr3");
        bytes.truncate(bytes.len() / 2);
        let err = r.open_feed(
            Box::new(io::Cursor::new(bytes)),
            Some(Path::new("INT01.ttr3")),
            &spool,
        );
        assert!(err.is_err());
        // The failed spool is cleaned up eagerly, not leaked.
        assert_eq!(spool_entries(&spool), 0);
        let _ = std::fs::remove_dir_all(&spool);
    }
}
