//! Block compression schemes behind the `.ttr` scheme byte.
//!
//! The v3 container compresses its event blocks through a pluggable
//! [`BlockScheme`]; the scheme byte in the header names which one. The
//! registry is deliberately open: the container is built offline with no
//! crates.io access, so the only compressor shipped is a dependency-free
//! greedy LZ77, but a real zstd binding drops in as a new row of
//! [`SCHEMES`] without touching the container layout.
//!
//! LZ payload layout (varints LEB128, see [`crate::varint`]):
//!
//! ```text
//! repeated:
//!   lit_len    LEB128   literal-run length (may be 0)
//!   literals   lit_len bytes
//!   — decoding stops when the output reaches raw_len —
//!   offset     LEB128   match distance, 1 ..= bytes produced so far
//!   match_len  LEB128   match length − 4 (minimum match is 4 bytes)
//! ```
//!
//! Matches may overlap their own output (offset < length replays a run),
//! exactly like LZ77. A compressed stream always ends with a literal run
//! (possibly empty), so the decoder's stop condition is unambiguous; any
//! leftover bytes after the output is complete are an error, as is any
//! length or offset that would step outside the declared `raw_len`.

use std::io;

/// Sanity cap on a block's decompressed size: bounds decoder allocation
/// on corrupt or adversarial frame headers.
pub const MAX_BLOCK_RAW: usize = 1 << 26;

/// One block compression scheme: a self-contained byte-block transform.
pub trait BlockScheme: Send + Sync {
    /// The scheme byte this codec claims in the `.ttr` v3 header.
    fn id(&self) -> u8;

    /// Short scheme name (also the `--scheme` CLI token).
    fn name(&self) -> &'static str;

    /// Compresses `raw`. Infallible: every byte string is representable
    /// (worst case a stored literal run slightly larger than the input).
    fn compress(&self, raw: &[u8]) -> Vec<u8>;

    /// Decompresses `comp`, which must expand to exactly `raw_len` bytes.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when `comp` is truncated, carries trailing
    /// garbage, or would step outside `raw_len` — corrupt input must
    /// never panic or over-allocate past [`MAX_BLOCK_RAW`].
    fn decompress(&self, comp: &[u8], raw_len: usize) -> io::Result<Vec<u8>>;
}

/// Scheme 0: stored blocks, no transform.
pub struct RawScheme;

impl BlockScheme for RawScheme {
    fn id(&self) -> u8 {
        0
    }

    fn name(&self) -> &'static str {
        "raw"
    }

    fn compress(&self, raw: &[u8]) -> Vec<u8> {
        raw.to_vec()
    }

    fn decompress(&self, comp: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
        if raw_len > MAX_BLOCK_RAW {
            return Err(invalid(format!("raw block of {raw_len} bytes exceeds the cap")));
        }
        if comp.len() != raw_len {
            return Err(invalid(format!(
                "stored block is {} bytes but the frame declares {raw_len}",
                comp.len()
            )));
        }
        Ok(comp.to_vec())
    }
}

/// Shortest match the LZ compressor emits; shorter repeats stay literal.
const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 15;

/// Scheme 1: greedy hash-table LZ77 — one probe per position, matches
/// extended maximally, no entropy stage. Dependency-free stand-in for a
/// real compressor; typically 2–4× on `.ttr` event streams, whose varint
/// records repeat heavily across loop iterations.
pub struct LzScheme;

#[inline]
fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

impl BlockScheme for LzScheme {
    fn id(&self) -> u8 {
        1
    }

    fn name(&self) -> &'static str {
        "lz"
    }

    fn compress(&self, raw: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(raw.len() / 2 + 16);
        if raw.is_empty() {
            return out;
        }
        let mut table = vec![usize::MAX; 1 << HASH_BITS];
        let mut lit_start = 0usize;
        let mut pos = 0usize;
        while pos + MIN_MATCH <= raw.len() {
            let h = hash4(&raw[pos..]);
            let cand = table[h];
            table[h] = pos;
            if cand != usize::MAX && raw[cand..cand + MIN_MATCH] == raw[pos..pos + MIN_MATCH] {
                let mut len = MIN_MATCH;
                while pos + len < raw.len() && raw[cand + len] == raw[pos + len] {
                    len += 1;
                }
                varint_push(&mut out, (pos - lit_start) as u64);
                out.extend_from_slice(&raw[lit_start..pos]);
                varint_push(&mut out, (pos - cand) as u64);
                varint_push(&mut out, (len - MIN_MATCH) as u64);
                // Index the skipped positions too: records repeating at a
                // stride longer than the match still get found later.
                let stop = (pos + len).min(raw.len() - MIN_MATCH + 1);
                for p in pos + 1..stop {
                    table[hash4(&raw[p..])] = p;
                }
                pos += len;
                lit_start = pos;
            } else {
                pos += 1;
            }
        }
        varint_push(&mut out, (raw.len() - lit_start) as u64);
        out.extend_from_slice(&raw[lit_start..]);
        out
    }

    fn decompress(&self, comp: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
        if raw_len > MAX_BLOCK_RAW {
            return Err(invalid(format!("block of {raw_len} bytes exceeds the cap")));
        }
        let mut out = Vec::with_capacity(raw_len);
        let mut r = comp;
        if raw_len > 0 {
            loop {
                let lit = usize::try_from(crate::varint::read_u64(&mut r)?)
                    .map_err(|_| invalid("literal run exceeds usize".to_string()))?;
                if lit > raw_len - out.len() {
                    return Err(invalid(format!(
                        "literal run of {lit} overflows the declared {raw_len}-byte block"
                    )));
                }
                if lit > r.len() {
                    return Err(invalid("literal run truncated".to_string()));
                }
                out.extend_from_slice(&r[..lit]);
                r = &r[lit..];
                if out.len() == raw_len {
                    break;
                }
                let offset = usize::try_from(crate::varint::read_u64(&mut r)?)
                    .map_err(|_| invalid("match offset exceeds usize".to_string()))?;
                if offset == 0 || offset > out.len() {
                    return Err(invalid(format!(
                        "match offset {offset} outside the {} bytes produced",
                        out.len()
                    )));
                }
                let len = usize::try_from(crate::varint::read_u64(&mut r)?)
                    .ok()
                    .and_then(|l| l.checked_add(MIN_MATCH))
                    .ok_or_else(|| invalid("match length overflows".to_string()))?;
                if len > raw_len - out.len() {
                    return Err(invalid(format!(
                        "match of {len} overflows the declared {raw_len}-byte block"
                    )));
                }
                // Byte-at-a-time: matches may overlap their own output.
                let start = out.len() - offset;
                for src in start..start + len {
                    out.push(out[src]);
                }
            }
        }
        if !r.is_empty() {
            return Err(invalid(format!("{} trailing bytes after the block", r.len())));
        }
        Ok(out)
    }
}

/// LEB128 into a Vec (the Write path cannot fail on a Vec).
fn varint_push(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The scheme-byte registry: `(name, byte, codec)`. The `tage_lint`
/// doc-sync pass pins each row's name against the scheme table in
/// DESIGN.md §3b, so a new scheme cannot ship undocumented.
pub const SCHEMES: &[(&str, u8, &'static dyn BlockScheme)] = &[
    ("raw", 0, &RawScheme),
    ("lz", 1, &LzScheme),
];

/// Looks a scheme up by its scheme byte.
pub fn by_id(id: u8) -> Option<&'static dyn BlockScheme> {
    SCHEMES.iter().find(|(_, b, _)| *b == id).map(|(_, _, s)| *s)
}

/// Looks a scheme up by its CLI name.
pub fn by_name(name: &str) -> Option<&'static dyn BlockScheme> {
    SCHEMES.iter().find(|(n, _, _)| *n == name).map(|(_, _, s)| *s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random bytes (no std RNG available offline).
    fn noise(len: usize, mut seed: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn registry_is_consistent() {
        for &(name, byte, scheme) in SCHEMES {
            assert_eq!(scheme.id(), byte);
            assert_eq!(scheme.name(), name);
            assert_eq!(by_id(byte).map(|s| s.name()), Some(name));
            assert_eq!(by_name(name).map(|s| s.id()), Some(byte));
        }
        assert!(by_id(250).is_none());
        assert!(by_name("zstd").is_none());
    }

    #[test]
    fn lz_round_trips_varied_inputs() {
        let lz = LzScheme;
        let repetitive: Vec<u8> = b"abcabcabcabcx".iter().copied().cycle().take(5000).collect();
        let mut runs = vec![0u8; 300];
        runs.extend(noise(100, 7));
        runs.extend(vec![0xAAu8; 500]);
        for raw in [
            Vec::new(),
            vec![42],
            b"abc".to_vec(),
            repetitive,
            noise(4096, 1),
            runs,
        ] {
            let comp = lz.compress(&raw);
            let back = lz.decompress(&comp, raw.len()).unwrap();
            assert_eq!(back, raw, "round-trip failed for {}-byte input", raw.len());
        }
    }

    #[test]
    fn lz_compresses_repetitive_input() {
        let raw: Vec<u8> = b"0123456789abcdef".iter().copied().cycle().take(8192).collect();
        let comp = LzScheme.compress(&raw);
        assert!(comp.len() * 10 < raw.len(), "{} vs {}", comp.len(), raw.len());
    }

    #[test]
    fn overlapping_match_replays_a_run() {
        // "aaaa…" forces offset < match length: the match copies bytes it
        // itself produced.
        let raw = vec![b'a'; 1000];
        let comp = LzScheme.compress(&raw);
        assert!(comp.len() < 20);
        assert_eq!(LzScheme.decompress(&comp, 1000).unwrap(), raw);
    }

    #[test]
    fn raw_scheme_is_identity_and_checks_length() {
        let data = noise(100, 3);
        assert_eq!(RawScheme.compress(&data), data);
        assert_eq!(RawScheme.decompress(&data, 100).unwrap(), data);
        assert!(RawScheme.decompress(&data, 99).is_err());
        assert!(RawScheme.decompress(&data, MAX_BLOCK_RAW + 1).is_err());
    }

    #[test]
    fn corrupt_lz_streams_error_instead_of_panicking() {
        let lz = LzScheme;
        let raw: Vec<u8> = b"abcabcabcabc".iter().copied().cycle().take(400).collect();
        let good = lz.compress(&raw);
        // Truncations at every length.
        for cut in 0..good.len() {
            assert!(lz.decompress(&good[..cut], raw.len()).is_err(), "cut {cut}");
        }
        // Every single-byte flip either round-trips to an error or decodes
        // to the wrong (but bounded) output — never a panic.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x55;
            if let Ok(out) = lz.decompress(&bad, raw.len()) {
                assert_eq!(out.len(), raw.len());
            }
        }
        // Wrong declared length: both directions fail.
        assert!(lz.decompress(&good, raw.len() + 1).is_err());
        assert!(lz.decompress(&good, raw.len() - 1).is_err());
        // Oversized declared length is rejected before allocation.
        assert!(lz.decompress(&good, MAX_BLOCK_RAW + 1).is_err());
        // A match offset pointing before the start of the output.
        let mut bad = Vec::new();
        varint_push(&mut bad, 1);
        bad.push(b'x');
        varint_push(&mut bad, 9); // offset 9 > 1 byte produced
        varint_push(&mut bad, 0);
        assert!(lz.decompress(&bad, 10).is_err());
    }
}
