//! External-trace ingestion: pluggable codecs behind format autodetection.
//!
//! Every number the repro produces comes from the synthetic 40-trace
//! suite; this crate is the gateway for *recorded* branch streams. It
//! layers strictly above `workloads` and below the harness:
//!
//! * [`codec`] — the [`TraceCodec`] trait (encode a [`Trace`], open a
//!   streaming decoder) and the [`CodecRegistry`] that autodetects a
//!   file's format by magic bytes first, extension second;
//! * [`decoder`] — [`TraceDecoder`], the streaming-decoder contract:
//!   an [`EventSource`](workloads::EventSource) plus error reporting, so
//!   corrupt input ends a simulation detectably instead of silently;
//! * [`ttr`] — the native `.ttr` v2 format: deduplicated static-branch
//!   table + LEB128-packed event stream, lossless, with a reserved
//!   compression-scheme byte for a future real compressor;
//! * [`ttr3`] — the `.ttr` v3 container: streaming table-at-end layout
//!   (bounded-memory recording) with scheme-compressed event blocks;
//! * [`scheme`] — the [`BlockScheme`] registry behind the v3 scheme byte:
//!   stored blocks plus a dependency-free LZ77, open for a real zstd;
//! * [`cbp`] — the `cbp-experiments` branch-table + 16-bit entry layout
//!   (sans zstd), for interop with externally recorded traces;
//! * [`csv`] — plain text for hand-authored regression traces.
//!
//! Decoders hold the static-branch table in memory and nothing else, so
//! ingestion memory is bounded by the static footprint, never the trace
//! length — the same property that makes `pipeline::simulate_source`
//! usable on arbitrarily long streams.
//!
//! # Example
//!
//! ```
//! use traces::{CodecRegistry, TraceCodec};
//! use workloads::EventSource;
//! use workloads::suite::{by_name, Scale};
//!
//! let dir = std::env::temp_dir().join("traces-doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("INT05.ttr");
//!
//! // Record a synthetic trace, then reopen it via autodetection.
//! let trace = by_name("INT05", Scale::Tiny).unwrap().generate();
//! let registry = CodecRegistry::standard();
//! let mut file = std::fs::File::create(&path).unwrap();
//! registry.by_name("ttr").unwrap().encode(&mut file, &trace).unwrap();
//! drop(file);
//!
//! let mut source = registry.open(&path).unwrap();
//! assert_eq!(source.name(), "INT05");
//! assert_eq!(source.collect_trace(), trace);
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod cbp;
pub mod codec;
pub mod csv;
pub mod decoder;
pub mod feed;
pub mod scheme;
pub mod ttr;
pub mod ttr3;
pub mod varint;

pub use cbp::{CbpCodec, CbpReader};
pub use codec::{file_meta, CodecRegistry, TraceCodec, SNIFF_LEN};
pub use csv::{CsvCodec, CsvReader};
pub use decoder::{drain_checked, finish, ContainerInfo, TraceDecoder};
pub use feed::FeedOpen;
pub use scheme::{BlockScheme, LzScheme, RawScheme, SCHEMES};
pub use ttr::{TtrCodec, TtrReader};
pub use ttr3::{Ttr3Codec, Ttr3Reader, Ttr3Summary, Ttr3Writer, TTR3_INDEX_FLAG};
