//! Synthetic CBP-3-like branch trace suite and workload generators.
//!
//! The paper evaluates on the 40 traces of the 3rd Championship Branch
//! Prediction (CLIENT / INT / MM / SERVER / WS, ~50M µops each, user+system
//! activity, some with very large static branch footprints). Those traces
//! were distributed only to championship participants, so this crate builds
//! the closest synthetic equivalent: 40 deterministic traces, 8 per
//! category, each composed from explicit *branch behaviour classes* — the
//! behaviours the paper's predictors are designed around:
//!
//! * loops with constant iteration counts and regular **or irregular**
//!   bodies (loop predictor, §5.2);
//! * statistically biased branches uncorrelated with history (statistical
//!   corrector, §5.3);
//! * branches correlated only with their **local** history (LSC, §6);
//! * branches correlated with **global** history at short and very long
//!   lags (TAGE's geometric history core, §3);
//! * huge-period repetitive branches that only multi-megabit predictors
//!   capture (the CLIENT02 cliff of Figure 9);
//! * large static footprints (tag/aliasing pressure, SERVER);
//! * tight loops with multiple in-flight occurrences (delayed-update
//!   sensitivity, §4/§5.1).
//!
//! Every trace is generated from a named seed and is bit-reproducible.
//!
//! # Example
//!
//! ```
//! use workloads::suite::{suite, Scale};
//!
//! let specs = suite(Scale::Tiny);
//! assert_eq!(specs.len(), 40);
//! let trace = specs[0].generate();
//! assert!(!trace.events.is_empty());
//! ```

// SAFETY: this crate hosts one audited `unsafe` (the decoded-block
// prefetch hint in `event::prefetch_event`). The block carries a
// scoped `#[allow(unsafe_code)]` with its SAFETY audit, and the lint
// gate pins this crate to deny-plus-scoped-allow; any new unsafe
// elsewhere fails the build.
#![deny(unsafe_code)]

pub mod behavior;
pub mod event;
pub mod io;
pub mod program;
pub mod stats;
pub mod suite;

pub use event::{EventSource, Trace, TraceEvent, TraceStream};
pub use io::TraceCache;
pub use program::ProgramStream;
pub use stats::TraceStats;
pub use suite::{generate_parallel, suite, Category, Scale, TraceSpec};
