//! Trace characterization statistics (the §2.2 table).

use crate::event::Trace;

/// Summary statistics of one trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Total micro-ops.
    pub uops: u64,
    /// Dynamic conditional branches.
    pub conditionals: u64,
    /// Dynamic unconditional control transfers.
    pub unconditionals: u64,
    /// Distinct static conditional branch PCs.
    pub static_conditionals: usize,
    /// Fraction of conditional branches taken.
    pub taken_rate: f64,
    /// Fraction of events with a load dependence.
    pub load_rate: f64,
}

impl TraceStats {
    /// Computes statistics for a trace.
    pub fn of(trace: &Trace) -> Self {
        let conditionals = trace.conditional_count();
        let unconditionals = trace.events.len() as u64 - conditionals;
        let taken = trace
            .events
            .iter()
            .filter(|e| e.kind.is_conditional() && e.taken)
            .count() as u64;
        let loads = trace.events.iter().filter(|e| e.load_addr.is_some()).count() as u64;
        Self {
            name: trace.name.clone(),
            uops: trace.total_uops(),
            conditionals,
            unconditionals,
            static_conditionals: trace.static_conditional_count(),
            taken_rate: if conditionals == 0 { 0.0 } else { taken as f64 / conditionals as f64 },
            load_rate: if trace.events.is_empty() {
                0.0
            } else {
                loads as f64 / trace.events.len() as f64
            },
        }
    }

    /// Conditional branches per kilo-µop.
    pub fn branches_per_kuop(&self) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.conditionals as f64 * 1000.0 / self.uops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{by_name, Scale};

    #[test]
    fn stats_consistency() {
        let t = by_name("CLIENT01", Scale::Tiny).unwrap().generate();
        let s = TraceStats::of(&t);
        assert_eq!(s.conditionals, Scale::Tiny.branches() as u64);
        assert!(s.uops > s.conditionals);
        assert!((0.0..=1.0).contains(&s.taken_rate));
        assert!((0.0..=1.0).contains(&s.load_rate));
        assert!(s.branches_per_kuop() > 0.0);
    }

    #[test]
    fn taken_rate_reasonable() {
        // Typical programs are taken-biased or near half; our synthetic mix
        // should land in a broad sane band.
        let t = by_name("INT04", Scale::Tiny).unwrap().generate();
        let s = TraceStats::of(&t);
        assert!((0.3..=0.95).contains(&s.taken_rate), "taken rate {}", s.taken_rate);
    }
}
