//! Branch behaviour models.
//!
//! Each static branch in a synthetic program owns a [`Behavior`] that
//! produces its next outcome. The behaviours map one-to-one onto the branch
//! classes the paper's predictor components target:
//!
//! | Behaviour | Paper section | Who captures it |
//! |---|---|---|
//! | [`Behavior::Bias`] | §5.3 | statistical corrector (wide counters) |
//! | [`Behavior::Pattern`] | §3, §6 | TAGE via global history when neighbours are quiet; **LSC via local history when neighbours are noisy** |
//! | [`Behavior::SparseCorr`] | §6.3 | neural predictors (OH-SNAP/FTL++-style); hostile to pure table lookup in noise |
//! | [`Behavior::HugePeriodic`] | Fig. 9 (CLIENT02) | only multi-megabit predictors |
//! | [`Behavior::Random`] | — | nobody (noise floor) |
//!
//! Loop-exit behaviour is produced structurally by
//! [`crate::program::Node::Loop`], not by a `Behavior`.

use simkit::rng::Xoshiro256;

/// Why a `0`/`1` pattern string failed to parse (see
/// [`Behavior::try_pattern_str`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern string was empty.
    Empty,
    /// A character other than `'0'`/`'1'`.
    BadChar {
        /// The offending character.
        ch: char,
    },
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::Empty => write!(f, "pattern must not be empty"),
            PatternError::BadChar { ch } => {
                write!(f, "invalid pattern character {ch:?} (expected '0' or '1')")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// Number of recent conditional outcomes the generation context remembers
/// (for correlated behaviours). Must be a power of two.
const RING_BITS: usize = 2048;

/// Shared generation context: the RNG stream and the recent-outcome ring
/// that correlated behaviours read.
#[derive(Clone, Debug)]
pub struct GenCtx {
    /// Deterministic random stream for this trace.
    pub rng: Xoshiro256,
    ring: Vec<u64>,
    head: usize,
}

impl GenCtx {
    /// Creates a context seeded for one trace.
    pub fn new(seed: u64) -> Self {
        Self { rng: Xoshiro256::seed_from(seed), ring: vec![0; RING_BITS / 64], head: 0 }
    }

    /// Records a conditional outcome (newest first).
    #[inline]
    pub fn push_outcome(&mut self, taken: bool) {
        self.head = (self.head + RING_BITS - 1) % RING_BITS;
        let w = self.head / 64;
        let b = self.head % 64;
        if taken {
            self.ring[w] |= 1 << b;
        } else {
            self.ring[w] &= !(1 << b);
        }
    }

    /// Outcome of the conditional branch executed `lag` branches ago
    /// (`lag = 1` is the immediately preceding branch).
    ///
    /// # Panics
    ///
    /// Panics if `lag` is 0 or exceeds the ring capacity.
    #[inline]
    pub fn outcome_at(&self, lag: usize) -> bool {
        assert!((1..=RING_BITS).contains(&lag), "lag {lag} out of range");
        let pos = (self.head + lag - 1) % RING_BITS;
        (self.ring[pos / 64] >> (pos % 64)) & 1 == 1
    }
}

/// The outcome model of one static branch.
#[derive(Clone, Debug)]
pub enum Behavior {
    /// Independent Bernoulli draw: taken with probability `p`.
    /// Uncorrelated with any history — exactly the class the statistical
    /// corrector (§5.3) exists for.
    Bias {
        /// Probability of taken, in `[0, 1]`.
        p: f64,
    },
    /// Deterministic periodic pattern, repeated forever. With quiet
    /// neighbours its phase is visible in global history; with noisy
    /// neighbours it is only visible in *local* history (§6).
    Pattern {
        /// The repeating outcome sequence (period = `pattern.len()`).
        pattern: Vec<bool>,
        /// Current position.
        pos: usize,
    },
    /// Outcome equals the outcome of the branch executed `lag` branches
    /// ago, XOR `invert`, flipped with probability `noise`. A *sparse
    /// linear* correlation: perceptron-family predictors learn it through
    /// arbitrary interleaved noise, table-based predictors must memorize
    /// every noise combination (§6.3's "correlations not captured by
    /// TAGE-LSC").
    SparseCorr {
        /// How far back the correlated source branch is.
        lag: usize,
        /// Whether the correlation is inverted.
        invert: bool,
        /// Probability the deterministic outcome is flipped.
        noise: f64,
    },
    /// A pseudo-random but exactly repeating sequence with a very long
    /// period. Below the storage cliff no predictor captures it; with
    /// enough capacity TAGE memorizes the whole period (CLIENT02 in
    /// Figure 9 becomes predictable between 2 and 8 Mbits).
    HugePeriodic {
        /// The repeating sequence (tens of thousands of outcomes).
        pattern: Vec<bool>,
        /// Current position.
        pos: usize,
    },
    /// Fair coin — unpredictable noise floor.
    Random,
    /// A bias that *flips* every `phase` executions: taken with
    /// probability `p` for one phase, `1-p` for the next. Forces constant
    /// counter retraining — the dominant source of accuracy loss when
    /// updates are computed from stale fetch-time values (§4.1.2's
    /// scenario \[B\]).
    PhasedBias {
        /// Taken probability during even phases.
        p: f64,
        /// Executions per phase.
        phase: usize,
        /// Executions so far in the current phase.
        count: usize,
        /// Whether the bias is currently flipped.
        flipped: bool,
    },
}

impl Behavior {
    /// Mixes this behaviour's structure (variant + parameters, not its
    /// runtime position state) into a fingerprint via `mix`. The match is
    /// exhaustive on purpose: a new variant fails this compile until it
    /// states what it contributes to trace-cache keys.
    pub fn mix_structure(&self, mix: &mut impl FnMut(u64)) {
        match self {
            Behavior::Bias { p } => {
                mix(1);
                mix(p.to_bits());
            }
            Behavior::Pattern { pattern, pos: _ } => {
                mix(2);
                mix(pattern.len() as u64);
                for &b in pattern {
                    mix(u64::from(b));
                }
            }
            Behavior::SparseCorr { lag, invert, noise } => {
                mix(3);
                mix(*lag as u64);
                mix(u64::from(*invert));
                mix(noise.to_bits());
            }
            Behavior::HugePeriodic { pattern, pos: _ } => {
                mix(4);
                mix(pattern.len() as u64);
                for &b in pattern {
                    mix(u64::from(b));
                }
            }
            Behavior::Random => mix(5),
            Behavior::PhasedBias { p, phase, count: _, flipped: _ } => {
                mix(6);
                mix(p.to_bits());
                mix(*phase as u64);
            }
        }
    }

    /// A huge periodic behaviour with `period` outcomes generated from
    /// `seed`.
    pub fn huge_periodic(period: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from(seed);
        let pattern = (0..period).map(|_| rng.gen_bool(0.5)).collect();
        Behavior::HugePeriodic { pattern, pos: 0 }
    }

    /// A periodic pattern behaviour from a `0`/`1` string, e.g. `"1101"`,
    /// rejecting malformed inputs with a typed error (hand-authored
    /// recipes and external tooling route through this).
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] when `s` is empty or contains characters
    /// other than `'0'`/`'1'`.
    pub fn try_pattern_str(s: &str) -> Result<Self, PatternError> {
        if s.is_empty() {
            return Err(PatternError::Empty);
        }
        let pattern = s
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(PatternError::BadChar { ch: other }),
            })
            .collect::<Result<Vec<bool>, PatternError>>()?;
        Ok(Behavior::Pattern { pattern, pos: 0 })
    }

    /// A periodic pattern behaviour from a compile-time-constant `0`/`1`
    /// string (the suite recipes use this).
    ///
    /// # Panics
    ///
    /// Panics if `s` is empty or contains characters other than '0'/'1';
    /// use [`Behavior::try_pattern_str`] for runtime inputs.
    pub fn pattern_str(s: &str) -> Self {
        // INVARIANT: callers pass literal recipe patterns; a malformed one
        // is a suite bug the first generation run fails loudly on.
        Self::try_pattern_str(s).unwrap_or_else(|e| panic!("pattern {s:?}: {e}"))
    }

    /// Produces the next outcome for this branch.
    pub fn next(&mut self, ctx: &mut GenCtx) -> bool {
        match self {
            Behavior::Bias { p } => ctx.rng.gen_bool(*p),
            Behavior::Pattern { pattern, pos } => {
                let out = pattern[*pos];
                *pos = (*pos + 1) % pattern.len();
                out
            }
            Behavior::SparseCorr { lag, invert, noise } => {
                let base = ctx.outcome_at(*lag) ^ *invert;
                if *noise > 0.0 && ctx.rng.gen_bool(*noise) {
                    !base
                } else {
                    base
                }
            }
            Behavior::HugePeriodic { pattern, pos } => {
                let out = pattern[*pos];
                *pos = (*pos + 1) % pattern.len();
                out
            }
            Behavior::Random => ctx.rng.gen_bool(0.5),
            Behavior::PhasedBias { p, phase, count, flipped } => {
                let eff = if *flipped { 1.0 - *p } else { *p };
                *count += 1;
                if *count >= *phase {
                    *count = 0;
                    *flipped = !*flipped;
                }
                ctx.rng.gen_bool(eff)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_and_reads() {
        let mut ctx = GenCtx::new(1);
        ctx.push_outcome(true);
        ctx.push_outcome(false);
        ctx.push_outcome(true);
        assert!(ctx.outcome_at(1)); // newest
        assert!(!ctx.outcome_at(2));
        assert!(ctx.outcome_at(3));
    }

    #[test]
    fn ring_wraps_around() {
        let mut ctx = GenCtx::new(2);
        for i in 0..RING_BITS + 5 {
            ctx.push_outcome(i % 2 == 0);
        }
        // Last pushed i = RING_BITS+4 (even => true).
        assert!(ctx.outcome_at(1));
        assert!(!ctx.outcome_at(2));
    }

    #[test]
    fn pattern_cycles() {
        let mut b = Behavior::pattern_str("110");
        let mut ctx = GenCtx::new(3);
        let outs: Vec<bool> = (0..6).map(|_| b.next(&mut ctx)).collect();
        assert_eq!(outs, [true, true, false, true, true, false]);
    }

    #[test]
    #[should_panic]
    fn pattern_rejects_bad_chars() {
        let _ = Behavior::pattern_str("10x");
    }

    #[test]
    fn try_pattern_returns_typed_errors() {
        assert_eq!(Behavior::try_pattern_str("").unwrap_err(), PatternError::Empty);
        assert_eq!(
            Behavior::try_pattern_str("10x").unwrap_err(),
            PatternError::BadChar { ch: 'x' }
        );
        // The first offending character wins.
        assert_eq!(
            Behavior::try_pattern_str("102").unwrap_err(),
            PatternError::BadChar { ch: '2' }
        );
        assert!(matches!(
            Behavior::try_pattern_str("0110"),
            Ok(Behavior::Pattern { ref pattern, pos: 0 }) if pattern == &[false, true, true, false]
        ));
        assert_eq!(
            PatternError::BadChar { ch: 'x' }.to_string(),
            "invalid pattern character 'x' (expected '0' or '1')"
        );
    }

    #[test]
    fn bias_calibration() {
        let mut b = Behavior::Bias { p: 0.8 };
        let mut ctx = GenCtx::new(4);
        let taken = (0..50_000).filter(|_| b.next(&mut ctx)).count();
        let frac = taken as f64 / 50_000.0;
        assert!((frac - 0.8).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn sparse_corr_follows_source_exactly_without_noise() {
        let mut ctx = GenCtx::new(5);
        let mut src = Behavior::Random;
        let mut dst = Behavior::SparseCorr { lag: 1, invert: false, noise: 0.0 };
        for _ in 0..1000 {
            let s = src.next(&mut ctx);
            ctx.push_outcome(s);
            let d = dst.next(&mut ctx);
            assert_eq!(d, s);
            ctx.push_outcome(d);
        }
    }

    #[test]
    fn sparse_corr_inverts() {
        let mut ctx = GenCtx::new(6);
        ctx.push_outcome(true);
        let mut b = Behavior::SparseCorr { lag: 1, invert: true, noise: 0.0 };
        assert!(!b.next(&mut ctx));
    }

    #[test]
    fn huge_periodic_repeats_exactly() {
        let mut b = Behavior::huge_periodic(1000, 42);
        let mut ctx = GenCtx::new(7);
        let first: Vec<bool> = (0..1000).map(|_| b.next(&mut ctx)).collect();
        let second: Vec<bool> = (0..1000).map(|_| b.next(&mut ctx)).collect();
        assert_eq!(first, second);
        // And it is not trivially constant.
        assert!(first.iter().any(|&x| x) && first.iter().any(|&x| !x));
    }

    #[test]
    fn phased_bias_flips_direction() {
        let mut b = Behavior::PhasedBias { p: 0.95, phase: 100, count: 0, flipped: false };
        let mut ctx = GenCtx::new(10);
        let first: usize = (0..100).filter(|_| b.next(&mut ctx)).count();
        let second: usize = (0..100).filter(|_| b.next(&mut ctx)).count();
        assert!(first > 80, "first phase should be taken-biased: {first}");
        assert!(second < 20, "second phase should be not-taken-biased: {second}");
    }

    #[test]
    fn deterministic_across_contexts() {
        let run = || {
            let mut ctx = GenCtx::new(99);
            let mut b = Behavior::Bias { p: 0.5 };
            (0..64).map(|_| b.next(&mut ctx)).collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }
}
