//! The 40-trace synthetic benchmark suite.
//!
//! Mirrors the CBP-3 benchmark set used by the paper: five categories
//! (CLIENT, INT, MM, SERVER, WS) of eight traces each. §2.2 of the paper
//! splits the set into 7 *hard* traces (CLIENT02, INT01, INT02, MM05,
//! MM07, WS03, WS04 — about ¾ of all mispredictions) and 33 easier ones;
//! the same names are hard here, by construction:
//!
//! * **CLIENT02** — two huge-period repetitive branches (the Figure 9
//!   capacity cliff);
//! * **INT01 / WS03** — sparse linear correlations buried in noise
//!   (neural-predictor-friendly, table-predictor-hostile);
//! * **INT02 / WS04** — weakly biased noise and irregular loops (hard for
//!   everyone);
//! * **MM05** — data-dependent, statistically biased branches;
//! * **MM07** — local periodic patterns drowned in global noise (the
//!   LSC showcase).

use crate::behavior::Behavior;
use crate::event::Trace;
use crate::program::{LoadModel, Node, PcAlloc, Program, Site, Trip};
use simkit::predictor::BranchKind;
use simkit::rng::Xoshiro256;

/// Benchmark category, matching the CBP-3 taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Interactive client applications.
    Client,
    /// Integer codes.
    Int,
    /// Multimedia kernels.
    Mm,
    /// Server workloads (large static footprints, cold data).
    Server,
    /// Workstation applications.
    Ws,
}

impl Category {
    /// Upper-case name as used in trace names (`"CLIENT"` …).
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Client => "CLIENT",
            Category::Int => "INT",
            Category::Mm => "MM",
            Category::Server => "SERVER",
            Category::Ws => "WS",
        }
    }

    /// All five categories in suite order.
    pub const ALL: [Category; 5] =
        [Category::Client, Category::Int, Category::Mm, Category::Server, Category::Ws];
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Trace length scale. The paper's traces are ~50M µops; these scales trade
/// fidelity for laptop runtime (shapes are stable from `Small` upward).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~6K conditional branches per trace — unit tests, criterion benches.
    Tiny,
    /// ~30K — quick experiment previews.
    Small,
    /// ~120K — the default for `tage_exp`.
    Default,
    /// ~480K — closest to the paper; minutes of runtime.
    Full,
}

impl Scale {
    /// Conditional branches per trace at this scale.
    pub fn branches(self) -> usize {
        match self {
            Scale::Tiny => 6_000,
            Scale::Small => 30_000,
            Scale::Default => 120_000,
            Scale::Full => 480_000,
        }
    }

    /// Parses `"tiny" | "small" | "default" | "full"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Lower-case name, the inverse of [`Scale::parse`] (also the scale
    /// component of trace-cache file names).
    pub fn as_str(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A named, reproducible trace recipe.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Trace name, e.g. `"MM07"`.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Whether this is one of the 7 hard traces of §2.2.
    pub hard: bool,
    program: Program,
    budget: usize,
}

impl TraceSpec {
    /// Materializes the trace (deterministic).
    pub fn generate(&self) -> Trace {
        self.program.generate(self.budget)
    }

    /// Streams the trace lazily (deterministic, bit-identical to
    /// [`TraceSpec::generate`]) without materializing it.
    pub fn stream(&self) -> crate::program::ProgramStream {
        self.program.stream(self.budget)
    }

    /// Conditional-branch budget of this spec.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Structural fingerprint of this recipe — the program tree plus the
    /// budget. Editing anything that changes this spec's generated trace
    /// (a behaviour parameter, a seed, `Scale::branches`, a budget
    /// factor) changes the fingerprint, which keys the on-disk trace
    /// cache.
    pub fn fingerprint(&self) -> u64 {
        self.program.fingerprint() ^ (self.budget as u64).wrapping_mul(0x9E3779B97F4A7C15)
    }
}

/// The names of the 7 high-misprediction-rate traces (§2.2).
pub const HARD_TRACES: [&str; 7] =
    ["CLIENT02", "INT01", "INT02", "MM05", "MM07", "WS03", "WS04"];

/// Builds the full 40-trace suite at the given scale.
pub fn suite(scale: Scale) -> Vec<TraceSpec> {
    let mut specs = Vec::with_capacity(40);
    for cat in Category::ALL {
        for idx in 1..=8u32 {
            specs.push(build(cat, idx, scale));
        }
    }
    specs
}

/// Materializes the full suite at `scale`, generating traces in parallel
/// across up to `threads` worker threads (clamped to the trace count;
/// `None` uses the available parallelism). Order and content are identical
/// to generating each [`TraceSpec`] serially.
///
/// With a `cache`, traces found on disk are loaded instead of generated,
/// and freshly generated traces are persisted for the next run; cache I/O
/// errors fall back to generation silently (the cache is an accelerator,
/// never a correctness dependency).
pub fn generate_parallel(
    scale: Scale,
    threads: Option<usize>,
    cache: Option<&crate::io::TraceCache>,
) -> Vec<Trace> {
    let specs = suite(scale);
    let threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
        .clamp(1, specs.len());
    let realize = |spec: &TraceSpec| -> Trace {
        if let Some(c) = cache {
            let fp = spec.fingerprint();
            if let Some(t) = c.load(&spec.name, scale, fp) {
                return t;
            }
            let t = spec.generate();
            let _ = c.store(&t, scale, fp);
            return t;
        }
        spec.generate()
    };
    if threads == 1 {
        return specs.iter().map(realize).collect();
    }
    std::thread::scope(|s| {
        let chunks: Vec<&[TraceSpec]> = specs.chunks(specs.len().div_ceil(threads)).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(|| chunk.iter().map(&realize).collect::<Vec<_>>()))
            .collect();
        // INVARIANT: re-raises a generator-thread panic on the caller;
        // never an expected error path.
        handles.into_iter().flat_map(|h| h.join().expect("generator panicked")).collect()
    })
}

/// Builds a single named trace (e.g. `"MM05"`) at the given scale.
/// Returns `None` for unknown names.
pub fn by_name(name: &str, scale: Scale) -> Option<TraceSpec> {
    for cat in Category::ALL {
        let pfx = cat.as_str();
        if let Some(rest) = name.strip_prefix(pfx) {
            if let Ok(idx) = rest.parse::<u32>() {
                if (1..=8).contains(&idx) {
                    return Some(build(cat, idx, scale));
                }
            }
        }
    }
    None
}

fn trace_seed(cat: Category, idx: u32) -> u64 {
    let mut h = 0xCBF29CE484222325u64;
    for b in cat.as_str().bytes().chain(idx.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

// ---------------------------------------------------------------------
// Building blocks
// ---------------------------------------------------------------------

/// A random balanced pattern of the given period.
fn random_pattern(period: usize, rng: &mut Xoshiro256) -> Behavior {
    let pattern: Vec<bool> = (0..period).map(|_| rng.gen_bool(0.5)).collect();
    Behavior::Pattern { pattern, pos: 0 }
}

/// A periodic branch surrounded by `noise` weakly-biased branches: the
/// companions inject enough history entropy that every occurrence of the
/// pattern branch sees a unique global history (hostile to TAGE), while
/// its *local* history stays perfectly periodic (the LSC lever, §6).
fn pattern_in_noise(a: &mut PcAlloc, period: usize, noise: usize, rng: &mut Xoshiro256) -> Node {
    let mut seq = vec![Node::Site(Site::new(a.pc(), random_pattern(period, rng)))];
    for i in 0..noise {
        // One moderately biased companion carries most of the entropy;
        // the rest are strongly biased (low intrinsic misprediction).
        let p = if i == 0 { 0.8 } else { 0.95 };
        seq.push(Node::Site(Site::new(a.pc(), Behavior::Bias { p })));
    }
    Node::Seq(seq)
}

/// A hot branch whose bias flips every `phase` executions, executed
/// `trip` times back-to-back inside a tight loop: several occurrences of
/// the same counter are in flight simultaneously, and the phase flips
/// force constant retraining — the §4.1.2 scenario-\[B\] stress.
fn hot_phased(a: &mut PcAlloc, p: f64, phase: usize, trip: u32) -> Node {
    Node::Loop {
        site: Site::new(a.pc(), Behavior::Random).uops(2),
        trip: Trip::Fixed(trip),
        body: Box::new(Node::Site(
            Site::new(a.pc(), Behavior::PhasedBias { p, phase, count: 0, flipped: false }).uops(2),
        )),
    }
}

/// A block of `n` pattern branches sharing one period, executed round
/// robin: the joint phase cycles with the period, so every (site, phase)
/// pair is a *repeating* global-history context — `n × period` contexts
/// in total. Blocks create genuine capacity pressure: a 512 Kbit TAGE
/// (≈37K tagged entries) thrashes on a few blocks that a 2–8 Mbit TAGE
/// holds comfortably (the Figure 9 slope).
fn pattern_block(a: &mut PcAlloc, n: usize, period: usize, rng: &mut Xoshiro256) -> Node {
    let seq: Vec<Node> =
        (0..n).map(|_| Node::Site(Site::new(a.pc(), random_pattern(period, rng)))).collect();
    Node::Seq(seq)
}

/// A periodic branch in *quiet* surroundings (biased companions): global
/// history carries the phase, so TAGE captures it (the longer the period,
/// the longer the history needed — gshare loses first).
fn quiet_pattern(a: &mut PcAlloc, period: usize, rng: &mut Xoshiro256) -> Node {
    Node::Seq(vec![
        Node::Site(Site::new(a.pc(), random_pattern(period, rng))),
        Node::Site(Site::new(a.pc(), Behavior::Bias { p: 0.98 })),
    ])
}

/// A constant-trip loop with a *noisy* body: the loop predictor's target
/// (§5.2). TAGE cannot count iterations through the noise.
fn noisy_const_loop(a: &mut PcAlloc, trip: u32, body_noise: usize) -> Node {
    let body: Vec<Node> =
        (0..body_noise).map(|_| Node::Site(Site::new(a.pc(), Behavior::Bias { p: 0.93 }))).collect();
    Node::Loop {
        site: Site::new(a.pc(), Behavior::Random),
        trip: Trip::Fixed(trip),
        body: Box::new(Node::Seq(body)),
    }
}

/// A constant-trip loop with a quiet, regular body — TAGE handles these.
fn regular_loop(a: &mut PcAlloc, trip: u32, rng: &mut Xoshiro256) -> Node {
    Node::Loop {
        site: Site::new(a.pc(), Behavior::Random),
        trip: Trip::Fixed(trip),
        body: Box::new(Node::Seq(vec![Node::Site(Site::new(a.pc(), random_pattern(4, rng)))])),
    }
}

/// A *tight* loop (small constant trip, minimal body) executed back to
/// back: several occurrences of the loop branch are in flight at once —
/// the delayed-update / IUM stress of §4–5.1.
fn tight_loop(a: &mut PcAlloc, trip: u32) -> Node {
    Node::Loop {
        site: Site::new(a.pc(), Behavior::Random).uops(2),
        trip: Trip::Fixed(trip),
        body: Box::new(Node::Seq(vec![])),
    }
}

/// An irregular loop (variable trip): mispredicts once per execution.
fn irregular_loop(a: &mut PcAlloc, lo: u32, hi: u32, body_noise: usize) -> Node {
    let body: Vec<Node> = (0..body_noise)
        .map(|_| Node::Site(Site::new(a.pc(), Behavior::Bias { p: 0.9 })))
        .collect();
    Node::Loop {
        site: Site::new(a.pc(), Behavior::Random),
        trip: Trip::Uniform(lo, hi),
        body: Box::new(Node::Seq(body)),
    }
}

/// `n` statistically biased branches with per-site bias in `[lo, hi]`
/// (statistical corrector targets, §5.3).
fn bias_field(a: &mut PcAlloc, n: usize, lo: f64, hi: f64, p_load: f64, rng: &mut Xoshiro256) -> Node {
    let seq: Vec<Node> = (0..n)
        .map(|_| {
            let p = lo + (hi - lo) * rng.next_f64();
            // Half taken-biased, half not-taken-biased.
            let p = if rng.gen_bool(0.5) { p } else { 1.0 - p };
            Node::Site(Site::new(a.pc(), Behavior::Bias { p }).load(p_load))
        })
        .collect();
    Node::Seq(seq)
}

/// Sparse linear correlation buried in noise — the neural-predictor lever.
fn sparse_corr_field(a: &mut PcAlloc, lags: &[usize], noise_sites: usize, noise: f64) -> Node {
    let mut seq = Vec::new();
    for &lag in lags {
        seq.push(Node::Site(Site::new(a.pc(), Behavior::SparseCorr { lag, invert: false, noise })));
    }
    for i in 0..noise_sites {
        // Alternate pure noise with weak bias so the field is hard but
        // not a 50% wall.
        let b = if i % 2 == 0 { Behavior::Random } else { Behavior::Bias { p: 0.62 } };
        seq.push(Node::Site(Site::new(a.pc(), b)));
    }
    Node::Seq(seq)
}

/// A large dispatch footprint: `pool` biased sites, `per_visit` executed
/// per round (SERVER pressure).
fn dispatch(a: &mut PcAlloc, pool: usize, per_visit: usize, p_load: f64, rng: &mut Xoshiro256) -> Node {
    let sites: Vec<Site> = (0..pool)
        .map(|_| {
            // Server code is mostly strongly biased: p in [0.85, 1.0),
            // skewed toward the top.
            let r = rng.next_f64();
            let p = 1.0 - 0.08 * r * r;
            let p = if rng.gen_bool(0.5) { p } else { 1.0 - p };
            Site::new(a.pc(), Behavior::Bias { p }).load(p_load)
        })
        .collect();
    Node::Select { sites, per_visit }
}

/// A call/return pair around nothing — feeds path history.
fn call_ret(a: &mut PcAlloc) -> [Node; 2] {
    let c = a.pc();
    let r = a.pc();
    [
        Node::Uncond { pc: c, kind: BranchKind::Call, target: r },
        Node::Uncond { pc: r, kind: BranchKind::Return, target: c + 8 },
    ]
}

// ---------------------------------------------------------------------
// The 40 recipes
// ---------------------------------------------------------------------

fn build(cat: Category, idx: u32, scale: Scale) -> TraceSpec {
    let seed = trace_seed(cat, idx);
    let mut rng = Xoshiro256::seed_from(seed ^ 0xA5A5_5A5A);
    let mut a = PcAlloc::new(0x40_0000 + u64::from(idx) * 0x10_0000);
    let name = format!("{}{:02}", cat.as_str(), idx);
    let hard = HARD_TRACES.contains(&name.as_str());

    let (root, loads) = match (cat, idx) {
        // ----- CLIENT ---------------------------------------------------
        (Category::Client, 1) => {
            // Easy: regular nested loops and short quiet patterns.
            let mut seq = vec![
                regular_loop(&mut a, 8, &mut rng),
                quiet_pattern(&mut a, 6, &mut rng),
                regular_loop(&mut a, 12, &mut rng),
                quiet_pattern(&mut a, 12, &mut rng),
            ];
            seq.extend(call_ret(&mut a));
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Client, 2) => {
            // HARD: the Figure 9 capacity cliff. Two huge-period repetitive
            // branches dominate the stream; only multi-megabit predictors
            // can memorize the periods.
            let h1 = Site::new(a.pc(), Behavior::huge_periodic(6000, seed ^ 1)).load(0.3);
            let h2 = Site::new(a.pc(), Behavior::huge_periodic(9000, seed ^ 2)).load(0.3);
            // A nearly-silent companion: the huge periods themselves are
            // the only real history content, so the (branch, window)
            // context count stays ≈ the period sum — learnable once the
            // predictor grows into the megabit range (the Figure 9 cliff).
            let seq = vec![
                Node::Site(h1),
                Node::Site(h2),
                Node::Site(Site::new(a.pc(), Behavior::Bias { p: 0.995 })),
            ];
            (Node::Seq(seq), LoadModel::cold(0.25, 1 << 17))
        }
        (Category::Client, 3) => {
            // Local patterns in noise (LSC benefit), moderate rate.
            let seq = vec![
                pattern_in_noise(&mut a, 17, 3, &mut rng),
                pattern_in_noise(&mut a, 23, 3, &mut rng),
                bias_field(&mut a, 4, 0.85, 0.97, 0.05, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Client, 4) => {
            // Tight loops + phase-flipping hot branches: delayed-update /
            // IUM stress (paper: >10% gap without IUM on CLIENT04/06).
            let seq = vec![
                hot_phased(&mut a, 0.97, 100, 8),
                tight_loop(&mut a, 3),
                hot_phased(&mut a, 0.96, 140, 8),
                quiet_pattern(&mut a, 9, &mut rng),
                tight_loop(&mut a, 5),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Client, 5) => {
            // Loop-predictor showcase: constant trips, noisy bodies.
            let seq = vec![
                noisy_const_loop(&mut a, 21, 2),
                noisy_const_loop(&mut a, 33, 3),
                bias_field(&mut a, 4, 0.88, 0.98, 0.05, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Client, 6) => {
            // Second delayed-update-sensitive client trace.
            let seq = vec![
                hot_phased(&mut a, 0.97, 80, 8),
                tight_loop(&mut a, 3),
                quiet_pattern(&mut a, 8, &mut rng),
                hot_phased(&mut a, 0.95, 180, 8),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Client, 7) => {
            // Easy: quiet patterns of growing period (the longest ones
            // only fit in scaled-up predictors — Figure 9 slope).
            let seq = vec![
                quiet_pattern(&mut a, 10, &mut rng),
                quiet_pattern(&mut a, 40, &mut rng),
                quiet_pattern(&mut a, 350, &mut rng),
                regular_loop(&mut a, 16, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Client, _) => {
            // Mixed easy/moderate.
            let seq = vec![
                regular_loop(&mut a, 24, &mut rng),
                bias_field(&mut a, 6, 0.85, 0.97, 0.08, &mut rng),
                pattern_block(&mut a, 40, 180, &mut rng),
                quiet_pattern(&mut a, 14, &mut rng),
                hot_phased(&mut a, 0.96, 500, 3),
            ];
            (Node::Seq(seq), LoadModel::default())
        }

        // ----- INT ------------------------------------------------------
        (Category::Int, 1) => {
            // HARD: sparse correlations in noise — neural predictors learn
            // these through the noise, tables cannot.
            let seq = vec![
                sparse_corr_field(&mut a, &[11, 19, 27], 4, 0.06),
                bias_field(&mut a, 2, 0.62, 0.72, 0.3, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::cold(0.3, 1 << 17))
        }
        (Category::Int, 2) => {
            // HARD: weak bias + irregular loops; high floor for everyone.
            let seq = vec![
                bias_field(&mut a, 4, 0.58, 0.68, 0.35, &mut rng),
                irregular_loop(&mut a, 2, 14, 1),
                Node::Site(Site::new(a.pc(), Behavior::Random).load(0.35)),
                irregular_loop(&mut a, 3, 11, 0),
                quiet_pattern(&mut a, 7, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::cold(0.35, 1 << 18))
        }
        (Category::Int, 3) => {
            let seq = vec![
                quiet_pattern(&mut a, 24, &mut rng),
                pattern_block(&mut a, 80, 300, &mut rng),
                regular_loop(&mut a, 10, &mut rng),
                bias_field(&mut a, 5, 0.85, 0.97, 0.05, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Int, 4) => {
            let mut seq = vec![regular_loop(&mut a, 6, &mut rng)];
            seq.push(Node::Loop {
                site: Site::new(a.pc(), Behavior::Random),
                trip: Trip::Fixed(9),
                body: Box::new(regular_loop(&mut a, 5, &mut rng)),
            });
            seq.extend(call_ret(&mut a));
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Int, 5) => {
            // Moderate LSC target.
            let seq = vec![
                pattern_in_noise(&mut a, 13, 2, &mut rng),
                pattern_in_noise(&mut a, 19, 2, &mut rng),
                quiet_pattern(&mut a, 7, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Int, 6) => {
            // Loop-predictor target.
            let seq = vec![
                noisy_const_loop(&mut a, 48, 2),
                bias_field(&mut a, 4, 0.9, 0.98, 0.05, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Int, 7) => {
            // Long-period quiet patterns: long-history TAGE advantage and
            // capacity sensitivity (the windows repeat, but the working
            // set of (branch, window) pairs exceeds small predictors).
            let seq = vec![
                quiet_pattern(&mut a, 600, &mut rng),
                quiet_pattern(&mut a, 120, &mut rng),
                quiet_pattern(&mut a, 60, &mut rng),
                regular_loop(&mut a, 18, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Int, _) => {
            let seq = vec![
                bias_field(&mut a, 8, 0.88, 0.99, 0.05, &mut rng),
                quiet_pattern(&mut a, 9, &mut rng),
                hot_phased(&mut a, 0.97, 250, 4),
            ];
            (Node::Seq(seq), LoadModel::default())
        }

        // ----- MM -------------------------------------------------------
        (Category::Mm, 1) => {
            let seq = vec![
                regular_loop(&mut a, 16, &mut rng),
                regular_loop(&mut a, 8, &mut rng),
                quiet_pattern(&mut a, 9, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Mm, 2) => {
            let seq = vec![noisy_const_loop(&mut a, 64, 1), regular_loop(&mut a, 32, &mut rng)];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Mm, 3) => {
            let seq = vec![
                quiet_pattern(&mut a, 5, &mut rng),
                quiet_pattern(&mut a, 15, &mut rng),
                regular_loop(&mut a, 12, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Mm, 4) => {
            let seq = vec![
                tight_loop(&mut a, 8),
                hot_phased(&mut a, 0.97, 250, 8),
                regular_loop(&mut a, 20, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Mm, 5) => {
            // HARD: data-dependent statistical bias (SC target) + noise.
            let seq = vec![
                bias_field(&mut a, 6, 0.6, 0.74, 0.3, &mut rng),
                irregular_loop(&mut a, 2, 9, 0),
                quiet_pattern(&mut a, 6, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::cold(0.3, 1 << 17))
        }
        (Category::Mm, 6) => {
            let seq = vec![
                quiet_pattern(&mut a, 500, &mut rng),
                quiet_pattern(&mut a, 200, &mut rng),
                regular_loop(&mut a, 25, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Mm, 7) => {
            // HARD: local periodic patterns drowned in noise — the LSC
            // showcase (§6).
            let seq = vec![
                pattern_in_noise(&mut a, 24, 4, &mut rng),
                pattern_in_noise(&mut a, 31, 4, &mut rng),
                bias_field(&mut a, 2, 0.62, 0.72, 0.3, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::cold(0.25, 1 << 16))
        }
        (Category::Mm, _) => {
            let seq = vec![
                regular_loop(&mut a, 40, &mut rng),
                pattern_block(&mut a, 44, 200, &mut rng),
                quiet_pattern(&mut a, 11, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }

        // ----- SERVER ---------------------------------------------------
        (Category::Server, i) => {
            // Large static footprints of biased branches + cold data.
            let pool = 350 + 200 * i as usize;
            let mut seq = vec![dispatch(&mut a, pool, 16, 0.2, &mut rng)];
            if i % 2 == 0 {
                seq.push(pattern_block(&mut a, 24 + 2 * i as usize, 140, &mut rng));
            }
            if i % 3 == 0 {
                seq.push(noisy_const_loop(&mut a, 12 + 4 * i, 1));
            }
            seq.extend(call_ret(&mut a));
            (Node::Seq(seq), LoadModel::cold(0.2, 1 << 17))
        }

        // ----- WS -------------------------------------------------------
        (Category::Ws, 1) => {
            let seq = vec![
                quiet_pattern(&mut a, 13, &mut rng),
                regular_loop(&mut a, 14, &mut rng),
                bias_field(&mut a, 4, 0.9, 0.99, 0.05, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Ws, 2) => {
            let seq = vec![
                regular_loop(&mut a, 30, &mut rng),
                quiet_pattern(&mut a, 22, &mut rng),
                quiet_pattern(&mut a, 420, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Ws, 3) => {
            // HARD: neural-friendly sparse correlations + noise.
            let seq = vec![
                sparse_corr_field(&mut a, &[7, 15], 4, 0.1),
                bias_field(&mut a, 2, 0.6, 0.7, 0.3, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::cold(0.3, 1 << 17))
        }
        (Category::Ws, 4) => {
            // HARD: irregular loops + weak bias.
            let seq = vec![
                irregular_loop(&mut a, 3, 28, 2),
                bias_field(&mut a, 4, 0.58, 0.7, 0.3, &mut rng),
                irregular_loop(&mut a, 2, 12, 0),
            ];
            (Node::Seq(seq), LoadModel::cold(0.3, 1 << 18))
        }
        (Category::Ws, 5) => {
            let seq = vec![
                pattern_in_noise(&mut a, 21, 3, &mut rng),
                quiet_pattern(&mut a, 16, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Ws, 6) => {
            let seq = vec![
                noisy_const_loop(&mut a, 27, 2),
                bias_field(&mut a, 4, 0.88, 0.98, 0.08, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Ws, 7) => {
            let seq = vec![
                quiet_pattern(&mut a, 18, &mut rng),
                pattern_block(&mut a, 36, 160, &mut rng),
                irregular_loop(&mut a, 5, 11, 1),
                bias_field(&mut a, 4, 0.85, 0.96, 0.1, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
        (Category::Ws, _) => {
            let seq = vec![
                bias_field(&mut a, 6, 0.88, 0.98, 0.08, &mut rng),
                quiet_pattern(&mut a, 26, &mut rng),
                hot_phased(&mut a, 0.96, 350, 5),
                regular_loop(&mut a, 9, &mut rng),
            ];
            (Node::Seq(seq), LoadModel::default())
        }
    };

    // CLIENT02 runs 3x longer: its huge-period branches need enough
    // repetitions for multi-megabit predictors to memorize them (the CBP-3
    // traces were similarly not all the same length).
    let budget_factor = if name == "CLIENT02" { 3 } else { 1 };
    TraceSpec {
        name: name.clone(),
        category: cat,
        hard,
        program: Program { name, category: cat.as_str().to_string(), seed, root, loads },
        budget: scale.branches() * budget_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_40_unique_traces() {
        let specs = suite(Scale::Tiny);
        assert_eq!(specs.len(), 40);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40);
    }

    #[test]
    fn hard_flags_match_constant() {
        let specs = suite(Scale::Tiny);
        let hard: Vec<&str> =
            specs.iter().filter(|s| s.hard).map(|s| s.name.as_str()).collect();
        assert_eq!(hard.len(), 7);
        for h in HARD_TRACES {
            assert!(hard.contains(&h), "missing hard trace {h}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = by_name("MM05", Scale::Tiny).unwrap().generate();
        let b = by_name("MM05", Scale::Tiny).unwrap().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn budgets_respect_scale() {
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        assert_eq!(t.conditional_count(), Scale::Tiny.branches() as u64);
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("NOPE01", Scale::Tiny).is_none());
        assert!(by_name("CLIENT09", Scale::Tiny).is_none());
        assert!(by_name("CLIENT00", Scale::Tiny).is_none());
    }

    #[test]
    fn server_traces_have_large_footprints() {
        let t = by_name("SERVER08", Scale::Tiny).unwrap().generate();
        // Pool of 350 + 200*8 = 1950 sites; at Tiny scale most are visited.
        assert!(
            t.static_conditional_count() > 1000,
            "footprint {}",
            t.static_conditional_count()
        );
    }

    #[test]
    fn hard_traces_have_load_dependences() {
        let t = by_name("INT02", Scale::Tiny).unwrap().generate();
        let with_loads = t.events.iter().filter(|e| e.load_addr.is_some()).count();
        assert!(with_loads > t.events.len() / 20);
    }

    #[test]
    fn scale_parse_round_trips() {
        for (s, v) in [
            ("tiny", Scale::Tiny),
            ("small", Scale::Small),
            ("default", Scale::Default),
            ("full", Scale::Full),
        ] {
            assert_eq!(Scale::parse(s), Some(v));
            assert_eq!(Scale::parse(v.as_str()), Some(v));
            assert_eq!(v.to_string(), s);
        }
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn spec_stream_matches_generate() {
        let spec = by_name("CLIENT02", Scale::Tiny).unwrap();
        use crate::event::EventSource;
        assert_eq!(spec.stream().collect_trace(), spec.generate());
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let serial: Vec<Trace> = suite(Scale::Tiny).iter().map(|s| s.generate()).collect();
        let parallel = generate_parallel(Scale::Tiny, Some(7), None);
        assert_eq!(parallel.len(), 40);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn categories_display() {
        assert_eq!(Category::Client.to_string(), "CLIENT");
        assert_eq!(Category::ALL.len(), 5);
    }

    #[test]
    fn call_ret_events_present_in_client01() {
        let t = by_name("CLIENT01", Scale::Tiny).unwrap().generate();
        assert!(t.events.iter().any(|e| e.kind == BranchKind::Call));
        assert!(t.events.iter().any(|e| e.kind == BranchKind::Return));
    }
}
