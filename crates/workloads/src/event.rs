//! Trace event and trace container types, and the [`EventSource`]
//! streaming abstraction the simulation pipeline consumes.

use serde::{Deserialize, Serialize};
use simkit::predictor::{BranchInfo, BranchKind};

/// One dynamic control-flow event of a trace, together with the
/// micro-architectural context the penalty model needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Branch instruction address.
    pub pc: u64,
    /// Branch class (only `Conditional` events are predicted).
    pub kind: BranchKind,
    /// Resolved direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// Branch target address.
    pub target: u64,
    /// Non-branch micro-ops retired since the previous event (the
    /// denominator of MPPKI counts these plus the branch itself).
    pub uops_before: u16,
    /// Address of a load this branch's condition depends on, if any.
    /// The core model walks it through the cache hierarchy to derive the
    /// branch resolution latency (hard traces resolve late, as in CBP-3).
    pub load_addr: Option<u64>,
}

impl TraceEvent {
    /// The [`BranchInfo`] view handed to predictors.
    #[inline]
    pub fn branch_info(&self) -> BranchInfo {
        BranchInfo { pc: self.pc, kind: self.kind, target: self.target }
    }

    /// Micro-ops this event accounts for (its padding plus itself).
    #[inline]
    pub fn uops(&self) -> u64 {
        u64::from(self.uops_before) + 1
    }
}

/// A fully materialized trace: a named, reproducible event sequence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Trace name, e.g. `"CLIENT02"`.
    pub name: String,
    /// Category name, e.g. `"CLIENT"`.
    pub category: String,
    /// The event stream.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Total micro-op count (branches + padding micro-ops).
    pub fn total_uops(&self) -> u64 {
        self.events.iter().map(TraceEvent::uops).sum()
    }

    /// Number of conditional branch events.
    pub fn conditional_count(&self) -> u64 {
        self.events.iter().filter(|e| e.kind.is_conditional()).count() as u64
    }

    /// Number of distinct static conditional branch PCs.
    pub fn static_conditional_count(&self) -> usize {
        let mut pcs: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.kind.is_conditional())
            .map(|e| e.pc)
            .collect();
        pcs.sort_unstable();
        pcs.dedup();
        pcs.len()
    }
}

/// A reusable decode buffer for block-at-a-time event delivery.
///
/// The batched simulation loop refills one `EventBlock` per chunk instead
/// of making one virtual `next_event` call per event; the buffer is
/// reused across refills so the steady state allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct EventBlock {
    /// The decoded events, in stream order.
    pub events: Vec<TraceEvent>,
}

impl EventBlock {
    /// An empty block with capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self { events: Vec::with_capacity(cap) }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the block holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Hints the cache hierarchy that the event at `index` is about to
    /// be consumed (see [`prefetch_event`]).
    #[inline]
    pub fn prefetch(&self, index: usize) {
        prefetch_event(&self.events, index);
    }
}

/// How far ahead of the consuming loop the event prefetch runs: far
/// enough (a few cache lines of packed events) that the line arrives
/// before the loop does, near enough that it is not evicted again by the
/// predictor's own table traffic in between.
pub const EVENT_PREFETCH_AHEAD: usize = 8;

/// Hints the cache hierarchy that `events[index]` is about to be read.
/// A full decode block is ~160 KiB of events — larger than L1 — and the
/// predictor's table traffic between steps evicts the tail of the
/// buffer, so the consuming loops issue one hint
/// [`EVENT_PREFETCH_AHEAD`] events ahead to overlap the refill with
/// prediction work. Purely a performance hint — never changes results.
// SAFETY: mirrors the audited tagged-table prefetch in tage-core —
// scoped allow under the crate-level `#![deny(unsafe_code)]`; any new
// unsafe elsewhere in this crate fails the build.
#[allow(unsafe_code)]
#[inline]
pub fn prefetch_event(events: &[TraceEvent], index: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: the pointer is in-bounds (`index` is checked against the
    // slice length here) and prefetch has no memory effects.
    if index < events.len() {
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                events.as_ptr().add(index).cast::<i8>(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (events, index);
}

/// A pull-based stream of trace events plus the metadata reports need.
///
/// This is the interface the simulation engine consumes: a fully
/// materialized [`Trace`] (via [`TraceStream`]), a lazily generated
/// program execution ([`crate::program::ProgramStream`]), or anything
/// else that can produce [`TraceEvent`]s one at a time. Streaming keeps
/// memory proportional to the in-flight window instead of the trace
/// length, which is what makes very long traces feasible.
pub trait EventSource {
    /// Trace name, e.g. `"CLIENT02"` (for reports).
    fn name(&self) -> &str;

    /// Category name, e.g. `"CLIENT"` (for reports).
    fn category(&self) -> &str;

    /// Produces the next event, or `None` at end of stream.
    fn next_event(&mut self) -> Option<TraceEvent>;

    /// Refills `block` with up to `max` events (clearing any previous
    /// contents) and returns the number delivered; `0` means end of
    /// stream. The default pulls events one at a time, so any source gets
    /// block delivery for free; sources with random-access backing (e.g.
    /// [`TraceStream`]) override it with a bulk copy, and the `Box<dyn …>`
    /// forwarding impl overrides it so a whole block costs one virtual
    /// call instead of `max`.
    fn next_block(&mut self, block: &mut EventBlock, max: usize) -> usize {
        block.events.clear();
        while block.events.len() < max {
            match self.next_event() {
                Some(e) => block.events.push(e),
                None => break,
            }
        }
        block.events.len()
    }

    /// Advances the stream past the next `n` events, returning how many
    /// were actually skipped (fewer only at end of stream). The default
    /// decodes and discards one event at a time, so every source —
    /// synthetic, CSV, v2 — supports positioning for sampled simulation;
    /// sources with random-access backing ([`TraceStream`], the indexed
    /// `.ttr` v3 reader) override it with an O(1) seek.
    fn skip(&mut self, n: u64) -> u64 {
        let mut skipped = 0;
        while skipped < n && self.next_event().is_some() {
            skipped += 1;
        }
        skipped
    }

    /// Materializes the remaining stream into a [`Trace`].
    fn collect_trace(mut self) -> Trace
    where
        Self: Sized,
    {
        let name = self.name().to_string();
        let category = self.category().to_string();
        let mut events = Vec::new();
        while let Some(e) = self.next_event() {
            events.push(e);
        }
        Trace { name, category, events }
    }
}

/// Boxed sources forward, so `Box<dyn EventSource>` (and boxed subtraits,
/// e.g. foreign-format trace decoders) plug directly into generic
/// consumers like `pipeline::simulate_source`.
impl<E: EventSource + ?Sized> EventSource for Box<E> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn category(&self) -> &str {
        (**self).category()
    }

    #[inline]
    fn next_event(&mut self) -> Option<TraceEvent> {
        (**self).next_event()
    }

    #[inline]
    fn next_block(&mut self, block: &mut EventBlock, max: usize) -> usize {
        (**self).next_block(block, max)
    }

    #[inline]
    fn skip(&mut self, n: u64) -> u64 {
        (**self).skip(n)
    }
}

/// A borrowing [`EventSource`] over a materialized [`Trace`].
#[derive(Clone, Debug)]
pub struct TraceStream<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceStream<'a> {
    /// Streams `trace` from the beginning.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace, pos: 0 }
    }
}

impl EventSource for TraceStream<'_> {
    fn name(&self) -> &str {
        &self.trace.name
    }

    fn category(&self) -> &str {
        &self.trace.category
    }

    #[inline]
    fn next_event(&mut self) -> Option<TraceEvent> {
        let e = self.trace.events.get(self.pos).copied();
        self.pos += e.is_some() as usize;
        e
    }

    fn next_block(&mut self, block: &mut EventBlock, max: usize) -> usize {
        let remaining = &self.trace.events[self.pos.min(self.trace.events.len())..];
        let n = remaining.len().min(max);
        block.events.clear();
        block.events.extend_from_slice(&remaining[..n]);
        self.pos += n;
        n
    }

    fn skip(&mut self, n: u64) -> u64 {
        let left = self.trace.events.len() - self.pos.min(self.trace.events.len());
        let n = (left as u64).min(n);
        self.pos += n as usize;
        n
    }
}

impl Iterator for TraceStream<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.next_event()
    }
}

impl Trace {
    /// A streaming view of this trace.
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u64, taken: bool, uops: u16) -> TraceEvent {
        TraceEvent {
            pc,
            kind: BranchKind::Conditional,
            taken,
            target: pc + 8,
            uops_before: uops,
            load_addr: None,
        }
    }

    #[test]
    fn uop_accounting() {
        let t = Trace {
            name: "t".into(),
            category: "TEST".into(),
            events: vec![ev(4, true, 3), ev(8, false, 0)],
        };
        assert_eq!(t.total_uops(), 5);
        assert_eq!(t.conditional_count(), 2);
    }

    #[test]
    fn static_counts_dedup() {
        let t = Trace {
            name: "t".into(),
            category: "TEST".into(),
            events: vec![ev(4, true, 0), ev(4, false, 0), ev(12, true, 0)],
        };
        assert_eq!(t.static_conditional_count(), 2);
    }

    #[test]
    fn branch_info_view() {
        let e = ev(0x100, true, 2);
        let b = e.branch_info();
        assert_eq!(b.pc, 0x100);
        assert!(b.kind.is_conditional());
    }

    #[test]
    fn trace_stream_yields_events_in_order() {
        let t = Trace {
            name: "t".into(),
            category: "TEST".into(),
            events: vec![ev(4, true, 3), ev(8, false, 0), ev(12, true, 1)],
        };
        let streamed: Vec<TraceEvent> = t.stream().collect();
        assert_eq!(streamed, t.events);
        let mut s = t.stream();
        assert_eq!(s.name(), "t");
        assert_eq!(s.category(), "TEST");
        while s.next_event().is_some() {}
        assert_eq!(s.next_event(), None);
    }

    #[test]
    fn boxed_dyn_source_forwards() {
        let t = Trace {
            name: "t".into(),
            category: "TEST".into(),
            events: vec![ev(4, true, 3), ev(8, false, 0)],
        };
        let mut boxed: Box<dyn EventSource + '_> = Box::new(t.stream());
        assert_eq!(boxed.name(), "t");
        assert_eq!(boxed.category(), "TEST");
        let mut n = 0;
        while boxed.next_event().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
        let boxed: Box<dyn EventSource + '_> = Box::new(t.stream());
        assert_eq!(boxed.collect_trace(), t);
    }

    #[test]
    fn next_block_matches_next_event_for_any_chunking() {
        let t = Trace {
            name: "t".into(),
            category: "TEST".into(),
            events: (0..13).map(|i| ev(4 * (i + 1), i % 3 == 0, i as u16)).collect(),
        };
        for max in [1usize, 2, 5, 13, 64] {
            let mut s = t.stream();
            let mut block = EventBlock::default();
            let mut got = Vec::new();
            loop {
                let n = s.next_block(&mut block, max);
                assert_eq!(n, block.len());
                if n == 0 {
                    break;
                }
                assert!(n <= max);
                got.extend_from_slice(&block.events);
            }
            assert_eq!(got, t.events, "chunk size {max}");
            // End of stream is sticky.
            assert_eq!(s.next_block(&mut block, max), 0);
            assert!(block.is_empty());
        }
    }

    #[test]
    fn default_and_boxed_next_block_agree_with_override() {
        struct OneAtATime<'a>(TraceStream<'a>);
        impl EventSource for OneAtATime<'_> {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn category(&self) -> &str {
                self.0.category()
            }
            fn next_event(&mut self) -> Option<TraceEvent> {
                self.0.next_event()
            }
        }
        let t = Trace {
            name: "t".into(),
            category: "TEST".into(),
            events: (0..7).map(|i| ev(8 * (i + 1), i % 2 == 0, 1)).collect(),
        };
        let mut block = EventBlock::with_capacity(4);
        // Default (pull-loop) implementation.
        let mut slow = OneAtATime(t.stream());
        assert_eq!(slow.next_block(&mut block, 4), 4);
        assert_eq!(block.events, t.events[..4]);
        // Boxed forwarding reaches the TraceStream override.
        let mut boxed: Box<dyn EventSource + '_> = Box::new(t.stream());
        assert_eq!(boxed.next_block(&mut block, 4), 4);
        assert_eq!(block.events, t.events[..4]);
        assert_eq!(boxed.next_block(&mut block, 4), 3);
        assert_eq!(block.events, t.events[4..]);
    }

    #[test]
    fn skip_positions_like_decode_discard() {
        let t = Trace {
            name: "t".into(),
            category: "TEST".into(),
            events: (0..11).map(|i| ev(4 * (i + 1), i % 3 == 0, i as u16)).collect(),
        };
        for n in [0u64, 1, 5, 11, 20] {
            // TraceStream's O(1) override. (UFCS: TraceStream is also an
            // Iterator, whose `skip` adapter would shadow the trait's.)
            let mut fast = t.stream();
            let skipped = EventSource::skip(&mut fast, n);
            assert_eq!(skipped, n.min(11));
            // The default decode-discard path, via a wrapper without an
            // override.
            struct Plain<'a>(TraceStream<'a>);
            impl EventSource for Plain<'_> {
                fn name(&self) -> &str {
                    self.0.name()
                }
                fn category(&self) -> &str {
                    self.0.category()
                }
                fn next_event(&mut self) -> Option<TraceEvent> {
                    self.0.next_event()
                }
            }
            let mut slow = Plain(t.stream());
            assert_eq!(EventSource::skip(&mut slow, n), skipped, "skip({n})");
            let rest_fast: Vec<TraceEvent> = std::iter::from_fn(|| fast.next_event()).collect();
            let rest_slow: Vec<TraceEvent> = std::iter::from_fn(|| slow.next_event()).collect();
            assert_eq!(rest_fast, rest_slow, "skip({n}) diverged");
            assert_eq!(rest_fast.len() as u64, 11u64.saturating_sub(n));
        }
        // Boxed forwarding reaches the override.
        let mut boxed: Box<dyn EventSource + '_> = Box::new(t.stream());
        assert_eq!(boxed.skip(4), 4);
        assert_eq!(boxed.next_event().unwrap(), t.events[4]);
    }

    #[test]
    fn collect_trace_round_trips() {
        let t = Trace {
            name: "t".into(),
            category: "TEST".into(),
            events: vec![ev(4, true, 3), ev(8, false, 0)],
        };
        assert_eq!(t.stream().collect_trace(), t);
    }
}
