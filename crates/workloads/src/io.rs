//! Compact binary (de)serialization of traces.
//!
//! Traces are normally regenerated from seeds, but persisting them is useful
//! for debugging and for feeding the same stream to external tools. The
//! format is a tiny custom codec (magic + version + varint-free fixed-width
//! records) so the repository needs no serialization-format dependency.

use crate::event::{Trace, TraceEvent};
use simkit::predictor::BranchKind;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"TAGETRC1";

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::DirectJump => 1,
        BranchKind::IndirectJump => 2,
        BranchKind::Call => 3,
        BranchKind::Return => 4,
    }
}

fn code_kind(c: u8) -> io::Result<BranchKind> {
    Ok(match c {
        0 => BranchKind::Conditional,
        1 => BranchKind::DirectJump,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::Call,
        4 => BranchKind::Return,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid branch kind code {other}"),
            ))
        }
    })
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "string too long"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes a trace to `w`.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_str(w, &trace.name)?;
    write_str(w, &trace.category)?;
    w.write_all(&(trace.events.len() as u64).to_le_bytes())?;
    for e in &trace.events {
        w.write_all(&e.pc.to_le_bytes())?;
        w.write_all(&e.target.to_le_bytes())?;
        w.write_all(&[kind_code(e.kind), e.taken as u8])?;
        w.write_all(&e.uops_before.to_le_bytes())?;
        match e.load_addr {
            Some(addr) => {
                w.write_all(&[1])?;
                w.write_all(&addr.to_le_bytes())?;
            }
            None => w.write_all(&[0])?,
        }
    }
    Ok(())
}

/// Reads a trace previously written with [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/energy header or corrupt records,
/// and any I/O error from the underlying reader.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<Trace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
    }
    let name = read_str(r)?;
    let category = read_str(r)?;
    let mut n = [0u8; 8];
    r.read_exact(&mut n)?;
    let n = u64::from_le_bytes(n) as usize;
    let mut events = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        let mut pc = [0u8; 8];
        let mut target = [0u8; 8];
        let mut flags = [0u8; 2];
        let mut uops = [0u8; 2];
        r.read_exact(&mut pc)?;
        r.read_exact(&mut target)?;
        r.read_exact(&mut flags)?;
        r.read_exact(&mut uops)?;
        let mut has_load = [0u8; 1];
        r.read_exact(&mut has_load)?;
        let load_addr = if has_load[0] == 1 {
            let mut addr = [0u8; 8];
            r.read_exact(&mut addr)?;
            Some(u64::from_le_bytes(addr))
        } else if has_load[0] == 0 {
            None
        } else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad load flag"));
        };
        events.push(TraceEvent {
            pc: u64::from_le_bytes(pc),
            target: u64::from_le_bytes(target),
            kind: code_kind(flags[0])?,
            taken: flags[1] != 0,
            uops_before: u16::from_le_bytes(uops),
            load_addr,
        });
    }
    Ok(Trace { name, category, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{by_name, Scale};

    #[test]
    fn round_trip() {
        let t = by_name("SERVER03", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTATRACE_______".to_vec();
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated() {
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_bad_kind_code() {
        let t = Trace { name: "x".into(), category: "X".into(), events: vec![] };
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        // Claim one event, then provide a record with kind code 9.
        let len_pos = buf.len() - 8;
        buf[len_pos..].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]); // pc + target
        buf.extend_from_slice(&[9, 0]); // bad kind
        buf.extend_from_slice(&[0u8; 2]); // uops
        buf.extend_from_slice(&[0]); // no load
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }
}
