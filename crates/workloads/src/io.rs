//! Compact binary (de)serialization of traces.
//!
//! Traces are normally regenerated from seeds, but persisting them is useful
//! for debugging and for feeding the same stream to external tools. The
//! format is a tiny custom codec (magic + version + varint-free fixed-width
//! records) so the repository needs no serialization-format dependency.

use crate::event::{Trace, TraceEvent};
use crate::suite::Scale;
use simkit::predictor::BranchKind;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"TAGETRC1";

/// On-disk codec format version; part of every cache file name so stale
/// caches are simply ignored when the format evolves.
pub const FORMAT_VERSION: u32 = 1;

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::DirectJump => 1,
        BranchKind::IndirectJump => 2,
        BranchKind::Call => 3,
        BranchKind::Return => 4,
    }
}

fn code_kind(c: u8) -> io::Result<BranchKind> {
    Ok(match c {
        0 => BranchKind::Conditional,
        1 => BranchKind::DirectJump,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::Call,
        4 => BranchKind::Return,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid branch kind code {other}"),
            ))
        }
    })
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "string too long"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes a trace to `w`.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_str(w, &trace.name)?;
    write_str(w, &trace.category)?;
    w.write_all(&(trace.events.len() as u64).to_le_bytes())?;
    for e in &trace.events {
        w.write_all(&e.pc.to_le_bytes())?;
        w.write_all(&e.target.to_le_bytes())?;
        w.write_all(&[kind_code(e.kind), e.taken as u8])?;
        w.write_all(&e.uops_before.to_le_bytes())?;
        match e.load_addr {
            Some(addr) => {
                w.write_all(&[1])?;
                w.write_all(&addr.to_le_bytes())?;
            }
            None => w.write_all(&[0])?,
        }
    }
    Ok(())
}

/// Reads a trace previously written with [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/energy header or corrupt records,
/// and any I/O error from the underlying reader.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<Trace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
    }
    let name = read_str(r)?;
    let category = read_str(r)?;
    let mut n = [0u8; 8];
    r.read_exact(&mut n)?;
    let n = u64::from_le_bytes(n) as usize;
    let mut events = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        let mut pc = [0u8; 8];
        let mut target = [0u8; 8];
        let mut flags = [0u8; 2];
        let mut uops = [0u8; 2];
        r.read_exact(&mut pc)?;
        r.read_exact(&mut target)?;
        r.read_exact(&mut flags)?;
        r.read_exact(&mut uops)?;
        let mut has_load = [0u8; 1];
        r.read_exact(&mut has_load)?;
        let load_addr = if has_load[0] == 1 {
            let mut addr = [0u8; 8];
            r.read_exact(&mut addr)?;
            Some(u64::from_le_bytes(addr))
        } else if has_load[0] == 0 {
            None
        } else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad load flag"));
        };
        events.push(TraceEvent {
            pc: u64::from_le_bytes(pc),
            target: u64::from_le_bytes(target),
            kind: code_kind(flags[0])?,
            taken: flags[1] != 0,
            uops_before: u16::from_le_bytes(uops),
            load_addr,
        });
    }
    Ok(Trace { name, category, events })
}

/// Fingerprint of the trace *generator's* observable behaviour, mixed into
/// every [`TraceCache`] key.
///
/// The cache key used to be `(name, scale, FORMAT_VERSION)` only — editing
/// `Program`/`behavior.rs` semantics silently served outdated traces until
/// someone remembered to bump the codec version. This hashes the events of
/// a probe program that exercises every [`Behavior`] variant, every
/// [`Node`] kind, load sampling and µop jitter, so any change to generator
/// output changes the fingerprint (and therefore the cache file names)
/// automatically. Computed once per process.
pub fn generator_fingerprint() -> u64 {
    use std::sync::OnceLock;
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        use crate::behavior::Behavior;
        use crate::program::{LoadModel, Node, PcAlloc, Program, Site, Trip};
        use simkit::predictor::BranchKind;
        // Coverage guards: these wildcard-free matches stop compiling the
        // moment a Behavior or Node variant is added, forcing the probe
        // program below to grow a site exercising it (otherwise the new
        // variant would not move the fingerprint and the stale-cache
        // hazard this function exists to close would reopen).
        let _behavior_guard = |b: &Behavior| match b {
            Behavior::Bias { .. }
            | Behavior::Pattern { .. }
            | Behavior::SparseCorr { .. }
            | Behavior::HugePeriodic { .. }
            | Behavior::Random
            | Behavior::PhasedBias { .. } => (),
        };
        let _node_guard = |n: &Node| match n {
            Node::Seq(_)
            | Node::Site(_)
            | Node::Loop { .. }
            | Node::Select { .. }
            | Node::Uncond { .. } => (),
        };
        let mut a = PcAlloc::new(0x1000);
        let call_pc = a.pc();
        let ret_pc = a.pc();
        let root = Node::Seq(vec![
            Node::Site(Site::new(a.pc(), Behavior::Bias { p: 0.7 }).load(0.5)),
            Node::Site(Site::new(a.pc(), Behavior::pattern_str("1101"))),
            Node::Site(Site::new(a.pc(), Behavior::SparseCorr { lag: 3, invert: true, noise: 0.1 })),
            Node::Site(Site::new(a.pc(), Behavior::huge_periodic(64, 9))),
            Node::Site(Site::new(a.pc(), Behavior::Random).uops(2)),
            Node::Site(Site::new(
                a.pc(),
                Behavior::PhasedBias { p: 0.9, phase: 16, count: 0, flipped: false },
            )),
            Node::Loop {
                site: Site::new(a.pc(), Behavior::Random),
                trip: Trip::Fixed(4),
                body: Box::new(Node::Site(Site::new(a.pc(), Behavior::Bias { p: 0.9 }))),
            },
            Node::Loop {
                site: Site::new(a.pc(), Behavior::Random),
                trip: Trip::Uniform(2, 5),
                body: Box::new(Node::Seq(vec![])),
            },
            Node::Select {
                sites: (0..8).map(|_| Site::new(a.pc(), Behavior::Bias { p: 0.8 })).collect(),
                per_visit: 3,
            },
            Node::Uncond { pc: call_pc, kind: BranchKind::Call, target: ret_pc },
            Node::Uncond { pc: ret_pc, kind: BranchKind::Return, target: call_pc + 8 },
        ]);
        let probe = Program {
            name: "__generator_probe__".into(),
            category: "PROBE".into(),
            seed: 0x5EED_F17E_4B15,
            root,
            loads: LoadModel::cold(0.3, 1024),
        };
        let mut h = 0xCBF29CE484222325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001B3);
        };
        for e in probe.generate(512).events {
            mix(e.pc);
            mix(e.target);
            mix(u64::from(kind_code(e.kind)));
            mix(u64::from(e.taken));
            mix(u64::from(e.uops_before));
            mix(e.load_addr.map_or(u64::MAX, |a| a));
        }
        h
    })
}

/// An on-disk trace cache over the [`write_trace`]/[`read_trace`] codec,
/// keyed by `(trace name, scale, format version, generator fingerprint)`.
///
/// Generating a trace is deterministic but not free — at large scales it
/// dominates experiment start-up — so the harness can persist generated
/// traces here and reload them on the next invocation. The cache is purely
/// an accelerator: every entry can be regenerated from its seed, corrupt
/// or missing files are treated as misses, and store failures are
/// non-fatal to callers. The [`generator_fingerprint`] component makes
/// entries from an older generator invisible (stale files are simply never
/// matched) rather than wrongly served.
#[derive(Clone, Debug)]
pub struct TraceCache {
    dir: PathBuf,
    fingerprint: u64,
}

impl TraceCache {
    /// Opens (creating if needed) a cache rooted at `dir`, keyed by the
    /// current [`generator_fingerprint`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_fingerprint(dir, generator_fingerprint())
    }

    /// Opens a cache keyed by an explicit fingerprint (tests use this to
    /// model a generator change without editing generator code).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn with_fingerprint(dir: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, fingerprint })
    }

    /// The file a `(name, scale, spec fingerprint)` triple maps to under
    /// the current [`FORMAT_VERSION`] and generator fingerprint.
    /// `spec_fingerprint` is the *recipe's* structural fingerprint
    /// ([`crate::TraceSpec::fingerprint`]): the generator fingerprint
    /// catches edits to behaviour/program *semantics*, the spec
    /// fingerprint catches edits to the recipe itself (parameters, seeds,
    /// budgets) — together any change to generated output changes the key.
    pub fn path(&self, name: &str, scale: Scale, spec_fingerprint: u64) -> PathBuf {
        self.dir.join(format!(
            "{name}.{scale}.v{FORMAT_VERSION}.g{:016x}.s{spec_fingerprint:016x}.trace",
            self.fingerprint
        ))
    }

    /// Loads a cached trace, or `None` on a miss. A file that exists but
    /// fails to decode, or whose recorded name disagrees with the key, is
    /// a miss (never an error): the caller regenerates and overwrites.
    pub fn load(&self, name: &str, scale: Scale, spec_fingerprint: u64) -> Option<Trace> {
        let f = std::fs::File::open(self.path(name, scale, spec_fingerprint)).ok()?;
        let t = read_trace(&mut io::BufReader::new(f)).ok()?;
        (t.name == name).then_some(t)
    }

    /// Persists a trace under its `(name, scale, version, fingerprints)`
    /// key, writing to a temporary file first so concurrent readers never
    /// observe a partial entry.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or renaming the file.
    pub fn store(&self, trace: &Trace, scale: Scale, spec_fingerprint: u64) -> io::Result<PathBuf> {
        let path = self.path(&trace.name, scale, spec_fingerprint);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut w = io::BufWriter::new(std::fs::File::create(&tmp)?);
            write_trace(&mut w, trace)?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{by_name, Scale};

    #[test]
    fn round_trip() {
        let t = by_name("SERVER03", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTATRACE_______".to_vec();
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated() {
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    fn temp_cache(tag: &str) -> TraceCache {
        let dir = std::env::temp_dir()
            .join(format!("tage-trace-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TraceCache::new(dir).unwrap()
    }

    #[test]
    fn cache_miss_then_hit() {
        let cache = temp_cache("hit");
        let spec = by_name("MM03", Scale::Tiny).unwrap();
        let fp = spec.fingerprint();
        assert!(cache.load("MM03", Scale::Tiny, fp).is_none());
        let t = spec.generate();
        cache.store(&t, Scale::Tiny, fp).unwrap();
        assert_eq!(cache.load("MM03", Scale::Tiny, fp).unwrap(), t);
        // A different scale is a different key (and so is a different
        // recipe fingerprint).
        assert!(cache.load("MM03", Scale::Small, fp).is_none());
        assert!(cache.load("MM03", Scale::Tiny, fp ^ 1).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_treats_corruption_as_miss() {
        let cache = temp_cache("corrupt");
        let spec = by_name("WS02", Scale::Tiny).unwrap();
        let t = spec.generate();
        let path = cache.store(&t, Scale::Tiny, spec.fingerprint()).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        assert!(cache.load("WS02", Scale::Tiny, spec.fingerprint()).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_file_names_carry_version_scale_and_fingerprints() {
        let cache = temp_cache("names");
        let p = cache.path("CLIENT01", Scale::Default, 0xABCD);
        let f = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(
            f,
            format!(
                "CLIENT01.default.v{FORMAT_VERSION}.g{:016x}.s000000000000abcd.trace",
                generator_fingerprint()
            )
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn spec_fingerprints_distinguish_recipes_scales_and_are_stable() {
        let a = by_name("WS03", Scale::Tiny).unwrap();
        assert_eq!(a.fingerprint(), by_name("WS03", Scale::Tiny).unwrap().fingerprint());
        // Different recipes and different budgets are different keys, so
        // editing a recipe in suite.rs (which changes its program tree)
        // or a scale budget can never serve a stale cached trace.
        assert_ne!(a.fingerprint(), by_name("WS04", Scale::Tiny).unwrap().fingerprint());
        assert_ne!(a.fingerprint(), by_name("WS03", Scale::Small).unwrap().fingerprint());
    }

    #[test]
    fn generator_fingerprint_is_stable_within_a_process() {
        assert_eq!(generator_fingerprint(), generator_fingerprint());
        assert_ne!(generator_fingerprint(), 0);
    }

    #[test]
    fn changed_generator_fingerprint_invalidates_cache() {
        // Regression test for the stale-cache hazard: with the fingerprint
        // in the key, a cache written by one generator version is a *miss*
        // (not a wrong hit) for another.
        let dir = std::env::temp_dir()
            .join(format!("tage-trace-cache-test-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let old_gen = TraceCache::with_fingerprint(&dir, 0xDEAD).unwrap();
        let new_gen = TraceCache::with_fingerprint(&dir, 0xBEEF).unwrap();
        let spec = by_name("CLIENT01", Scale::Tiny).unwrap();
        let (t, fp) = (spec.generate(), spec.fingerprint());
        old_gen.store(&t, Scale::Tiny, fp).unwrap();
        assert_eq!(old_gen.load("CLIENT01", Scale::Tiny, fp).unwrap(), t);
        assert!(
            new_gen.load("CLIENT01", Scale::Tiny, fp).is_none(),
            "a different generator fingerprint must never serve the old trace"
        );
        // Both generations coexist side by side.
        new_gen.store(&t, Scale::Tiny, fp).unwrap();
        assert!(old_gen.load("CLIENT01", Scale::Tiny, fp).is_some());
        assert!(new_gen.load("CLIENT01", Scale::Tiny, fp).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_kind_code() {
        let t = Trace { name: "x".into(), category: "X".into(), events: vec![] };
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        // Claim one event, then provide a record with kind code 9.
        let len_pos = buf.len() - 8;
        buf[len_pos..].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]); // pc + target
        buf.extend_from_slice(&[9, 0]); // bad kind
        buf.extend_from_slice(&[0u8; 2]); // uops
        buf.extend_from_slice(&[0]); // no load
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }
}
