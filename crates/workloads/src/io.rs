//! Compact binary (de)serialization of traces.
//!
//! Traces are normally regenerated from seeds, but persisting them is useful
//! for debugging and for feeding the same stream to external tools. The
//! format is a tiny custom codec (magic + version + varint-free fixed-width
//! records) so the repository needs no serialization-format dependency.

use crate::event::{Trace, TraceEvent};
use crate::suite::Scale;
use simkit::predictor::BranchKind;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"TAGETRC1";

/// On-disk codec format version; part of every cache file name so stale
/// caches are simply ignored when the format evolves.
pub const FORMAT_VERSION: u32 = 1;

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::DirectJump => 1,
        BranchKind::IndirectJump => 2,
        BranchKind::Call => 3,
        BranchKind::Return => 4,
    }
}

fn code_kind(c: u8) -> io::Result<BranchKind> {
    Ok(match c {
        0 => BranchKind::Conditional,
        1 => BranchKind::DirectJump,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::Call,
        4 => BranchKind::Return,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid branch kind code {other}"),
            ))
        }
    })
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "string too long"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes a trace to `w`.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_str(w, &trace.name)?;
    write_str(w, &trace.category)?;
    w.write_all(&(trace.events.len() as u64).to_le_bytes())?;
    for e in &trace.events {
        w.write_all(&e.pc.to_le_bytes())?;
        w.write_all(&e.target.to_le_bytes())?;
        w.write_all(&[kind_code(e.kind), e.taken as u8])?;
        w.write_all(&e.uops_before.to_le_bytes())?;
        match e.load_addr {
            Some(addr) => {
                w.write_all(&[1])?;
                w.write_all(&addr.to_le_bytes())?;
            }
            None => w.write_all(&[0])?,
        }
    }
    Ok(())
}

/// Reads a trace previously written with [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/energy header or corrupt records,
/// and any I/O error from the underlying reader.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<Trace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
    }
    let name = read_str(r)?;
    let category = read_str(r)?;
    let mut n = [0u8; 8];
    r.read_exact(&mut n)?;
    let n = u64::from_le_bytes(n) as usize;
    let mut events = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        let mut pc = [0u8; 8];
        let mut target = [0u8; 8];
        let mut flags = [0u8; 2];
        let mut uops = [0u8; 2];
        r.read_exact(&mut pc)?;
        r.read_exact(&mut target)?;
        r.read_exact(&mut flags)?;
        r.read_exact(&mut uops)?;
        let mut has_load = [0u8; 1];
        r.read_exact(&mut has_load)?;
        let load_addr = if has_load[0] == 1 {
            let mut addr = [0u8; 8];
            r.read_exact(&mut addr)?;
            Some(u64::from_le_bytes(addr))
        } else if has_load[0] == 0 {
            None
        } else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad load flag"));
        };
        events.push(TraceEvent {
            pc: u64::from_le_bytes(pc),
            target: u64::from_le_bytes(target),
            kind: code_kind(flags[0])?,
            taken: flags[1] != 0,
            uops_before: u16::from_le_bytes(uops),
            load_addr,
        });
    }
    Ok(Trace { name, category, events })
}

/// An on-disk trace cache over the [`write_trace`]/[`read_trace`] codec,
/// keyed by `(trace name, scale, format version)`.
///
/// Generating a trace is deterministic but not free — at large scales it
/// dominates experiment start-up — so the harness can persist generated
/// traces here and reload them on the next invocation. The cache is purely
/// an accelerator: every entry can be regenerated from its seed, corrupt
/// or missing files are treated as misses, and store failures are
/// non-fatal to callers.
#[derive(Clone, Debug)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The file a `(name, scale)` pair maps to under the current
    /// [`FORMAT_VERSION`].
    pub fn path(&self, name: &str, scale: Scale) -> PathBuf {
        self.dir.join(format!("{name}.{scale}.v{FORMAT_VERSION}.trace"))
    }

    /// Loads a cached trace, or `None` on a miss. A file that exists but
    /// fails to decode, or whose recorded name disagrees with the key, is
    /// a miss (never an error): the caller regenerates and overwrites.
    pub fn load(&self, name: &str, scale: Scale) -> Option<Trace> {
        let f = std::fs::File::open(self.path(name, scale)).ok()?;
        let t = read_trace(&mut io::BufReader::new(f)).ok()?;
        (t.name == name).then_some(t)
    }

    /// Persists a trace under its `(name, scale, version)` key, writing to
    /// a temporary file first so concurrent readers never observe a
    /// partial entry.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing or renaming the file.
    pub fn store(&self, trace: &Trace, scale: Scale) -> io::Result<PathBuf> {
        let path = self.path(&trace.name, scale);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut w = io::BufWriter::new(std::fs::File::create(&tmp)?);
            write_trace(&mut w, trace)?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{by_name, Scale};

    #[test]
    fn round_trip() {
        let t = by_name("SERVER03", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTATRACE_______".to_vec();
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated() {
        let t = by_name("WS01", Scale::Tiny).unwrap().generate();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    fn temp_cache(tag: &str) -> TraceCache {
        let dir = std::env::temp_dir()
            .join(format!("tage-trace-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TraceCache::new(dir).unwrap()
    }

    #[test]
    fn cache_miss_then_hit() {
        let cache = temp_cache("hit");
        assert!(cache.load("MM03", Scale::Tiny).is_none());
        let t = by_name("MM03", Scale::Tiny).unwrap().generate();
        cache.store(&t, Scale::Tiny).unwrap();
        assert_eq!(cache.load("MM03", Scale::Tiny).unwrap(), t);
        // A different scale is a different key.
        assert!(cache.load("MM03", Scale::Small).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_treats_corruption_as_miss() {
        let cache = temp_cache("corrupt");
        let t = by_name("WS02", Scale::Tiny).unwrap().generate();
        let path = cache.store(&t, Scale::Tiny).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        assert!(cache.load("WS02", Scale::Tiny).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_file_names_carry_version_and_scale() {
        let cache = temp_cache("names");
        let p = cache.path("CLIENT01", Scale::Default);
        let f = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(f, format!("CLIENT01.default.v{FORMAT_VERSION}.trace"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn rejects_bad_kind_code() {
        let t = Trace { name: "x".into(), category: "X".into(), events: vec![] };
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        // Claim one event, then provide a record with kind code 9.
        let len_pos = buf.len() - 8;
        buf[len_pos..].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]); // pc + target
        buf.extend_from_slice(&[9, 0]); // bad kind
        buf.extend_from_slice(&[0u8; 2]); // uops
        buf.extend_from_slice(&[0]); // no load
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }
}
