//! Synthetic program model: a small control-flow tree whose execution emits
//! a branch trace.
//!
//! A [`Program`] is a tree of [`Node`]s executed repeatedly until the
//! requested number of conditional branches has been emitted. The tree
//! gives precise control over the *structure* around each branch — how
//! noisy a loop body is, how quickly a loop branch re-occurs (in-flight
//! pressure), how many static branches compete for predictor entries.

use crate::behavior::{Behavior, GenCtx};
use crate::event::{EventSource, Trace, TraceEvent};
use simkit::predictor::BranchKind;
use std::collections::VecDeque;

/// A static conditional branch site.
#[derive(Clone, Debug)]
pub struct Site {
    /// Instruction address (unique per site).
    pub pc: u64,
    /// Outcome model.
    pub behavior: Behavior,
    /// Average non-branch micro-ops preceding this branch.
    pub uops: u8,
    /// Probability that an execution of this branch depends on a load
    /// (whose address comes from the program's [`LoadModel`]).
    pub p_load: f64,
}

impl Site {
    /// A site with default micro-op padding (5) and no load dependence.
    pub fn new(pc: u64, behavior: Behavior) -> Self {
        Self { pc, behavior, uops: 5, p_load: 0.0 }
    }

    /// Sets the micro-op padding.
    pub fn uops(mut self, uops: u8) -> Self {
        self.uops = uops;
        self
    }

    /// Sets the load-dependence probability.
    pub fn load(mut self, p: f64) -> Self {
        self.p_load = p;
        self
    }
}

/// Loop trip-count model.
#[derive(Clone, Copy, Debug)]
pub enum Trip {
    /// Always exactly `n` iterations — the regular loops the loop predictor
    /// (§5.2) captures with high confidence.
    Fixed(u32),
    /// Uniform in `[lo, hi]` — irregular loops the loop predictor refuses.
    Uniform(u32, u32),
}

impl Trip {
    fn draw(self, ctx: &mut GenCtx) -> u32 {
        match self {
            Trip::Fixed(n) => n.max(1),
            Trip::Uniform(lo, hi) => {
                let (lo, hi) = (lo.max(1), hi.max(1));
                if hi <= lo {
                    lo
                } else {
                    lo + ctx.rng.gen_range(u64::from(hi - lo + 1)) as u32
                }
            }
        }
    }
}

/// A control-flow tree node.
#[derive(Clone, Debug)]
pub enum Node {
    /// Execute children in order.
    Seq(Vec<Node>),
    /// Execute one conditional branch site.
    Site(Site),
    /// A bottom-tested loop: execute `body`, then the loop branch
    /// (taken = continue) `trip` times per entry. The loop-exit
    /// not-taken occurs once per loop execution.
    Loop {
        /// The backward conditional branch.
        site: Site,
        /// Iteration count model.
        trip: Trip,
        /// Loop body (may be empty `Seq`).
        body: Box<Node>,
    },
    /// A dispatch region: each visit executes `per_visit` sites drawn
    /// at random from a large pool — models switch/indirect-call-heavy
    /// code with a large static footprint.
    Select {
        /// The site pool.
        sites: Vec<Site>,
        /// Sites executed per visit.
        per_visit: usize,
    },
    /// An unconditional control transfer (call/return/jump) — not
    /// predicted, but visible to path history.
    Uncond {
        /// Instruction address.
        pc: u64,
        /// Kind (`DirectJump`, `Call`, `Return`, `IndirectJump`).
        kind: BranchKind,
        /// Target address.
        target: u64,
    },
}

/// Model of the load addresses branch conditions depend on: a small hot
/// set (cache-resident) and a large cold set (misses), mixed by `p_cold`.
#[derive(Clone, Copy, Debug)]
pub struct LoadModel {
    /// Number of distinct hot 64-byte lines.
    pub hot_lines: u64,
    /// Number of distinct cold lines.
    pub cold_lines: u64,
    /// Probability a load goes to the cold set.
    pub p_cold: f64,
    /// Base address of the data region.
    pub base: u64,
}

impl Default for LoadModel {
    fn default() -> Self {
        // Mostly cache-friendly: a few KB of hot data, rare cold misses.
        Self { hot_lines: 64, cold_lines: 1 << 16, p_cold: 0.02, base: 0x10_0000_0000 }
    }
}

impl LoadModel {
    /// A memory-hostile model (server-like): large hot set, frequent cold
    /// accesses — drives up the average misprediction penalty.
    pub fn cold(p_cold: f64, cold_lines: u64) -> Self {
        Self { hot_lines: 1 << 12, cold_lines, p_cold, base: 0x10_0000_0000 }
    }

    fn sample(&self, ctx: &mut GenCtx) -> u64 {
        let line = if ctx.rng.gen_bool(self.p_cold) {
            self.hot_lines + ctx.rng.gen_range(self.cold_lines.max(1))
        } else {
            ctx.rng.gen_range(self.hot_lines.max(1))
        };
        self.base + line * 64
    }
}

/// A complete synthetic program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Trace name (e.g. `"CLIENT02"`).
    pub name: String,
    /// Category (e.g. `"CLIENT"`).
    pub category: String,
    /// RNG seed: the same seed always regenerates the same trace.
    pub seed: u64,
    /// Control-flow tree executed repeatedly.
    pub root: Node,
    /// Load address model for branch-dependent loads.
    pub loads: LoadModel,
}

struct Emitter {
    events: Vec<TraceEvent>,
    conditionals: usize,
    budget: usize,
    loads: LoadModel,
}

impl Emitter {
    fn full(&self) -> bool {
        self.conditionals >= self.budget
    }

    fn emit_site(&mut self, site: &mut Site, ctx: &mut GenCtx) {
        let taken = site.behavior.next(ctx);
        self.emit_site_with(site, taken, ctx);
        ctx.push_outcome(taken);
    }

    fn emit_site_with(&mut self, site: &Site, taken: bool, ctx: &mut GenCtx) {
        let jitter = ctx.rng.gen_range(3) as u16;
        let load_addr = if site.p_load > 0.0 && ctx.rng.gen_bool(site.p_load) {
            Some(self.loads.sample(ctx))
        } else {
            None
        };
        self.events.push(TraceEvent {
            pc: site.pc,
            kind: BranchKind::Conditional,
            taken,
            target: site.pc.wrapping_add(if taken { 0x40 } else { 8 }),
            uops_before: u16::from(site.uops) + jitter,
            load_addr,
        });
        self.conditionals += 1;
    }

    fn emit_uncond(&mut self, pc: u64, kind: BranchKind, target: u64) {
        self.events.push(TraceEvent {
            pc,
            kind,
            taken: true,
            target,
            uops_before: 2,
            load_addr: None,
        });
    }
}

fn exec(node: &mut Node, ctx: &mut GenCtx, em: &mut Emitter) {
    if em.full() {
        return;
    }
    match node {
        Node::Seq(children) => {
            for c in children {
                exec(c, ctx, em);
                if em.full() {
                    return;
                }
            }
        }
        Node::Site(site) => em.emit_site(site, ctx),
        Node::Loop { site, trip, body } => {
            let n = trip.draw(ctx);
            for i in 1..=n {
                exec(body, ctx, em);
                if em.full() {
                    return;
                }
                // Bottom-tested: taken = continue looping.
                let taken = i != n;
                em.emit_site_with(site, taken, ctx);
                ctx.push_outcome(taken);
            }
        }
        Node::Select { sites, per_visit } => {
            for _ in 0..*per_visit {
                if em.full() {
                    return;
                }
                let i = ctx.rng.gen_range(sites.len() as u64) as usize;
                em.emit_site(&mut sites[i], ctx);
            }
        }
        Node::Uncond { pc, kind, target } => em.emit_uncond(*pc, *kind, *target),
    }
}

fn mix_site(site: &Site, mix: &mut impl FnMut(u64)) {
    let Site { pc, behavior, uops, p_load } = site;
    mix(*pc);
    behavior.mix_structure(mix);
    mix(u64::from(*uops));
    mix(p_load.to_bits());
}

fn mix_node(node: &Node, mix: &mut impl FnMut(u64)) {
    // Exhaustive on purpose: a new node kind fails this compile until it
    // states what it contributes to trace-cache keys.
    match node {
        Node::Seq(children) => {
            mix(1);
            mix(children.len() as u64);
            for c in children {
                mix_node(c, mix);
            }
        }
        Node::Site(site) => {
            mix(2);
            mix_site(site, mix);
        }
        Node::Loop { site, trip, body } => {
            mix(3);
            mix_site(site, mix);
            match trip {
                Trip::Fixed(n) => {
                    mix(1);
                    mix(u64::from(*n));
                }
                Trip::Uniform(lo, hi) => {
                    mix(2);
                    mix(u64::from(*lo));
                    mix(u64::from(*hi));
                }
            }
            mix_node(body, mix);
        }
        Node::Select { sites, per_visit } => {
            mix(4);
            mix(sites.len() as u64);
            for s in sites {
                mix_site(s, mix);
            }
            mix(*per_visit as u64);
        }
        Node::Uncond { pc, kind, target } => {
            mix(5);
            mix(*pc);
            mix(*kind as u64);
            mix(*target);
        }
    }
}

impl Program {
    /// Fingerprint of this program's *structure*: the control-flow tree,
    /// every site's behaviour parameters, the load model and the seed —
    /// everything that determines generated output besides the budget.
    /// Mixed into trace-cache keys so editing a suite recipe (or any
    /// programmatic trace definition) invalidates its cached traces
    /// automatically.
    pub fn fingerprint(&self) -> u64 {
        let Self { name: _, category: _, seed, root, loads } = self;
        let LoadModel { hot_lines, cold_lines, p_cold, base } = loads;
        let mut h = 0xCBF29CE484222325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001B3);
        };
        mix(*seed);
        mix(*hot_lines);
        mix(*cold_lines);
        mix(p_cold.to_bits());
        mix(*base);
        mix_node(root, &mut mix);
        h
    }

    /// Executes the program until `budget` conditional branches have been
    /// emitted, returning the materialized trace.
    ///
    /// The same `Program` (same seed) always produces the same trace, and
    /// this is exactly [`Program::stream`] collected — the two paths are
    /// bit-identical by construction.
    pub fn generate(&self, budget: usize) -> Trace {
        self.stream(budget).collect_trace()
    }

    /// Lazily executes the program as an [`EventSource`], holding only one
    /// control-flow-tree pass of events in memory at a time instead of the
    /// whole trace.
    pub fn stream(&self, budget: usize) -> ProgramStream {
        ProgramStream {
            name: self.name.clone(),
            category: self.category.clone(),
            root: self.root.clone(),
            ctx: GenCtx::new(self.seed),
            loads: self.loads,
            budget,
            conditionals: 0,
            buf: VecDeque::new(),
        }
    }
}

/// A lazily generated program execution: events are produced one
/// control-flow-tree pass at a time, so memory stays proportional to the
/// tree (not the conditional-branch budget). Produced by
/// [`Program::stream`].
#[derive(Clone, Debug)]
pub struct ProgramStream {
    name: String,
    category: String,
    root: Node,
    ctx: GenCtx,
    loads: LoadModel,
    budget: usize,
    conditionals: usize,
    buf: VecDeque<TraceEvent>,
}

impl ProgramStream {
    /// Runs one pass over the control-flow tree, buffering its events.
    /// Mirrors the generation loop: the tree state (pattern positions,
    /// phase counters) and the RNG persist across passes.
    fn refill(&mut self) {
        let mut em = Emitter {
            events: Vec::new(),
            conditionals: self.conditionals,
            budget: self.budget,
            loads: self.loads,
        };
        exec(&mut self.root, &mut self.ctx, &mut em);
        self.conditionals = em.conditionals;
        self.buf = em.events.into();
    }
}

impl EventSource for ProgramStream {
    fn name(&self) -> &str {
        &self.name
    }

    fn category(&self) -> &str {
        &self.category
    }

    fn next_event(&mut self) -> Option<TraceEvent> {
        while self.buf.is_empty() {
            if self.conditionals >= self.budget {
                return None;
            }
            let before = self.conditionals;
            self.refill();
            if self.buf.is_empty() && self.conditionals == before {
                // A tree that emits nothing can never fill the budget;
                // end the stream instead of spinning.
                return None;
            }
        }
        self.buf.pop_front()
    }
}

impl Iterator for ProgramStream {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.next_event()
    }
}

/// Allocates distinct, realistically spaced branch PCs.
#[derive(Clone, Debug)]
pub struct PcAlloc {
    next: u64,
}

impl PcAlloc {
    /// Starts allocating at `base`.
    pub fn new(base: u64) -> Self {
        Self { next: base }
    }

    /// Returns a fresh branch PC.
    pub fn pc(&mut self) -> u64 {
        let pc = self.next;
        // Space sites 12–36 bytes apart like straight-line code.
        self.next += 12 + (pc >> 4) % 24;
        pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(root: Node) -> Program {
        Program {
            name: "test".into(),
            category: "TEST".into(),
            seed: 42,
            root,
            loads: LoadModel::default(),
        }
    }

    #[test]
    fn generates_exact_budget() {
        let p = prog(Node::Site(Site::new(0x100, Behavior::Random)));
        let t = p.generate(500);
        assert_eq!(t.conditional_count(), 500);
    }

    #[test]
    fn deterministic_generation() {
        let p = prog(Node::Seq(vec![
            Node::Site(Site::new(0x100, Behavior::Bias { p: 0.7 })),
            Node::Site(Site::new(0x140, Behavior::Random)),
        ]));
        assert_eq!(p.generate(1000), p.generate(1000));
    }

    #[test]
    fn fixed_loop_emits_constant_trip() {
        let p = prog(Node::Loop {
            site: Site::new(0x200, Behavior::Random),
            trip: Trip::Fixed(5),
            body: Box::new(Node::Seq(vec![])),
        });
        let t = p.generate(50);
        // Pattern: 4 taken then 1 not-taken, repeated.
        for chunk in t.events.chunks(5) {
            if chunk.len() == 5 {
                assert_eq!(
                    chunk.iter().map(|e| e.taken).collect::<Vec<_>>(),
                    [true, true, true, true, false]
                );
            }
        }
    }

    #[test]
    fn uniform_trip_varies() {
        let p = prog(Node::Loop {
            site: Site::new(0x200, Behavior::Random),
            trip: Trip::Uniform(2, 9),
            body: Box::new(Node::Seq(vec![])),
        });
        let t = p.generate(2000);
        // Count run lengths of taken+1.
        let mut lens = std::collections::HashSet::new();
        let mut run = 0;
        for e in &t.events {
            run += 1;
            if !e.taken {
                lens.insert(run);
                run = 0;
            }
        }
        assert!(lens.len() >= 4, "trip counts observed: {lens:?}");
    }

    #[test]
    fn select_covers_footprint() {
        let mut alloc = PcAlloc::new(0x40_0000);
        let sites: Vec<Site> =
            (0..256).map(|_| Site::new(alloc.pc(), Behavior::Bias { p: 0.8 })).collect();
        let p = prog(Node::Select { sites, per_visit: 16 });
        let t = p.generate(4000);
        assert!(t.static_conditional_count() > 200, "footprint {}", t.static_conditional_count());
    }

    #[test]
    fn uncond_events_present() {
        let p = prog(Node::Seq(vec![
            Node::Site(Site::new(0x100, Behavior::Random)),
            Node::Uncond { pc: 0x110, kind: BranchKind::Call, target: 0x8000 },
        ]));
        let t = p.generate(10);
        assert!(t.events.iter().any(|e| e.kind == BranchKind::Call));
    }

    #[test]
    fn load_probability_respected() {
        let site = Site::new(0x100, Behavior::Random).load(1.0);
        let p = prog(Node::Site(site));
        let t = p.generate(100);
        assert!(t.events.iter().all(|e| e.load_addr.is_some()));
    }

    #[test]
    fn stream_is_bit_identical_to_generate() {
        // Cover every node kind: loops, select, uncond, plain sites.
        let mut alloc = PcAlloc::new(0x50_0000);
        let sites: Vec<Site> =
            (0..32).map(|_| Site::new(alloc.pc(), Behavior::Bias { p: 0.9 })).collect();
        let p = prog(Node::Seq(vec![
            Node::Site(Site::new(0x100, Behavior::Bias { p: 0.7 }).load(0.5)),
            Node::Loop {
                site: Site::new(0x200, Behavior::Random),
                trip: Trip::Uniform(2, 9),
                body: Box::new(Node::Site(Site::new(0x240, Behavior::Random))),
            },
            Node::Select { sites, per_visit: 4 },
            Node::Uncond { pc: 0x300, kind: BranchKind::Call, target: 0x8000 },
        ]));
        let materialized = p.generate(3000);
        let streamed: Vec<TraceEvent> = p.stream(3000).collect();
        assert_eq!(streamed, materialized.events);
    }

    #[test]
    fn stream_metadata_and_exhaustion() {
        let p = prog(Node::Site(Site::new(0x100, Behavior::Random)));
        let mut s = p.stream(10);
        assert_eq!(s.name(), "test");
        assert_eq!(s.category(), "TEST");
        let n = s.by_ref().count();
        assert_eq!(n, 10);
        assert_eq!(s.next_event(), None);
    }

    #[test]
    fn empty_tree_stream_terminates() {
        let p = prog(Node::Seq(vec![]));
        assert_eq!(p.stream(5).count(), 0);
    }

    #[test]
    fn pc_alloc_unique() {
        let mut a = PcAlloc::new(0x1000);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(a.pc()));
        }
    }
}
