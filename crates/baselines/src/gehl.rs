//! The GEHL (GEometric History Length) adder-tree predictor — the paper's
//! "neural inspired" representative (§4.1.1: 520 Kbit, 13 tables of 8K
//! 5-bit counters, (6,2000) geometric history lengths).
//!
//! Prediction is the sign of the sum of centered counters read from tables
//! indexed with geometrically increasing history lengths; training is
//! threshold-based (update on misprediction or low |sum|) with a
//! dynamically adapted threshold.
//!
//! Because *13 counters* participate in every prediction and update, GEHL
//! is much more sensitive than TAGE to computing updates from stale
//! fetch-time values (scenarios \[B\]/\[C\] in §4.1.2).

use crate::geometric_series;
use simkit::counter::SignedCounter;
use simkit::history::{FoldedHistory, GlobalHistory, PathHistory};
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;
use simkit::threshold::AdaptiveThreshold;

/// Upper bound on table count (fixed-size in-flight snapshots).
pub const MAX_TABLES: usize = 16;

/// GEHL configuration.
#[derive(Clone, Debug)]
pub struct GehlConfig {
    /// Number of tables (first is PC-indexed, history length 0).
    pub tables: usize,
    /// log2 of entries per table.
    pub index_bits: u32,
    /// Counter width in bits.
    pub ctr_bits: u8,
    /// Shortest non-zero history length.
    pub l1: usize,
    /// Longest history length.
    pub lmax: usize,
}

impl GehlConfig {
    /// The paper's 520 Kbit configuration (§4.1.1).
    pub fn cbp_520k() -> Self {
        Self { tables: 13, index_bits: 13, ctr_bits: 5, l1: 6, lmax: 2000 }
    }
}

/// A GEHL predictor.
#[derive(Clone, Debug)]
pub struct Gehl {
    tables: Vec<Vec<SignedCounter>>,
    cfg: GehlConfig,
    lengths: Vec<usize>,
    folded: Vec<FoldedHistory>,
    ghist: GlobalHistory,
    path: PathHistory,
    threshold: AdaptiveThreshold,
    stats: AccessStats,
}

/// In-flight snapshot for [`Gehl`]: indices, counter values and the sum
/// computed at fetch.
#[derive(Clone, Copy, Debug)]
pub struct GehlFlight {
    indices: [u32; MAX_TABLES],
    ctrs: [i16; MAX_TABLES],
    sum: i32,
}

impl Gehl {
    /// Builds a GEHL predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration exceeds [`MAX_TABLES`] tables or has
    /// fewer than 3.
    pub fn new(cfg: GehlConfig) -> Self {
        assert!((3..=MAX_TABLES).contains(&cfg.tables), "GEHL table count out of range");
        // Table 0 is PC-indexed (length 0); tables 1.. use the geometric series.
        let mut lengths = vec![0usize];
        lengths.extend(geometric_series(cfg.tables - 1, cfg.l1, cfg.lmax));
        let folded = lengths
            .iter()
            .map(|&l| FoldedHistory::new(l.max(1), cfg.index_bits))
            .collect();
        let entries = 1usize << cfg.index_bits;
        Self {
            tables: vec![vec![SignedCounter::new(cfg.ctr_bits); entries]; cfg.tables],
            lengths,
            folded,
            ghist: GlobalHistory::new(),
            path: PathHistory::new(16),
            threshold: AdaptiveThreshold::new(cfg.tables as i32, 1, 6 * cfg.tables as i32),
            cfg,
            stats: AccessStats::default(),
        }
    }

    /// The paper's 520 Kbit GEHL.
    pub fn cbp_520k() -> Self {
        Self::new(GehlConfig::cbp_520k())
    }

    /// History lengths in use (first is 0 = PC-indexed).
    pub fn lengths(&self) -> &[usize] {
        &self.lengths
    }

    #[inline]
    fn index(&self, table: usize, pc: u64) -> usize {
        let m = (1usize << self.cfg.index_bits) - 1;
        let pc = pc >> 2;
        if self.lengths[table] == 0 {
            (pc as usize ^ (pc >> self.cfg.index_bits as u64) as usize) & m
        } else {
            let h = self.folded[table].value();
            let p = self.path.value() & 0x3FF;
            (pc ^ (pc >> (self.cfg.index_bits as u64 - (table as u64 % 4)))
                ^ h
                ^ (p >> (table as u64 % 5))) as usize
                & m
        }
    }
}

impl Predictor for Gehl {
    type Flight = GehlFlight;

    fn name(&self) -> String {
        format!(
            "gehl-{}t-{}Kbit",
            self.cfg.tables,
            (self.storage_bits() + 512) / 1024
        )
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.tables as u64 * (1u64 << self.cfg.index_bits) * u64::from(self.cfg.ctr_bits)
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, GehlFlight) {
        self.stats.predict_reads += 1;
        let mut flight = GehlFlight { indices: [0; MAX_TABLES], ctrs: [0; MAX_TABLES], sum: 0 };
        for t in 0..self.cfg.tables {
            let idx = self.index(t, b.pc);
            let c = self.tables[t][idx];
            flight.indices[t] = idx as u32;
            flight.ctrs[t] = c.get();
            flight.sum += c.centered();
        }
        (flight.sum >= 0, flight)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, _flight: &mut GehlFlight) {
        self.ghist.push(outcome);
        for f in &mut self.folded {
            f.update(&self.ghist);
        }
        self.path.push(b.pc);
    }

    fn retire(
        &mut self,
        _b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: GehlFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        if scenario.counts_retire_read(mispredicted) {
            self.stats.retire_reads += 1;
        }
        let reread = scenario.reread_at_retire(mispredicted);
        // The update decision uses the fetch-time sum (it is the prediction
        // confidence the hardware carried with the branch).
        let low_conf = flight.sum.abs() <= self.threshold.value();
        let train = mispredicted || low_conf;
        self.threshold.on_event(mispredicted, low_conf);
        if !train {
            return;
        }
        for t in 0..self.cfg.tables {
            let idx = flight.indices[t] as usize;
            let mut c = if reread {
                self.tables[t][idx]
            } else {
                SignedCounter::with_value(self.cfg.ctr_bits, flight.ctrs[t])
            };
            c.update(outcome);
            let changed = self.tables[t][idx] != c;
            if self.stats.record_write(changed) {
                self.tables[t][idx] = c;
            }
        }
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        self.path.push(b.pc);
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Gehl {
        Gehl::new(GehlConfig { tables: 6, index_bits: 10, ctr_bits: 5, l1: 4, lmax: 64 })
    }

    fn drive(p: &mut Gehl, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    #[test]
    fn learns_bias() {
        let mut p = small();
        let mut wrong = 0;
        for i in 0..2000 {
            if !drive(&mut p, 0x400, true) && i > 100 {
                wrong += 1;
            }
        }
        assert!(wrong < 10, "wrong={wrong}");
    }

    #[test]
    fn learns_sparse_correlation_through_noise() {
        // Outcome of target = outcome of the branch 4 back; two random
        // branches in between. The adder tree learns the single relevant
        // weight position despite the noise — the neural-family signature.
        let mut p = small();
        let mut rng = simkit::rng::Xoshiro256::seed_from(3);
        let mut ring = std::collections::VecDeque::from(vec![false; 8]);
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..6000 {
            // Source + noise branches.
            for (pc, _) in [(0x100u64, 0), (0x140, 1), (0x180, 2)] {
                let o = rng.gen_bool(0.5);
                drive(&mut p, pc, o);
                ring.push_front(o);
                ring.pop_back();
            }
            let target = ring[2]; // 3 branches ago within the group
            let got = drive(&mut p, 0x1C0, target);
            if i > 2000 {
                total += 1;
                if got != target {
                    wrong += 1;
                }
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.10, "GEHL should learn sparse correlation, rate={rate}");
    }

    #[test]
    fn storage_matches_paper_520k() {
        assert_eq!(Gehl::cbp_520k().storage_bits(), 532_480); // 520 Kbit
    }

    #[test]
    fn lengths_start_zero_and_grow() {
        let p = Gehl::cbp_520k();
        assert_eq!(p.lengths()[0], 0);
        assert_eq!(p.lengths()[1], 6);
        assert_eq!(*p.lengths().last().unwrap(), 2000);
    }

    #[test]
    fn scenario_b_updates_from_snapshot() {
        let mut p = small();
        let b = BranchInfo::conditional(0x240);
        // Two in-flight predictions from the same (initial) state.
        let (pred1, mut f1) = p.predict(&b);
        let (_, f2_pre) = p.predict(&b);
        p.fetch_commit(&b, true, &mut f1);
        // Retire both under [B]: second update reuses the stale snapshot.
        p.retire(&b, true, pred1, f1, UpdateScenario::FetchOnly);
        p.retire(&b, true, pred1, f2_pre, UpdateScenario::FetchOnly);
        // Every counter involved advanced at most one step from 0.
        let (_, f3) = p.predict(&b);
        for t in 0..6 {
            assert!(f3.ctrs[t] <= 1, "counter advanced twice under [B]");
        }
    }

    #[test]
    fn threshold_moves_under_pressure() {
        let mut p = small();
        let before = p.threshold.value();
        let mut rng = simkit::rng::Xoshiro256::seed_from(9);
        for _ in 0..20_000 {
            drive(&mut p, 0x300, rng.gen_bool(0.5));
        }
        // Random outcomes = constant mispredictions → threshold rises.
        assert!(p.threshold.value() > before);
    }
}
