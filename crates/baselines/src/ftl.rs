//! A fused two-level (global + local) adder-tree predictor — stand-in for
//! FTL++ (Ishii et al., 3rd CBP), ranked 2nd at the championship (§6.3).
//!
//! FTL++ fuses a global-history GEHL with a local-history GEHL in a single
//! adder tree ("revisiting local history for improving fused two-level
//! branch predictor"). This stand-in keeps exactly that structure: global
//! tables indexed with geometric global histories plus local tables indexed
//! with per-branch local history, summed together and trained with a shared
//! adaptive threshold. See DESIGN.md §1 for the substitution rationale.

use crate::geometric_series;
use simkit::counter::SignedCounter;
use simkit::history::{FoldedHistory, GlobalHistory, LocalHistories, PathHistory};
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;
use simkit::threshold::AdaptiveThreshold;

/// Maximum total table count (fixed-size snapshots).
pub const MAX_TABLES: usize = 20;

/// FTL-style fused two-level predictor configuration.
#[derive(Clone, Debug)]
pub struct FtlConfig {
    /// Global tables (first is PC-indexed).
    pub global_tables: usize,
    /// log2 entries per global table.
    pub global_index_bits: u32,
    /// Longest global history.
    pub global_lmax: usize,
    /// Local tables.
    pub local_tables: usize,
    /// log2 entries per local table.
    pub local_index_bits: u32,
    /// Local history length.
    pub local_hist: u32,
    /// log2 entries of the local history table.
    pub lht_bits: u32,
}

impl FtlConfig {
    /// A ~512 Kbit-class configuration comparable to the CBP-3 entry.
    pub fn cbp_512k() -> Self {
        Self {
            global_tables: 9,
            global_index_bits: 13,
            global_lmax: 1000,
            local_tables: 4,
            local_index_bits: 12,
            local_hist: 16,
            lht_bits: 10,
        }
    }
}

/// The fused two-level predictor.
#[derive(Clone, Debug)]
pub struct Ftl {
    cfg: FtlConfig,
    global: Vec<Vec<SignedCounter>>,
    local: Vec<Vec<SignedCounter>>,
    glengths: Vec<usize>,
    llengths: Vec<u32>,
    folded: Vec<FoldedHistory>,
    ghist: GlobalHistory,
    lhist: LocalHistories,
    path: PathHistory,
    threshold: AdaptiveThreshold,
    stats: AccessStats,
}

/// In-flight snapshot for [`Ftl`].
#[derive(Clone, Copy, Debug)]
pub struct FtlFlight {
    gidx: [u32; MAX_TABLES],
    gctr: [i16; MAX_TABLES],
    lidx: [u32; MAX_TABLES],
    lctr: [i16; MAX_TABLES],
    sum: i32,
}

impl Ftl {
    /// Builds the predictor.
    ///
    /// # Panics
    ///
    /// Panics if table counts exceed [`MAX_TABLES`].
    pub fn new(cfg: FtlConfig) -> Self {
        assert!(cfg.global_tables >= 3 && cfg.global_tables <= MAX_TABLES);
        assert!(cfg.local_tables >= 1 && cfg.local_tables <= MAX_TABLES);
        let mut glengths = vec![0usize];
        glengths.extend(geometric_series(cfg.global_tables - 1, 4, cfg.global_lmax));
        let folded = glengths
            .iter()
            .map(|&l| FoldedHistory::new(l.max(1), cfg.global_index_bits))
            .collect();
        // Local history lengths: 0 (bias), then geometric up to local_hist.
        let mut llengths = vec![0u32];
        if cfg.local_tables > 1 {
            llengths.extend(
                geometric_series(cfg.local_tables - 1, 4, cfg.local_hist as usize)
                    .into_iter()
                    .map(|l| l as u32),
            );
        }
        Self {
            global: vec![
                vec![SignedCounter::new(5); 1 << cfg.global_index_bits];
                cfg.global_tables
            ],
            local: vec![vec![SignedCounter::new(5); 1 << cfg.local_index_bits]; cfg.local_tables],
            glengths,
            llengths,
            folded,
            ghist: GlobalHistory::new(),
            lhist: LocalHistories::new(1 << cfg.lht_bits, cfg.local_hist),
            path: PathHistory::new(16),
            threshold: AdaptiveThreshold::new((cfg.global_tables + cfg.local_tables) as i32, 1, 255),
            cfg,
            stats: AccessStats::default(),
        }
    }

    /// The ~512 Kbit-class CBP configuration.
    pub fn cbp_512k() -> Self {
        Self::new(FtlConfig::cbp_512k())
    }

    #[inline]
    fn gindex(&self, t: usize, pc: u64) -> usize {
        let m = (1usize << self.cfg.global_index_bits) - 1;
        let pc = pc >> 2;
        if self.glengths[t] == 0 {
            (pc as usize ^ (pc >> 13) as usize) & m
        } else {
            (pc ^ (pc >> 7) ^ self.folded[t].value() ^ (self.path.value() >> (t as u64 % 3)))
                as usize
                & m
        }
    }

    #[inline]
    fn lindex(&self, t: usize, pc: u64, lhist: u64) -> usize {
        let m = (1usize << self.cfg.local_index_bits) - 1;
        let len = self.llengths[t];
        let h = lhist & simkit::bits::mask(len.max(1));
        ((pc >> 2) ^ h.wrapping_mul(0x9E37_79B9) ^ (h >> 5)) as usize & m
    }
}

impl Predictor for Ftl {
    type Flight = FtlFlight;

    fn name(&self) -> String {
        format!("ftl-{}g{}l", self.cfg.global_tables, self.cfg.local_tables)
    }

    fn storage_bits(&self) -> u64 {
        let g = self.cfg.global_tables as u64 * (1u64 << self.cfg.global_index_bits) * 5;
        let l = self.cfg.local_tables as u64 * (1u64 << self.cfg.local_index_bits) * 5;
        g + l + self.lhist.storage_bits()
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, FtlFlight) {
        self.stats.predict_reads += 1;
        let mut flight = FtlFlight {
            gidx: [0; MAX_TABLES],
            gctr: [0; MAX_TABLES],
            lidx: [0; MAX_TABLES],
            lctr: [0; MAX_TABLES],
            sum: 0,
        };
        for t in 0..self.cfg.global_tables {
            let idx = self.gindex(t, b.pc);
            let c = self.global[t][idx];
            flight.gidx[t] = idx as u32;
            flight.gctr[t] = c.get();
            flight.sum += c.centered();
        }
        let lh = self.lhist.history(b.pc);
        for t in 0..self.cfg.local_tables {
            let idx = self.lindex(t, b.pc, lh);
            let c = self.local[t][idx];
            flight.lidx[t] = idx as u32;
            flight.lctr[t] = c.get();
            flight.sum += c.centered();
        }
        (flight.sum >= 0, flight)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, _flight: &mut FtlFlight) {
        self.ghist.push(outcome);
        for f in &mut self.folded {
            f.update(&self.ghist);
        }
        self.path.push(b.pc);
        // Speculative local history with the resolved outcome (repaired on
        // mispredictions, so exact on the correct path).
        self.lhist.update(b.pc, outcome);
    }

    fn retire(
        &mut self,
        _b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: FtlFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        if scenario.counts_retire_read(mispredicted) {
            self.stats.retire_reads += 1;
        }
        let low_conf = flight.sum.abs() <= self.threshold.value();
        self.threshold.on_event(mispredicted, low_conf);
        if !(mispredicted || low_conf) {
            return;
        }
        let reread = scenario.reread_at_retire(mispredicted);
        for t in 0..self.cfg.global_tables {
            let idx = flight.gidx[t] as usize;
            let mut c = if reread {
                self.global[t][idx]
            } else {
                SignedCounter::with_value(5, flight.gctr[t])
            };
            c.update(outcome);
            let changed = self.global[t][idx] != c;
            if self.stats.record_write(changed) {
                self.global[t][idx] = c;
            }
        }
        for t in 0..self.cfg.local_tables {
            let idx = flight.lidx[t] as usize;
            let mut c = if reread {
                self.local[t][idx]
            } else {
                SignedCounter::with_value(5, flight.lctr[t])
            };
            c.update(outcome);
            let changed = self.local[t][idx] != c;
            if self.stats.record_write(changed) {
                self.local[t][idx] = c;
            }
        }
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        self.path.push(b.pc);
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ftl {
        Ftl::new(FtlConfig {
            global_tables: 5,
            global_index_bits: 10,
            global_lmax: 64,
            local_tables: 3,
            local_index_bits: 10,
            local_hist: 12,
            lht_bits: 6,
        })
    }

    fn drive(p: &mut Ftl, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    #[test]
    fn learns_bias() {
        let mut p = small();
        let mut wrong = 0;
        for i in 0..1000 {
            if !drive(&mut p, 0x400, true) && i > 200 {
                wrong += 1;
            }
        }
        assert!(wrong < 10, "wrong={wrong}");
    }

    #[test]
    fn learns_local_pattern_through_global_noise() {
        // Period-7 pattern on one branch, interleaved with random branches:
        // the local component captures it.
        let pattern = [true, true, false, true, false, false, true];
        let mut p = small();
        let mut rng = simkit::rng::Xoshiro256::seed_from(4);
        let (mut wrong, mut total) = (0, 0);
        for i in 0..20_000 {
            drive(&mut p, 0x100, rng.gen_bool(0.5));
            drive(&mut p, 0x140, rng.gen_bool(0.5));
            let out = pattern[i % 7];
            let got = drive(&mut p, 0x180, out);
            if i > 10_000 {
                total += 1;
                if got != out {
                    wrong += 1;
                }
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.12, "local component should capture the pattern, rate={rate}");
    }

    #[test]
    fn storage_in_512k_class() {
        let bits = Ftl::cbp_512k().storage_bits();
        assert!((400_000..600_000).contains(&bits), "bits={bits}");
    }

    #[test]
    fn name_shows_structure() {
        assert_eq!(Ftl::cbp_512k().name(), "ftl-9g4l");
    }
}
