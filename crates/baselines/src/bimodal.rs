//! PC-indexed bimodal predictor (2-bit counters).
//!
//! The running example of Figure 3: with delayed update, the first
//! iterations of a loop mispredict longer than with immediate update,
//! and longer still when the counter value read at fetch is reused at
//! retire (scenario \[B\]).

use simkit::counter::UnsignedCounter;
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;

/// A simple bimodal predictor: `entries` × `ctr_bits`-bit counters.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<UnsignedCounter>,
    ctr_bits: u8,
    stats: AccessStats,
}

/// In-flight snapshot for [`Bimodal`].
#[derive(Clone, Copy, Debug)]
pub struct BimodalFlight {
    index: usize,
    ctr: u16,
}

impl Bimodal {
    /// Creates a bimodal table with `entries` counters of `ctr_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, ctr_bits: u8) -> Self {
        assert!(entries.is_power_of_two(), "bimodal entries must be a power of two");
        Self { table: vec![UnsignedCounter::new(ctr_bits); entries], ctr_bits, stats: AccessStats::default() }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    /// Direct read of the counter value at `pc` (for tests/examples).
    pub fn counter_value(&self, pc: u64) -> u16 {
        self.table[self.index(pc)].get()
    }
}

impl Predictor for Bimodal {
    type Flight = BimodalFlight;

    fn name(&self) -> String {
        format!("bimodal-{}x{}b", self.table.len(), self.ctr_bits)
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * u64::from(self.ctr_bits)
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, BimodalFlight) {
        self.stats.predict_reads += 1;
        let index = self.index(b.pc);
        let c = self.table[index];
        (c.is_taken(), BimodalFlight { index, ctr: c.get() })
    }

    fn fetch_commit(&mut self, _b: &BranchInfo, _outcome: bool, _flight: &mut BimodalFlight) {
        // Bimodal keeps no history.
    }

    fn retire(
        &mut self,
        _b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: BimodalFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        if scenario.counts_retire_read(mispredicted) {
            self.stats.retire_reads += 1;
        }
        // Source value: fresh re-read or the value carried from fetch.
        let mut c = if scenario.reread_at_retire(mispredicted) {
            self.table[flight.index]
        } else {
            UnsignedCounter::with_value(self.ctr_bits, flight.ctr)
        };
        c.update(outcome);
        let changed = self.table[flight.index] != c;
        if self.stats.record_write(changed) {
            self.table[flight.index] = c;
        }
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut Bimodal, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    #[test]
    fn learns_constant_direction() {
        let mut p = Bimodal::new(1024, 2);
        let mut wrong = 0;
        for _ in 0..100 {
            if !drive(&mut p, 0x400, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "bimodal should converge quickly, wrong={wrong}");
    }

    #[test]
    fn alternating_pattern_is_hard() {
        let mut p = Bimodal::new(1024, 2);
        let mut wrong = 0;
        for i in 0..1000 {
            if drive(&mut p, 0x400, i % 2 == 0) != (i % 2 == 0) {
                wrong += 1;
            }
        }
        // 2-bit counters mispredict heavily on alternation.
        assert!(wrong > 400, "wrong={wrong}");
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(Bimodal::new(4096, 2).storage_bits(), 8192);
    }

    #[test]
    fn silent_updates_detected() {
        let mut p = Bimodal::new(64, 2);
        // Saturate to strongly taken; further taken outcomes are silent.
        for _ in 0..10 {
            drive(&mut p, 0x40, true);
        }
        let before = p.stats().silent_writes_avoided;
        drive(&mut p, 0x40, true);
        assert_eq!(p.stats().silent_writes_avoided, before + 1);
    }

    #[test]
    fn scenario_b_uses_stale_values() {
        // Two updates from the *same* snapshot advance the counter once,
        // not twice — the Figure 3 effect.
        let mut p = Bimodal::new(64, 2);
        let b = BranchInfo::conditional(0x80);
        let (pred1, f1) = p.predict(&b);
        let (pred2, f2) = p.predict(&b);
        p.retire(&b, true, pred1, f1, UpdateScenario::FetchOnly);
        p.retire(&b, true, pred2, f2, UpdateScenario::FetchOnly);
        // Initial weakly-not-taken (1); two stale updates both write 2.
        assert_eq!(p.counter_value(0x80), 2);

        let mut q = Bimodal::new(64, 2);
        let (predq, fq) = q.predict(&b);
        q.retire(&b, true, predq, fq, UpdateScenario::Immediate);
        let (predq2, fq2) = q.predict(&b);
        q.retire(&b, true, predq2, fq2, UpdateScenario::Immediate);
        // Immediate updates advance twice.
        assert_eq!(q.counter_value(0x80), 3);
    }

    #[test]
    fn retire_read_accounting_by_scenario() {
        let mut p = Bimodal::new(64, 2);
        let b = BranchInfo::conditional(0x100);
        // Correct prediction under [C]: no retire read.
        let (_, f) = p.predict(&b);
        p.retire(&b, false, false, f, UpdateScenario::RereadOnMispredict);
        assert_eq!(p.stats().retire_reads, 0);
        // Mispredict under [C]: one retire read.
        let (_, f) = p.predict(&b);
        p.retire(&b, true, false, f, UpdateScenario::RereadOnMispredict);
        assert_eq!(p.stats().retire_reads, 1);
        // [A] always reads.
        let (_, f) = p.predict(&b);
        p.retire(&b, true, true, f, UpdateScenario::RereadAtRetire);
        assert_eq!(p.stats().retire_reads, 2);
    }
}
