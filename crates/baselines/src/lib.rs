//! Baseline branch predictors the paper compares TAGE against.
//!
//! * [`bimodal`] — PC-indexed 2-bit counters; the Figure 3 running example
//!   and the minimum-viable predictor.
//! * [`gshare`] — McFarling's gshare, the paper's "first generation"
//!   representative (512 Kbit in §4).
//! * [`gehl`] — the GEHL adder-tree predictor, the paper's "neural
//!   inspired" representative (520 Kbit, 13 tables × 8K × 5-bit, (6,2000)
//!   geometric histories, §4.1.1).
//! * [`perceptron`] — the original Jiménez & Lin perceptron (context for
//!   the neural family).
//! * [`snap`] — a scaled piecewise-linear neural predictor standing in for
//!   OH-SNAP (3rd CBP, §6.3).
//! * [`ftl`] — a fused global+local GEHL standing in for FTL++ (3rd CBP,
//!   §6.3).
//!
//! All predictors implement [`simkit::Predictor`], including full support
//! for the §4.1.2 delayed-update scenarios `[I]/[A]/[B]/[C]` and access
//! accounting with silent-update elimination.

#![forbid(unsafe_code)]

pub mod bimodal;
pub mod ftl;
pub mod gehl;
pub mod gshare;
pub mod perceptron;
pub mod snap;

pub use bimodal::Bimodal;
pub use ftl::Ftl;
pub use gehl::Gehl;
pub use gshare::Gshare;
pub use perceptron::Perceptron;
pub use snap::Snap;

/// Geometric history length series `L(i) = round(L1 * α^(i-1))` with
/// `L(count) = lmax`, as introduced for O-GEHL and reused by TAGE (§3).
///
/// Returns `count` lengths, the first equal to `l1`, the last to `lmax`.
///
/// # Panics
///
/// Panics if `count < 2`, `l1 == 0`, or `lmax <= l1`.
///
/// # Example
///
/// ```
/// let l = baselines::geometric_series(12, 6, 2000);
/// assert_eq!(l, vec![6, 10, 17, 29, 50, 84, 143, 242, 410, 696, 1179, 2000]);
/// ```
pub fn geometric_series(count: usize, l1: usize, lmax: usize) -> Vec<usize> {
    assert!(count >= 2, "geometric series needs at least 2 lengths");
    assert!(l1 >= 1 && lmax > l1, "invalid geometric series bounds");
    let alpha = (lmax as f64 / l1 as f64).powf(1.0 / (count as f64 - 1.0));
    (0..count)
        .map(|i| {
            let v = (l1 as f64 * alpha.powi(i as i32) + 0.5).floor() as usize;
            v.max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_series_endpoints() {
        for (n, l1, lmax) in [(12, 6, 2000), (8, 6, 1000), (5, 6, 500), (12, 3, 300), (12, 8, 5000)] {
            let s = geometric_series(n, l1, lmax);
            assert_eq!(s.len(), n);
            assert_eq!(s[0], l1);
            assert_eq!(*s.last().unwrap(), lmax);
            for w in s.windows(2) {
                assert!(w[1] > w[0], "series not strictly increasing: {s:?}");
            }
        }
    }

    #[test]
    fn geometric_series_matches_paper_sc_lengths() {
        // §5.3: the SC uses "the 4 shortest history lengths (0, 6, 10, 17)
        // as the main TAGE predictor" — i.e. the first three tagged
        // lengths of the (6,2000) series are 6, 10, 17.
        let s = geometric_series(12, 6, 2000);
        assert_eq!(&s[..3], &[6, 10, 17]);
    }

    #[test]
    #[should_panic]
    fn geometric_series_rejects_tiny() {
        let _ = geometric_series(1, 6, 2000);
    }
}
