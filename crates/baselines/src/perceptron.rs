//! The original global-history perceptron predictor (Jiménez & Lin,
//! HPCA 2001) — ancestor of the "neural inspired" family the paper
//! benchmarks against (§1, §4.1.1).

use simkit::counter::SignedCounter;
use simkit::history::GlobalHistory;
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;

/// Maximum supported history length (fixed-size snapshots).
pub const MAX_HIST: usize = 64;

/// A perceptron predictor: `rows` perceptrons of `hist + 1` signed
/// 8-bit weights over `hist` global history bits.
#[derive(Clone, Debug)]
pub struct Perceptron {
    weights: Vec<Vec<SignedCounter>>,
    rows: usize,
    hist: usize,
    theta: i32,
    ghist: GlobalHistory,
    stats: AccessStats,
}

/// In-flight snapshot for [`Perceptron`].
#[derive(Clone, Copy, Debug)]
pub struct PerceptronFlight {
    row: usize,
    /// History bits sampled at fetch (bit i = outcome of branch i+1 ago).
    xs: u64,
    /// Weights read at fetch (w\[0\] is the bias weight).
    ws: [i16; MAX_HIST + 1],
    y: i32,
}

impl Perceptron {
    /// Creates a perceptron table.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a power of two or `hist` exceeds
    /// [`MAX_HIST`].
    pub fn new(rows: usize, hist: usize) -> Self {
        assert!(rows.is_power_of_two(), "perceptron rows must be a power of two");
        assert!((1..=MAX_HIST).contains(&hist), "history length {hist} out of range");
        // Training threshold from the original paper: θ = ⌊1.93h + 14⌋.
        let theta = (1.93 * hist as f64 + 14.0).floor() as i32;
        Self {
            weights: vec![vec![SignedCounter::new(8); hist + 1]; rows],
            rows,
            hist,
            theta,
            ghist: GlobalHistory::new(),
            stats: AccessStats::default(),
        }
    }

    #[inline]
    fn row(&self, pc: u64) -> usize {
        ((pc >> 2) as usize ^ (pc >> 14) as usize) & (self.rows - 1)
    }
}

impl Predictor for Perceptron {
    type Flight = PerceptronFlight;

    fn name(&self) -> String {
        format!("perceptron-{}x{}h", self.rows, self.hist)
    }

    fn storage_bits(&self) -> u64 {
        self.rows as u64 * (self.hist as u64 + 1) * 8
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, PerceptronFlight) {
        self.stats.predict_reads += 1;
        let row = self.row(b.pc);
        let mut ws = [0i16; MAX_HIST + 1];
        let mut xs = 0u64;
        let mut y = i32::from(self.weights[row][0].get());
        for i in 0..self.hist {
            let bit = self.ghist.bit(i) == 1;
            if bit {
                xs |= 1 << i;
            }
            let w = self.weights[row][i + 1].get();
            ws[i + 1] = w;
            y += if bit { i32::from(w) } else { -i32::from(w) };
        }
        ws[0] = self.weights[row][0].get();
        (y >= 0, PerceptronFlight { row, xs, ws, y })
    }

    fn fetch_commit(&mut self, _b: &BranchInfo, outcome: bool, _flight: &mut PerceptronFlight) {
        self.ghist.push(outcome);
    }

    fn retire(
        &mut self,
        _b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: PerceptronFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        if scenario.counts_retire_read(mispredicted) {
            self.stats.retire_reads += 1;
        }
        if !(mispredicted || flight.y.abs() <= self.theta) {
            return;
        }
        let reread = scenario.reread_at_retire(mispredicted);
        for i in 0..=self.hist {
            let agree = if i == 0 { outcome } else { outcome == ((flight.xs >> (i - 1)) & 1 == 1) };
            let mut w = if reread {
                self.weights[flight.row][i]
            } else {
                SignedCounter::with_value(8, flight.ws[i])
            };
            w.update(agree);
            let changed = self.weights[flight.row][i] != w;
            if self.stats.record_write(changed) {
                self.weights[flight.row][i] = w;
            }
        }
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut Perceptron, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    #[test]
    fn learns_bias_through_bias_weight() {
        let mut p = Perceptron::new(64, 16);
        let mut wrong = 0;
        for i in 0..500 {
            if drive(&mut p, 0x400, false) && i > 50 {
                wrong += 1;
            }
        }
        assert!(wrong < 5, "wrong={wrong}");
    }

    #[test]
    fn learns_single_bit_correlation_in_noise() {
        let mut p = Perceptron::new(64, 16);
        let mut rng = simkit::rng::Xoshiro256::seed_from(5);
        let mut last_src = false;
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..8000 {
            let src = rng.gen_bool(0.5);
            drive(&mut p, 0x100, src);
            let noise = rng.gen_bool(0.5);
            drive(&mut p, 0x140, noise);
            let got = drive(&mut p, 0x180, last_src);
            if i > 3000 {
                total += 1;
                if got != last_src {
                    wrong += 1;
                }
            }
            last_src = src;
        }
        // The correlated bit is at lag 2 relative to 0x180's fetch.
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.05, "perceptron should isolate the relevant bit, rate={rate}");
    }

    #[test]
    fn parity_is_not_linearly_separable() {
        // XOR of the last two outcomes cannot be learned by a single-layer
        // perceptron — documents the known limitation (tables win here).
        let mut p = Perceptron::new(64, 8);
        let mut rng = simkit::rng::Xoshiro256::seed_from(6);
        let (mut a, mut b) = (false, false);
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..8000 {
            let target = a ^ b;
            let got = drive(&mut p, 0x200, target);
            if i > 4000 {
                total += 1;
                if got != target {
                    wrong += 1;
                }
            }
            a = b;
            b = rng.gen_bool(0.5);
            drive(&mut p, 0x240, b);
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate > 0.3, "parity should stay hard for a perceptron, rate={rate}");
    }

    #[test]
    fn storage_accounting() {
        let p = Perceptron::new(512, 32);
        assert_eq!(p.storage_bits(), 512 * 33 * 8);
    }
}
