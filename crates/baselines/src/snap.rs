//! A scaled piecewise-linear neural predictor — stand-in for OH-SNAP
//! (Jiménez, 3rd CBP), ranked 3rd at the championship (§6.3).
//!
//! OH-SNAP is an "optimized hybrid scaled neural analog predictor":
//! piecewise-linear branch prediction with position-dependent weight
//! scaling (emulating the analog summation of SNAP) and dynamic training
//! thresholds. This stand-in keeps the algorithmic core — per-(branch,
//! position, path) weights, inverse-linear position scaling, adaptive
//! threshold training — in digital fixed-point arithmetic. See DESIGN.md
//! §1 for the substitution rationale.

use simkit::counter::SignedCounter;
use simkit::history::{GlobalHistory, PathHistory};
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;
use simkit::threshold::AdaptiveThreshold;

/// Maximum history length supported (fixed-size snapshots).
pub const MAX_HIST: usize = 64;

/// Piecewise-linear predictor with scaled weights.
#[derive(Clone, Debug)]
pub struct Snap {
    /// Weight cube: `[pc_rows][hist + 1][path_cols]` 7-bit weights.
    weights: Vec<SignedCounter>,
    pc_rows: usize,
    path_cols: usize,
    hist: usize,
    /// Fixed-point (×256) inverse-linear position scaling coefficients.
    coef: Vec<i32>,
    ghist: GlobalHistory,
    /// Path of recent branch PCs (low bits), for the piecewise dimension.
    recent_pcs: Vec<u16>,
    path: PathHistory,
    threshold: AdaptiveThreshold,
    stats: AccessStats,
}

/// In-flight snapshot for [`Snap`].
#[derive(Clone, Copy, Debug)]
pub struct SnapFlight {
    /// Flattened weight indices touched at fetch.
    idx: [u32; MAX_HIST + 1],
    /// Weight values read at fetch.
    ws: [i16; MAX_HIST + 1],
    /// History bits at fetch.
    xs: u64,
    /// Scaled fetch-time sum (fixed point ×256).
    y: i64,
}

impl Snap {
    /// Creates a predictor with `pc_rows × (hist+1) × path_cols` weights.
    ///
    /// # Panics
    ///
    /// Panics if `pc_rows`/`path_cols` are not powers of two or `hist`
    /// exceeds [`MAX_HIST`].
    pub fn new(pc_rows: usize, hist: usize, path_cols: usize) -> Self {
        assert!(pc_rows.is_power_of_two() && path_cols.is_power_of_two());
        assert!((1..=MAX_HIST).contains(&hist));
        let n = pc_rows * (hist + 1) * path_cols;
        // SNAP-style inverse-linear scaling: positions closer to the branch
        // weigh more. Fixed point ×256.
        let coef = (0..=hist).map(|i| (256.0 / (1.0 + 0.06 * i as f64)) as i32).collect();
        Self {
            weights: vec![SignedCounter::new(7); n],
            pc_rows,
            path_cols,
            hist,
            coef,
            ghist: GlobalHistory::new(),
            recent_pcs: vec![0; MAX_HIST + 1],
            path: PathHistory::new(16),
            threshold: AdaptiveThreshold::new(64, 16, 1 << 14),
            stats: AccessStats::default(),
        }
    }

    /// A ~512 Kbit-class configuration comparable to the CBP-3 entry.
    pub fn cbp_512k() -> Self {
        // 128 rows × 49 positions × 8 path columns × 7 bits ≈ 351 Kbit
        // of weights plus histories — the same class as the 512 Kbit
        // budget entries.
        Self::new(128, 48, 8)
    }

    #[inline]
    fn widx(&self, row: usize, pos: usize, col: usize) -> usize {
        (row * (self.hist + 1) + pos) * self.path_cols + col
    }

    #[inline]
    fn row(&self, pc: u64) -> usize {
        ((pc >> 2) as usize ^ (pc >> 11) as usize) & (self.pc_rows - 1)
    }
}

impl Predictor for Snap {
    type Flight = SnapFlight;

    fn name(&self) -> String {
        format!("snap-{}x{}x{}", self.pc_rows, self.hist, self.path_cols)
    }

    fn storage_bits(&self) -> u64 {
        self.weights.len() as u64 * 7 + (self.recent_pcs.len() as u64 * 16)
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, SnapFlight) {
        self.stats.predict_reads += 1;
        let row = self.row(b.pc);
        let mut flight =
            SnapFlight { idx: [0; MAX_HIST + 1], ws: [0; MAX_HIST + 1], xs: 0, y: 0 };
        // Bias weight at position 0, column 0.
        let bidx = self.widx(row, 0, 0);
        let bw = self.weights[bidx].get();
        flight.idx[0] = bidx as u32;
        flight.ws[0] = bw;
        flight.y = i64::from(bw) * i64::from(self.coef[0]);
        for i in 0..self.hist {
            let bit = self.ghist.bit(i) == 1;
            if bit {
                flight.xs |= 1 << i;
            }
            let col = (self.recent_pcs[i] as usize) & (self.path_cols - 1);
            let idx = self.widx(row, i + 1, col);
            let w = self.weights[idx].get();
            flight.idx[i + 1] = idx as u32;
            flight.ws[i + 1] = w;
            let term = i64::from(w) * i64::from(self.coef[i + 1]);
            flight.y += if bit { term } else { -term };
        }
        (flight.y >= 0, flight)
    }

    fn fetch_commit(&mut self, b: &BranchInfo, outcome: bool, _flight: &mut SnapFlight) {
        self.ghist.push(outcome);
        self.recent_pcs.rotate_right(1);
        self.recent_pcs[0] = (b.pc >> 2) as u16;
        self.path.push(b.pc);
    }

    fn retire(
        &mut self,
        _b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: SnapFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        if scenario.counts_retire_read(mispredicted) {
            self.stats.retire_reads += 1;
        }
        let low_conf = flight.y.abs() <= i64::from(self.threshold.value()) * 256;
        self.threshold.on_event(mispredicted, low_conf);
        if !(mispredicted || low_conf) {
            return;
        }
        let reread = scenario.reread_at_retire(mispredicted);
        for i in 0..=self.hist {
            let agree = if i == 0 { outcome } else { outcome == ((flight.xs >> (i - 1)) & 1 == 1) };
            let idx = flight.idx[i] as usize;
            let mut w = if reread {
                self.weights[idx]
            } else {
                SignedCounter::with_value(7, flight.ws[i])
            };
            w.update(agree);
            let changed = self.weights[idx] != w;
            if self.stats.record_write(changed) {
                self.weights[idx] = w;
            }
        }
    }

    fn note_uncond(&mut self, b: &BranchInfo) {
        self.recent_pcs.rotate_right(1);
        self.recent_pcs[0] = (b.pc >> 2) as u16;
        self.path.push(b.pc);
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut Snap, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    #[test]
    fn learns_bias() {
        let mut p = Snap::new(16, 16, 4);
        let mut wrong = 0;
        for i in 0..600 {
            if drive(&mut p, 0x400, false) && i > 100 {
                wrong += 1;
            }
        }
        assert!(wrong < 10, "wrong={wrong}");
    }

    #[test]
    fn learns_correlation_in_noise() {
        let mut p = Snap::new(16, 16, 4);
        let mut rng = simkit::rng::Xoshiro256::seed_from(8);
        let mut last = false;
        let (mut wrong, mut total) = (0, 0);
        for i in 0..8000 {
            let src = rng.gen_bool(0.5);
            drive(&mut p, 0x100, src);
            drive(&mut p, 0x140, rng.gen_bool(0.5));
            let got = drive(&mut p, 0x180, last);
            if i > 3000 {
                total += 1;
                if got != last {
                    wrong += 1;
                }
            }
            last = src;
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.08, "snap should learn correlation, rate={rate}");
    }

    #[test]
    fn storage_in_512k_class() {
        let bits = Snap::cbp_512k().storage_bits();
        assert!((200_000..600_000).contains(&bits), "bits={bits}");
    }

    #[test]
    fn coefficients_decay_with_position() {
        let p = Snap::new(16, 32, 4);
        assert!(p.coef[0] > p.coef[16]);
        assert!(p.coef[16] > p.coef[32]);
    }
}
