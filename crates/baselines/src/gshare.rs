//! McFarling's gshare predictor — the paper's first-generation
//! representative (512 Kbit configuration in §4).
//!
//! A single table of 2-bit counters indexed by `PC ⊕ global history`.
//! Because *one* counter carries the whole prediction, gshare is the
//! predictor most damaged by computing updates from stale fetch-time
//! values (scenario \[B\]: 944 → 1292 MPPKI in the paper).

use simkit::counter::UnsignedCounter;
use simkit::history::GlobalHistory;
use simkit::predictor::{BranchInfo, Predictor, UpdateScenario};
use simkit::stats::AccessStats;

/// A gshare predictor with `2^index_bits` two-bit counters and a global
/// history of `index_bits` bits.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<UnsignedCounter>,
    index_bits: u32,
    hist_bits: u32,
    ghist: GlobalHistory,
    stats: AccessStats,
}

/// In-flight snapshot for [`Gshare`].
#[derive(Clone, Copy, Debug)]
pub struct GshareFlight {
    index: usize,
    ctr: u16,
}

impl Gshare {
    /// Creates a gshare table of `2^index_bits` entries with a history
    /// length equal to the index width (the classic configuration).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 26.
    pub fn new(index_bits: u32) -> Self {
        Self::with_history(index_bits, index_bits)
    }

    /// Creates a gshare table of `2^index_bits` entries hashing in
    /// `hist_bits` of global history. Shorter-than-index histories train
    /// faster on noisy code at the cost of correlation reach — the usual
    /// practical tuning.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 26, or
    /// `hist_bits > index_bits`.
    pub fn with_history(index_bits: u32, hist_bits: u32) -> Self {
        assert!((1..=26).contains(&index_bits), "gshare index bits {index_bits} out of range");
        assert!(hist_bits <= index_bits, "gshare history exceeds index width");
        Self {
            table: vec![UnsignedCounter::new(2); 1 << index_bits],
            index_bits,
            hist_bits,
            ghist: GlobalHistory::new(),
            stats: AccessStats::default(),
        }
    }

    /// The paper's 512 Kbit configuration: 256K × 2-bit counters (history
    /// tuned to the suite, as any deployed gshare would be).
    pub fn cbp_512k() -> Self {
        Self::with_history(18, 12)
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (pc >> 13) ^ (self.ghist.low_bits(self.hist_bits) << (self.index_bits - self.hist_bits)))
            as usize)
            & (self.table.len() - 1)
    }
}

impl Predictor for Gshare {
    type Flight = GshareFlight;

    fn name(&self) -> String {
        format!("gshare-{}Kbit", (self.storage_bits() + 512) / 1024)
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2
    }

    fn predict(&mut self, b: &BranchInfo) -> (bool, GshareFlight) {
        self.stats.predict_reads += 1;
        let index = self.index(b.pc);
        let c = self.table[index];
        (c.is_taken(), GshareFlight { index, ctr: c.get() })
    }

    fn fetch_commit(&mut self, _b: &BranchInfo, outcome: bool, _flight: &mut GshareFlight) {
        self.ghist.push(outcome);
    }

    fn retire(
        &mut self,
        _b: &BranchInfo,
        outcome: bool,
        predicted: bool,
        flight: GshareFlight,
        scenario: UpdateScenario,
    ) {
        let mispredicted = predicted != outcome;
        if scenario.counts_retire_read(mispredicted) {
            self.stats.retire_reads += 1;
        }
        let mut c = if scenario.reread_at_retire(mispredicted) {
            self.table[flight.index]
        } else {
            UnsignedCounter::with_value(2, flight.ctr)
        };
        c.update(outcome);
        let changed = self.table[flight.index] != c;
        if self.stats.record_write(changed) {
            self.table[flight.index] = c;
        }
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut Gshare, pc: u64, outcome: bool) -> bool {
        let b = BranchInfo::conditional(pc);
        let (pred, mut f) = p.predict(&b);
        p.fetch_commit(&b, outcome, &mut f);
        p.retire(&b, outcome, pred, f, UpdateScenario::Immediate);
        pred
    }

    #[test]
    fn learns_history_correlation() {
        // Branch B equals the previous branch's outcome: gshare learns via
        // history indexing. Feed alternating source branch.
        let mut p = Gshare::new(12);
        let mut wrong = 0;
        let mut prev = false;
        for i in 0..2000 {
            let src = i % 2 == 0;
            drive(&mut p, 0x100, src);
            let correct = drive(&mut p, 0x200, prev) == prev;
            if !correct && i > 100 {
                wrong += 1;
            }
            prev = src;
        }
        assert!(wrong < 20, "gshare should learn short correlation, wrong={wrong}");
    }

    #[test]
    fn learns_short_pattern() {
        let pattern = [true, true, false];
        let mut p = Gshare::new(12);
        let mut wrong = 0;
        for i in 0..3000 {
            let out = pattern[i % 3];
            if drive(&mut p, 0x400, out) != out && i > 200 {
                wrong += 1;
            }
        }
        assert!(wrong < 30, "wrong={wrong}");
    }

    #[test]
    fn cbp_config_is_512kbit() {
        assert_eq!(Gshare::cbp_512k().storage_bits(), 512 * 1024);
    }

    #[test]
    fn distinct_histories_use_distinct_entries() {
        let mut p = Gshare::new(10);
        let b = BranchInfo::conditional(0x40);
        let (_, f1) = p.predict(&b);
        p.fetch_commit(&b, true, &mut { f1 });
        let (_, f2) = p.predict(&b);
        // History changed by one bit, index should usually differ.
        assert_ne!(f1.index, f2.index);
    }

    #[test]
    fn name_mentions_size() {
        assert!(Gshare::cbp_512k().name().contains("512"));
    }
}
