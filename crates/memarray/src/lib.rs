//! Predictor memory-array modeling: ports, bank interleaving, and an
//! analytical area/energy cost model (§4.3, §7).
//!
//! Three predictor-table accesses per branch (read at fetch, read at
//! retire, write at retire) would require 3-ported memories; §4 shows
//! CACTI 6.5 puts a 3-port array at 3–4× the area and ~25–30 % more energy
//! per access than a single-ported one. The paper's alternative: 4-way
//! bank-interleaved single-ported arrays with a bank-selection rule that
//! guarantees a prediction never touches the banks used by the two
//! previous predictions, leaving every bank free two cycles out of three
//! for updates.
//!
//! * [`banking::BankSelector`] — the §4.3 bank-selection algorithm;
//! * [`banking::interleaved_index`] — index remapping (top index bits
//!   replaced by the bank number — the source of the small accuracy loss:
//!   one (PC, history) pair can train up to four distinct entries);
//! * [`banking::ConflictModel`] — per-bank update queues implementing
//!   "prediction has priority; write beats retire-read; updates wait at
//!   most two cycles";
//! * [`cost`] — the CACTI-6.5 substitute: analytical area and
//!   energy-per-access estimates for ported vs banked arrays.

#![forbid(unsafe_code)]

pub mod banking;
pub mod cost;

pub use banking::{interleaved_index, BankSelector, ConflictModel};
pub use cost::{access_energy, array_area, CostComparison};
