//! Analytical silicon area and access-energy model — the CACTI 6.5
//! substitute (see DESIGN.md §1).
//!
//! The paper uses CACTI only for ratios: "for the range of memory array
//! sizes used in branch predictors (1KB to 64KB) and for equal capacity
//! the area of a 3-port memory array is 3–4 times larger than a
//! single-ported memory array, while the energy dissipated per access is
//! about 25–30 % higher" (§4), and bank-interleaving "allows to reduce
//! the silicon area by approximately a factor 3.3 and to approximately
//! halve the power consumption per predictor read access" (§7.1).
//!
//! This model is calibrated to those published ratios:
//!
//! * cell area grows quadratically with port count (each port adds a
//!   wordline and a bitline pair): `area ∝ bits · (0.7 + 0.3·p²)`
//!   normalized so 1 port = 1.0 — giving 3-port ≈ 3.4×;
//! * a banked array pays ~5 % area overhead for decoders/sense-amp
//!   duplication but activates only one bank per access;
//! * energy per access ∝ `sqrt(active_bits)` (bitline+wordline length)
//!   times a port factor of `1 + 0.14·(p-1)` — giving 3-port ≈ 1.28×.

/// Relative area of an array of `bits` cells with `ports` ports
/// (arbitrary units: 1.0 per bit at one port).
///
/// # Panics
///
/// Panics if `ports` is 0.
pub fn array_area(bits: u64, ports: u32) -> f64 {
    assert!(ports >= 1, "a memory array needs at least one port");
    let port_factor = 0.7 + 0.3 * (ports as f64) * (ports as f64);
    bits as f64 * port_factor
}

/// Relative area of the same capacity split into `banks` single-ported
/// banks (5 % overhead per extra bank for duplicated periphery).
pub fn banked_area(bits: u64, banks: u32) -> f64 {
    assert!(banks >= 1);
    // ~5 % periphery duplication overhead spread across the extra banks.
    array_area(bits, 1) * (1.0 + 0.05 * (banks.saturating_sub(1)) as f64 / banks as f64)
}

/// Relative energy of one access to an array of `bits` cells with
/// `ports` ports.
///
/// # Panics
///
/// Panics if `ports` is 0.
pub fn access_energy(bits: u64, ports: u32) -> f64 {
    assert!(ports >= 1);
    (bits as f64).sqrt() * (1.0 + 0.14 * (ports as f64 - 1.0))
}

/// Relative energy of one access to the same capacity banked `banks`
/// ways (only one bank's bitlines are activated).
pub fn banked_access_energy(bits: u64, banks: u32) -> f64 {
    assert!(banks >= 1);
    access_energy(bits / u64::from(banks).max(1), 1) * 1.15 // bank routing overhead
}

/// Side-by-side comparison of a 3-ported monolithic implementation and a
/// 4-way banked single-ported one, for a predictor of `bits` total.
#[derive(Clone, Copy, Debug)]
pub struct CostComparison {
    /// Predictor storage in bits.
    pub bits: u64,
    /// Area of the 3-port monolithic arrays.
    pub area_3port: f64,
    /// Area of the 4-way banked single-port arrays.
    pub area_banked: f64,
    /// Energy per access, 3-port.
    pub energy_3port: f64,
    /// Energy per access, banked.
    pub energy_banked: f64,
}

impl CostComparison {
    /// Builds the comparison for a predictor of `bits` storage.
    pub fn for_predictor(bits: u64) -> Self {
        Self {
            bits,
            area_3port: array_area(bits, 3),
            area_banked: banked_area(bits, 4),
            energy_3port: access_energy(bits, 3),
            energy_banked: banked_access_energy(bits, 4),
        }
    }

    /// Area reduction factor from banking (§7.1 reports ≈ 3.3×).
    pub fn area_reduction(&self) -> f64 {
        self.area_3port / self.area_banked
    }

    /// Energy reduction factor per read access (§7.1 reports ≈ 2×).
    pub fn energy_reduction(&self) -> f64 {
        self.energy_3port / self.energy_banked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_port_area_in_paper_band() {
        // §4: 3-port is 3–4× the area of single-port at equal capacity.
        let ratio = array_area(1 << 19, 3) / array_area(1 << 19, 1);
        assert!((3.0..4.0).contains(&ratio), "ratio {ratio}");
        assert!((3.3..3.5).contains(&ratio), "calibrated to ~3.4: {ratio}");
    }

    #[test]
    fn three_port_energy_in_paper_band() {
        // §4: ~25–30 % more energy per access.
        let ratio = access_energy(1 << 19, 3) / access_energy(1 << 19, 1);
        assert!((1.25..1.30).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn banking_area_reduction_near_3_3() {
        let c = CostComparison::for_predictor(512 * 1024);
        let r = c.area_reduction();
        assert!((3.0..3.7).contains(&r), "area reduction {r}");
    }

    #[test]
    fn banking_halves_read_energy() {
        let c = CostComparison::for_predictor(512 * 1024);
        let r = c.energy_reduction();
        assert!((1.8..2.6).contains(&r), "energy reduction {r}");
    }

    #[test]
    fn area_scales_linearly_with_bits() {
        assert!((array_area(2000, 1) / array_area(1000, 1) - 2.0).abs() < 1e-9);
    }
}
