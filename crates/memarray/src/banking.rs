//! 4-way bank interleaving with the §4.3 bank-selection algorithm.

/// Number of banks per table (the paper evaluates 4-way interleaving).
pub const BANKS: u8 = 4;

/// The §4.3 bank selector: the predicted branch never accesses a bank
/// used by either of the two previous predictions.
///
/// ```text
/// if (Z is unconditional) b(Z) = -1; /* no access */
/// else { b(Z) = Z & 3;
///        while (b(Z) == b(X) || b(Z) == b(Y)) b(Z) = (b(Z)+1) & 3; }
/// ```
///
/// # Example
///
/// ```
/// use memarray::BankSelector;
///
/// let mut sel = BankSelector::new();
/// let b1 = sel.bank(0x1000);
/// let b2 = sel.bank(0x1000);
/// let b3 = sel.bank(0x1000);
/// assert_ne!(b1, b2);
/// assert_ne!(b2, b3);
/// assert_ne!(b1, b3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BankSelector {
    last: [i8; 2],
}

impl BankSelector {
    /// A fresh selector (no previous predictions).
    pub fn new() -> Self {
        Self { last: [-1, -1] }
    }

    /// Selects the bank for the next predicted branch.
    pub fn bank(&mut self, pc: u64) -> u8 {
        let mut b = ((pc >> 2) & 3) as i8;
        while b == self.last[0] || b == self.last[1] {
            b = (b + 1) & 3;
        }
        self.last[1] = self.last[0];
        self.last[0] = b;
        b as u8
    }

    /// Notes an unconditional branch (no predictor access, `b(Z) = -1`).
    pub fn note_uncond(&mut self) {
        self.last[1] = self.last[0];
        self.last[0] = -1;
    }
}

/// Maps a monolithic table index onto a 4-bank interleaved layout:
/// the top two index bits are replaced by the bank number. The entry
/// count is unchanged, but the same (PC, history) pair now reaches a
/// different entry depending on the bank — up to four entries must be
/// trained per branch context (§4.3's accuracy cost).
///
/// # Panics
///
/// Panics if `size_bits < 2` or `bank >= 4`.
///
/// # Example
///
/// ```
/// let i = memarray::interleaved_index(0x3FF, 2, 10);
/// assert_eq!(i >> 8, 2); // bank in the top two bits
/// ```
#[inline]
pub fn interleaved_index(index: usize, bank: u8, size_bits: u32) -> usize {
    assert!(size_bits >= 2, "table too small to interleave");
    assert!(bank < BANKS, "bank out of range");
    let inner = index & ((1usize << (size_bits - 2)) - 1);
    ((bank as usize) << (size_bits - 2)) | inner
}

/// Per-bank single-port conflict model.
///
/// Prediction has absolute priority; updates (writes, then retire-reads)
/// queue per bank and drain on cycles when their bank is not being read
/// for a prediction. The §4.3 selection rule guarantees each bank at
/// least two free cycles in any three, so a 4-deep queue essentially
/// never overflows; overflowing updates are dropped and counted.
#[derive(Clone, Debug)]
pub struct ConflictModel {
    queues: [u32; BANKS as usize],
    depth: u32,
    /// Updates delayed at least one cycle.
    pub delayed: u64,
    /// Updates dropped on queue overflow.
    pub dropped: u64,
    /// Total updates offered.
    pub offered: u64,
}

impl Default for ConflictModel {
    fn default() -> Self {
        Self::new(4)
    }
}

impl ConflictModel {
    /// A conflict model with per-bank queues of `depth` entries.
    pub fn new(depth: u32) -> Self {
        Self { queues: [0; BANKS as usize], depth, delayed: 0, dropped: 0, offered: 0 }
    }

    /// Advances one prediction cycle: the predicted bank is busy, all
    /// other banks drain one queued update.
    pub fn tick(&mut self, predicted_bank: u8) {
        for (b, q) in self.queues.iter_mut().enumerate() {
            if b != predicted_bank as usize && *q > 0 {
                *q -= 1;
            }
        }
    }

    /// Offers an update to `bank`. Returns false when dropped.
    pub fn offer_update(&mut self, bank: u8) -> bool {
        self.offered += 1;
        let q = &mut self.queues[bank as usize];
        if *q >= self.depth {
            self.dropped += 1;
            return false;
        }
        if *q > 0 {
            self.delayed += 1;
        }
        *q += 1;
        true
    }

    /// Fraction of updates that waited at least a cycle.
    pub fn delay_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.delayed as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_consecutive_banks_differ() {
        let mut sel = BankSelector::new();
        let mut rng = simkit::rng::Xoshiro256::seed_from(1);
        let mut prev2: Vec<u8> = vec![];
        for _ in 0..10_000 {
            let b = sel.bank(rng.next_u64());
            if prev2.len() == 2 {
                assert_ne!(b, prev2[0]);
                assert_ne!(b, prev2[1]);
                prev2.remove(0);
            }
            prev2.push(b);
        }
    }

    #[test]
    fn unconditional_frees_a_slot() {
        let mut sel = BankSelector::new();
        let b1 = sel.bank(0x0); // bank 0
        sel.note_uncond();
        // Only b1 is excluded now.
        let b2 = sel.bank(0x0);
        assert_ne!(b1, b2);
    }

    #[test]
    fn bank_distribution_is_balanced() {
        let mut sel = BankSelector::new();
        let mut rng = simkit::rng::Xoshiro256::seed_from(2);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[sel.bank(rng.next_u64()) as usize] += 1;
        }
        for &c in &counts {
            assert!((8000..12000).contains(&c), "bank imbalance: {counts:?}");
        }
    }

    #[test]
    fn interleaved_index_preserves_range() {
        for bank in 0..4u8 {
            for idx in [0usize, 1, 511, 1023] {
                let m = interleaved_index(idx, bank, 10);
                assert!(m < 1024);
                assert_eq!(m >> 8, bank as usize);
            }
        }
    }

    #[test]
    #[should_panic]
    fn interleaving_rejects_tiny_tables() {
        let _ = interleaved_index(0, 0, 1);
    }

    #[test]
    fn conflict_queues_rarely_overflow_at_predictor_rates() {
        // 0.09 effective writes + 0.04 retire reads per prediction (§4.2):
        // the queues must essentially never drop.
        let mut sel = BankSelector::new();
        let mut cm = ConflictModel::default();
        let mut rng = simkit::rng::Xoshiro256::seed_from(3);
        for _ in 0..100_000 {
            let b = sel.bank(rng.next_u64());
            cm.tick(b);
            if rng.gen_bool(0.13) {
                cm.offer_update(rng.gen_range(4) as u8);
            }
        }
        assert_eq!(cm.dropped, 0, "updates dropped at realistic rates");
        assert!(cm.delay_fraction() < 0.2);
    }

    #[test]
    fn conflict_queue_drops_when_saturated() {
        let mut cm = ConflictModel::new(2);
        assert!(cm.offer_update(0));
        assert!(cm.offer_update(0));
        assert!(!cm.offer_update(0));
        assert_eq!(cm.dropped, 1);
        cm.tick(1); // bank 0 drains
        assert!(cm.offer_update(0));
    }
}
