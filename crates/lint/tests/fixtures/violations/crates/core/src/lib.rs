//! Fixture: an allowlisted-unsafe crate that breaks the unsafe policy.
//! Missing the required `#![deny(unsafe_code)]` header, and the unsafe
//! block below carries no SAFETY justification.

pub mod spec;

/// Reads the first byte of a slice without a bounds check.
pub fn first_byte(data: &[u8]) -> u8 {
    unsafe { *data.get_unchecked(0) }
}

/// A justified unsafe site: this one must NOT be flagged.
// SAFETY: `len >= 1` is checked by the caller-visible assert below.
pub fn first_byte_justified(data: &[u8]) -> u8 {
    assert!(!data.is_empty());
    unsafe { *data.get_unchecked(0) }
}
