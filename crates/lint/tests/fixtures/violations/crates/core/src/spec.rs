//! Fixture spec module: an undocumented enum variant, an undocumented
//! preset row, and a bare wildcard arm in a guarded file.

/// Why a spec failed to parse.
pub enum SpecError {
    /// Documented in the fixture DESIGN.md.
    Empty,
    /// NOT documented anywhere: doc-sync must flag it.
    PhantomVariant,
}

/// Named predictors.
pub const PRESETS: &[(&str, &str)] = &[
    ("tage", "tage"),
    ("undocumented-preset", "tage+ium"),
];

/// Classifies a token; the bare `_ =>` below is unjustified.
pub fn classify(token: &str) -> &'static str {
    match token {
        "tage" => "provider",
        _ => "unknown",
    }
}

/// A justified wildcard: this one must NOT be flagged.
pub fn classify_justified(token: &str) -> &'static str {
    match token {
        "tage" => "provider",
        // WILDCARD: open input domain — unknown tokens are reported, not matched.
        _ => "unknown",
    }
}
