//! Fixture library crate: missing `#![forbid(unsafe_code)]`, an
//! unjustified unwrap, and an unjustified relaxed atomic load.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Parses a decimal count; the unwrap is unjustified.
pub fn parse_count(s: &str) -> usize {
    s.parse().unwrap()
}

/// A justified unwrap: this one must NOT be flagged.
pub fn first_char(s: &str) -> char {
    assert!(!s.is_empty());
    // INVARIANT: the assert above guarantees at least one char.
    s.chars().next().unwrap()
}

/// Reads a counter with an unjustified relaxed ordering.
pub fn read_counter(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed)
}

/// A justified relaxed load: this one must NOT be flagged.
pub fn read_counter_justified(c: &AtomicUsize) -> usize {
    // ORDERING: statistics-only counter; no happens-before edge needed.
    c.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    /// Unwraps inside test code are always allowed.
    #[test]
    fn test_code_is_exempt() {
        let n: usize = "7".parse().unwrap();
        assert_eq!(n, 7);
    }
}
