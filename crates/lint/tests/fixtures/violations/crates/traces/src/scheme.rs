//! Fixture scheme registry: one documented scheme row and one phantom
//! row that doc-sync must flag.

/// The scheme-byte registry.
pub const SCHEMES: &[(&str, u8)] = &[
    ("raw", 0),
    ("phantom-scheme", 9),
];
