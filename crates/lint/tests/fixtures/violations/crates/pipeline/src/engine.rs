//! Fixture sampling-surface window for the doc-sync pass.
//!
//! Plants one undocumented window field (`phantom_window_knob`); the
//! documented fields (`skip`, `warmup`, `measure`) are the quiet decoys.

pub struct SimWindow {
    pub skip: u64,
    pub warmup: u64,
    pub measure: u64,
    pub phantom_window_knob: u64,
}
