//! Fixture phase selector for the doc-sync pass: a fully documented
//! sampling-surface struct that must stay quiet.

pub struct Phase {
    pub start: u64,
    pub weight: u64,
}
