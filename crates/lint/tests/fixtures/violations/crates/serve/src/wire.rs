//! Fixture wire module: a documented decoy beside each planted
//! undocumented name, so the gate proves doc-sync spares synced rows.
//!
//! Plants (3 findings): the `phantom-frame` FRAMES row, the
//! `phantom_handshake_knob` Handshake field, and the `tage.wire/99`
//! schema version — none appear in the fixture docs. Decoys (quiet):
//! the `hello` row and the `spec` field, both documented in the
//! fixture DESIGN.md.

#![forbid(unsafe_code)]

/// Undocumented version bump: the fixture docs never mention /99.
pub const WIRE_SCHEMA: &str = "tage.wire/99";

pub const FRAMES: &[(&str, u8)] = &[
    ("hello", 0x01),
    ("phantom-frame", 0x7f),
];

pub struct Handshake {
    pub spec: String,
    pub phantom_handshake_knob: u64,
}
