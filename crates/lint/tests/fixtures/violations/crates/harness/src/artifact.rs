//! Fixture run-artifact schema for the doc-sync pass.
//!
//! Plants one undocumented `TraceRow` field (`phantom_counter`) and a
//! schema version bump (`tage.run/99`) the fixture DESIGN.md does not
//! mention; the documented fields (`schema`, `traces`, `trace`) are the
//! quiet decoys.

pub const ARTIFACT_SCHEMA: &str = "tage.run/99";

pub struct RunArtifact {
    pub schema: String,
    pub traces: Vec<TraceRow>,
}

pub struct TraceRow {
    pub trace: String,
    pub phantom_counter: u64,
}

/// Documented sampling-block decoy: every field is backticked in the
/// fixture DESIGN.md, so only the planted violations above fire.
pub struct SamplingBlock {
    pub phases: u64,
    pub seed: u64,
}
