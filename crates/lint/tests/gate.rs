//! The acceptance gate for the linter itself:
//!
//! * the violation fixture tree fires every registered pass (and the
//!   justified decoy sites next to each violation stay quiet),
//! * the real workspace is clean under `--deny-all`,
//! * the `tage_lint` binary maps those two outcomes to exit codes 1
//!   and 0 respectively, and writes the JSON report artifact.

use std::path::{Path, PathBuf};
use std::process::Command;
use tage_lint::{run_check, LintConfig, Severity};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations")
}

fn workspace_root() -> PathBuf {
    // crates/lint/../.. — the directory holding Cargo.toml, crates/, src/.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

#[test]
fn fixtures_fire_every_pass_and_spare_justified_sites() {
    let report = run_check(LintConfig::for_workspace(fixture_root()), false)
        .expect("fixture tree is readable");
    assert!(!report.is_clean(), "fixture violations must deny the build");

    // Exact per-pass counts: any justified decoy firing, or any planted
    // violation missed, shifts a count.
    let counts: Vec<(&str, usize)> = report.pass_counts.clone();
    assert_eq!(
        counts,
        vec![
            ("unsafe-policy", 3),     // 2 missing crate headers + 1 bare unsafe
            ("panic-policy", 1),      // parse_count's unwrap
            ("exhaustiveness-guard", 1), // classify's bare `_ =>`
            ("atomics-ordering", 1),  // read_counter's Relaxed load
            // PhantomVariant + undocumented-preset + phantom-scheme
            // + phantom_counter artifact field + tage.run/99 version bump
            // + phantom_window_knob sampling-surface field
            // + phantom-frame wire row + phantom_handshake_knob field
            // + tage.wire/99 version bump
            ("doc-sync", 9),
        ],
        "full report:\n{}",
        tage_lint::render_text(&report)
    );

    let has = |pass: &str, file: &str, needle: &str| {
        report
            .diagnostics
            .iter()
            .any(|d| d.pass == pass && d.file == file && d.message.contains(needle))
    };
    assert!(has("unsafe-policy", "crates/core/src/lib.rs", "SAFETY"));
    assert!(has("unsafe-policy", "crates/foo/src/lib.rs", "forbid(unsafe_code)"));
    assert!(has("panic-policy", "crates/foo/src/lib.rs", "unwrap"));
    assert!(has("exhaustiveness-guard", "crates/core/src/spec.rs", "WILDCARD"));
    assert!(has("atomics-ordering", "crates/foo/src/lib.rs", "ORDERING"));
    assert!(has("doc-sync", "crates/core/src/spec.rs", "PhantomVariant"));
    assert!(has("doc-sync", "crates/core/src/spec.rs", "undocumented-preset"));
    assert!(has("doc-sync", "crates/traces/src/scheme.rs", "phantom-scheme"));
    assert!(has("doc-sync", "crates/harness/src/artifact.rs", "phantom_counter"));
    assert!(has("doc-sync", "crates/harness/src/artifact.rs", "tage.run/99"));
    assert!(has("doc-sync", "crates/pipeline/src/engine.rs", "phantom_window_knob"));
    assert!(has("doc-sync", "crates/serve/src/wire.rs", "phantom-frame"));
    assert!(has("doc-sync", "crates/serve/src/wire.rs", "phantom_handshake_knob"));
    assert!(has("doc-sync", "crates/serve/src/wire.rs", "tage.wire/99"));

    // doc-sync stays advisory without --deny-all...
    assert!(report
        .diagnostics
        .iter()
        .filter(|d| d.pass == "doc-sync")
        .all(|d| d.severity == Severity::Advice));
    // ...and is promoted under it.
    let denied = run_check(LintConfig::for_workspace(fixture_root()), true).unwrap();
    assert!(denied.diagnostics.iter().all(|d| d.severity == Severity::Deny));
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let report = run_check(LintConfig::for_workspace(workspace_root()), true)
        .expect("workspace is readable");
    assert!(
        report.is_clean(),
        "the workspace must pass its own gate; findings:\n{}",
        tage_lint::render_text(&report)
    );
    assert!(report.files_scanned > 50, "walk looks truncated: {}", report.files_scanned);
}

#[test]
fn binary_exit_codes_and_json_artifact() {
    let bin = env!("CARGO_BIN_EXE_tage_lint");
    let json = std::env::temp_dir().join("tage_lint_gate_test_report.json");

    // Violations → exit 1, and the JSON artifact is still written.
    let out = Command::new(bin)
        .args(["check", "--deny-all", "--json"])
        .arg(&json)
        .args(["--root"])
        .arg(fixture_root())
        .output()
        .expect("run tage_lint");
    assert_eq!(out.status.code(), Some(1), "stdout:\n{}", String::from_utf8_lossy(&out.stdout));
    let artifact = std::fs::read_to_string(&json).expect("JSON artifact written");
    assert!(artifact.contains("\"tool\": \"tage_lint\""));
    assert!(artifact.contains("PhantomVariant"));
    std::fs::remove_file(&json).ok();

    // Clean workspace → exit 0.
    let out = Command::new(bin)
        .args(["check", "--deny-all", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run tage_lint");
    assert_eq!(out.status.code(), Some(0), "stdout:\n{}", String::from_utf8_lossy(&out.stdout));

    // `list` names every registered pass.
    let out = Command::new(bin).arg("list").output().expect("run tage_lint list");
    assert_eq!(out.status.code(), Some(0));
    let listing = String::from_utf8_lossy(&out.stdout).to_string();
    for pass in
        ["unsafe-policy", "panic-policy", "exhaustiveness-guard", "atomics-ordering", "doc-sync"]
    {
        assert!(listing.contains(pass), "missing {pass} in:\n{listing}");
    }

    // Unknown flags and commands are usage errors, not findings.
    let out = Command::new(bin).args(["check", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(bin).arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
