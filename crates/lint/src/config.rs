//! Lint configuration: which files are walked and which policies bind
//! where. The default configuration *is* this workspace's policy; tests
//! build custom configurations to lint fixture trees.

use std::path::PathBuf;

/// Configuration for one lint run.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Workspace root (the directory holding `crates/` and `src/`).
    pub root: PathBuf,
    /// Crate directories (under `crates/`) allowed to contain `unsafe`
    /// code. These must declare `#![deny(unsafe_code)]` with audited,
    /// `SAFETY:`-justified local allows; every other crate must declare
    /// `#![forbid(unsafe_code)]`.
    pub unsafe_allowed_crates: Vec<String>,
    /// Workspace-relative files under the exhaustiveness guard: `_ =>`
    /// match arms are denied there unless justified with `// WILDCARD:`.
    /// These are the fingerprint/codec/spec modules where a silently
    /// swallowed new enum variant reopens a stale-data hazard.
    pub wildcard_guarded_files: Vec<String>,
    /// The file holding `enum SpecError` and the `PRESETS` table.
    pub spec_file: String,
    /// The file holding the `.ttr3` block-compression `SCHEMES` registry.
    pub scheme_file: String,
    /// The file holding the `RunArtifact`/`TraceRow` run-artifact schema
    /// and the `ARTIFACT_SCHEMA` version constant.
    pub artifact_file: String,
    /// The file holding the `tage.wire/1` protocol surface: the `FRAMES`
    /// frame-type table, the `Handshake` struct, and the `WIRE_SCHEMA`
    /// version constant — all pinned against DESIGN.md §9 by doc-sync.
    pub wire_file: String,
    /// Sampling-surface structs pinned by doc-sync, as
    /// `(workspace-relative file, struct name)` pairs. Every field of
    /// each struct must appear backticked in the documentation files —
    /// the window/phase/artifact-block trio is the user-facing sampling
    /// contract, and a field added to one of them without a doc update
    /// is a finding.
    pub sampling_structs: Vec<(String, String)>,
    /// Documentation files that must mention every `SpecError` variant,
    /// every `PRESETS` row, every `SCHEMES` row, every artifact schema
    /// field, and the artifact schema version (doc-sync).
    pub doc_files: Vec<String>,
}

impl LintConfig {
    /// The policy for this repository, rooted at `root`.
    pub fn for_workspace(root: PathBuf) -> Self {
        Self {
            root,
            // The audited unsafe prefetch hints: tage-core's tagged-table
            // prefetch and workloads' decoded-block prefetch.
            unsafe_allowed_crates: vec!["core".to_string(), "workloads".to_string()],
            wildcard_guarded_files: [
                // Trace-cache fingerprint coverage (the PR-3 stale-cache fix).
                "crates/workloads/src/io.rs",
                "crates/workloads/src/behavior.rs",
                // Codec kind/type mappings: a new BranchKind must map, not fall through.
                "crates/traces/src/codec.rs",
                "crates/traces/src/decoder.rs",
                "crates/traces/src/ttr.rs",
                "crates/traces/src/ttr3.rs",
                "crates/traces/src/cbp.rs",
                "crates/traces/src/csv.rs",
                // The block-scheme registry: an unknown scheme byte must be
                // reported by name, not absorbed by a wildcard.
                "crates/traces/src/scheme.rs",
                // The spec grammar: every token/stage/param must be handled by name.
                "crates/core/src/spec.rs",
                // The wire protocol: an unknown frame tag must become a
                // typed error, not vanish into a wildcard.
                "crates/serve/src/wire.rs",
            ]
            .into_iter()
            .map(str::to_string)
            .collect(),
            spec_file: "crates/core/src/spec.rs".to_string(),
            scheme_file: "crates/traces/src/scheme.rs".to_string(),
            artifact_file: "crates/harness/src/artifact.rs".to_string(),
            wire_file: "crates/serve/src/wire.rs".to_string(),
            sampling_structs: [
                ("crates/pipeline/src/engine.rs", "SimWindow"),
                ("crates/pipeline/src/sampling.rs", "Phase"),
                ("crates/harness/src/artifact.rs", "SamplingBlock"),
            ]
            .into_iter()
            .map(|(f, s)| (f.to_string(), s.to_string()))
            .collect(),
            doc_files: vec!["DESIGN.md".to_string(), "EXPERIMENTS.md".to_string()],
        }
    }

    /// True when `rel_path` names a binary-target source (`src/bin/…` or
    /// `src/main.rs`): CLI entry points are exempt from the panic policy
    /// (a `panic!`/`expect` there aborts one invocation with a message,
    /// not a library caller).
    pub fn is_bin_source(rel_path: &str) -> bool {
        rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs")
    }
}
