//! The pass driver: load the workspace, run the registry, aggregate a
//! [`Report`].

use crate::config::LintConfig;
use crate::diag::{Report, Severity};
use crate::passes::{registry, LintContext};
use crate::walk::load_workspace;
use std::io;

/// Runs every registered pass over the workspace `config` describes.
/// With `deny_all`, advisory findings are promoted to denials (the CI
/// gate mode).
pub fn run_check(config: LintConfig, deny_all: bool) -> io::Result<Report> {
    let files = load_workspace(&config)?;
    let files_scanned = files.len();
    let ctx = LintContext { config, files };
    let mut diagnostics = Vec::new();
    let mut pass_counts = Vec::new();
    for pass in registry() {
        let mut found = pass.run(&ctx);
        if deny_all {
            for d in &mut found {
                d.severity = Severity::Deny;
            }
        }
        pass_counts.push((pass.name(), found.len()));
        diagnostics.extend(found);
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    Ok(Report { diagnostics, files_scanned, pass_counts })
}

/// Renders the human-readable `check` output.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let denied = report.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count();
    let advisory = report.diagnostics.len() - denied;
    out.push_str(&format!(
        "tage_lint: {} files scanned, {} passes, {denied} denial(s), {advisory} advisory\n",
        report.files_scanned,
        report.pass_counts.len(),
    ));
    out
}

/// Renders the `list` output: one row per registered pass.
pub fn render_pass_list() -> String {
    let mut out = String::new();
    for pass in registry() {
        out.push_str(&format!(
            "{:<22} [{}]  {}\n",
            pass.name(),
            pass.default_severity().as_str(),
            pass.description()
        ));
    }
    out
}
